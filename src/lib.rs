//! # ZNN-rs
//!
//! A from-scratch Rust reproduction of **ZNN** (Zlateski, Lee, Seung —
//! IPDPS 2016): a fast and scalable algorithm for training 3D
//! convolutional networks on multi-core and many-core shared-memory
//! machines.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tensor`] — dense 3D tensors (`znn-tensor`),
//! * [`alloc`] — pooled power-of-two allocators (`znn-alloc`, §VII-C),
//! * [`fft`] — 3D FFT and frequency-domain convolution (`znn-fft`, §IV),
//! * [`ops`] — convolution / pooling / filtering / transfer ops and their
//!   Jacobians (`znn-ops`, §II–III),
//! * [`sched`] — the task scheduler, FORCE semantics and wait-free
//!   concurrent summation (`znn-sched`, §VI–VII),
//! * [`graph`] — the computation graph and task priorities (`znn-graph`,
//!   §II, §V–VI),
//! * [`core`] — the training engine (`znn-core`),
//! * [`theory`] — the analytic complexity model and Brent's-theorem
//!   speedup bounds (`znn-theory`, §V-A),
//! * [`sim`] — the discrete-event machine simulator used for the
//!   scalability experiments (`znn-sim`, §VIII),
//! * [`plan`] — the cost-model-driven execution planner with online
//!   calibration (`znn-plan`, §IV closed-loop),
//! * [`baseline`] — the layer-at-a-time data-parallel comparator
//!   (`znn-baseline`, §IX).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use znn_alloc as alloc;
pub use znn_baseline as baseline;
pub use znn_core as core;
pub use znn_fft as fft;
pub use znn_graph as graph;
pub use znn_ops as ops;
pub use znn_plan as plan;
pub use znn_sched as sched;
pub use znn_serve as serve;
pub use znn_sim as sim;
pub use znn_tensor as tensor;
pub use znn_theory as theory;
