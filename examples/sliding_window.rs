//! The Fig 2 equivalence: a sliding-window max-pooling ConvNet equals a
//! max-filtering ConvNet with sparse (skip-kernel) convolutions — but
//! the latter computes the dense output in one pass instead of one
//! network evaluation per window position.
//!
//! This example builds both networks with *identical weights*, computes
//! the dense output both ways through the shared [`znn::core::DenseNet`]
//! library path (the same evaluator `znn-serve` workers run), verifies
//! they agree voxel for voxel, and times them.
//!
//! ```sh
//! cargo run --release --example sliding_window
//! ```

use std::ops::ControlFlow;
use std::time::Instant;
use znn::baseline::ReferenceNet;
use znn::core::{DenseConfig, DenseNet};
use znn::graph::NetBuilder;
use znn::ops::Transfer;
use znn::tensor::{ops, pad, Tensor3, Vec3};

/// A tiny max-pooling recognition net: C3 T P2 C3 T.
fn pooling_net() -> znn::graph::Graph {
    NetBuilder::new("pool", 1)
        .conv(3, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .max_pool(Vec3::flat(2, 2))
        .conv(1, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .build()
        .unwrap()
        .0
}

/// The same net with max-filtering + skip kernels (Fig 2, right).
fn filtering_net() -> znn::graph::Graph {
    NetBuilder::new("filter", 1)
        .conv(3, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .max_filter(Vec3::flat(2, 2)) // sparsifies the following convs
        .conv(1, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .build()
        .unwrap()
        .0
}

fn main() {
    // field of view of the pooling net, computed by the shape
    // machinery: the smallest window that yields one prediction
    let fov = znn::graph::shapes::required_input_shape(&pooling_net(), Vec3::flat(1, 1)).unwrap();
    println!("pooling net field of view: {fov}");

    // dense output over an image: one prediction per valid window
    let image = ops::random(Vec3::flat(24, 24), 42);
    let n = image.shape();
    let dense_shape = Vec3::flat(n[1] - fov[1] + 1, n[2] - fov[2] + 1);

    // --- slow path: literally slide the pooling net over every window
    let mut slider = ReferenceNet::new(pooling_net(), Vec3::flat(1, 1), 7).unwrap();
    let t0 = Instant::now();
    let mut slow = Tensor3::<f32>::zeros(dense_shape);
    for y in 0..dense_shape[1] {
        for z in 0..dense_shape[2] {
            let window = pad::crop(&image, Vec3::new(0, y, z), fov);
            let out = slider.forward(&[window]).remove(0);
            slow.set((0, y, z), out.at((0, 0, 0)));
        }
    }
    let t_slow = t0.elapsed();

    // --- fast path: the max-filtering net computes all windows at once,
    // through the library dense evaluator the serving stack shares.
    // Same trainable parameters: the two graphs have identical edge
    // structure, so the ParamSet carries over directly.
    let dense = DenseNet::with_params(
        filtering_net(),
        slider.params().clone(),
        DenseConfig::default(),
    )
    .unwrap();
    assert_eq!(
        dense.output_shape_for(n),
        Some(dense_shape),
        "filter net consumes the whole image"
    );
    dense.warmup(n); // populate autotune + kernel-spectrum caches
    let t0 = Instant::now();
    let fast = dense.forward(&image);
    let t_fast = t0.elapsed();

    let diff = slow.max_abs_diff(&fast);
    println!(
        "dense output {dense_shape}: sliding {} windows took {t_slow:?}, \
         one sparse pass took {t_fast:?} ({:.1}x)",
        dense_shape.len(),
        t_slow.as_secs_f64() / t_fast.as_secs_f64().max(1e-12),
    );
    println!("max |sliding - sparse| = {diff:.2e}");
    assert!(diff < 1e-4, "the Fig 2 equivalence must hold");
    println!("equivalence verified: max-filter + skip kernels == sliding window");

    // --- blocked evaluation: the same dense output tiled into blocks,
    // with a cancellation checkpoint between blocks — this is how a
    // server abandons an expired request mid-volume.
    let blocked = dense
        .forward_blocked(&image, Vec3::flat(6, 6), &mut |ev| {
            println!(
                "  block {}/{} at {} ({})",
                ev.index + 1,
                ev.total,
                ev.origin,
                ev.shape
            );
            ControlFlow::Continue(())
        })
        .unwrap();
    assert!(blocked.max_abs_diff(&fast) < 1e-5, "blocked == whole");
    println!("blocked evaluation matches the whole-volume pass");
}
