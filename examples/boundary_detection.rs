//! Boundary detection on synthetic volumes — the connectomics-flavoured
//! workload ZNN was built for (the paper's own applications are
//! neuronal boundary detection [13][23]).
//!
//! Trains a 3D max-filtering ConvNet with dropout on procedural
//! cell-body volumes and reports pixel accuracy on held-out samples.
//!
//! ```sh
//! cargo run --release --example boundary_detection
//! ```

use znn::core::{BlobsDataset, Dataset, TrainConfig, Znn};
use znn::graph::NetBuilder;
use znn::ops::{Loss, Transfer};
use znn::tensor::{Image, Vec3};

fn accuracy(pred: &Image, target: &Image) -> f64 {
    let correct = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .filter(|(&p, &t)| (p > 0.5) == (t > 0.5))
        .count();
    correct as f64 / pred.len() as f64
}

fn main() {
    let (graph, _) = NetBuilder::new("boundary", 1)
        .conv(6, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .conv(6, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .conv(1, Vec3::cube(3))
        .transfer(Transfer::Logistic)
        .build()
        .unwrap();

    let output_shape = Vec3::cube(6);
    let cfg = TrainConfig {
        learning_rate: 0.01,
        loss: Loss::Mse,
        dropout: Some(0.05), // §XI extension
        momentum: 0.9,
        ..Default::default()
    };
    let znn = Znn::new(graph, output_shape, cfg).unwrap();
    let mut train = BlobsDataset {
        input_shape: znn.input_shape(),
        output_shape,
        blobs: 3,
        noise: 0.05,
        seed: 100,
    };
    let mut held_out = BlobsDataset {
        input_shape: znn.input_shape(),
        output_shape,
        blobs: 3,
        noise: 0.05,
        seed: 9_999,
    };

    println!("training boundary detector (input {})...", znn.input_shape());
    let rounds = 120u64;
    let mut running = 0.0;
    for round in 0..rounds {
        let (x, t) = train.sample(round % 12); // 12-volume training set
        running += znn.train_step(&x, &t);
        if (round + 1) % 30 == 0 {
            println!(
                "rounds {:>3}-{:>3}: mean loss {:.4}",
                round + 1 - 30,
                round + 1,
                running / 30.0
            );
            running = 0.0;
        }
    }

    // held-out evaluation
    let mut acc = 0.0;
    let eval_n = 5u64;
    for i in 0..eval_n {
        let (x, t) = held_out.sample(i);
        let pred = znn.forward(&x).remove(0);
        acc += accuracy(&pred, &t[0]);
    }
    println!(
        "held-out pixel accuracy over {eval_n} volumes: {:.1}%",
        100.0 * acc / eval_n as f64
    );
    let baseline: f64 = {
        // majority-class baseline on the same volumes
        let mut ones = 0usize;
        let mut total = 0usize;
        for i in 0..eval_n {
            let (_, t) = held_out.sample(i);
            ones += t[0].as_slice().iter().filter(|&&v| v > 0.5).count();
            total += t[0].len();
        }
        let p = ones as f64 / total as f64;
        p.max(1.0 - p)
    };
    println!("majority-class baseline: {:.1}%", 100.0 * baseline);
}
