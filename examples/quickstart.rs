//! Quickstart: build a small 3D ConvNet, train it with the
//! task-parallel ZNN engine, and run inference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use znn::core::{BlobsDataset, Dataset, TrainConfig, Znn};
use znn::graph::NetBuilder;
use znn::ops::{Loss, Transfer};
use znn::tensor::Vec3;

fn main() {
    // 1. Describe the network: a computation graph whose nodes are 3D
    //    images and whose edges are convolutions / transfers / filters.
    //    `conv` layers are fully connected (f x f' kernels).
    let (graph, info) = NetBuilder::new("quickstart", 1)
        .conv(8, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .max_filter(Vec3::cube(2)) // bumps conv sparsity, keeps resolution
        .conv(8, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .conv(1, Vec3::cube(3))
        .transfer(Transfer::Logistic)
        .build()
        .expect("valid architecture");
    println!(
        "network: {} nodes, {} edges, {} trainable parameters, {} layers",
        graph.node_count(),
        graph.edge_count(),
        graph.parameter_count(),
        info.layers.len(),
    );

    // 2. Configure the engine. Autotuning picks direct vs FFT
    //    convolution per layer; updates are scheduled lazily and forced
    //    by the next round exactly as in the paper.
    let output_shape = Vec3::cube(8);
    let cfg = TrainConfig {
        learning_rate: 0.01,
        loss: Loss::Mse,
        ..Default::default()
    };
    let znn = Znn::new(graph, output_shape, cfg).expect("shapes check out");
    println!(
        "input patch {} -> output patch {output_shape}",
        znn.input_shape()
    );

    // 3. Train on procedural boundary-detection volumes.
    let mut data = BlobsDataset {
        input_shape: znn.input_shape(),
        output_shape,
        blobs: 3,
        noise: 0.05,
        seed: 7,
    };
    for round in 0..20u64 {
        let (inputs, targets) = data.sample(round);
        let loss = znn.train_step(&inputs, &targets);
        if round % 5 == 0 {
            println!("round {round:>3}: loss {loss:.4}");
        }
    }

    // 4. Inference: pending updates are forced automatically.
    let (inputs, _) = data.sample(999);
    let prediction = znn.forward(&inputs).remove(0);
    println!(
        "inference done: output {} with mean activation {:.3}",
        prediction.shape(),
        prediction.sum() / prediction.len() as f32
    );

    // 5. Scheduler introspection: how the FORCE protocol resolved.
    let stats = znn.stats();
    println!(
        "scheduler: {} tasks executed; updates found-done/inline/delegated = {}/{}/{}",
        stats.tasks_executed,
        stats.force_already_done,
        stats.force_ran_inline,
        stats.force_delegated,
    );
}
