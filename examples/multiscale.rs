//! Multi-scale / scale-controlled convolution (§II-A and the §XI
//! multi-scale extension): ZNN's computation graph is a general DAG, so
//! a network can process the same input at several scales — here by
//! giving parallel paths different convolution sparsities — and merge
//! them with convergent convolutions.
//!
//! ```sh
//! cargo run --release --example multiscale
//! ```

use znn::core::{TrainConfig, Znn};
use znn::graph::{EdgeOp, Graph};
use znn::ops::Transfer;
use znn::tensor::{ops, Vec3};

fn main() {
    // hand-built DAG: input -> fine path (s=1) and coarse path (s=2),
    // merged by convergent convolutions into one head
    let mut g = Graph::new();
    let input = g.add_node("in");
    let fine = g.add_node("fine");
    let fine_t = g.add_node("fine/t");
    let coarse = g.add_node("coarse");
    let coarse_t = g.add_node("coarse/t");
    let merge = g.add_node("merge");
    let merge_t = g.add_node("merge/t");
    let head = g.add_node("head");
    let out = g.add_node("out");

    let k = Vec3::cube(3);
    g.add_edge(
        input,
        fine,
        EdgeOp::Conv {
            kernel: k,
            sparsity: Vec3::one(),
        },
    );
    g.add_edge(
        input,
        coarse,
        EdgeOp::Conv {
            kernel: k,
            sparsity: Vec3::cube(2), // same kernel, double the reach
        },
    );
    g.add_edge(fine, fine_t, EdgeOp::Transfer { function: Transfer::Relu });
    g.add_edge(coarse, coarse_t, EdgeOp::Transfer { function: Transfer::Relu });
    // the two scales merge: shapes must agree, so the fine path uses a
    // larger kernel to match the coarse path's field of view
    // fine: n-2 after conv; coarse: n-4. A second fine conv with k=3
    // brings fine to n-4 as well.
    let fine2 = g.add_node("fine2");
    g.add_edge(
        fine_t,
        fine2,
        EdgeOp::Conv {
            kernel: k,
            sparsity: Vec3::one(),
        },
    );
    let fine2_t = g.add_node("fine2/t");
    g.add_edge(fine2, fine2_t, EdgeOp::Transfer { function: Transfer::Relu });
    // convergent convolutions sum at `merge` (both paths now at n-4;
    // 1x1x1 kernels keep the shapes aligned)
    g.add_edge(
        fine2_t,
        merge,
        EdgeOp::Conv {
            kernel: Vec3::one(),
            sparsity: Vec3::one(),
        },
    );
    g.add_edge(
        coarse_t,
        merge,
        EdgeOp::Conv {
            kernel: Vec3::one(),
            sparsity: Vec3::one(),
        },
    );
    g.add_edge(merge, merge_t, EdgeOp::Transfer { function: Transfer::Relu });
    g.add_edge(
        merge_t,
        head,
        EdgeOp::Conv {
            kernel: k,
            sparsity: Vec3::one(),
        },
    );
    g.add_edge(head, out, EdgeOp::Transfer { function: Transfer::Logistic });
    g.validate().expect("multi-scale DAG is valid");

    println!(
        "multi-scale DAG: {} nodes, {} edges (fine s=1 + coarse s=2 paths)",
        g.node_count(),
        g.edge_count()
    );

    let out_shape = Vec3::cube(4);
    let znn = Znn::new(g, out_shape, TrainConfig::default()).unwrap();
    println!("input {} -> output {out_shape}", znn.input_shape());

    // train a few steps on a fixed sample to show gradients flow through
    // both scales and the convergent merge
    let x = ops::random(znn.input_shape(), 1);
    let t = ops::random(out_shape, 2).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    let mut first = None;
    let mut last = 0.0;
    for round in 0..30 {
        last = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        first.get_or_insert(last);
        if round % 10 == 0 {
            println!("round {round:>2}: loss {last:.4}");
        }
    }
    let first = first.unwrap();
    println!("loss {first:.4} -> {last:.4}");
    assert!(last < first, "multi-scale net must train");
}
