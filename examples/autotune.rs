//! Watch the cost-model planner (`znn-plan`) choose direct vs FFT
//! convolution, pad shapes, and the FFT fan-out per conv edge — then
//! verify the planned engine agrees numerically with both forced
//! paths and with the legacy measurement-based autotuner.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use std::sync::Arc;
use znn::core::{ConvPolicy, PlanPolicy, TrainConfig, Znn};
use znn::graph::NetBuilder;
use znn::ops::Transfer;
use znn::plan::{PlanConfig, Planner};
use znn::tensor::{ops, Vec3};

fn main() {
    // small kernels early (direct should win), large kernels late (FFT
    // should win) — a geometry mix that makes the planner earn its keep
    let (graph, _) = NetBuilder::new("tuned", 1)
        .conv(4, Vec3::cube(2))
        .transfer(Transfer::Relu)
        .conv(4, Vec3::cube(7))
        .transfer(Transfer::Relu)
        .conv(1, Vec3::cube(2))
        .build()
        .unwrap();

    let out_shape = Vec3::cube(3);
    // `--plan auto` in the CLI: price the theory FLOP model through a
    // detected machine model instead of timing each layer
    let planner = Arc::new(Planner::new(PlanConfig::host()));
    println!(
        "machine prior: {} ({} cores, {:.1} GFLOP/s, {:.1} GB/s)",
        planner.config().machine.name,
        planner.config().machine.cores,
        planner.config().machine.gflops,
        planner.config().machine.bandwidth_gbs,
    );
    let planned = Znn::new(
        graph.clone(),
        out_shape,
        TrainConfig {
            plan: Some(PlanPolicy::Auto(Arc::clone(&planner))),
            ..Default::default()
        },
    )
    .unwrap();

    let plan = planned.net_plan().expect("Auto always resolves a plan");
    println!(
        "plan: fft_threads = {}, predicted round = {:.0}µs",
        plan.fft_threads, plan.predicted_round_us
    );
    println!("per conv geometry:");
    let mut seen: Vec<Vec3> = Vec::new();
    for (i, e) in graph.edges().iter().enumerate() {
        if let znn::graph::EdgeOp::Conv { kernel, .. } = e.op {
            if seen.contains(&kernel) {
                continue;
            }
            seen.push(kernel);
            let ep = plan.edges[i].unwrap();
            println!(
                "  kernel {kernel}: {:?} (pad {}, {:.1}µs predicted)",
                ep.method, ep.pad, ep.predicted_us
            );
        }
    }

    // the planned engine, both forced paths, and the legacy
    // measurement-based autotuner all agree numerically
    let x = ops::random(planned.input_shape(), 5);
    let y_planned = planned.forward(std::slice::from_ref(&x)).remove(0);
    for policy in [
        ConvPolicy::Autotune,
        ConvPolicy::ForceDirect,
        ConvPolicy::ForceFft,
    ] {
        let forced = Znn::new(
            graph.clone(),
            out_shape,
            TrainConfig {
                conv: policy,
                ..Default::default()
            },
        )
        .unwrap();
        let y = forced.forward(std::slice::from_ref(&x)).remove(0);
        let d = y.max_abs_diff(&y_planned);
        println!("{policy:?} max deviation from planned output: {d:.2e}");
        assert!(d < 1e-3);
    }
    println!("all convolution paths agree.");
}
