//! Watch the §IV autotuner choose between direct and FFT convolution
//! per layer geometry, and verify both paths give the same numbers.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use znn::core::{ConvPolicy, TrainConfig, Znn};
use znn::graph::{EdgeId, NetBuilder};
use znn::ops::Transfer;
use znn::tensor::{ops, Vec3};

fn main() {
    // small kernels early (direct should win), large kernels late (FFT
    // should win) — a geometry mix that makes the autotuner earn its keep
    let (graph, _) = NetBuilder::new("tuned", 1)
        .conv(4, Vec3::cube(2))
        .transfer(Transfer::Relu)
        .conv(4, Vec3::cube(7))
        .transfer(Transfer::Relu)
        .conv(1, Vec3::cube(2))
        .build()
        .unwrap();

    let out_shape = Vec3::cube(3);
    let tuned = Znn::new(
        graph.clone(),
        out_shape,
        TrainConfig {
            conv: ConvPolicy::Autotune,
            ..Default::default()
        },
    )
    .unwrap();

    println!("autotuner decisions (per conv edge):");
    let mut by_kernel: Vec<(Vec3, znn::ops::ConvMethod)> = Vec::new();
    for (i, e) in graph.edges().iter().enumerate() {
        if let znn::graph::EdgeOp::Conv { kernel, .. } = e.op {
            let m = tuned.conv_method(EdgeId(i)).unwrap();
            if !by_kernel.iter().any(|(k, mm)| *k == kernel && *mm == m) {
                by_kernel.push((kernel, m));
            }
        }
    }
    for (k, m) in &by_kernel {
        println!("  kernel {k}: {m:?}");
    }

    // both forced paths agree with the tuned engine
    let x = ops::random(tuned.input_shape(), 5);
    let y_tuned = tuned.forward(std::slice::from_ref(&x)).remove(0);
    for policy in [ConvPolicy::ForceDirect, ConvPolicy::ForceFft] {
        let forced = Znn::new(
            graph.clone(),
            out_shape,
            TrainConfig {
                conv: policy,
                ..Default::default()
            },
        )
        .unwrap();
        let y = forced.forward(std::slice::from_ref(&x)).remove(0);
        let d = y.max_abs_diff(&y_tuned);
        println!("{policy:?} max deviation from tuned output: {d:.2e}");
        assert!(d < 1e-3);
    }
    println!("all convolution paths agree.");
}
