//! Cross-crate integration tests exercised through the `znn` facade:
//! paper-level invariants that tie several subsystems together.

use znn::baseline::{LayerwiseNet, ReferenceNet};
use znn::core::{ConvPolicy, TrainConfig, Znn};
use znn::graph::builder::{comparison_net, scalability_net_2d, scalability_net_3d};
use znn::graph::{shapes, TaskGraph};
use znn::ops::{Loss, Transfer};
use znn::sim::costs::task_costs;
use znn::sim::{simulate, Machine, SimConfig};
use znn::tensor::{ops, pad, Tensor3, Vec3};
use znn::theory::brent::{achievable_speedup, NetworkModel};
use znn::theory::flops::ConvAlgorithm;

/// All three engines (task-parallel, sequential reference, layerwise
/// baseline) agree on the paper's 3D benchmark architecture.
#[test]
fn three_engines_agree_on_the_paper_network() {
    let w = 2usize;
    let out = Vec3::cube(4);
    let (g, _) = scalability_net_3d(w);
    let znn = Znn::new(g.clone(), out, TrainConfig::test_default(2)).unwrap();
    let mut reference = ReferenceNet::new(g.clone(), out, 0x5EED).unwrap();
    let mut layerwise = LayerwiseNet::new(g, out, 0x5EED).unwrap();
    let x = ops::random(znn.input_shape(), 11);
    let a = znn.forward(std::slice::from_ref(&x)).remove(0);
    let b = reference.forward(std::slice::from_ref(&x)).remove(0);
    let c = layerwise.forward(&[x]).remove(0);
    assert!(a.max_abs_diff(&b) < 1e-4);
    assert!(b.max_abs_diff(&c) < 1e-4);
}

/// The Fig 2 equivalence across the whole stack: a dense sliding-window
/// evaluation of a pooling net equals one pass of the sparse filtering
/// net, computed by the task-parallel engine.
#[test]
fn sliding_window_equivalence_through_the_engine() {
    let k = Vec3::flat(3, 3);
    let p = Vec3::flat(2, 2);
    let (pool_net, _) = comparison_net(2, k, p, false);
    let (filt_net, _) = comparison_net(2, k, p, true);
    let fov = shapes::required_input_shape(&pool_net, Vec3::flat(1, 1)).unwrap();

    let dense_shape = Vec3::flat(3, 3);
    let filt = Znn::new(filt_net, dense_shape, TrainConfig::test_default(2)).unwrap();
    let mut slider = ReferenceNet::new(pool_net, Vec3::flat(1, 1), 0x5EED).unwrap();

    let image = ops::random(filt.input_shape(), 21);
    let fast = filt.forward(std::slice::from_ref(&image)).remove(0);
    for at in dense_shape.iter() {
        let window = pad::crop(&image, at, fov);
        let one = slider.forward(&[window]).remove(0);
        assert!(
            (fast[at] - one.at((0, 0, 0))).abs() < 1e-4,
            "window at {at}: sparse {} vs sliding {}",
            fast[at],
            one.at((0, 0, 0))
        );
    }
}

/// The simulator's speedups respect the Brent bound computed by the
/// analytic model — simulation can never beat theory.
#[test]
fn simulated_speedup_respects_the_brent_bound() {
    for width in [4usize, 16] {
        let (g, _) = scalability_net_3d(width);
        let (tg, costs) = task_costs(&g, Vec3::cube(12), ConvAlgorithm::Direct, false).unwrap();
        let machine = Machine::xeon_e7_40core();
        let sim = simulate(
            &tg,
            &costs,
            &machine,
            &SimConfig {
                workers: 40,
                ..Default::default()
            },
        );
        // an analytic model of the same family of networks; the bound
        // uses the same processor count
        let model = NetworkModel::fully_connected(4, width as f64, 3.0, 12.0);
        let bound = achievable_speedup(&model, ConvAlgorithm::Direct, 40.0);
        // the simulated net has filter layers the model lacks, so allow
        // headroom — the invariant is "not wildly above the bound"
        assert!(
            sim.speedup <= bound * 1.5 + 2.0,
            "width {width}: simulated {} vs bound {bound}",
            sim.speedup
        );
        assert!(sim.speedup >= 1.0);
    }
}

/// Task graphs of the benchmark networks are well-formed at every width
/// used by the figures.
#[test]
fn benchmark_task_graphs_are_acyclic_at_figure_widths() {
    for w in [5usize, 30, 80] {
        assert!(TaskGraph::build(&scalability_net_3d(w).0).is_acyclic());
        assert!(TaskGraph::build(&scalability_net_2d(w).0).is_acyclic());
    }
}

/// End-to-end: training through the facade with FFT + memoization on a
/// 2D (flat) network converges on a representable target.
#[test]
fn facade_end_to_end_2d_training() {
    let (g, _) = znn::graph::NetBuilder::new("e2e", 1)
        .conv(3, Vec3::flat(5, 5))
        .transfer(Transfer::Tanh)
        .conv(1, Vec3::flat(5, 5))
        .build()
        .unwrap();
    let out = Vec3::flat(4, 4);
    let cfg = TrainConfig {
        conv: ConvPolicy::ForceFft,
        memoize_fft: true,
        learning_rate: 0.05,
        loss: Loss::Mse,
        ..TrainConfig::test_default(2)
    };
    let znn = Znn::new(g.clone(), out, cfg).unwrap();
    let mut teacher = ReferenceNet::new(g, out, 4242).unwrap();
    let x = ops::random(znn.input_shape(), 33);
    let t = teacher.forward(std::slice::from_ref(&x)).remove(0);
    let first = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    let mut last = first;
    for _ in 0..40 {
        last = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    }
    assert!(last < 0.6 * first, "{first} -> {last}");
}

/// The pooled allocator integrates with tensors end to end.
#[test]
fn image_pool_round_trips_tensors() {
    let pool = znn::alloc::ImagePool::new();
    let mut img = pool.get(Vec3::cube(8));
    img.as_mut_slice().fill(3.0);
    assert_eq!(img.sum(), 3.0 * 512.0);
    pool.put(img);
    let again = pool.get(Vec3::cube(8));
    assert!(again.as_slice().iter().all(|&v| v == 0.0));
    assert_eq!(pool.stats().hits(), 1);
}

/// Degenerate graphs: a single conv edge trains without deadlock.
#[test]
fn minimal_graph_trains() {
    let mut g = znn::graph::Graph::new();
    let a = g.add_node("in");
    let b = g.add_node("out");
    g.add_edge(
        a,
        b,
        znn::graph::EdgeOp::Conv {
            kernel: Vec3::cube(2),
            sparsity: Vec3::one(),
        },
    );
    let znn = Znn::new(g, Vec3::cube(3), TrainConfig::test_default(1)).unwrap();
    let x = ops::random(znn.input_shape(), 1);
    let t = Tensor3::<f32>::zeros(Vec3::cube(3));
    let l0 = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    let mut l = l0;
    for _ in 0..20 {
        l = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    }
    assert!(l < l0);
}
