//! Parity and robustness tests for the forward-only dense evaluator.
//!
//! The ground truth is the sequential [`ReferenceNet`] sliding a
//! max-pooling net over every output position (the Fig. 2 left-hand
//! side); [`DenseNet`] over the equivalent max-filtering graph must
//! compute the same dense output in one pass, whole or blocked, on
//! either convolution backend, and must return every pooled lease when
//! a blocked evaluation is cancelled.

use std::ops::ControlFlow;
use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_baseline::ReferenceNet;
use znn_core::{ConvPolicy, DenseConfig, DenseNet};
use znn_graph::{Graph, NetBuilder};
use znn_ops::Transfer;
use znn_tensor::{ops, pad, Tensor3, Vec3};

/// A tiny max-pooling recognition net: C3 T P2 C3 T, field of view 9².
fn pooling_net() -> Graph {
    NetBuilder::new("pool", 1)
        .conv(3, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .max_pool(Vec3::flat(2, 2))
        .conv(1, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .build()
        .unwrap()
        .0
}

/// The same net with max-filtering + skip kernels (Fig 2, right).
fn filtering_net() -> Graph {
    NetBuilder::new("filter", 1)
        .conv(3, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .max_filter(Vec3::flat(2, 2))
        .conv(1, Vec3::flat(3, 3))
        .transfer(Transfer::Tanh)
        .build()
        .unwrap()
        .0
}

fn dense_cfg(conv: ConvPolicy) -> DenseConfig {
    DenseConfig {
        conv,
        ..DenseConfig::default()
    }
}

/// Dense net with the sliding reference's parameters carried over.
fn dense_from_reference(slider: &ReferenceNet, conv: ConvPolicy) -> DenseNet {
    DenseNet::with_params(filtering_net(), slider.params().clone(), dense_cfg(conv)).unwrap()
}

#[test]
fn dense_matches_sliding_reference() {
    let mut slider = ReferenceNet::new(pooling_net(), Vec3::flat(1, 1), 7).unwrap();
    let fov = slider.input_shape();
    let image = ops::random(Vec3::flat(20, 20), 42);
    let n = image.shape();
    let dense_shape = Vec3::flat(n[1] - fov[1] + 1, n[2] - fov[2] + 1);

    let mut slow = Tensor3::<f32>::zeros(dense_shape);
    for y in 0..dense_shape[1] {
        for z in 0..dense_shape[2] {
            let window = pad::crop(&image, Vec3::new(0, y, z), fov);
            let out = slider.forward(&[window]).remove(0);
            slow.set((0, y, z), out.at((0, 0, 0)));
        }
    }

    for conv in [ConvPolicy::ForceDirect, ConvPolicy::ForceFft] {
        let dense = dense_from_reference(&slider, conv);
        assert_eq!(dense.output_shape_for(n), Some(dense_shape));
        assert_eq!(dense.input_shape_for(dense_shape).unwrap(), n);
        let fast = dense.forward(&image);
        let diff = slow.max_abs_diff(&fast);
        assert!(
            diff < 1e-4,
            "Fig 2 equivalence must hold under {conv:?}: max diff {diff:.2e}"
        );
    }
}

#[test]
fn blocked_matches_whole_bitwise_under_direct() {
    let slider = ReferenceNet::new(pooling_net(), Vec3::flat(1, 1), 11).unwrap();
    let dense = dense_from_reference(&slider, ConvPolicy::ForceDirect);
    let image = ops::random(Vec3::flat(23, 26), 5);
    let whole = dense.forward(&image);

    // block shapes that divide, straddle, and exceed the output volume
    for block in [
        Vec3::flat(5, 6),
        Vec3::flat(7, 7),
        Vec3::flat(1, 18),
        Vec3::flat(64, 64),
    ] {
        let mut seen = 0usize;
        let blocked = dense
            .forward_blocked(&image, block, &mut |ev| {
                assert!(ev.index < ev.total);
                seen += 1;
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(seen, {
            let o = whole.shape();
            o[0].div_ceil(block[0]) * o[1].div_ceil(block[1]) * o[2].div_ceil(block[2])
        });
        assert_eq!(whole.shape(), blocked.shape());
        assert_eq!(
            whole.max_abs_diff(&blocked),
            0.0,
            "direct blocked evaluation must be bitwise identical (block {block})"
        );
    }
}

#[test]
fn blocked_fft_matches_whole_within_tolerance() {
    let slider = ReferenceNet::new(pooling_net(), Vec3::flat(1, 1), 13).unwrap();
    let dense = dense_from_reference(&slider, ConvPolicy::ForceFft);
    let image = ops::random(Vec3::flat(21, 24), 9);
    let whole = dense.forward(&image);
    let blocked = dense
        .forward_blocked(&image, Vec3::flat(6, 5), &mut |_| ControlFlow::Continue(()))
        .unwrap();
    let diff = whole.max_abs_diff(&blocked);
    assert!(diff < 1e-4, "FFT blocked vs whole: max diff {diff:.2e}");
}

#[test]
fn cancellation_returns_every_pooled_lease() {
    let pools = PoolSet::new();
    let cfg = DenseConfig {
        conv: ConvPolicy::ForceDirect,
        pools: Some(Arc::clone(&pools)),
        ..DenseConfig::default()
    };
    let dense = DenseNet::new(filtering_net(), 3, cfg).unwrap();
    let image = ops::random(Vec3::flat(24, 24), 1);

    let err = dense
        .forward_blocked(&image, Vec3::flat(4, 4), &mut |ev| {
            if ev.index == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap_err();
    assert_eq!(err.blocks_done, 2);
    assert!(err.blocks_total > 2);
    assert_eq!(
        pools.stats().bytes_in_use(),
        0,
        "cancelled evaluation must return every pooled lease"
    );
}

#[test]
fn spectra_memoize_once_and_params_mut_invalidates() {
    let dense = DenseNet::new(filtering_net(), 21, dense_cfg(ConvPolicy::ForceFft)).unwrap();
    let shape = Vec3::flat(20, 20);
    assert_eq!(dense.memoized_spectra(), 0);
    dense.warmup(shape);
    let warm = dense.memoized_spectra();
    assert!(warm > 0, "warmup must populate the kernel-spectrum cache");
    assert!(dense.memoized_spectrum_bytes() > 0);

    let image = ops::random(shape, 2);
    let before = dense.forward(&image);
    assert_eq!(
        dense.memoized_spectra(),
        warm,
        "the cache is read-only after warmup"
    );

    // retuning parameters must drop the stale spectra
    let mut dense = dense;
    for k in dense.params_mut().kernels.iter_mut().flatten() {
        for v in k.as_mut_slice() {
            *v += 0.25;
        }
    }
    assert_eq!(dense.memoized_spectra(), 0);
    let after = dense.forward(&image);
    assert!(
        before.max_abs_diff(&after) > 1e-6,
        "new parameters must change the output"
    );
}

#[test]
fn multi_threaded_sharing_is_consistent() {
    let slider = ReferenceNet::new(pooling_net(), Vec3::flat(1, 1), 17).unwrap();
    let dense = Arc::new(dense_from_reference(&slider, ConvPolicy::ForceFft));
    let image = ops::random(Vec3::flat(20, 22), 33);
    dense.warmup(image.shape());
    let expect = dense.forward(&image);

    let mut handles = Vec::new();
    for _ in 0..4 {
        let dense = Arc::clone(&dense);
        let image = image.clone();
        handles.push(std::thread::spawn(move || dense.forward(&image)));
    }
    for h in handles {
        let got = h.join().unwrap();
        assert_eq!(
            expect.max_abs_diff(&got),
            0.0,
            "concurrent callers share one cache and agree bitwise"
        );
    }
}
