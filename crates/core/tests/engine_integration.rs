//! Integration tests of the training engine: learning behaviour,
//! extensions (dropout, momentum, weight decay), and scheduler/FORCE
//! instrumentation.

use znn_core::{BlobsDataset, ConvPolicy, Dataset, TrainConfig, Znn};
use znn_graph::NetBuilder;
use znn_ops::{Loss, Transfer};
use znn_tensor::{ops, Tensor3, Vec3};

fn boundary_net() -> znn_graph::Graph {
    NetBuilder::new("it", 1)
        .conv(4, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .conv(1, Vec3::cube(3))
        .transfer(Transfer::Logistic)
        .build()
        .unwrap()
        .0
}

#[test]
fn learns_a_teacher_network() {
    // teacher-student: the target is produced by a network of the same
    // architecture (different seed), so it is representable and the
    // loss must fall substantially if gradients are correct end to end
    let out = Vec3::cube(4);
    let cfg = TrainConfig {
        learning_rate: 0.5,
        loss: Loss::Mse,
        workers: 2,
        ..TrainConfig::test_default(2)
    };
    let znn = Znn::new(boundary_net(), out, cfg).unwrap();
    let mut teacher = znn_baseline::ReferenceNet::new(boundary_net(), out, 99).unwrap();
    let x = ops::random(znn.input_shape(), 3);
    let target = teacher.forward(std::slice::from_ref(&x)).remove(0);
    let mut losses = Vec::new();
    for _ in 0..300 {
        losses.push(znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&target)));
    }
    let early = losses[0];
    let late: f64 = losses[290..].iter().sum::<f64>() / 10.0;
    assert!(
        late < 0.5 * early,
        "no learning signal: early {early} late {late}"
    );
}

#[test]
fn trains_on_procedural_boundary_volumes() {
    // smoke test of the BlobsDataset path end to end (full-task
    // learnability is exercised by the boundary_detection example)
    let out = Vec3::cube(4);
    let znn = Znn::new(boundary_net(), out, TrainConfig::test_default(2)).unwrap();
    let mut data = BlobsDataset {
        input_shape: znn.input_shape(),
        output_shape: out,
        blobs: 2,
        noise: 0.02,
        seed: 3,
    };
    for round in 0..3 {
        let (ins, outs) = data.sample(round);
        let loss = znn.train_step(&ins, &outs);
        assert!(loss.is_finite() && loss >= 0.0);
    }
}

#[test]
fn momentum_and_weight_decay_change_the_trajectory_but_still_learn() {
    let out = Vec3::cube(2);
    let base = TrainConfig {
        learning_rate: 0.05,
        ..TrainConfig::test_default(2)
    };
    let with_momentum = TrainConfig {
        momentum: 0.9,
        weight_decay: 1e-4,
        ..base.clone()
    };
    let plain = Znn::new(boundary_net(), out, base).unwrap();
    let fancy = Znn::new(boundary_net(), out, with_momentum).unwrap();
    let x = ops::random(plain.input_shape(), 21);
    let t = Tensor3::filled(out, 0.5f32);
    let mut l_plain = f64::INFINITY;
    let mut l_fancy = f64::INFINITY;
    let l0_plain = plain.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    let l0_fancy = fancy.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    for _ in 0..25 {
        l_plain = plain.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        l_fancy = fancy.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    }
    assert!(l_plain < l0_plain, "plain SGD failed to learn");
    assert!(l_fancy < l0_fancy, "momentum SGD failed to learn");
    // the trajectories must actually differ
    let d = plain.params().max_abs_diff(&fancy.params());
    assert!(d > 1e-6, "momentum/decay had no effect");
}

#[test]
fn dropout_masks_forward_and_is_disabled_at_inference() {
    let out = Vec3::cube(2);
    let cfg = TrainConfig {
        dropout: Some(0.5),
        learning_rate: 0.0, // isolate dropout effects from learning
        ..TrainConfig::test_default(1)
    };
    let znn = Znn::new(boundary_net(), out, cfg).unwrap();
    let x = ops::random(znn.input_shape(), 31);
    let t = Tensor3::filled(out, 0.5f32);
    // training losses vary round to round because masks differ
    let l1 = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    let l2 = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    assert!(
        (l1 - l2).abs() > 1e-9,
        "dropout masks did not vary across rounds"
    );
    // inference is deterministic and mask-free
    let y1 = znn.forward(std::slice::from_ref(&x));
    let y2 = znn.forward(std::slice::from_ref(&x));
    assert_eq!(y1[0], y2[0]);
}

#[test]
fn force_statistics_account_for_every_update() {
    let out = Vec3::cube(2);
    let znn = Znn::new(boundary_net(), out, TrainConfig::test_default(2)).unwrap();
    let x = ops::random(znn.input_shape(), 41);
    let t = Tensor3::filled(out, 0.5f32);
    let rounds = 10u64;
    for _ in 0..rounds {
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    }
    znn.flush_updates();
    let stats = znn.stats();
    let trainable = znn
        .graph()
        .edges()
        .iter()
        .filter(|e| e.op.is_trainable())
        .count() as u64;
    // every (edge, round) pair forces exactly once, plus the final flush
    let total_forces =
        stats.force_already_done + stats.force_ran_inline + stats.force_delegated;
    assert_eq!(total_forces, trainable * (rounds + 1));
    assert!(stats.tasks_executed > 0);
}

#[test]
fn heap_of_lists_sees_few_distinct_priorities() {
    // wide layer -> many tasks share priorities; K must stay far below
    // the task count (the §VII-A argument for the heap of lists)
    let (g, _) = NetBuilder::new("k", 1)
        .conv(8, Vec3::cube(2))
        .transfer(Transfer::Relu)
        .conv(1, Vec3::cube(2))
        .build()
        .unwrap();
    let znn = Znn::new(g, Vec3::cube(2), TrainConfig::test_default(1)).unwrap();
    let x = ops::random(znn.input_shape(), 51);
    let t = Tensor3::filled(Vec3::cube(2), 0.1f32);
    znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    znn.train_step(&[x], &[t]);
    let stats = znn.stats();
    assert!(stats.peak_distinct_priorities > 0);
    assert!(
        stats.peak_distinct_priorities < 24,
        "K should be bounded by node count, got {}",
        stats.peak_distinct_priorities
    );
}

#[test]
fn memoized_spectra_are_bounded_and_cleared() {
    let out = Vec3::cube(2);
    let cfg = TrainConfig {
        conv: ConvPolicy::ForceFft,
        memoize_fft: true,
        ..TrainConfig::test_default(2)
    };
    let znn = Znn::new(boundary_net(), out, cfg).unwrap();
    let x = ops::random(znn.input_shape(), 61);
    let t = Tensor3::filled(out, 0.5f32);
    for _ in 0..3 {
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    }
    // caches hold at most a handful of spectra per node (one shape per
    // pass direction here)
    let spectra = znn.memoized_spectra();
    let nodes = znn.graph().node_count();
    assert!(
        spectra <= 2 * nodes,
        "spectra cache grew unboundedly: {spectra} for {nodes} nodes"
    );
}

#[test]
fn different_seeds_give_different_networks() {
    let out = Vec3::cube(2);
    let a = Znn::new(
        boundary_net(),
        out,
        TrainConfig {
            seed: 1,
            ..TrainConfig::test_default(1)
        },
    )
    .unwrap();
    let b = Znn::new(
        boundary_net(),
        out,
        TrainConfig {
            seed: 2,
            ..TrainConfig::test_default(1)
        },
    )
    .unwrap();
    assert!(a.params().max_abs_diff(&b.params()) > 1e-4);
}

#[test]
fn forward_only_engine_never_deadlocks() {
    // repeated inference without training exercises the latch re-arming
    let out = Vec3::cube(2);
    let znn = Znn::new(boundary_net(), out, TrainConfig::test_default(3)).unwrap();
    for seed in 0..5 {
        let x = ops::random(znn.input_shape(), seed);
        let y = znn.forward(&[x]);
        assert_eq!(y[0].shape(), out);
    }
}

#[test]
fn work_stealing_scheduler_trains_identically() {
    // §X: the work-stealing alternative must compute the same numbers
    // (it only schedules differently)
    let out = Vec3::cube(2);
    let queue = Znn::new(boundary_net(), out, TrainConfig::test_default(2)).unwrap();
    let steal = Znn::new(
        boundary_net(),
        out,
        TrainConfig {
            work_stealing: true,
            ..TrainConfig::test_default(2)
        },
    )
    .unwrap();
    let x = ops::random(queue.input_shape(), 71);
    let t = Tensor3::filled(out, 0.5f32);
    for round in 0..5 {
        let a = queue.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        let b = steal.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        assert!((a - b).abs() < 1e-4 * (1.0 + a.abs()), "round {round}: {a} vs {b}");
    }
    assert!(queue.params().max_abs_diff(&steal.params()) < 1e-3);
}

#[test]
fn fft_thread_budget_routes_from_config_without_changing_results() {
    // the fft_threads knob must only change *where* line chunks run,
    // never a bit of the result: with a single scheduler worker the
    // task order is fixed, so losses must match exactly across budgets
    let out = Vec3::cube(6);
    let run = |fft_threads: Option<usize>| -> Vec<f64> {
        let cfg = TrainConfig {
            workers: 1,
            conv: ConvPolicy::ForceFft,
            memoize_fft: true,
            fft_threads,
            learning_rate: 0.05,
            ..Default::default()
        };
        let znn = Znn::new(boundary_net(), out, cfg).unwrap();
        let x = ops::random(znn.input_shape(), 17);
        let t = Tensor3::<f32>::zeros(out);
        (0..4)
            .map(|_| znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t)))
            .collect()
    };
    let serial = run(Some(1));
    let shared = run(None); // share the scheduler's (single) worker
    let wide = run(Some(4));
    assert_eq!(serial, shared, "shared-budget drifted from serial");
    assert_eq!(serial, wide, "4-way fan-out drifted from serial");
    assert!(serial[0].is_finite());
}
