//! Differential tests: the task-parallel engine must agree with the
//! independent sequential reference implementation on every
//! configuration axis — convolution method, FFT memoization, frequency
//! accumulation, worker count, and graph shape.

use znn_baseline::ReferenceNet;
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::{comparison_net, scalability_net_3d};
use znn_graph::{Graph, NetBuilder};
use znn_ops::{Loss, Transfer};
use znn_tensor::{ops, Image, Tensor3, Vec3};

fn cfg(workers: usize, conv: ConvPolicy, memoize: bool) -> TrainConfig {
    TrainConfig {
        workers,
        conv,
        memoize_fft: memoize,
        learning_rate: 0.02,
        ..TrainConfig::test_default(workers)
    }
}

fn check_agreement(graph: Graph, out_shape: Vec3, config: TrainConfig, rounds: usize, tol: f32) {
    let seed = config.seed;
    let znn = Znn::new(graph.clone(), out_shape, config.clone()).unwrap();
    let mut reference = ReferenceNet::new(graph, out_shape, seed).unwrap();
    let x = ops::random(znn.input_shape(), 77);
    let t = ops::random(out_shape, 78).map(|v| 0.4 * v);

    // identical starting parameters by construction (same seed)
    assert!(znn.params().max_abs_diff(reference.params()) == 0.0);

    for round in 0..rounds {
        let l_znn = znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        let l_ref = reference.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.02);
        assert!(
            (l_znn - l_ref).abs() < tol as f64 * (1.0 + l_ref.abs()),
            "round {round}: loss {l_znn} vs {l_ref}"
        );
    }
    let d = znn.params().max_abs_diff(reference.params());
    assert!(d < tol, "parameter divergence {d}");

    // and inference agrees after training
    let y_znn = znn.forward(std::slice::from_ref(&x));
    let y_ref = reference.forward(&[x]);
    let dy = y_znn[0].max_abs_diff(&y_ref[0]);
    assert!(dy < tol, "output divergence {dy}");
}

fn small_graph() -> (Graph, Vec3) {
    let (g, _) = NetBuilder::new("diff", 1)
        .conv(3, Vec3::cube(2))
        .transfer(Transfer::Tanh)
        .conv(2, Vec3::cube(2))
        .transfer(Transfer::Logistic)
        .conv(1, Vec3::cube(2))
        .transfer(Transfer::Linear)
        .build()
        .unwrap();
    (g, Vec3::cube(2))
}

#[test]
fn direct_single_worker_matches_reference() {
    let (g, out) = small_graph();
    check_agreement(g, out, cfg(1, ConvPolicy::ForceDirect, false), 4, 1e-3);
}

#[test]
fn direct_multi_worker_matches_reference() {
    let (g, out) = small_graph();
    check_agreement(g, out, cfg(4, ConvPolicy::ForceDirect, false), 4, 1e-3);
}

#[test]
fn fft_without_memoization_matches_reference() {
    let (g, out) = small_graph();
    check_agreement(g, out, cfg(2, ConvPolicy::ForceFft, false), 3, 2e-3);
}

#[test]
fn fft_with_memoization_matches_reference() {
    let (g, out) = small_graph();
    check_agreement(g, out, cfg(2, ConvPolicy::ForceFft, true), 3, 2e-3);
}

#[test]
fn pooling_and_filtering_nets_match_reference() {
    for sparse in [false, true] {
        let (g, _) = comparison_net(2, Vec3::flat(3, 3), Vec3::flat(2, 2), sparse);
        check_agreement(
            g,
            Vec3::flat(2, 2),
            cfg(3, ConvPolicy::ForceDirect, false),
            2,
            2e-3,
        );
    }
}

#[test]
fn sparse_fft_training_matches_reference() {
    // skip kernels through the FFT path (dilated kernels + lattice
    // gather in the gradients)
    let (g, _) = comparison_net(2, Vec3::flat(3, 3), Vec3::flat(2, 2), true);
    check_agreement(
        g,
        Vec3::flat(2, 2),
        cfg(2, ConvPolicy::ForceFft, true),
        2,
        5e-3,
    );
}

#[test]
fn paper_3d_architecture_matches_reference() {
    let (g, _) = scalability_net_3d(2);
    check_agreement(
        g,
        Vec3::cube(2),
        cfg(4, ConvPolicy::ForceDirect, false),
        2,
        2e-3,
    );
}

#[test]
fn autotune_picks_a_method_and_stays_correct() {
    let (g, out) = small_graph();
    let config = TrainConfig {
        conv: ConvPolicy::Autotune,
        ..cfg(2, ConvPolicy::Autotune, true)
    };
    check_agreement(g, out, config, 2, 2e-3);
}

#[test]
fn multi_output_networks_train() {
    // a diamond: input feeds two conv stacks with separate outputs
    let mut g = Graph::new();
    let i = g.add_node("in");
    let a = g.add_node("a");
    let b = g.add_node("b");
    let conv = znn_graph::EdgeOp::Conv {
        kernel: Vec3::cube(2),
        sparsity: Vec3::one(),
    };
    g.add_edge(i, a, conv);
    g.add_edge(i, b, conv);
    let out = Vec3::cube(3);
    let znn = Znn::new(g.clone(), out, cfg(2, ConvPolicy::ForceDirect, false)).unwrap();
    let mut reference = ReferenceNet::new(g, out, cfg(1, ConvPolicy::ForceDirect, false).seed).unwrap();
    let x = ops::random(znn.input_shape(), 5);
    let t1: Image = Tensor3::zeros(out);
    let t2: Image = Tensor3::filled(out, 0.5);
    let l = znn.train_step(std::slice::from_ref(&x), &[t1.clone(), t2.clone()]);
    let lr = reference.train_step(&[x], &[t1, t2], Loss::Mse, 0.02);
    assert!((l - lr).abs() < 1e-3 * (1.0 + lr.abs()), "{l} vs {lr}");
}

#[test]
fn r2c_fft_gradients_match_direct_method() {
    // the r2c half-spectrum pipeline (memoized forward/backward/update
    // spectra, frequency-domain accumulation, flip/corr identities)
    // must produce the same parameter updates as the direct spatial
    // method on the same engine — the gradient-parity gate for the
    // half-spectrum switch
    let (g, out) = small_graph();
    let fft = Znn::new(g.clone(), out, cfg(2, ConvPolicy::ForceFft, true)).unwrap();
    let direct = Znn::new(g, out, cfg(2, ConvPolicy::ForceDirect, false)).unwrap();
    assert!(fft.params().max_abs_diff(&direct.params()) == 0.0);
    let x = ops::random(fft.input_shape(), 91);
    let t = ops::random(out, 92).map(|v| 0.4 * v);
    for round in 0..3 {
        let lf = fft.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        let ld = direct.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        assert!(
            (lf - ld).abs() < 1e-3 * (1.0 + ld.abs()),
            "round {round}: loss {lf} vs {ld}"
        );
    }
    // after three rounds every kernel has been updated from FFT-path
    // gradients three times; divergence bounds the per-round gradient
    // disagreement. The bound leaves headroom over the typical ~1e-3
    // drift: at 2 workers the wait-free node sums accumulate
    // contributions in arrival order, so the f32 rounding of the
    // FFT-vs-direct comparison varies run to run (observed up to
    // ~2.2e-3 under full test-suite load) — a genuinely wrong gradient
    // diverges by orders of magnitude more after three updates.
    let d = fft.params().max_abs_diff(&direct.params());
    assert!(d < 5e-3, "parameter divergence {d} between r2c and direct");
}
