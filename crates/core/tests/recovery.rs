//! End-to-end pins for the fault-tolerance layer: durable checkpoints
//! survive a kill bit-identically, corrupt snapshots fall back to older
//! valid ones, injected panics leak no pooled bytes, every fault class
//! recovers, and a truly divergent run aborts after bounded retries
//! with the engine left on its last good state.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_core::{
    latest_valid, Checkpoint, CheckpointConfig, Dataset, RandomDataset, TrainConfig, TrainError,
    TrainOutcome, Trainer, Znn,
};
use znn_fault::{FaultKind, FaultPlan};
use znn_graph::NetBuilder;
use znn_ops::Transfer;
use znn_tensor::{Image, Vec3};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "znn-recovery-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny conv net with momentum, so checkpoints carry non-trivial
/// optimizer velocity alongside the parameters.
fn tiny(
    checkpoint: Option<CheckpointConfig>,
    faults: Option<Arc<FaultPlan>>,
    pools: Option<Arc<PoolSet>>,
) -> Znn {
    let (g, _) = NetBuilder::new("rec", 1)
        .conv(2, Vec3::cube(2))
        .transfer(Transfer::Tanh)
        .conv(1, Vec3::cube(2))
        .build()
        .unwrap();
    let cfg = TrainConfig {
        momentum: 0.9,
        checkpoint,
        faults,
        pools,
        ..TrainConfig::test_default(2)
    };
    Znn::new(g, Vec3::cube(2), cfg).unwrap()
}

fn data(znn: &Znn) -> RandomDataset {
    RandomDataset {
        input_shape: znn.input_shape(),
        output_shape: Vec3::cube(2),
        inputs: 1,
        outputs: 1,
        seed: 7,
    }
}

#[test]
fn kill_and_resume_is_bit_identical() {
    // baseline: 10 uninterrupted rounds
    let a = tiny(None, None, None);
    let mut ta = Trainer::new(&a, data(&a));
    assert!(matches!(
        ta.run_recoverable(10, 10, |_| {}),
        Ok(TrainOutcome::Completed { .. })
    ));

    // killed run: crash after round 5 with a snapshot every round...
    let dir = tmpdir("resume");
    let mut cc = CheckpointConfig::new(&dir);
    cc.every = 1;
    let plan = Arc::new(FaultPlan::new().crash_after(5));
    let b = tiny(Some(cc.clone()), Some(plan), None);
    let mut tb = Trainer::new(&b, data(&b));
    assert_eq!(
        tb.run_recoverable(10, 10, |_| {}).unwrap(),
        TrainOutcome::Interrupted { at_round: 5 }
    );

    // ...then a fresh engine resumes from disk and finishes the budget
    let c = tiny(Some(cc), None, None);
    let mut tc = Trainer::new(&c, data(&c));
    assert_eq!(tc.resume().unwrap(), Some(5));
    assert!(matches!(
        tc.run_recoverable(5, 5, |_| {}),
        Ok(TrainOutcome::Completed { .. })
    ));

    // params AND optimizer velocities match the uninterrupted run
    // bit for bit (f32 round-trips through the checkpoint as raw bits)
    assert_eq!(a.params(), c.params(), "parameters diverged after resume");
    assert_eq!(
        a.optimizer_state(),
        c.optimizer_state(),
        "momentum velocities diverged after resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot files in `dir`, newest round last.
fn snapshot_paths(dir: &PathBuf) -> Vec<PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "znn"))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older(
        flip in any::<bool>(),
        pos in any::<usize>(),
    ) {
        let znn = tiny(None, None, None);
        let mut trainer = Trainer::new(&znn, data(&znn));
        let dir = tmpdir("corrupt");

        trainer.run(5, 5, |_| {});
        Checkpoint {
            round: 5,
            params: znn.params(),
            velocities: znn.optimizer_state(),
        }
        .write_atomic(&dir, 0)
        .unwrap();
        trainer.run(5, 5, |_| {});
        Checkpoint {
            round: 10,
            params: znn.params(),
            velocities: znn.optimizer_state(),
        }
        .write_atomic(&dir, 0)
        .unwrap();

        // corrupt the newest snapshot: either flip one byte anywhere
        // or truncate to a strictly shorter prefix
        let newest = snapshot_paths(&dir).pop().unwrap();
        let mut bytes = std::fs::read(&newest).unwrap();
        if flip {
            let at = pos % bytes.len();
            bytes[at] ^= 1 << (at % 8);
        } else {
            bytes.truncate(pos % bytes.len());
        }
        std::fs::write(&newest, &bytes).unwrap();

        // the loader must skip it and land on the older valid snapshot
        let restored = latest_valid(&dir).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let restored = restored.expect("older snapshot must still load");
        prop_assert_eq!(restored.round, 5);
    }
}

#[test]
fn injected_panic_leaks_no_pooled_bytes() {
    let pools = PoolSet::new();
    let plan = Arc::new(FaultPlan::new().task_panic_at(2).lease_fail_at(3));
    let znn = tiny(None, Some(Arc::clone(&plan)), Some(Arc::clone(&pools)));
    {
        let mut trainer = Trainer::new(&znn, data(&znn));
        assert!(matches!(
            trainer.run_recoverable(5, 5, |_| {}),
            Ok(TrainOutcome::Completed { .. })
        ));
    }
    assert_eq!(plan.fired(), 2, "both arms must actually fire");
    assert!(
        znn.stats().task_panics >= 1,
        "the injected panic must surface in the stats"
    );
    // the engine holds no leases between rounds; every buffer the
    // unwound rounds leased must already be home
    drop(znn);
    assert_eq!(
        pools.stats().bytes_in_use(),
        0,
        "pooled bytes leaked across an unwound round"
    );
}

#[test]
fn every_recoverable_fault_class_completes() {
    for kind in [FaultKind::TaskPanic, FaultKind::LeaseFail, FaultKind::NanPoke] {
        let plan = Arc::new(FaultPlan::new().arm(kind, 2));
        let pools = (kind == FaultKind::LeaseFail).then(PoolSet::new);
        let znn = tiny(None, Some(Arc::clone(&plan)), pools);
        let mut trainer = Trainer::new(&znn, data(&znn));
        let outcome = trainer.run_recoverable(4, 4, |_| {});
        assert!(
            matches!(outcome, Ok(TrainOutcome::Completed { .. })),
            "{}: expected completion, got {outcome:?}",
            kind.name()
        );
        assert_eq!(plan.fired(), 1, "{} never fired", kind.name());
        assert!(znn.params_all_finite(), "{} left bad params", kind.name());
    }
}

/// Scales targets absurdly from a given round on, so the loss explodes
/// deterministically — the retried round re-samples the same poison.
struct PoisonFrom<D: Dataset> {
    inner: D,
    from: u64,
}

impl<D: Dataset> Dataset for PoisonFrom<D> {
    fn sample(&mut self, round: u64) -> (Vec<Image>, Vec<Image>) {
        let (ins, mut outs) = self.inner.sample(round);
        if round >= self.from {
            for t in &mut outs {
                *t = t.map(|v| (v + 1.0) * 1.0e8);
            }
        }
        (ins, outs)
    }
}

#[test]
fn divergence_aborts_after_bounded_retries_on_last_good_state() {
    let (g, _) = NetBuilder::new("div", 1)
        .conv(2, Vec3::cube(2))
        .transfer(Transfer::Tanh)
        .conv(1, Vec3::cube(2))
        .build()
        .unwrap();
    let mut cfg = TrainConfig {
        momentum: 0.9,
        ..TrainConfig::test_default(2)
    };
    // a small window so four healthy rounds arm the detector, and a
    // small retry budget so the test ends quickly
    cfg.health.divergence_window = 4;
    cfg.health.max_retries = 2;
    let znn = Znn::new(g, Vec3::cube(2), cfg).unwrap();
    let mut trainer = Trainer::new(
        &znn,
        PoisonFrom {
            inner: data(&znn),
            from: 4,
        },
    );
    let err = trainer.run_recoverable(10, 10, |_| {}).unwrap_err();
    match err {
        TrainError::RetriesExhausted {
            round,
            retries,
            diagnostic,
        } => {
            assert_eq!(round, 5, "the first poisoned round keeps failing");
            assert_eq!(retries, 2, "exactly max_retries rollback retries");
            assert!(
                diagnostic.contains("rolling median"),
                "diagnostic should name the tripped sentinel: {diagnostic}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
    // the engine was rolled back to the last good state: finite
    // params, trainer rewound, and another (healthy) step still works
    assert!(znn.params_all_finite());
    assert_eq!(trainer.rounds_done(), 4, "trainer rewound to last good round");
    let mut d = data(&znn);
    let (ins, outs) = d.sample(3);
    assert!(znn.try_train_step(&ins, &outs).unwrap().is_finite());
}
