//! Differential property tests on randomly generated computation
//! graphs: for any valid DAG the paper's constraints allow, the
//! task-parallel engine must agree with the sequential reference.

use proptest::prelude::*;
use znn_baseline::ReferenceNet;
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::{EdgeOp, Graph};
use znn_ops::{Loss, Transfer};
use znn_tensor::{ops, Vec3};

/// A random layered DAG honouring §II's constraints: convergent edges
/// are convolutions; non-conv edges are non-convergent; layers may be
/// skipped by conv edges (multi-scale style).
#[derive(Debug, Clone)]
struct RandomNet {
    graph: Graph,
    out_shape: Vec3,
}

fn random_net() -> impl Strategy<Value = RandomNet> {
    (
        2usize..4,                       // layer count
        proptest::collection::vec(1usize..3, 2..4), // widths per layer
        any::<u64>(),                    // wiring seed
        prop_oneof![Just(true), Just(false)], // flat (2D) or cubic
    )
        .prop_map(|(layers, widths, seed, flat)| {
            let mut g = Graph::new();
            let dims = |k: usize| if flat { Vec3::flat(k, k) } else { Vec3::cube(k) };
            let mut prev: Vec<_> = (0..widths[0])
                .map(|i| g.add_node(format!("l0/{i}")))
                .collect();
            let mut rng = seed;
            let mut next_u = || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (rng >> 33) as usize
            };
            for (l, &width) in widths.iter().enumerate().take(layers).skip(1) {
                let cur: Vec<_> = (0..width)
                    .map(|i| g.add_node(format!("l{l}/{i}")))
                    .collect();
                // each new node gets 1..=2 conv in-edges from the
                // previous layer, ensuring convergence is conv-only
                for &to in &cur {
                    let fan = 1 + next_u() % 2;
                    for _ in 0..fan.min(prev.len()) {
                        let from = prev[next_u() % prev.len()];
                        g.add_edge(
                            from,
                            to,
                            EdgeOp::Conv {
                                kernel: dims(1 + next_u() % 2 + 1),
                                sparsity: Vec3::one(),
                            },
                        );
                    }
                }
                // sometimes add a transfer tail to one node
                if next_u() % 2 == 0 {
                    let owner = cur[next_u() % cur.len()];
                    let t = g.add_node(format!("l{l}/t"));
                    let f = match next_u() % 3 {
                        0 => Transfer::Relu,
                        1 => Transfer::Tanh,
                        _ => Transfer::Logistic,
                    };
                    g.add_edge(owner, t, EdgeOp::Transfer { function: f });
                    prev = vec![t];
                    continue;
                }
                prev = cur;
            }
            RandomNet {
                graph: g,
                out_shape: if flat { Vec3::flat(2, 2) } else { Vec3::cube(2) },
            }
        })
        .prop_filter("valid and shapeable", |net| {
            net.graph.validate().is_ok()
                && znn_graph::shapes::required_input_shape(&net.graph, net.out_shape).is_ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_matches_reference_on_random_graphs(net in random_net(), seed in any::<u64>()) {
        // NB: convergence at output nodes of differing shapes can fail
        // shape inference; the filter above rejects those.
        let cfg = TrainConfig {
            learning_rate: 0.01,
            ..TrainConfig::test_default(2)
        };
        let znn = match Znn::new(net.graph.clone(), net.out_shape, cfg) {
            Ok(z) => z,
            Err(_) => return Ok(()), // convergence shape mismatch: skip
        };
        let mut reference = ReferenceNet::new(net.graph.clone(), net.out_shape, 0x5EED).unwrap();
        let inputs: Vec<_> = net
            .graph
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, _)| ops::random(znn.input_shape(), seed ^ (0xA0 + i as u64)))
            .collect();
        let outputs = net.graph.outputs();
        // output nodes with shallower fields of view produce larger
        // patches than `out_shape`; size each target from inference
        let inferred =
            znn_graph::shapes::infer_shapes(&net.graph, znn.input_shape()).unwrap();
        let targets: Vec<_> = outputs
            .iter()
            .enumerate()
            .map(|(i, o)| ops::random(inferred[o], seed ^ (i as u64 + 1)))
            .collect();

        let l1 = znn.train_step(&inputs, &targets);
        let l2 = reference.train_step(&inputs, &targets, Loss::Mse, 0.01);
        prop_assert!(
            (l1 - l2).abs() < 1e-3 * (1.0 + l2.abs()),
            "loss {l1} vs {l2}"
        );
        let d = znn.params().max_abs_diff(reference.params());
        prop_assert!(d < 1e-3, "param divergence {d}");
    }

    #[test]
    fn fft_engine_matches_direct_engine_on_random_graphs(net in random_net(), seed in any::<u64>()) {
        let direct = match Znn::new(
            net.graph.clone(),
            net.out_shape,
            TrainConfig::test_default(2),
        ) {
            Ok(z) => z,
            Err(_) => return Ok(()),
        };
        let fft = Znn::new(
            net.graph.clone(),
            net.out_shape,
            TrainConfig {
                conv: ConvPolicy::ForceFft,
                memoize_fft: true,
                ..TrainConfig::test_default(2)
            },
        )
        .unwrap();
        let inputs: Vec<_> = net
            .graph
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, _)| ops::random(direct.input_shape(), seed ^ (0xB0 + i as u64)))
            .collect();
        let a = direct.forward(&inputs);
        let b = fft.forward(&inputs);
        for (ya, yb) in a.iter().zip(&b) {
            prop_assert!(ya.max_abs_diff(yb) < 2e-3, "{}", ya.max_abs_diff(yb));
        }
    }
}
