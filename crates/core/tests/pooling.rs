//! End-to-end pins for the §VII-C pooled-allocator integration: the
//! training engine leases every hot-path buffer from the configured
//! `PoolSet`, without changing a single computed bit, and the resident
//! pool footprint plateaus after the first few rounds ("memory usage
//! peaks after a few training rounds and stays flat").

use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_core::{ConvPolicy, TrainConfig, Znn};
use znn_graph::builder::comparison_net;
use znn_tensor::{ops, Vec3};

fn cfg(pools: Option<Arc<PoolSet>>) -> TrainConfig {
    TrainConfig {
        workers: 1,
        conv: ConvPolicy::ForceFft,
        memoize_fft: true,
        pools,
        ..Default::default()
    }
}

/// Builds the small FFT-heavy net both tests train.
fn net() -> (Znn, znn_tensor::Image, znn_tensor::Image) {
    let out_shape = Vec3::cube(2);
    let (g, _) = comparison_net(2, Vec3::cube(3), Vec3::cube(2), true);
    let znn = Znn::new(g, out_shape, cfg(Some(PoolSet::new()))).unwrap();
    let x = ops::random(znn.input_shape(), 1);
    let t = ops::random(out_shape, 2).map(|v| 0.5 + 0.4 * v);
    (znn, x, t)
}

#[test]
fn pooled_training_matches_unpooled_bit_for_bit() {
    // the fidelity contract end-to-end: pooling buffers through the
    // recycling allocator must not move a single bit of any round's
    // loss (pool leases are zeroed like fresh buffers; execution order
    // is deterministic at one worker)
    let out_shape = Vec3::cube(2);
    let (g1, _) = comparison_net(2, Vec3::cube(3), Vec3::cube(2), true);
    let (g2, _) = comparison_net(2, Vec3::cube(3), Vec3::cube(2), true);
    let pooled = Znn::new(g1, out_shape, cfg(Some(PoolSet::new()))).unwrap();
    let raw = Znn::new(g2, out_shape, cfg(None)).unwrap();
    let x = ops::random(pooled.input_shape(), 1);
    let t = ops::random(out_shape, 2).map(|v| 0.5 + 0.4 * v);
    for round in 0..4 {
        let la = pooled.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        let lb = raw.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        assert_eq!(
            la.to_bits(),
            lb.to_bits(),
            "round {round}: pooled loss {la} != unpooled loss {lb}"
        );
    }
}

#[test]
fn resident_footprint_plateaus_after_early_rounds() {
    // the paper's flat-footprint property, pinned: resident pool bytes
    // are monotone (nothing is ever returned to the OS) and stop
    // growing after round ~3 — from then on every lease is a recycle
    let (znn, x, t) = net();
    let mut resident = Vec::new();
    let mut misses = Vec::new();
    for _ in 0..10 {
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        let s = znn.stats();
        resident.push(s.alloc_resident_bytes);
        misses.push(s.alloc_misses);
    }
    // monotone...
    assert!(
        resident.windows(2).all(|w| w[0] <= w[1]),
        "resident bytes decreased: {resident:?}"
    );
    // ...and flat after the warmup rounds (round indices 0-based: the
    // footprint seen after round 4 is final)
    assert_eq!(
        resident[3],
        *resident.last().unwrap(),
        "footprint kept growing after warmup: {resident:?}"
    );
    // no system allocation in the steady state either: the pool serves
    // every lease by recycling
    assert_eq!(
        misses[3],
        *misses.last().unwrap(),
        "pool missed after warmup: {misses:?}"
    );
    // pooled training really went through the pool, and mostly hits
    let s = znn.stats();
    assert!(s.alloc_hits > 0, "no pool traffic recorded");
    assert!(
        s.alloc_hit_rate() > 0.8,
        "steady-state hit rate too low: {}",
        s.alloc_hit_rate()
    );
}

#[test]
fn flushed_engine_returns_all_pooled_bytes() {
    // after updates flush and all round tensors drop with the engine,
    // nothing may still be counted against the pool
    let pools = PoolSet::new();
    let out_shape = Vec3::cube(2);
    let (g, _) = comparison_net(2, Vec3::cube(3), Vec3::cube(2), false);
    let znn = Znn::new(g, out_shape, cfg(Some(Arc::clone(&pools)))).unwrap();
    let x = ops::random(znn.input_shape(), 3);
    let t = ops::random(out_shape, 4).map(|v| 0.5 + 0.4 * v);
    for _ in 0..3 {
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    }
    znn.flush_updates();
    drop(znn);
    assert_eq!(
        pools.stats().bytes_in_use(),
        0,
        "pooled bytes leaked out of custody after engine drop"
    );
}

#[test]
fn stats_expose_queue_depth_and_alloc_fields() {
    let (znn, x, t) = net();
    znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    let s = znn.stats();
    // between rounds the queue holds at most the deferred
    // lowest-priority update tasks (one per trainable edge) — the
    // depth field sees exactly that backlog
    assert!(
        (s.queue_depth as usize) <= znn.graph().edge_count(),
        "unexpected backlog: {}",
        s.queue_depth
    );
    assert!(s.alloc_leased_bytes > 0, "no churn recorded");
    assert!(s.alloc_resident_bytes > 0, "no footprint recorded");
    // resident never exceeds what was leased
    assert!(s.alloc_resident_bytes <= s.alloc_leased_bytes);
}
