//! Planner ↔ engine integration: plan-driven runs must agree bitwise
//! with the legacy `ConvPolicy` paths they subsume, `Auto` must stay
//! competitive with every fixed strategy, and calibration must feed
//! back into the live engine.

use std::sync::Arc;
use std::time::Instant;
use znn_core::{ConvPolicy, PlanPolicy, TrainConfig, Znn};
use znn_graph::builder::scalability_net_3d;
use znn_graph::{Graph, NetBuilder};
use znn_ops::{ConvMethod, Transfer};
use znn_plan::{Machine, NetPlan, PlanConfig, Planner};
use znn_tensor::{ops, Vec3};

fn small_graph() -> (Graph, Vec3) {
    let (g, _) = NetBuilder::new("plan-it", 1)
        .conv(3, Vec3::cube(3))
        .transfer(Transfer::Tanh)
        .conv(2, Vec3::cube(2))
        .transfer(Transfer::Logistic)
        .conv(1, Vec3::cube(2))
        .transfer(Transfer::Linear)
        .build()
        .unwrap();
    (g, Vec3::cube(4))
}

fn cfg(workers: usize, plan: Option<PlanPolicy>, conv: ConvPolicy) -> TrainConfig {
    TrainConfig {
        workers,
        conv,
        plan,
        memoize_fft: true,
        learning_rate: 0.02,
        ..TrainConfig::test_default(workers)
    }
}

/// Runs `rounds` training steps and returns the losses.
fn losses(graph: &Graph, out: Vec3, config: TrainConfig, rounds: usize) -> Vec<f64> {
    let znn = Znn::new(graph.clone(), out, config).unwrap();
    let x = ops::random(znn.input_shape(), 91);
    let t = ops::random(out, 92).map(|v| 0.3 * v);
    (0..rounds)
        .map(|_| znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t)))
        .collect()
}

#[test]
fn fixed_direct_plan_matches_force_direct_bitwise() {
    // one worker: scheduling (and thus float accumulation order) is
    // deterministic, so the comparison is exact, not approximate
    let (g, out) = small_graph();
    let plan = Arc::new(NetPlan::force(&g, out, ConvMethod::Direct, 1, false).unwrap());
    let a = losses(&g, out, cfg(1, Some(PlanPolicy::Fixed(plan)), ConvPolicy::Autotune), 4);
    let b = losses(&g, out, cfg(1, None, ConvPolicy::ForceDirect), 4);
    assert_eq!(a, b, "a fixed all-direct plan must replay ForceDirect exactly");
}

#[test]
fn fixed_fft_plan_matches_force_fft_bitwise() {
    // force(pow2 = false) pads with good_shape — the same pads the
    // legacy ForceFft path uses — so the runs must agree to the bit
    let (g, out) = small_graph();
    let plan = Arc::new(NetPlan::force(&g, out, ConvMethod::Fft, 1, false).unwrap());
    let a = losses(&g, out, cfg(1, Some(PlanPolicy::Fixed(plan)), ConvPolicy::Autotune), 4);
    let b = losses(&g, out, cfg(1, None, ConvPolicy::ForceFft), 4);
    assert_eq!(a, b, "a fixed all-FFT plan must replay ForceFft exactly");
}

#[test]
fn auto_matches_its_own_frozen_plan_bitwise() {
    // Auto's only live degree of freedom is the fan-out, which is
    // pinned bit-identical — so Auto must reproduce the run of its own
    // plan executed as Fixed
    let (g, out) = small_graph();
    let planner = Arc::new(Planner::new(PlanConfig::for_machine(Machine::xeon_e5_8core())));
    let frozen = Arc::new(planner.plan(&g, out, 1, 1).unwrap());
    let a = losses(&g, out, cfg(1, Some(PlanPolicy::Auto(Arc::clone(&planner))), ConvPolicy::Autotune), 6);
    let b = losses(&g, out, cfg(1, Some(PlanPolicy::Fixed(frozen)), ConvPolicy::Autotune), 6);
    assert_eq!(a, b, "live calibration must never change a computed bit");
    // and the calibrator really saw the rounds
    assert_eq!(planner.calibration().rounds.len(), 6);
}

#[test]
fn engine_exposes_plan_and_applies_fan_out() {
    let (g, _) = scalability_net_3d(2);
    let out = Vec3::cube(4);
    let planner = Arc::new(Planner::new(PlanConfig::for_machine(Machine::xeon_e5_18core())));
    let config = cfg(2, Some(PlanPolicy::Auto(Arc::clone(&planner))), ConvPolicy::Autotune);
    let znn = Znn::new(g, out, config).unwrap();
    let plan = znn.net_plan().expect("Auto must resolve a plan").clone();
    assert_eq!(znn.fft_threads(), plan.fft_threads.min(2));
    let x = ops::random(znn.input_shape(), 7);
    let t = ops::random(out, 8).map(|v| 0.3 * v);
    znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
    let stats = znn.stats();
    assert!(stats.round_us > 0, "round wall time must be recorded");
    // fan-out stays within the construction-time budget forever
    assert!(znn.fft_threads() <= 2);
}

#[test]
fn legacy_path_is_untouched_without_a_plan() {
    let (g, out) = small_graph();
    let znn = Znn::new(g, out, cfg(2, None, ConvPolicy::Autotune)).unwrap();
    assert!(znn.net_plan().is_none());
}

#[test]
fn auto_is_competitive_with_every_fixed_strategy() {
    // the ISSUE's ≤15% gap bound is asserted with real timings in the
    // release-mode plan_report bench; here (debug, possibly one core)
    // we keep the same relative bound but add absolute slack so
    // scheduler noise on tiny rounds cannot flake the suite
    let (g, _) = scalability_net_3d(2);
    let out = Vec3::cube(6);
    let workers = 2;
    let x = ops::random(
        znn_graph::shapes::required_input_shape(&g, out).unwrap(),
        55,
    );
    let t = ops::random(out, 56).map(|v| 0.3 * v);
    let median_us = |config: TrainConfig| -> f64 {
        let znn = Znn::new(g.clone(), out, config).unwrap();
        // warmup round (memoization, pool fills), then median of 5
        znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                znn.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t));
                t0.elapsed().as_micros() as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[2]
    };

    let planner = Arc::new(Planner::new(PlanConfig::host()));
    let auto = median_us(cfg(
        workers,
        Some(PlanPolicy::Auto(planner)),
        ConvPolicy::Autotune,
    ));
    let best_fixed = [
        (ConvMethod::Direct, 1),
        (ConvMethod::Fft, 1),
        (ConvMethod::Fft, workers),
    ]
    .into_iter()
    .map(|(m, fan)| {
        let plan = Arc::new(NetPlan::force(&g, out, m, fan, false).unwrap());
        median_us(cfg(workers, Some(PlanPolicy::Fixed(plan)), ConvPolicy::Autotune))
    })
    .fold(f64::INFINITY, f64::min);
    assert!(
        auto <= best_fixed * 1.15 + 25_000.0,
        "Auto {auto:.0}µs vs best fixed {best_fixed:.0}µs"
    );
}
