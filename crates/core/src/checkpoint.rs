//! Durable training checkpoints.
//!
//! A checkpoint captures everything needed to continue training
//! bit-for-bit from a round boundary: the parameters ([`ParamSet`]),
//! the optimizer's momentum velocities, and the round counter (which
//! seeds the per-round dropout masks and dataset sampling — restoring
//! it is what makes a resumed run identical to an uninterrupted one).
//!
//! # On-disk format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"ZNNCKPT1"
//! 8       8     round  (u64 LE)
//! 16      8     payload length in bytes (u64 LE)
//! 24      4     CRC-32 (IEEE) of bytes 8..16 ++ payload (u32 LE)
//! 28      ...   payload
//! ```
//!
//! The CRC covers the round field as well as the payload, so a bit
//! flip anywhere meaningful — header or body — is detected.
//!
//! The payload is `n_edges: u64 LE` followed, per edge, by three
//! tagged records — kernel, bias, velocity — each a `0u8` (absent) or
//! `1u8` plus the value. Images serialize as shape (`3 × u64 LE`) then
//! voxels as `f32::to_bits` in LE, so round-tripping is bit-exact (NaN
//! payloads included); a bias is a single `f32` bit pattern.
//!
//! # Durability and atomicity
//!
//! [`Checkpoint::write_atomic`] writes to a temporary file in the same
//! directory, fsyncs it, renames it into place, and fsyncs the
//! directory — a crash at any instant leaves either the previous
//! snapshot set or the previous set plus the complete new file, never
//! a torn file under the real name. [`latest_valid`] scans newest
//! first and skips anything truncated or bit-flipped (magic, length
//! and CRC are all checked), so a corrupt newest snapshot silently
//! falls back to the one before it.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use znn_graph::init::ParamSet;
use znn_tensor::{Image, Vec3};

/// File-name prefix + suffix of finished snapshots: `ckpt-{round:012}.znn`.
const PREFIX: &str = "ckpt-";
const SUFFIX: &str = ".znn";
const MAGIC: &[u8; 8] = b"ZNNCKPT1";
const HEADER_LEN: usize = 28;

/// A complete training snapshot: parameters, optimizer state, round.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Rounds completed when the snapshot was taken; resuming sets the
    /// engine's round counter to this so dropout and sampling streams
    /// continue where they left off.
    pub round: u64,
    /// Kernels and biases of every edge.
    pub params: ParamSet,
    /// Per-edge SGD momentum velocities (`None` for edges without one).
    pub velocities: Vec<Option<Image>>,
}

/// Why a snapshot file was rejected.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The file was read but its contents are not a valid snapshot;
    /// the string names the first check that failed.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the
/// polynomial every `crc32` tool agrees on, so snapshots can be
/// checked externally.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_image(out: &mut Vec<u8>, img: &Image) {
    let Vec3([x, y, z]) = img.shape();
    put_u64(out, x as u64);
    put_u64(out, y as u64);
    put_u64(out, z as u64);
    for &v in img.as_slice() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

struct Reader<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(CheckpointError::Corrupt("payload truncated"))?;
        let s = &self.data[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f32_bits(&mut self) -> Result<f32, CheckpointError> {
        let b = self.bytes(4)?;
        Ok(f32::from_bits(u32::from_le_bytes(
            b.try_into().expect("4 bytes"),
        )))
    }

    fn image(&mut self) -> Result<Image, CheckpointError> {
        let x = self.u64()? as usize;
        let y = self.u64()? as usize;
        let z = self.u64()? as usize;
        let len = x
            .checked_mul(y)
            .and_then(|v| v.checked_mul(z))
            .ok_or(CheckpointError::Corrupt("image shape overflows"))?;
        // bounds-check before allocating so a corrupt shape cannot
        // demand terabytes
        let byte_len = len
            .checked_mul(4)
            .ok_or(CheckpointError::Corrupt("image shape overflows"))?;
        if self
            .at
            .checked_add(byte_len)
            .is_none_or(|end| end > self.data.len())
        {
            return Err(CheckpointError::Corrupt("image larger than payload"));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.f32_bits()?);
        }
        Ok(Image::from_vec([x, y, z], data))
    }

    fn tagged<T>(
        &mut self,
        read: impl FnOnce(&mut Self) -> Result<T, CheckpointError>,
    ) -> Result<Option<T>, CheckpointError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(read(self)?)),
            _ => Err(CheckpointError::Corrupt("invalid presence tag")),
        }
    }
}

impl Checkpoint {
    /// Serializes the snapshot payload (everything after the header).
    fn encode_payload(&self) -> Vec<u8> {
        let n = self.params.kernels.len();
        assert_eq!(n, self.params.biases.len(), "ParamSet invariant");
        assert_eq!(n, self.velocities.len(), "one velocity slot per edge");
        let mut out = Vec::new();
        put_u64(&mut out, n as u64);
        for i in 0..n {
            match &self.params.kernels[i] {
                Some(k) => {
                    out.push(1);
                    put_image(&mut out, k);
                }
                None => out.push(0),
            }
            match self.params.biases[i] {
                Some(b) => {
                    out.push(1);
                    out.extend_from_slice(&b.to_bits().to_le_bytes());
                }
                None => out.push(0),
            }
            match &self.velocities[i] {
                Some(v) => {
                    out.push(1);
                    put_image(&mut out, v);
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Serializes the complete file image (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.round.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        // CRC over round ++ payload: a flipped header bit must be as
        // detectable as a flipped body bit
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&self.round.to_le_bytes());
        crc_input.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a file image produced by [`Checkpoint::encode`],
    /// verifying magic, length and CRC.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if data.len() < HEADER_LEN {
            return Err(CheckpointError::Corrupt("shorter than header"));
        }
        if &data[..8] != MAGIC {
            return Err(CheckpointError::Corrupt("bad magic"));
        }
        let round = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
        let payload_len = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(data[24..28].try_into().expect("4 bytes"));
        let payload = &data[HEADER_LEN..];
        if payload.len() as u64 != payload_len {
            return Err(CheckpointError::Corrupt("payload length mismatch"));
        }
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&data[8..16]);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            return Err(CheckpointError::Corrupt("CRC mismatch"));
        }
        let mut r = Reader {
            data: payload,
            at: 0,
        };
        let n = r.u64()? as usize;
        let mut kernels = Vec::with_capacity(n);
        let mut biases = Vec::with_capacity(n);
        let mut velocities = Vec::with_capacity(n);
        for _ in 0..n {
            kernels.push(r.tagged(Reader::image)?);
            biases.push(r.tagged(Reader::f32_bits)?);
            velocities.push(r.tagged(Reader::image)?);
        }
        if r.at != payload.len() {
            return Err(CheckpointError::Corrupt("trailing bytes in payload"));
        }
        Ok(Checkpoint {
            round,
            params: ParamSet { kernels, biases },
            velocities,
        })
    }

    /// Reads and validates one snapshot file.
    pub fn read(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let mut data = Vec::new();
        fs::File::open(path)?.read_to_end(&mut data)?;
        Checkpoint::decode(&data)
    }

    /// Durably writes the snapshot into `dir` as `ckpt-{round:012}.znn`
    /// and prunes all but the newest `keep` snapshots. Returns the
    /// final path.
    ///
    /// The write is atomic and durable: temp file in the same
    /// directory → fsync → rename → directory fsync. A crash at any
    /// point leaves no torn file under a `ckpt-*.znn` name.
    pub fn write_atomic(&self, dir: &Path, keep: usize) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let final_path = dir.join(format!("{PREFIX}{:012}{SUFFIX}", self.round));
        let tmp_path = dir.join(format!(".{PREFIX}{:012}.tmp", self.round));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // fsync the directory so the rename itself is durable
        fs::File::open(dir)?.sync_all()?;
        prune(dir, keep)?;
        Ok(final_path)
    }
}

/// Round number encoded in a snapshot file name, if it is one.
fn round_of(name: &str) -> Option<u64> {
    name.strip_prefix(PREFIX)?
        .strip_suffix(SUFFIX)?
        .parse()
        .ok()
}

/// All snapshot files in `dir`, newest (highest round) first.
fn snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(round) = entry.file_name().to_str().and_then(round_of) {
            found.push((round, entry.path()));
        }
    }
    found.sort_by_key(|&(round, _)| std::cmp::Reverse(round));
    Ok(found)
}

/// Removes all but the newest `keep` snapshots (`keep == 0` keeps all).
fn prune(dir: &Path, keep: usize) -> io::Result<()> {
    if keep == 0 {
        return Ok(());
    }
    for (_, path) in snapshots(dir)?.into_iter().skip(keep) {
        fs::remove_file(path)?;
    }
    Ok(())
}

/// Loads the newest snapshot in `dir` that passes validation, skipping
/// (and reporting to stderr) any that are truncated or corrupt. `None`
/// when the directory is missing, empty, or holds no valid snapshot.
pub fn latest_valid(dir: &Path) -> io::Result<Option<Checkpoint>> {
    let listing = match snapshots(dir) {
        Ok(l) => l,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    for (_, path) in listing {
        match Checkpoint::read(&path) {
            Ok(ckpt) => return Ok(Some(ckpt)),
            Err(err) => {
                eprintln!(
                    "znn: skipping checkpoint {}: {err}",
                    path.display()
                );
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u64) -> Checkpoint {
        let k = Image::from_fn([2, 2, 2], |Vec3([x, y, z])| {
            (x * 4 + y * 2 + z) as f32 * 0.25 - 0.5
        });
        let v = Image::filled([2, 2, 2], f32::MIN_POSITIVE); // subnormal-ish bit pattern
        Checkpoint {
            round,
            params: ParamSet {
                kernels: vec![Some(k), None],
                biases: vec![Some(0.125), None],
            },
            velocities: vec![Some(v), None],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "znn-ckpt-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_known_vector() {
        // the canonical check value of CRC-32/IEEE
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let mut c = sample(42);
        // NaN and -0.0 must survive: bit-level fidelity, not value-level
        c.params.kernels[0].as_mut().unwrap().as_mut_slice()[3] = f32::NAN;
        c.velocities[0].as_mut().unwrap().as_mut_slice()[0] = -0.0;
        let d = Checkpoint::decode(&c.encode()).unwrap();
        assert_eq!(d.round, 42);
        let (a, b) = (
            c.params.kernels[0].as_ref().unwrap().as_slice(),
            d.params.kernels[0].as_ref().unwrap().as_slice(),
        );
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(
            d.velocities[0].as_ref().unwrap().as_slice()[0].to_bits(),
            (-0.0f32).to_bits()
        );
        assert_eq!(d.params.biases, c.params.biases);
    }

    #[test]
    fn corrupt_files_are_rejected_not_misread() {
        let good = sample(7).encode();
        // truncation at every interesting boundary
        for cut in [0, 4, 27, 28, good.len() - 1] {
            assert!(Checkpoint::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // single bit flips anywhere must be caught by magic or CRC
        for byte in [0usize, 9, 20, 30, good.len() - 1] {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            assert!(
                Checkpoint::decode(&bad).is_err(),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn write_atomic_then_latest_valid_round_trips() {
        let dir = tmpdir("roundtrip");
        let c = sample(5);
        let path = c.write_atomic(&dir, 3).unwrap();
        assert!(path.ends_with("ckpt-000000000005.znn"));
        let loaded = latest_valid(&dir).unwrap().unwrap();
        assert_eq!(loaded, c);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_only_newest_k() {
        let dir = tmpdir("retention");
        for round in 1..=5 {
            sample(round).write_atomic(&dir, 2).unwrap();
        }
        let names = snapshots(&dir).unwrap();
        assert_eq!(
            names.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![5, 4]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_valid_skips_corrupt_newest() {
        let dir = tmpdir("fallback");
        sample(3).write_atomic(&dir, 0).unwrap();
        sample(9).write_atomic(&dir, 0).unwrap();
        // corrupt the newest in place
        let newest = dir.join("ckpt-000000000009.znn");
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let loaded = latest_valid(&dir).unwrap().unwrap();
        assert_eq!(loaded.round, 3, "fell back to the previous snapshot");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_not_an_error() {
        let dir = std::env::temp_dir().join("znn-ckpt-test-definitely-missing");
        let _ = fs::remove_dir_all(&dir);
        assert!(latest_valid(&dir).unwrap().is_none());
    }
}
