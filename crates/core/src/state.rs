//! Runtime state attached to nodes and edges of the computation graph.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use znn_ops::{ConvMethod, Transfer};
use znn_sched::{Accumulate, ConcurrentSum, UpdateHandle};
use znn_tensor::{ops, Image, Spectrum, Tensor3, Vec3};

/// A contribution flowing into a node sum — spatial, or a product
/// half-spectrum when the whole fan-in shares one transform geometry
/// (§IV).
pub(crate) enum Contribution {
    /// Spatial-domain image.
    Spatial(Image),
    /// Frequency-domain half-spectrum (deferred inverse transform).
    Freq(Spectrum),
}

impl Accumulate for Contribution {
    fn accumulate(&mut self, other: Self) {
        match (self, other) {
            (Contribution::Spatial(a), Contribution::Spatial(b)) => ops::add_assign(a, &b),
            (Contribution::Freq(a), Contribution::Freq(b)) => ops::add_assign_s(a, &b),
            _ => panic!("mixed spatial/frequency contributions at one node"),
        }
    }
}

/// How a node finalizes a frequency-domain sum: inverse-transform at
/// shape `m`, then crop `out_shape` at `crop_at`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FreqPlan {
    pub m: Vec3,
    pub crop_at: Vec3,
    pub out_shape: Vec3,
}

/// A per-(node, transform-shape) cache of image half-spectra, so an
/// image's r2c FFT is computed once and shared by every edge that needs
/// it — the `[f' + f + ...]` term structure of Table II. Keys are the
/// *logical* transform shapes; each entry stores `⌊m_z/2⌋+1` z-bins.
#[derive(Default)]
pub(crate) struct SpectrumCache {
    map: Mutex<HashMap<Vec3, Arc<OnceLock<Arc<Spectrum>>>>>,
}

impl SpectrumCache {
    /// Returns the cached spectrum at `m`, computing it with `f` if
    /// absent. Concurrent callers for the same shape block only on the
    /// single computation (the paper counts one FFT per image per pass).
    pub fn get_or_compute(&self, m: Vec3, f: impl FnOnce() -> Spectrum) -> Arc<Spectrum> {
        let cell = {
            let mut map = self.map.lock();
            Arc::clone(map.entry(m).or_default())
        };
        Arc::clone(cell.get_or_init(|| Arc::new(f())))
    }

    /// Drops every cached spectrum (called when the node's image is
    /// replaced by the next round's).
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Number of cached spectra (for memory accounting).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Bytes held by materialized cached spectra (§IX-B accounting —
    /// roughly half of what the full c2c representation would retain).
    pub fn bytes(&self) -> usize {
        self.map
            .lock()
            .values()
            .filter_map(|cell| cell.get().map(|s| s.stored_bytes()))
            .sum()
    }

    /// Bytes full c2c spectra of the same transform shapes would hold —
    /// the exact footprint the half-spectrum representation avoids.
    pub fn c2c_bytes(&self) -> usize {
        self.map
            .lock()
            .values()
            .filter_map(|cell| cell.get().map(|s| s.full_bytes()))
            .sum()
    }
}

/// Runtime state of one node.
pub(crate) struct NodeState {
    /// Wait-free accumulator for incoming forward contributions.
    pub fwd_sum: ConcurrentSum<Contribution>,
    /// Wait-free accumulator for incoming backward contributions.
    pub bwd_sum: ConcurrentSum<Contribution>,
    /// The node's forward image (output of the sum), refreshed each
    /// round.
    pub fwd_image: Mutex<Option<Arc<Image>>>,
    /// The node's backward image.
    pub bwd_image: Mutex<Option<Arc<Image>>>,
    /// Shared spectra of the forward image, keyed by transform shape.
    pub fwd_spectra: SpectrumCache,
    /// Shared spectra of the backward image.
    pub bwd_spectra: SpectrumCache,
    /// Frequency-accumulation plan for the forward sum, if eligible.
    pub fwd_freq: Option<FreqPlan>,
    /// Frequency-accumulation plan for the backward sum, if eligible.
    pub bwd_freq: Option<FreqPlan>,
    /// Forward image shape.
    pub shape: Vec3,
}

impl NodeState {
    pub fn new(in_degree: usize, out_degree: usize, shape: Vec3) -> Self {
        NodeState {
            fwd_sum: ConcurrentSum::new(in_degree.max(1)),
            bwd_sum: ConcurrentSum::new(out_degree.max(1)),
            fwd_image: Mutex::new(None),
            bwd_image: Mutex::new(None),
            fwd_spectra: SpectrumCache::default(),
            bwd_spectra: SpectrumCache::default(),
            fwd_freq: None,
            bwd_freq: None,
            shape,
        }
    }
}

/// Runtime state of a convolution edge.
pub(crate) struct ConvEdge {
    pub kernel: Mutex<Image>,
    /// Momentum buffer (allocated on first use).
    pub velocity: Mutex<Option<Image>>,
    pub method: ConvMethod,
    /// Memoized half-spectrum of the padded kernel at `m` (current
    /// round).
    pub kernel_spectrum: Mutex<Option<Arc<Spectrum>>>,
    pub update: UpdateHandle,
    pub k: Vec3,
    pub sparsity: Vec3,
    /// Transform shape for this edge's FFT work: `good(source shape)`.
    pub m: Vec3,
}

/// Runtime state of a transfer edge.
pub(crate) struct TransferEdge {
    pub bias: Mutex<f32>,
    pub function: Transfer,
    /// Forward output retained for the derivative (§III-A).
    pub saved_output: Mutex<Option<Arc<Image>>>,
    /// Scaled dropout mask for this round (`0` or `1/(1-p)` per voxel).
    pub dropout_mask: Mutex<Option<Arc<Image>>>,
    pub update: UpdateHandle,
}

/// Runtime state of a pooling or filtering edge.
pub(crate) struct MaxEdge {
    pub window: Vec3,
    /// Dilation (always 1 for pooling).
    pub sparsity: Vec3,
    /// True for pooling, false for filtering.
    pub is_pool: bool,
    pub argmax: Mutex<Option<Tensor3<u32>>>,
    pub in_shape: Vec3,
}

/// Per-edge runtime state.
pub(crate) enum EdgeState {
    Conv(ConvEdge),
    Transfer(TransferEdge),
    Max(MaxEdge),
}

impl EdgeState {
    /// The FORCE handle of a trainable edge.
    pub fn update_handle(&self) -> Option<&UpdateHandle> {
        match self {
            EdgeState::Conv(c) => Some(&c.update),
            EdgeState::Transfer(t) => Some(&t.update),
            EdgeState::Max(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributions_accumulate_within_a_domain() {
        let mut a = Contribution::Spatial(Tensor3::filled(Vec3::one(), 1.0));
        a.accumulate(Contribution::Spatial(Tensor3::filled(Vec3::one(), 2.0)));
        match a {
            Contribution::Spatial(img) => assert_eq!(img.at((0, 0, 0)), 3.0),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "mixed spatial/frequency")]
    fn mixed_contributions_panic() {
        let mut a = Contribution::Spatial(Tensor3::filled(Vec3::one(), 1.0));
        a.accumulate(Contribution::Freq(Spectrum::zeros(Vec3::one())));
    }

    #[test]
    fn spectrum_cache_computes_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = SpectrumCache::default();
        let computes = AtomicUsize::new(0);
        for _ in 0..5 {
            let _ = cache.get_or_compute(Vec3::cube(4), || {
                computes.fetch_add(1, Ordering::SeqCst);
                Spectrum::zeros(Vec3::cube(4))
            });
        }
        assert_eq!(computes.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        cache.clear();
        let _ = cache.get_or_compute(Vec3::cube(4), || {
            computes.fetch_add(1, Ordering::SeqCst);
            Spectrum::zeros(Vec3::cube(4))
        });
        assert_eq!(computes.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn spectrum_cache_keys_by_shape() {
        let cache = SpectrumCache::default();
        let a = cache.get_or_compute(Vec3::cube(4), || Spectrum::zeros(Vec3::cube(4)));
        let b = cache.get_or_compute(Vec3::cube(8), || Spectrum::zeros(Vec3::cube(8)));
        assert_ne!(a.full_shape(), b.full_shape());
        assert_eq!(cache.len(), 2);
    }
}
