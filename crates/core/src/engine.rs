//! The task-parallel training engine.

use crate::config::{ConvPolicy, PlanPolicy, TrainConfig};
use crate::state::{Contribution, ConvEdge, EdgeState, FreqPlan, MaxEdge, NodeState, TransferEdge};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use znn_fault::FaultKind;
use znn_fft::{good_shape, spectra, FftEngine};
use znn_graph::init::{bias_init, kernel_init, ParamSet};
use znn_graph::{priority, shapes, EdgeId, EdgeOp, Graph, NodeId};
use znn_ops::filter::{max_filter, max_filter_backward, FilterImpl};
use znn_ops::pool::{max_pool, max_pool_backward};
use znn_ops::{conv, convolver, ConvMethod};
use znn_plan::{NetPlan, Planner};
use znn_sched::{Executor, Latch, Scheduler, StealingExecutor, UPDATE_PRIORITY};
use znn_tensor::{ops, Image, Spectrum, Tensor3, Vec3};

/// The memoized-transform shape for a node of shape `n`: `good_shape`,
/// checked against the fast-path invariant.
///
/// Every spectrum the engine memoizes for a training round is planned
/// at this shape, so an odd packed axis here would silently double
/// spectrum memory and forfeit the half-length packed stage on every
/// transform of the round ([`Spectrum::packed_axis_is_even`]). The
/// assert turns that quiet regression into an immediate, attributable
/// panic at engine construction.
pub(crate) fn transform_shape(n: Vec3) -> Vec3 {
    let m = good_shape(n);
    assert!(
        Spectrum::packed_axis_is_even(m),
        "good_shape({n}) = {m} has an odd packed-axis extent; the r2c fast path \
         and tight half-spectrum require it to be even (or unit)"
    );
    m
}

/// Statistics of one training round.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundStats {
    /// Loss value of the round.
    pub loss: f64,
    /// Total tasks executed so far by the scheduler.
    pub tasks_executed: u64,
    /// FORCE outcomes so far: updates found complete.
    pub force_already_done: u64,
    /// FORCE outcomes so far: updates run inline by the forcing thread.
    pub force_ran_inline: u64,
    /// FORCE outcomes so far: subtasks delegated to the running update.
    pub force_delegated: u64,
    /// Peak number of distinct priorities in the queue (heap-of-lists K).
    pub peak_distinct_priorities: u64,
    /// Task-queue depth at snapshot time (backpressure signal; 0 when
    /// quiescent).
    pub queue_depth: u64,
    /// Pool leases served by recycling so far (§VII-C allocator). Zero
    /// when pooling is disabled.
    pub alloc_hits: u64,
    /// Pool leases that touched the system allocator so far. Stops
    /// growing once the footprint plateaus (after the first few
    /// rounds).
    pub alloc_misses: u64,
    /// Bytes resident in the pool's custody — the footprint of pooled
    /// buffers; never decreases, at most ~2× the live working set
    /// (power-of-two rounding).
    pub alloc_resident_bytes: u64,
    /// Cumulative bytes leased (hits and misses alike) — the allocation
    /// churn per round is the delta of this counter across rounds.
    pub alloc_leased_bytes: u64,
    /// Tasks that panicked and were contained (engine containment plus
    /// any raw scheduler-level catches). Nonzero means at least one
    /// round was poisoned since construction.
    pub task_panics: u64,
    /// Detached fork-join spawns that panicked (recorded by the rayon
    /// shim instead of being silently discarded).
    pub detached_panics: u64,
    /// Wall time of the last completed training round, µs (0 before
    /// the first round). This is the measurement the `znn-plan`
    /// calibrator consumes when [`crate::PlanPolicy::Auto`] is active.
    pub round_us: u64,
}

impl RoundStats {
    /// Fraction of pool leases served by recycling, `0.0` before any
    /// lease. Approaches 1.0 in steady-state training — the §VII-C
    /// "memory never returned, always reused" property.
    pub fn alloc_hit_rate(&self) -> f64 {
        let total = self.alloc_hits + self.alloc_misses;
        if total == 0 {
            0.0
        } else {
            self.alloc_hits as f64 / total as f64
        }
    }
}

/// The engine's scheduler: the paper's priority executor or the §X
/// work-stealing alternative.
enum Pool {
    Queue(Executor),
    Stealing(StealingExecutor),
}

impl Pool {
    fn submit(&self, priority: u64, task: znn_sched::Task) {
        match self {
            Pool::Queue(e) => e.submit(priority, task),
            Pool::Stealing(e) => e.submit(priority, task),
        }
    }

    fn stats(&self) -> znn_sched::SchedStats {
        match self {
            Pool::Queue(e) => e.stats(),
            Pool::Stealing(e) => e.stats(),
        }
    }

    fn wait_quiescent(&self) {
        match self {
            Pool::Queue(e) => e.wait_quiescent(),
            Pool::Stealing(e) => e.wait_quiescent(),
        }
    }
}

struct Inner {
    graph: Graph,
    node_shape: Vec<Vec3>,
    nodes: Vec<NodeState>,
    edges: Vec<EdgeState>,
    fwd_prio: Vec<u64>,
    bwd_prio: Vec<u64>,
    fft: Arc<FftEngine>,
    cfg: TrainConfig,
    sched: Pool,
    fwd_latch: Latch,
    bwd_latch: Latch,
    training: AtomicBool,
    round: AtomicU64,
    input_shape: Vec3,
    /// Set by the first contained panic of the round; checked by the
    /// driver after each latch wait.
    round_failed: AtomicBool,
    /// Panic payload of the first contained panic (diagnostics).
    panic_note: Mutex<Option<String>>,
    /// Engine-contained task panics since construction.
    task_panics: AtomicU64,
    /// The resolved execution plan, when planning is enabled.
    net_plan: Option<Arc<NetPlan>>,
    /// The live planner behind `PlanPolicy::Auto` — fed each round's
    /// measured wall time; its re-plans move the FFT fan-out.
    planner: Option<Arc<Planner>>,
    /// Construction-time fan-out cap; re-plans never exceed it.
    fft_budget: usize,
    /// Wall time of the last completed round, µs.
    last_round_us: AtomicU64,
}

/// A training round that was poisoned by a panicking task. By the time
/// a caller sees this, the engine has already **recovered**: stragglers
/// drained, pending updates flushed, partial per-round state discarded
/// — the next round (or a retry of this one) runs on a clean engine.
#[derive(Debug)]
pub struct RoundError {
    /// The 1-based round number that failed.
    pub round: u64,
    /// Payload of the first panic observed in the round.
    pub note: String,
}

impl std::fmt::Display for RoundError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "training round {} poisoned: {}", self.round, self.note)
    }
}

impl std::error::Error for RoundError {}

/// Human-readable description of a panic payload.
fn describe_panic(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The ZNN engine: builds runtime state for a computation graph and
/// trains it with the paper's task-parallel algorithm. See the crate
/// docs for the moving parts.
pub struct Znn {
    inner: Arc<Inner>,
}

impl Drop for Znn {
    fn drop(&mut self) {
        // drain pending updates and the task queue so no queued closure
        // keeps the runtime alive past the engine
        self.flush_updates();
        self.inner.sched.wait_quiescent();
    }
}

impl Znn {
    /// Builds an engine for `graph`, sized so output nodes produce
    /// `output_shape` patches.
    pub fn new(
        graph: Graph,
        output_shape: Vec3,
        cfg: TrainConfig,
    ) -> Result<Self, shapes::ShapeError> {
        graph.validate().map_err(shapes::ShapeError::Graph)?;
        let input_shape = shapes::required_input_shape(&graph, output_shape)?;
        let shape_map = shapes::infer_shapes(&graph, input_shape)?;
        let node_shape: Vec<Vec3> = (0..graph.node_count())
            .map(|i| shape_map[&NodeId(i)])
            .collect();

        // one thread budget for task- and data-parallelism: transforms
        // fan out over a donor-only fork-join pool whose jobs run on
        // the calling task's thread and on idle scheduler workers
        // (which donate below) — never on extra OS threads. The cap
        // defaults to the scheduler's worker count and is routed from
        // the training config.
        let fft_pool = Arc::new(rayon::ThreadPool::donor_only());
        let fft_budget = cfg.fft_threads.unwrap_or(cfg.workers).max(1);
        // one memory budget too: every engine-allocated buffer (spectra,
        // padded inputs, cropped outputs, scratch) leases from the
        // configured PoolSet, so steady-state rounds never touch the
        // system allocator (§VII-C)
        let mut fft = FftEngine::with_pool(fft_budget, Arc::clone(&fft_pool));
        if let Some(pools) = &cfg.pools {
            fft = fft.with_buffer_pools(Arc::clone(pools));
        }
        let fft = Arc::new(fft);

        // resolve the execution plan before any per-edge state exists:
        // Auto prices the theory FLOP model through the planner's
        // machine model; Fixed takes the caller's plan verbatim
        let (planner, net_plan): (Option<Arc<Planner>>, Option<Arc<NetPlan>>) = match &cfg.plan {
            None => (None, None),
            Some(PlanPolicy::Auto(p)) => {
                let plan = Arc::new(p.plan(&graph, output_shape, cfg.workers, fft_budget)?);
                (Some(Arc::clone(p)), Some(plan))
            }
            Some(PlanPolicy::Fixed(plan)) => (None, Some(Arc::clone(plan))),
        };
        if let Some(plan) = &net_plan {
            assert_eq!(
                plan.edges.len(),
                graph.edge_count(),
                "plan must have one entry per graph edge"
            );
            fft.set_threads(plan.fft_threads.min(fft_budget));
        }

        // the scheduler exists before any method decision so its idle
        // workers already donate to the fork-join pool: the
        // measurement-based autotune fallback below times convolutions
        // at the engine's real parallel width (it used to run before
        // donors existed, which silently measured every candidate
        // serially regardless of the configured fft_threads budget)
        let sched = if cfg.work_stealing {
            Pool::Stealing(StealingExecutor::with_donation(
                cfg.workers,
                Arc::clone(&fft_pool),
            ))
        } else {
            Pool::Queue(Executor::with_donation(
                cfg.workers,
                cfg.queue,
                Arc::clone(&fft_pool),
            ))
        };

        // decide method and pad per conv edge: from the plan when one
        // is present, else per distinct layer geometry (§IV) via the
        // legacy policy
        let mut method_cache: HashMap<(Vec3, Vec3, Vec3), ConvMethod> = HashMap::new();
        let mut edge_method = vec![ConvMethod::Direct; graph.edge_count()];
        let mut edge_pad: Vec<Vec3> = graph
            .edges()
            .iter()
            .map(|e| transform_shape(node_shape[e.from.0]))
            .collect();
        for (i, e) in graph.edges().iter().enumerate() {
            if let EdgeOp::Conv { kernel, sparsity } = e.op {
                let n = node_shape[e.from.0];
                match &net_plan {
                    Some(plan) => {
                        let ep = plan.edges[i].unwrap_or_else(|| {
                            panic!("plan is missing an entry for conv edge {i}")
                        });
                        assert!(
                            n.le(ep.pad),
                            "plan pad {} for edge {i} is smaller than its image {n}",
                            ep.pad
                        );
                        assert!(
                            Spectrum::packed_axis_is_even(ep.pad),
                            "plan pad {} for edge {i} has an odd packed axis",
                            ep.pad
                        );
                        edge_method[i] = ep.method;
                        edge_pad[i] = ep.pad;
                    }
                    None => {
                        let key = (n, kernel, sparsity);
                        let m = *method_cache.entry(key).or_insert_with(|| match cfg.conv {
                            ConvPolicy::ForceDirect => ConvMethod::Direct,
                            ConvPolicy::ForceFft => ConvMethod::Fft,
                            ConvPolicy::Autotune => {
                                convolver::autotune(n, kernel, sparsity, &fft, 1)
                            }
                        });
                        edge_method[i] = m;
                    }
                }
            }
        }

        // per-edge runtime state with deterministic parameter init
        let edges: Vec<EdgeState> = graph
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| match e.op {
                EdgeOp::Conv { kernel, sparsity } => EdgeState::Conv(ConvEdge {
                    kernel: Mutex::new(kernel_init(cfg.seed, EdgeId(i), kernel)),
                    velocity: Mutex::new(None),
                    method: edge_method[i],
                    kernel_spectrum: Mutex::new(None),
                    update: znn_sched::UpdateHandle::new(),
                    k: kernel,
                    sparsity,
                    m: edge_pad[i],
                }),
                EdgeOp::Transfer { function } => EdgeState::Transfer(TransferEdge {
                    bias: Mutex::new(bias_init(cfg.seed, EdgeId(i))),
                    function,
                    saved_output: Mutex::new(None),
                    dropout_mask: Mutex::new(None),
                    update: znn_sched::UpdateHandle::new(),
                }),
                EdgeOp::MaxPool { window } => EdgeState::Max(MaxEdge {
                    window,
                    sparsity: Vec3::one(),
                    is_pool: true,
                    argmax: Mutex::new(None),
                    in_shape: node_shape[e.from.0],
                }),
                EdgeOp::MaxFilter { window, sparsity } => EdgeState::Max(MaxEdge {
                    window,
                    sparsity,
                    is_pool: false,
                    argmax: Mutex::new(None),
                    in_shape: node_shape[e.from.0],
                }),
            })
            .collect();

        // node state + frequency-accumulation eligibility
        let mut nodes: Vec<NodeState> = (0..graph.node_count())
            .map(|i| {
                let n = graph.node(NodeId(i));
                NodeState::new(n.in_edges.len(), n.out_edges.len(), node_shape[i])
            })
            .collect();
        for (i, node) in graph.nodes().iter().enumerate() {
            // forward: all in-edges FFT convs sharing (m, crop)
            let mut fwd_plan: Option<FreqPlan> = None;
            let eligible_fwd = !node.in_edges.is_empty()
                && node.in_edges.iter().all(|&e| {
                    matches!(&edges[e.0], EdgeState::Conv(c) if c.method == ConvMethod::Fft)
                });
            if eligible_fwd {
                let plans: Vec<FreqPlan> = node
                    .in_edges
                    .iter()
                    .map(|&e| {
                        let EdgeState::Conv(c) = &edges[e.0] else {
                            unreachable!()
                        };
                        FreqPlan {
                            m: c.m,
                            crop_at: c.k.dilated(c.sparsity) - Vec3::one(),
                            out_shape: node_shape[i],
                        }
                    })
                    .collect();
                if plans
                    .windows(2)
                    .all(|w| w[0].m == w[1].m && w[0].crop_at == w[1].crop_at)
                {
                    fwd_plan = Some(plans[0]);
                }
            }
            nodes[i].fwd_freq = fwd_plan;
            // backward: all out-edges FFT convs *sharing* a transform
            // shape (always true for planner pads, which are keyed per
            // node; a hand-built Fixed plan with divergent pads merely
            // loses the frequency-domain sum, not correctness)
            let eligible_bwd = !node.out_edges.is_empty()
                && node.out_edges.iter().all(|&e| {
                    matches!(&edges[e.0], EdgeState::Conv(c) if c.method == ConvMethod::Fft)
                });
            if eligible_bwd {
                let ms: Vec<Vec3> = node
                    .out_edges
                    .iter()
                    .map(|&e| {
                        let EdgeState::Conv(c) = &edges[e.0] else {
                            unreachable!()
                        };
                        c.m
                    })
                    .collect();
                if ms.windows(2).all(|w| w[0] == w[1]) {
                    nodes[i].bwd_freq = Some(FreqPlan {
                        m: ms[0],
                        crop_at: Vec3::zero(),
                        out_shape: node_shape[i],
                    });
                }
            }
        }

        let fwd_prio_map = priority::forward_priorities(&graph);
        let bwd_prio_map = priority::backward_priorities(&graph);
        let fwd_prio: Vec<u64> = (0..graph.edge_count())
            .map(|i| fwd_prio_map[&EdgeId(i)])
            .collect();
        let bwd_prio: Vec<u64> = (0..graph.edge_count())
            .map(|i| bwd_prio_map[&EdgeId(i)])
            .collect();

        let outputs = graph.outputs().len();
        let inputs = graph.inputs().len();
        let inner = Arc::new(Inner {
            graph,
            node_shape,
            nodes,
            edges,
            fwd_prio,
            bwd_prio,
            fft,
            cfg,
            sched,
            fwd_latch: Latch::new(outputs),
            bwd_latch: Latch::new(inputs),
            training: AtomicBool::new(false),
            round: AtomicU64::new(0),
            input_shape,
            round_failed: AtomicBool::new(false),
            panic_note: Mutex::new(None),
            task_panics: AtomicU64::new(0),
            net_plan,
            planner,
            fft_budget,
            last_round_us: AtomicU64::new(0),
        });
        // latches start "open" until a round arms them
        for _ in 0..outputs {
            inner.fwd_latch.count_down();
        }
        for _ in 0..inputs {
            inner.bwd_latch.count_down();
        }
        Ok(Znn { inner })
    }

    /// The input patch shape the network consumes.
    pub fn input_shape(&self) -> Vec3 {
        self.inner.input_shape
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.inner.graph
    }

    /// The convolution method chosen for edge `e` (after autotuning).
    pub fn conv_method(&self, e: EdgeId) -> Option<ConvMethod> {
        match &self.inner.edges[e.0] {
            EdgeState::Conv(c) => Some(c.method),
            _ => None,
        }
    }

    /// Inference: one forward pass, no dropout, no learning. Pending
    /// updates from a previous training round are forced first (by the
    /// forward tasks themselves, per Algorithm 1).
    pub fn forward(&self, inputs: &[Image]) -> Vec<Image> {
        self.inner.training.store(false, Ordering::Release);
        self.run_forward(inputs);
        if self.inner.round_failed.load(Ordering::Acquire) {
            // inference has no Result channel; recover (so the engine
            // stays usable) and surface the contained panic cleanly
            // instead of hanging or returning stale outputs
            let note = self.recover_round();
            panic!("forward pass poisoned by a task panic: {note}");
        }
        self.inner
            .graph
            .outputs()
            .iter()
            .map(|o| {
                let img = self.inner.nodes[o.0].fwd_image.lock();
                img.as_ref().expect("forward completed").as_ref().clone()
            })
            .collect()
    }

    /// One training round: forward, loss, backward. Parameter updates
    /// are scheduled at the lowest priority and will be *forced* by the
    /// next round's forward pass (or by [`Znn::flush_updates`]).
    /// Returns the loss.
    ///
    /// Panics if a task panicked during the round (the engine is
    /// recovered first); use [`Znn::try_train_step`] to handle that as
    /// a value instead.
    pub fn train_step(&self, inputs: &[Image], targets: &[Image]) -> f64 {
        match self.try_train_step(inputs, targets) {
            Ok(loss) => loss,
            Err(e) => panic!("unhandled {e}"),
        }
    }

    /// One training round, with panic containment: a panicking task
    /// *poisons the round* instead of killing its worker thread (and
    /// eventually the process). On poison, the engine recovers itself —
    /// stragglers drained, pending updates flushed, partial sums and
    /// caches discarded, round counter rewound so a retry replays the
    /// same dropout/sampling streams — and the contained panic comes
    /// back as [`RoundError`].
    pub fn try_train_step(&self, inputs: &[Image], targets: &[Image]) -> Result<f64, RoundError> {
        self.inner.training.store(true, Ordering::Release);
        let round_start = Instant::now();
        let round = self.inner.round.fetch_add(1, Ordering::Relaxed) + 1;
        self.run_forward(inputs);
        if self.inner.round_failed.load(Ordering::Acquire) {
            return Err(self.fail_round(round));
        }

        let outputs = self.inner.graph.outputs();
        assert_eq!(targets.len(), outputs.len(), "one target per output");
        let mut loss_total = 0.0;
        let mut grads: Vec<(NodeId, Image)> = outputs
            .iter()
            .zip(targets)
            .map(|(&o, t)| {
                let y = {
                    let img = self.inner.nodes[o.0].fwd_image.lock();
                    Arc::clone(img.as_ref().expect("forward completed"))
                };
                loss_total += self.inner.cfg.loss.value(&y, t);
                (o, self.inner.cfg.loss.gradient(&y, t))
            })
            .collect();
        // fault injection: corrupt one gradient voxel, exercising the
        // trainer's non-finite-parameter sentinel downstream
        if let Some(faults) = &self.inner.cfg.faults {
            if faults.take(FaultKind::NanPoke, round) {
                if let Some((_, g)) = grads.first_mut() {
                    g.as_mut_slice()[0] = f32::NAN;
                }
            }
        }

        // backward phase
        self.inner.bwd_latch.reset(self.inner.graph.inputs().len());
        for (o, g) in grads {
            let g = Arc::new(g);
            let node = &self.inner.nodes[o.0];
            node.bwd_spectra.clear();
            *node.bwd_image.lock() = Some(Arc::clone(&g));
            if self.inner.graph.node(o).in_edges.is_empty() {
                // degenerate single-node graph
                self.inner.bwd_latch.count_down();
                continue;
            }
            for &e in &self.inner.graph.node(o).in_edges {
                Inner::submit_backward(&self.inner, e, Arc::clone(&g));
            }
        }
        self.inner.bwd_latch.wait();
        if self.inner.round_failed.load(Ordering::Acquire) {
            return Err(self.fail_round(round));
        }
        // feed the measured round back into the planner's calibration
        // loop; a returned fan-out is applied live — bit-safe, because
        // transforms are pinned identical across every fft_threads
        let us = round_start.elapsed().as_micros() as u64;
        self.inner.last_round_us.store(us, Ordering::Relaxed);
        if let Some(planner) = &self.inner.planner {
            if let Some(fan) = planner.observe(us as f64) {
                self.inner.fft.set_threads(fan.min(self.inner.fft_budget));
            }
        }
        Ok(loss_total)
    }

    /// The resolved execution plan, when [`crate::PlanPolicy`] planning
    /// is enabled (`None` under the legacy [`ConvPolicy`] path). Note
    /// the *plan* is frozen at construction; only the FFT fan-out
    /// moves when the `Auto` calibrator re-plans.
    pub fn net_plan(&self) -> Option<&Arc<NetPlan>> {
        self.inner.net_plan.as_ref()
    }

    /// The live fan-out cap of the engine's FFT engine (moves when the
    /// `Auto` planner re-plans; otherwise the configured budget).
    pub fn fft_threads(&self) -> usize {
        self.inner.fft.threads()
    }

    /// Recovery + bookkeeping for a poisoned round: restores engine
    /// invariants and rewinds the round counter so a retry of this
    /// round sees the same round number (dropout masks and dataset
    /// sampling are round-seeded — replaying the stream is what makes
    /// retries deterministic).
    fn fail_round(&self, round: u64) -> RoundError {
        let note = self.recover_round();
        self.inner.round.fetch_sub(1, Ordering::Relaxed);
        RoundError { round, note }
    }

    /// Restores every engine invariant a poisoned round can break, in
    /// dependency order. See `docs/ARCHITECTURE.md` §Fault tolerance.
    fn recover_round(&self) -> String {
        let inner = &self.inner;
        // 1. quiesce: panicked tasks were contained, healthy stragglers
        //    run to completion against saturating latches
        inner.sched.wait_quiescent();
        // 2. drive every armed update handle back to Idle (next round's
        //    backward pass must be able to arm); update bodies are
        //    themselves contained, so forcing cannot re-panic the driver
        self.flush_updates();
        inner.sched.wait_quiescent();
        // 3. discard all partial per-round state
        for node in &inner.nodes {
            node.fwd_sum.reset();
            node.bwd_sum.reset();
            node.fwd_spectra.clear();
            node.bwd_spectra.clear();
        }
        for e in &inner.edges {
            match e {
                // a panic between a kernel write and its spectrum
                // invalidation would leave a stale memoized transform
                EdgeState::Conv(c) => *c.kernel_spectrum.lock() = None,
                EdgeState::Transfer(t) => {
                    *t.saved_output.lock() = None;
                    *t.dropout_mask.lock() = None;
                }
                EdgeState::Max(m) => *m.argmax.lock() = None,
            }
        }
        inner.round_failed.store(false, Ordering::Release);
        inner
            .panic_note
            .lock()
            .take()
            .unwrap_or_else(|| "task panic (payload lost)".to_string())
    }

    /// Rounds completed since construction (or since [`Znn::set_round`]).
    pub fn round(&self) -> u64 {
        self.inner.round.load(Ordering::Relaxed)
    }

    /// Overwrites the round counter. Resuming from a checkpoint must
    /// restore this alongside the parameters: the counter seeds the
    /// per-round dropout masks, so a resumed run only reproduces an
    /// uninterrupted one bit-for-bit if the streams line up.
    pub fn set_round(&self, round: u64) {
        self.inner.round.store(round, Ordering::Relaxed);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.inner.cfg
    }

    /// Snapshot of the optimizer state: per-edge momentum velocities
    /// (`None` for non-conv edges and before the first momentum
    /// update). Flushes pending updates first.
    pub fn optimizer_state(&self) -> Vec<Option<Image>> {
        self.flush_updates();
        self.inner
            .edges
            .iter()
            .map(|e| match e {
                EdgeState::Conv(c) => c.velocity.lock().clone(),
                _ => None,
            })
            .collect()
    }

    /// Restores optimizer state captured by [`Znn::optimizer_state`].
    pub fn set_optimizer_state(&self, velocities: &[Option<Image>]) {
        self.flush_updates();
        assert_eq!(
            velocities.len(),
            self.inner.edges.len(),
            "one velocity slot per edge"
        );
        for (e, v) in self.inner.edges.iter().zip(velocities) {
            if let EdgeState::Conv(c) = e {
                *c.velocity.lock() = v.clone();
            }
        }
    }

    /// True when every trainable parameter is finite — the cheap fused
    /// health scan the trainer runs after each round (no clones; one
    /// pass over kernels and biases in place, short-circuiting on the
    /// first bad value). Flushes pending updates first so the scan sees
    /// this round's writes.
    pub fn params_all_finite(&self) -> bool {
        self.flush_updates();
        self.inner.edges.iter().all(|e| match e {
            EdgeState::Conv(c) => c.kernel.lock().as_slice().iter().all(|v| v.is_finite()),
            EdgeState::Transfer(t) => t.bias.lock().is_finite(),
            EdgeState::Max(_) => true,
        })
    }

    /// Forces every pending parameter update to completion (used before
    /// reading parameters and at the end of training).
    pub fn flush_updates(&self) {
        for e in &self.inner.edges {
            if let Some(h) = e.update_handle() {
                h.force(Box::new(|| {}));
            }
        }
    }

    /// Snapshot of all trainable parameters (flushes updates first).
    pub fn params(&self) -> ParamSet {
        self.flush_updates();
        let g = &self.inner.graph;
        let mut kernels = Vec::with_capacity(g.edge_count());
        let mut biases = Vec::with_capacity(g.edge_count());
        for e in &self.inner.edges {
            match e {
                EdgeState::Conv(c) => {
                    kernels.push(Some(c.kernel.lock().clone()));
                    biases.push(None);
                }
                EdgeState::Transfer(t) => {
                    kernels.push(None);
                    biases.push(Some(*t.bias.lock()));
                }
                EdgeState::Max(_) => {
                    kernels.push(None);
                    biases.push(None);
                }
            }
        }
        ParamSet { kernels, biases }
    }

    /// Overwrites all trainable parameters (aligning engines in tests).
    pub fn set_params(&self, p: &ParamSet) {
        self.flush_updates();
        for (i, e) in self.inner.edges.iter().enumerate() {
            match e {
                EdgeState::Conv(c) => {
                    if let Some(k) = &p.kernels[i] {
                        *c.kernel.lock() = k.clone();
                        *c.kernel_spectrum.lock() = None;
                    }
                }
                EdgeState::Transfer(t) => {
                    if let Some(b) = p.biases[i] {
                        *t.bias.lock() = b;
                    }
                }
                EdgeState::Max(_) => {}
            }
        }
    }

    /// Scheduler / FORCE / allocator statistics accumulated since
    /// construction. The `alloc_*` fields snapshot the configured
    /// [`znn_alloc::PoolSet`]; note the default pool is process-wide,
    /// so they aggregate every pooled engine in the process.
    pub fn stats(&self) -> RoundStats {
        let s = self.inner.sched.stats();
        let mut f = RoundStats {
            loss: 0.0,
            tasks_executed: s.executed,
            peak_distinct_priorities: s.peak_distinct_priorities,
            queue_depth: s.queue_depth,
            // engine containment catches panics before the scheduler's
            // worker-level catch sees them, so the two counts are
            // disjoint populations and sum cleanly
            task_panics: self.inner.task_panics.load(Ordering::Relaxed) + s.task_panics,
            detached_panics: s.detached_panics,
            round_us: self.inner.last_round_us.load(Ordering::Relaxed),
            ..Default::default()
        };
        if let Some(pools) = &self.inner.cfg.pools {
            f.alloc_hits = pools.stats().hits() as u64;
            f.alloc_misses = pools.stats().misses() as u64;
            f.alloc_resident_bytes = pools.resident_bytes() as u64;
            f.alloc_leased_bytes = pools.stats().bytes_leased() as u64;
        }
        for e in &self.inner.edges {
            if let Some(h) = e.update_handle() {
                f.force_already_done += h.stats().already_done.load(Ordering::Relaxed);
                f.force_ran_inline += h.stats().ran_inline.load(Ordering::Relaxed);
                f.force_delegated += h.stats().delegated.load(Ordering::Relaxed);
            }
        }
        f
    }

    /// The recycling pools this engine leases hot-path buffers from,
    /// if pooling is enabled ([`TrainConfig::pools`]).
    pub fn buffer_pools(&self) -> Option<&Arc<znn_alloc::PoolSet>> {
        self.inner.cfg.pools.as_ref()
    }

    /// Count of spectra currently memoized (for §IX-B accounting).
    pub fn memoized_spectra(&self) -> usize {
        self.inner
            .nodes
            .iter()
            .map(|n| n.fwd_spectra.len() + n.bwd_spectra.len())
            .sum()
    }

    /// Bytes of half-spectra currently memoized — the paper's main RAM
    /// consumer (§IV), halved by the r2c representation relative to
    /// full c2c spectra of the same transform shapes.
    pub fn memoized_spectrum_bytes(&self) -> usize {
        self.inner
            .nodes
            .iter()
            .map(|n| n.fwd_spectra.bytes() + n.bwd_spectra.bytes())
            .sum()
    }

    /// Bytes the same memoized spectra would occupy as full c2c
    /// transforms — the exact footprint r2c avoids.
    pub fn memoized_spectrum_c2c_bytes(&self) -> usize {
        self.inner
            .nodes
            .iter()
            .map(|n| n.fwd_spectra.c2c_bytes() + n.bwd_spectra.c2c_bytes())
            .sum()
    }

    fn run_forward(&self, inputs: &[Image]) {
        let input_nodes = self.inner.graph.inputs();
        assert_eq!(
            inputs.len(),
            input_nodes.len(),
            "expected {} inputs",
            input_nodes.len()
        );
        self.inner
            .fwd_latch
            .reset(self.inner.graph.outputs().len());
        for (&n, img) in input_nodes.iter().zip(inputs) {
            assert_eq!(img.shape(), self.inner.input_shape, "input shape mismatch");
            let node = &self.inner.nodes[n.0];
            node.fwd_spectra.clear();
            let img = Arc::new(img.clone());
            *node.fwd_image.lock() = Some(Arc::clone(&img));
            if self.inner.graph.node(n).out_edges.is_empty() {
                self.inner.fwd_latch.count_down();
                continue;
            }
            for &e in &self.inner.graph.node(n).out_edges {
                Inner::submit_forward(&self.inner, e, Arc::clone(&img));
            }
        }
        self.inner.fwd_latch.wait();
    }
}

impl Inner {
    /// Runs `f` with panic containment: a panic is caught here — before
    /// it can kill the executing thread — and *poisons the round*: the
    /// first payload is recorded for diagnostics and both phase latches
    /// are forced open so the driver returns from its wait and runs
    /// recovery, instead of blocking forever on events the dead task
    /// can no longer deliver.
    fn run_contained(inner: &Arc<Inner>, f: impl FnOnce()) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
            inner.task_panics.fetch_add(1, Ordering::Relaxed);
            {
                let mut note = inner.panic_note.lock();
                if note.is_none() {
                    *note = Some(describe_panic(payload.as_ref()));
                }
            }
            inner.round_failed.store(true, Ordering::Release);
            inner.fwd_latch.open();
            inner.bwd_latch.open();
        }
    }

    /// Algorithm 1: the forward task forces the edge's pending update,
    /// then runs DO-FORWARD.
    fn submit_forward(inner: &Arc<Inner>, e: EdgeId, input: Arc<Image>) {
        let prio = inner.fwd_prio[e.0];
        let inner2 = Arc::clone(inner);
        inner.sched.submit(
            prio,
            Box::new(move || {
                let inner4 = Arc::clone(&inner2);
                Inner::run_contained(&inner4, move || {
                    let inner3 = Arc::clone(&inner2);
                    let do_fwd: Box<dyn FnOnce() + Send> =
                        Box::new(move || Inner::do_forward(&inner3, e, input));
                    match inner2.edges[e.0].update_handle() {
                        Some(h) => h.force(do_fwd),
                        None => do_fwd(),
                    }
                });
            }),
        );
    }

    /// DO-FORWARD: apply the edge transform, accumulate into the target
    /// node's sum, and unfold dependent tasks if this was the last
    /// contribution.
    fn do_forward(inner: &Arc<Inner>, e: EdgeId, input: Arc<Image>) {
        // fault injection: a task that dies mid-round (the containment
        // path every unexpected panic takes)
        if let Some(faults) = &inner.cfg.faults {
            if faults.take(FaultKind::TaskPanic, inner.round.load(Ordering::Relaxed)) {
                panic!("fault-injection: task panic on edge {}", e.0);
            }
        }
        let edge = inner.graph.edge(e);
        let to = edge.to;
        let contribution = match &inner.edges[e.0] {
            EdgeState::Conv(c) => Inner::conv_forward(inner, c, edge.from, to, &input),
            EdgeState::Transfer(t) => {
                let bias = *t.bias.lock();
                let mut y = t.function.forward(&input, bias);
                // §XI dropout extension on hidden transfer edges
                if inner.training.load(Ordering::Acquire) {
                    if let Some(p) = inner.cfg.dropout {
                        if !inner.graph.node(to).out_edges.is_empty() {
                            let mask = Inner::dropout_mask(inner, e, y.shape(), p);
                            ops::mul_assign(&mut y, &mask);
                            *t.dropout_mask.lock() = Some(Arc::new(mask));
                        }
                    }
                }
                let y = Arc::new(y);
                *t.saved_output.lock() = Some(Arc::clone(&y));
                Contribution::Spatial(y.as_ref().clone())
            }
            EdgeState::Max(m) => {
                if m.is_pool {
                    let r = max_pool(&input, m.window);
                    *m.argmax.lock() = Some(r.argmax);
                    Contribution::Spatial(r.output)
                } else {
                    let r = max_filter(&input, m.window, m.sparsity, FilterImpl::Deque);
                    *m.argmax.lock() = Some(r.argmax);
                    Contribution::Spatial(r.output)
                }
            }
        };
        let node = &inner.nodes[to.0];
        if node.fwd_sum.add(contribution) {
            Inner::finalize_forward(inner, to);
        }
    }

    /// A zero-filled image leased from the configured pools (plain
    /// allocation when pooling is disabled).
    fn lease_image(inner: &Inner, shape: Vec3) -> Image {
        // fault injection: a refused lease, modelled as a panic at the
        // lease site — it exercises RAII custody of every buffer the
        // unwinding task already holds (leaked bytes show up in
        // PoolStats::bytes_in_use, which tests pin to zero)
        if let Some(faults) = &inner.cfg.faults {
            if faults.take(FaultKind::LeaseFail, inner.round.load(Ordering::Relaxed)) {
                panic!("fault-injection: buffer lease refused for {shape}");
            }
        }
        znn_alloc::lease_image(inner.cfg.pools.as_ref(), shape)
    }

    fn conv_forward(
        inner: &Arc<Inner>,
        c: &ConvEdge,
        from: NodeId,
        to: NodeId,
        input: &Image,
    ) -> Contribution {
        match c.method {
            ConvMethod::Direct => {
                let w = c.kernel.lock();
                let out_shape = conv::valid_shape(input.shape(), w.shape(), c.sparsity)
                    .expect("validated geometry");
                let mut out = Inner::lease_image(inner, out_shape);
                conv::conv_valid_into(input, &w, c.sparsity, &mut out);
                Contribution::Spatial(out)
            }
            ConvMethod::Fft => {
                let m = c.m;
                // the source node's image spectrum is computed once and
                // shared by every edge leaving that node (§IV)
                let x_spec = inner.nodes[from.0]
                    .fwd_spectra
                    .get_or_compute(m, || inner.fft.forward_padded(input, m));
                let w_spec = Inner::kernel_spectrum(inner, c, m);
                let prod = ops::mul_s(&x_spec, &w_spec);
                let node = &inner.nodes[to.0];
                match node.fwd_freq {
                    // defer the inverse transform to the node sum: one
                    // inverse FFT per node, not per edge
                    Some(_) => Contribution::Freq(prod),
                    None => {
                        let crop_at = c.k.dilated(c.sparsity) - Vec3::one();
                        Contribution::Spatial(inner.fft.inverse_real(
                            prod,
                            crop_at,
                            inner.node_shape[to.0],
                        ))
                    }
                }
            }
        }
    }

    fn dropout_mask(inner: &Arc<Inner>, e: EdgeId, shape: Vec3, p: f32) -> Image {
        let round = inner.round.load(Ordering::Relaxed);
        let seed = inner
            .cfg
            .seed
            .wrapping_add(0xD807)
            .wrapping_mul(round.wrapping_add(1))
            .wrapping_add(e.0 as u64);
        let keep = 1.0 - p;
        let mut mask = Inner::lease_image(inner, shape);
        ops::fill_with(&mut mask, |i| {
            let u = (ops::splitmix_f32(seed, i as u64) + 1.0) * 0.5; // [0,1)
            if u < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        mask
    }

    fn finalize_forward(inner: &Arc<Inner>, v: NodeId) {
        let node = &inner.nodes[v.0];
        let total = node.fwd_sum.take();
        let img = match total {
            Contribution::Spatial(i) => i,
            Contribution::Freq(spec) => {
                let plan = node.fwd_freq.expect("freq sum implies a plan");
                inner.fft.inverse_real(spec, plan.crop_at, plan.out_shape)
            }
        };
        debug_assert_eq!(img.shape(), node.shape);
        node.fwd_spectra.clear();
        let img = Arc::new(img);
        *node.fwd_image.lock() = Some(Arc::clone(&img));
        let out_edges = &inner.graph.node(v).out_edges;
        if out_edges.is_empty() {
            inner.fwd_latch.count_down();
        } else {
            for &e in out_edges {
                Inner::submit_forward(inner, e, Arc::clone(&img));
            }
        }
    }

    fn submit_backward(inner: &Arc<Inner>, e: EdgeId, grad: Arc<Image>) {
        let prio = inner.bwd_prio[e.0];
        let inner2 = Arc::clone(inner);
        inner.sched.submit(
            prio,
            Box::new(move || {
                let inner3 = Arc::clone(&inner2);
                Inner::run_contained(&inner3, move || Inner::do_backward(&inner2, e, grad));
            }),
        );
    }

    /// Algorithm 2: backward transform, arm + enqueue the update task,
    /// accumulate into the source node's backward sum.
    fn do_backward(inner: &Arc<Inner>, e: EdgeId, grad: Arc<Image>) {
        let edge = inner.graph.edge(e);
        let (from, to) = (edge.from, edge.to);
        let contribution = match &inner.edges[e.0] {
            EdgeState::Conv(c) => {
                // Algorithm 2 order matters: the backward transform must
                // read the kernel *before* the update task is armed — an
                // idle worker may pick the update up immediately and
                // modify the kernel.
                let out = Inner::conv_backward(inner, c, from, to, &grad);
                Inner::arm_conv_update(inner, e, c, from, to, &grad);
                out
            }
            EdgeState::Transfer(t) => {
                let y = {
                    let s = t.saved_output.lock();
                    Arc::clone(s.as_ref().expect("forward before backward"))
                };
                let mut back = {
                    // dropout: the mask multiplies the chain in both
                    // directions
                    if let Some(mask) = t.dropout_mask.lock().take() {
                        let mut g = grad.as_ref().clone();
                        ops::mul_assign(&mut g, &mask);
                        t.function.backward(&g, &y)
                    } else {
                        t.function.backward(&grad, &y)
                    }
                };
                // §III-B: bias gradient is the sum of the backward image
                let db = back.sum();
                Inner::arm_bias_update(inner, e, db);
                // weight decay does not apply to biases
                let _ = &mut back;
                Contribution::Spatial(back)
            }
            EdgeState::Max(m) => {
                let argmax = {
                    let a = m.argmax.lock();
                    a.as_ref().expect("forward before backward").clone()
                };
                let out = if m.is_pool {
                    max_pool_backward(&grad, &argmax, m.in_shape)
                } else {
                    max_filter_backward(&grad, &argmax, m.in_shape)
                };
                Contribution::Spatial(out)
            }
        };
        let node = &inner.nodes[from.0];
        if node.bwd_sum.add(contribution) {
            Inner::finalize_backward(inner, from);
        }
    }

    fn conv_backward(
        inner: &Arc<Inner>,
        c: &ConvEdge,
        from: NodeId,
        to: NodeId,
        grad: &Arc<Image>,
    ) -> Contribution {
        match c.method {
            ConvMethod::Direct => {
                let w = c.kernel.lock();
                Contribution::Spatial(conv::input_gradient(grad, &w, c.sparsity))
            }
            ConvMethod::Fft => {
                let m = c.m; // == good(shape of `from`)
                let g_spec = inner.nodes[to.0].bwd_spectra.get_or_compute(m, || {
                    inner.fft.forward_padded(grad, m)
                });
                let w_spec = Inner::kernel_spectrum(inner, c, m);
                let v_spec = spectra::flip_spectrum(&w_spec, c.k.dilated(c.sparsity));
                let prod = ops::mul_s(&g_spec, &v_spec);
                let node = &inner.nodes[from.0];
                if node.bwd_freq.is_some() {
                    Contribution::Freq(prod)
                } else {
                    Contribution::Spatial(inner.fft.inverse_real(
                        prod,
                        Vec3::zero(),
                        inner.node_shape[from.0],
                    ))
                }
            }
        }
    }

    /// The memoized kernel half-spectrum (Table II): computed in the
    /// forward pass and reused by backward/update when memoization is
    /// on. Sparse kernels are dilated onto the skip lattice before
    /// transforming.
    fn kernel_spectrum(inner: &Arc<Inner>, c: &ConvEdge, m: Vec3) -> Arc<znn_tensor::Spectrum> {
        let compute = || {
            let w = c.kernel.lock();
            if c.sparsity == Vec3::one() {
                inner.fft.forward_padded(&w, m)
            } else {
                inner
                    .fft
                    .forward_padded(&znn_tensor::pad::dilate(&w, c.sparsity), m)
            }
        };
        if inner.cfg.memoize_fft {
            let mut cached = c.kernel_spectrum.lock();
            if let Some(s) = cached.as_ref() {
                return Arc::clone(s);
            }
            let spec = Arc::new(compute());
            *cached = Some(Arc::clone(&spec));
            spec
        } else {
            Arc::new(compute())
        }
    }

    fn arm_conv_update(
        inner: &Arc<Inner>,
        e: EdgeId,
        c: &ConvEdge,
        from: NodeId,
        to: NodeId,
        grad: &Arc<Image>,
    ) {
        // capture what the update needs *now* (Algorithm 2 line 4):
        // the forward image (and optionally spectra) of this round
        let x = {
            let img = inner.nodes[from.0].fwd_image.lock();
            Arc::clone(img.as_ref().expect("forward image retained"))
        };
        let use_fft = c.method == ConvMethod::Fft && inner.cfg.memoize_fft;
        let (x_spec, g_spec) = if use_fft {
            let m = c.m;
            let xs = inner.nodes[from.0]
                .fwd_spectra
                .get_or_compute(m, || inner.fft.forward_padded(&x, m));
            let gs = inner.nodes[to.0]
                .bwd_spectra
                .get_or_compute(m, || inner.fft.forward_padded(grad, m));
            (Some(xs), Some(gs))
        } else {
            (None, None)
        };
        let grad = Arc::clone(grad);
        let inner2 = Arc::clone(inner);
        let handle = c.update.clone();
        // the containment sits INSIDE the armed closure: if the update
        // work panicked out of the closure, the FORCE state machine
        // would never run finish() and the handle would stay Executing
        // forever — every later arm() would die on it
        handle.arm(Box::new(move || {
            let inner4 = Arc::clone(&inner2);
            Inner::run_contained(&inner4, move || {
                let EdgeState::Conv(c) = &inner2.edges[e.0] else {
                    unreachable!()
                };
                let dw = match (&x_spec, &g_spec) {
                    (Some(xs), Some(gs)) => {
                        let corr = spectra::corr_spectrum(xs, gs);
                        spectra::kernel_gradient_from_corr(&inner2.fft, corr, c.k, c.sparsity)
                    }
                    _ => conv::kernel_gradient(&x, &grad, c.k, c.sparsity),
                };
                Inner::apply_sgd(inner2.as_ref(), c, dw);
            });
        }));
        Inner::submit_update_entry(inner, c.update.queue_entry());
    }

    /// Queues an update's scheduler entry with panic containment. The
    /// armed work is contained, but a *delegated* FORCE subtask (a
    /// forward task attached while the update ran) executes inside this
    /// entry on whichever thread finishes the update — and can unfold
    /// the whole downstream graph inline. A panic there must poison the
    /// round like any other task panic.
    fn submit_update_entry(inner: &Arc<Inner>, entry: znn_sched::Task) {
        let inner2 = Arc::clone(inner);
        inner.sched.submit(
            UPDATE_PRIORITY,
            Box::new(move || {
                let inner3 = Arc::clone(&inner2);
                Inner::run_contained(&inner3, entry);
            }),
        );
    }

    fn apply_sgd(inner: &Inner, c: &ConvEdge, mut dw: Image) {
        let cfg = &inner.cfg;
        let mut w = c.kernel.lock();
        if cfg.weight_decay > 0.0 {
            // dw += wd * w
            ops::axpy(&mut dw, 1.0, &w.map(|v| v * cfg.weight_decay));
        }
        if cfg.momentum > 0.0 {
            let mut vel = c.velocity.lock();
            let v = vel.get_or_insert_with(|| Tensor3::zeros(w.shape()));
            // v = momentum*v - lr*dw ; w += v
            ops::scale(v, cfg.momentum);
            ops::sub_scaled(v, cfg.learning_rate, &dw);
            ops::add_assign(&mut w, v);
        } else {
            ops::sub_scaled(&mut w, cfg.learning_rate, &dw);
        }
        // the kernel changed: its memoized spectrum is stale
        *c.kernel_spectrum.lock() = None;
    }

    fn arm_bias_update(inner: &Arc<Inner>, e: EdgeId, db: f32) {
        let inner2 = Arc::clone(inner);
        let EdgeState::Transfer(t) = &inner.edges[e.0] else {
            unreachable!()
        };
        let handle = t.update.clone();
        // contained inside the closure for the same reason as conv
        // updates: finish() must always run
        handle.arm(Box::new(move || {
            let inner3 = Arc::clone(&inner2);
            Inner::run_contained(&inner3, move || {
                let EdgeState::Transfer(t) = &inner2.edges[e.0] else {
                    unreachable!()
                };
                *t.bias.lock() -= inner2.cfg.learning_rate * db;
            });
        }));
        Inner::submit_update_entry(inner, t.update.queue_entry());
    }

    fn finalize_backward(inner: &Arc<Inner>, u: NodeId) {
        let node = &inner.nodes[u.0];
        let total = node.bwd_sum.take();
        let img = match total {
            Contribution::Spatial(i) => i,
            Contribution::Freq(spec) => {
                let plan = node.bwd_freq.expect("freq sum implies a plan");
                inner.fft.inverse_real(spec, plan.crop_at, plan.out_shape)
            }
        };
        node.bwd_spectra.clear();
        let img = Arc::new(img);
        *node.bwd_image.lock() = Some(Arc::clone(&img));
        let in_edges = &inner.graph.node(u).in_edges;
        if in_edges.is_empty() {
            inner.bwd_latch.count_down();
        } else {
            for &e in in_edges {
                Inner::submit_backward(inner, e, Arc::clone(&img));
            }
        }
    }
}
