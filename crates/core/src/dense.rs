//! Forward-only **dense-output** inference over a computation graph.
//!
//! Training wants gradients; serving wants *throughput on `&self`*.
//! [`DenseNet`] is the inference twin of [`crate::Znn`]: it evaluates a
//! (typically max-filtering) graph forward-only, with
//!
//! * **shared immutable state** — one net is safely shared by any
//!   number of worker threads (`&self` evaluation, interior caches
//!   behind locks that are read-only after warmup);
//! * **memoized kernel spectra** — FFT-convolved edges transform each
//!   kernel once per transform geometry and every subsequent volume
//!   reuses the cached half-spectrum (§IV memoization, here across
//!   *requests* instead of across *passes*);
//! * **blocked evaluation with cooperative cancellation** —
//!   [`DenseNet::forward_blocked`] tiles the output volume and calls a
//!   checkpoint closure between blocks, so a server can abandon an
//!   expired request mid-volume and every pooled lease is returned by
//!   RAII on the early exit.
//!
//! This is the library home of the `examples/sliding_window.rs` fast
//! path: the paper's Fig. 2 equivalence (a max-pooling net slid over
//! every output position computes the same function as the max-filtering
//! net run once) means a `DenseNet` over the filtering graph *is* the
//! dense sliding-window output, produced in one pass.

use crate::config::ConvPolicy;
use crate::engine::transform_shape;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;
use znn_alloc::{lease_image, PoolSet};
use znn_fft::FftEngine;
use znn_graph::init::ParamSet;
use znn_graph::{shapes, EdgeOp, Graph, GraphError};
use znn_ops::filter::{max_filter, FilterImpl};
use znn_ops::pool::max_pool;
use znn_ops::{conv, convolver, ConvMethod};
use znn_plan::Planner;
use znn_tensor::{ops, pad, Image, Spectrum, Vec3};

/// Configuration for a [`DenseNet`].
#[derive(Clone)]
pub struct DenseConfig {
    /// Direct-vs-FFT selection per distinct convolution geometry.
    pub conv: ConvPolicy,
    /// Pooled allocator for outputs, windows and FFT scratch; `None`
    /// falls back to plain allocation.
    pub pools: Option<Arc<PoolSet>>,
    /// Fan-out cap for intra-transform FFT line parallelism; `1`
    /// keeps every transform on the calling thread (the right choice
    /// when many server workers evaluate concurrently).
    pub fft_threads: usize,
    /// Memoize kernel half-spectra per (edge, transform shape). On by
    /// default — this is the read-only-after-warmup cache servers
    /// share across requests.
    pub memoize_spectra: bool,
    /// Route the serving-side method cache through a cost-model
    /// planner instead of measurement: under `ConvPolicy::Autotune`
    /// each new geometry is *priced* ([`Planner::choose_forward`])
    /// rather than timed — no warmup convolutions on the serving path,
    /// deterministic choices, and pads follow the planner's
    /// radix-aware pad model. Forced policies still force. `None`
    /// (the default) keeps the measurement-based autotune.
    pub planner: Option<Arc<Planner>>,
}

impl Default for DenseConfig {
    fn default() -> Self {
        DenseConfig {
            conv: ConvPolicy::default(),
            pools: Some(PoolSet::global()),
            fft_threads: 1,
            memoize_spectra: true,
            planner: None,
        }
    }
}

/// Why a [`DenseNet`] could not be constructed.
#[derive(Debug)]
pub enum DenseError {
    /// The graph failed structural validation.
    Graph(GraphError),
    /// The graph admits no valid input shape.
    Shape(shapes::ShapeError),
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::Graph(e) => write!(f, "invalid graph: {e}"),
            DenseError::Shape(e) => write!(f, "invalid shapes: {e}"),
        }
    }
}

impl std::error::Error for DenseError {}

impl From<GraphError> for DenseError {
    fn from(e: GraphError) -> Self {
        DenseError::Graph(e)
    }
}

impl From<shapes::ShapeError> for DenseError {
    fn from(e: shapes::ShapeError) -> Self {
        DenseError::Shape(e)
    }
}

/// A blocked evaluation stopped early because its checkpoint closure
/// returned [`ControlFlow::Break`]. All pooled leases held for the
/// cancelled evaluation have already been returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// Output blocks fully computed before the cancellation.
    pub blocks_done: usize,
    /// Total output blocks the evaluation would have computed.
    pub blocks_total: usize,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dense evaluation cancelled after {}/{} blocks",
            self.blocks_done, self.blocks_total
        )
    }
}

impl std::error::Error for Cancelled {}

/// Progress report passed to the [`DenseNet::forward_blocked`]
/// checkpoint before each output block is computed.
#[derive(Debug, Clone, Copy)]
pub struct BlockEvent {
    /// Zero-based index of the block about to be computed.
    pub index: usize,
    /// Total number of blocks in this evaluation.
    pub total: usize,
    /// Origin of the block in output coordinates.
    pub origin: Vec3,
    /// Shape of the block (edge blocks may be smaller).
    pub shape: Vec3,
}

/// A thread-safe forward-only evaluator producing dense outputs.
///
/// Construction validates the graph; evaluation is `&self` and may be
/// called concurrently from any number of threads. Interior caches
/// (autotuned convolution methods, memoized kernel spectra) are filled
/// on first use — call [`DenseNet::warmup`] once to make them
/// read-only before sharing the net across server workers.
pub struct DenseNet {
    graph: Graph,
    params: ParamSet,
    fov: Vec3,
    cfg: DenseConfig,
    fft: Arc<FftEngine>,
    /// Memoized kernel half-spectra keyed by (edge index, transform
    /// shape) — the cross-request §IV cache.
    kernel_spectra: Mutex<HashMap<(usize, Vec3), Arc<Spectrum>>>,
    /// Autotuned method per distinct (input, kernel, sparsity)
    /// geometry.
    methods: Mutex<HashMap<(Vec3, Vec3, Vec3), ConvMethod>>,
}

impl DenseNet {
    /// Builds a dense evaluator over `graph` with deterministic
    /// parameter initialization from `seed`.
    pub fn new(graph: Graph, seed: u64, cfg: DenseConfig) -> Result<Self, DenseError> {
        let params = ParamSet::init(&graph, seed);
        Self::with_params(graph, params, cfg)
    }

    /// Builds a dense evaluator over `graph` using the given
    /// parameters (e.g. carried over from a trained [`crate::Znn`]).
    pub fn with_params(graph: Graph, params: ParamSet, cfg: DenseConfig) -> Result<Self, DenseError> {
        graph.validate()?;
        // the minimal input establishes that the graph admits *some*
        // dense evaluation; concrete shapes are re-derived per call
        let fov = shapes::required_input_shape(&graph, Vec3::one())?;
        let mut fft = FftEngine::with_threads(cfg.fft_threads.max(1));
        if let Some(p) = &cfg.pools {
            fft = fft.with_buffer_pools(Arc::clone(p));
        }
        Ok(DenseNet {
            graph,
            params,
            fov,
            cfg,
            fft: Arc::new(fft),
            kernel_spectra: Mutex::new(HashMap::new()),
            methods: Mutex::new(HashMap::new()),
        })
    }

    /// The graph this net evaluates.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Immutable access to the parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the parameters. Invalidates the memoized
    /// kernel spectra and autotuned methods (they are derived from
    /// the kernels being replaced).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        self.kernel_spectra.get_mut().clear();
        self.methods.get_mut().clear();
        &mut self.params
    }

    /// The pooled allocator this net leases from, if any (servers use
    /// it to report resident bytes alongside serving stats).
    pub fn pools(&self) -> Option<&Arc<PoolSet>> {
        self.cfg.pools.as_ref()
    }

    /// The field of view: the input shape that produces a single
    /// output voxel. For the shift-invariant graphs dense inference
    /// targets, an input of shape `n` produces output
    /// `n − fov + 1`.
    pub fn fov(&self) -> Vec3 {
        self.fov
    }

    /// Input shape required to produce `output_shape` dense outputs.
    pub fn input_shape_for(&self, output_shape: Vec3) -> Result<Vec3, shapes::ShapeError> {
        shapes::required_input_shape(&self.graph, output_shape)
    }

    /// Dense output shape for an input of shape `input`, or `None` if
    /// the input is smaller than the field of view.
    pub fn output_shape_for(&self, input: Vec3) -> Option<Vec3> {
        input.valid_conv(self.fov)
    }

    /// Number of kernel half-spectra currently memoized.
    pub fn memoized_spectra(&self) -> usize {
        self.kernel_spectra.lock().len()
    }

    /// Bytes of kernel half-spectra currently memoized — the
    /// read-only-after-warmup cache shared across requests.
    pub fn memoized_spectrum_bytes(&self) -> usize {
        self.kernel_spectra
            .lock()
            .values()
            .map(|s| s.stored_bins() * std::mem::size_of::<[f32; 2]>())
            .sum()
    }

    /// Runs one throwaway evaluation at `input_shape` so every interior
    /// cache (autotuned methods, kernel spectra, FFT plans, pool
    /// classes) is populated. After warmup, evaluation at this shape
    /// takes no interior locks beyond cheap cache reads and allocates
    /// only from the pools.
    pub fn warmup(&self, input_shape: Vec3) {
        let inputs: Vec<Image> = self
            .graph
            .inputs()
            .iter()
            .map(|_| lease_image(self.cfg.pools.as_ref(), input_shape))
            .collect();
        let _ = self.forward_multi(&inputs);
    }

    /// Dense forward pass for a single-input, single-output graph.
    ///
    /// The output has shape [`DenseNet::output_shape_for`]`(input.shape())`.
    pub fn forward(&self, input: &Image) -> Image {
        assert_eq!(self.graph.inputs().len(), 1, "forward wants a single-input graph");
        assert_eq!(self.graph.outputs().len(), 1, "forward wants a single-output graph");
        self.forward_multi(std::slice::from_ref(input))
            .pop()
            .expect("single output")
    }

    /// Dense forward pass; returns the output node images in
    /// [`Graph::outputs`] order. Thread-safe: concurrent callers share
    /// the memoized kernel spectra and the FFT plan cache.
    pub fn forward_multi(&self, inputs: &[Image]) -> Vec<Image> {
        let input_nodes = self.graph.inputs();
        assert_eq!(
            inputs.len(),
            input_nodes.len(),
            "expected {} input images",
            input_nodes.len()
        );
        let order = self.graph.topo_order().expect("validated graph");
        let mut sums: Vec<Option<Image>> = vec![None; self.graph.node_count()];
        for (n, img) in input_nodes.iter().zip(inputs) {
            sums[n.0] = Some(img.clone());
        }
        let outputs = self.graph.outputs();
        let mut outs: HashMap<usize, Image> = HashMap::new();
        for n in order {
            let img = sums[n.0].take().expect("topological order fills sums");
            // the node's forward spectrum is computed once and shared
            // by every FFT-convolved edge leaving it (§IV)
            let mut node_spec: Option<(Vec3, Arc<Spectrum>)> = None;
            for &eid in &self.graph.node(n).out_edges {
                let out = self.edge_forward(eid.0, &img, &mut node_spec);
                let to = self.graph.edge(eid).to;
                match &mut sums[to.0] {
                    None => sums[to.0] = Some(out),
                    Some(acc) => ops::add_assign(acc, &out),
                }
            }
            if outputs.contains(&n) {
                outs.insert(n.0, img);
            }
        }
        outputs
            .iter()
            .map(|o| outs.remove(&o.0).expect("outputs filled by forward"))
            .collect()
    }

    /// Blocked dense forward pass with cooperative cancellation, for a
    /// single-input, single-output **shift-invariant** graph (no
    /// `MaxPool` edges — convert pooling nets to max-filtering nets
    /// first; the two compute the same dense function, Fig. 2).
    ///
    /// The output volume is tiled into blocks of at most `block`;
    /// before each block, `checkpoint` is called with the block's
    /// coordinates and may return [`ControlFlow::Break`] to abandon
    /// the evaluation (a server checks the request deadline here).
    /// On cancellation every pooled lease has already been returned
    /// by RAII and the partial output is discarded.
    pub fn forward_blocked(
        &self,
        input: &Image,
        block: Vec3,
        checkpoint: &mut dyn FnMut(&BlockEvent) -> ControlFlow<()>,
    ) -> Result<Image, Cancelled> {
        assert_eq!(self.graph.inputs().len(), 1, "forward_blocked wants a single-input graph");
        assert_eq!(self.graph.outputs().len(), 1, "forward_blocked wants a single-output graph");
        assert!(
            !self
                .graph
                .edges()
                .iter()
                .any(|e| matches!(e.op, EdgeOp::MaxPool { .. })),
            "forward_blocked requires a shift-invariant (max-filtering) graph; \
             found a MaxPool edge — build the equivalent max-filter net instead"
        );
        assert!(Vec3::one().le(block), "block shape must be at least 1×1×1");
        let out_shape = self
            .output_shape_for(input.shape())
            .unwrap_or_else(|| {
                panic!(
                    "input {} smaller than field of view {}",
                    input.shape(),
                    self.fov
                )
            });
        let counts = Vec3([
            out_shape.0[0].div_ceil(block.0[0]),
            out_shape.0[1].div_ceil(block.0[1]),
            out_shape.0[2].div_ceil(block.0[2]),
        ]);
        let total = counts.len();
        let mut out = lease_image(self.cfg.pools.as_ref(), out_shape);
        let mut done = 0usize;
        let halo = self.fov - Vec3::one();
        for bz in 0..counts.0[0] {
            for by in 0..counts.0[1] {
                for bx in 0..counts.0[2] {
                    let origin = Vec3([
                        bz * block.0[0],
                        by * block.0[1],
                        bx * block.0[2],
                    ]);
                    // NB: explicit call — `.min(..)` on a by-value Vec3
                    // resolves to the derived lexicographic `Ord::min`,
                    // not the elementwise inherent method
                    let shape = Vec3::min(&(out_shape - origin), block);
                    let ev = BlockEvent {
                        index: done,
                        total,
                        origin,
                        shape,
                    };
                    if let ControlFlow::Break(()) = checkpoint(&ev) {
                        // `out` and all temporaries drop here: pooled
                        // bytes are recycled before the caller sees Err
                        return Err(Cancelled {
                            blocks_done: done,
                            blocks_total: total,
                        });
                    }
                    // shift invariance: the block's input window is the
                    // block plus the field-of-view halo
                    let mut win = lease_image(self.cfg.pools.as_ref(), shape + halo);
                    pad::crop_into(input, origin, &mut win);
                    let block_out = self.forward(&win);
                    debug_assert_eq!(block_out.shape(), shape);
                    pad::pad_into(&block_out, &mut out, origin);
                    done += 1;
                }
            }
        }
        Ok(out)
    }

    fn method_for(&self, n: Vec3, k: Vec3, sparsity: Vec3) -> ConvMethod {
        match self.cfg.conv {
            ConvPolicy::ForceDirect => ConvMethod::Direct,
            ConvPolicy::ForceFft => ConvMethod::Fft,
            ConvPolicy::Autotune => {
                if let Some(&m) = self.methods.lock().get(&(n, k, sparsity)) {
                    return m;
                }
                // cost model when a planner is routed in (no timing
                // runs on the serving path), measurement otherwise
                let m = match &self.cfg.planner {
                    Some(p) => p.choose_forward(n, k, sparsity).0,
                    None => convolver::autotune(n, k, sparsity, &self.fft, 1),
                };
                *self.methods.lock().entry((n, k, sparsity)).or_insert(m)
            }
        }
    }

    fn kernel_spectrum(&self, eid: usize, w: &Image, sparsity: Vec3, m: Vec3) -> Arc<Spectrum> {
        let compute = || {
            // sparse kernels are dilated onto the skip lattice before
            // the transform, exactly as in training
            if sparsity == Vec3::one() {
                self.fft.forward_padded(w, m)
            } else {
                self.fft.forward_padded(&pad::dilate(w, sparsity), m)
            }
        };
        if !self.cfg.memoize_spectra {
            return Arc::new(compute());
        }
        if let Some(s) = self.kernel_spectra.lock().get(&(eid, m)) {
            return Arc::clone(s);
        }
        let spec = Arc::new(compute());
        Arc::clone(
            self.kernel_spectra
                .lock()
                .entry((eid, m))
                .or_insert(spec),
        )
    }

    fn edge_forward(
        &self,
        eid: usize,
        input: &Image,
        node_spec: &mut Option<(Vec3, Arc<Spectrum>)>,
    ) -> Image {
        let e = &self.graph.edges()[eid];
        match e.op {
            EdgeOp::Conv { kernel, sparsity } => {
                let w = self.params.kernels[eid].as_ref().expect("conv kernel");
                match self.method_for(input.shape(), kernel, sparsity) {
                    ConvMethod::Direct => {
                        let out_shape = conv::valid_shape(input.shape(), w.shape(), sparsity)
                            .expect("validated geometry");
                        let mut out = lease_image(self.cfg.pools.as_ref(), out_shape);
                        conv::conv_valid_into(input, w, sparsity, &mut out);
                        out
                    }
                    ConvMethod::Fft => {
                        // the planner's pad model when routed in (it
                        // may prefer a pow2 pad where the radix mix
                        // favours it), the engine default otherwise;
                        // both satisfy the packed-even invariant
                        let m = match &self.cfg.planner {
                            Some(p) => p.pad_for(input.shape()),
                            None => transform_shape(input.shape()),
                        };
                        let x_spec = match node_spec {
                            Some((cached_m, s)) if *cached_m == m => Arc::clone(s),
                            _ => {
                                let s = Arc::new(self.fft.forward_padded(input, m));
                                *node_spec = Some((m, Arc::clone(&s)));
                                s
                            }
                        };
                        let w_spec = self.kernel_spectrum(eid, w, sparsity, m);
                        let prod = ops::mul_s(&x_spec, &w_spec);
                        let kd = kernel.dilated(sparsity);
                        let out_shape = input
                            .shape()
                            .valid_conv(kd)
                            .expect("validated geometry");
                        self.fft.inverse_real(prod, kd - Vec3::one(), out_shape)
                    }
                }
            }
            EdgeOp::MaxPool { window } => max_pool(input, window).output,
            EdgeOp::MaxFilter { window, sparsity } => {
                max_filter(input, window, sparsity, FilterImpl::Deque).output
            }
            EdgeOp::Transfer { function } => {
                let b = self.params.biases[eid].expect("transfer bias");
                function.forward(input, b)
            }
        }
    }
}
