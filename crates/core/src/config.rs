//! Engine configuration.

use std::path::PathBuf;
use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_fault::FaultPlan;
use znn_ops::Loss;
use znn_sched::QueuePolicy;

/// Where and how often training snapshots its state to disk.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory snapshots are written into (created if missing).
    pub dir: PathBuf,
    /// Write a snapshot every this many completed rounds (and always
    /// one at the end of a run). `0` disables periodic snapshots but
    /// keeps the final one.
    pub every: u64,
    /// Newest snapshots retained on disk; older ones are pruned after
    /// each write. `0` keeps all.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Snapshots into `dir` every 25 rounds, keeping the newest 3.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: 25,
            keep: 3,
        }
    }
}

/// Thresholds for the health sentinels and the rollback loop
/// (`Trainer::run_recoverable`).
#[derive(Clone, Debug)]
pub struct HealthPolicy {
    /// Healthy-loss window the divergence detector compares against: a
    /// round is divergent when its loss exceeds `divergence_factor ×`
    /// the rolling median of the last `divergence_window` healthy
    /// losses. `0` disables divergence detection (non-finite values
    /// still trip the sentinels).
    pub divergence_window: usize,
    /// Multiple of the rolling median loss that counts as divergence.
    pub divergence_factor: f64,
    /// Consecutive failed rounds tolerated before training aborts with
    /// a diagnostic.
    pub max_retries: u32,
    /// Learning-rate multiplier applied on each rollback (compounds
    /// across consecutive failures, resets after a healthy round).
    pub lr_backoff: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            divergence_window: 16,
            divergence_factor: 10.0,
            max_retries: 3,
            lr_backoff: 0.5,
        }
    }
}

/// How the engine chooses between direct and FFT convolution (§IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConvPolicy {
    /// Time both per distinct layer geometry and keep the winner — the
    /// paper's layerwise autotuning.
    #[default]
    Autotune,
    /// Always direct convolution.
    ForceDirect,
    /// Always FFT convolution.
    ForceFft,
}

/// How the engine obtains its execution plan (method, pad, fan-out
/// per conv edge) when cost-model planning is enabled
/// ([`TrainConfig::plan`]).
///
/// A plan *overrides* [`ConvPolicy`]: with a plan present the
/// per-edge methods and pads come from the plan and `conv` is
/// ignored. Without one (`plan: None`, the default) the engine keeps
/// its legacy behaviour — `ConvPolicy` methods, `good_shape` pads,
/// the configured `fft_threads` fan-out.
#[derive(Clone, Debug)]
pub enum PlanPolicy {
    /// Plan at construction by pricing the `znn-theory` FLOP model
    /// through the planner's `znn-sim` machine model, then calibrate
    /// that model online from measured round times and re-plan the
    /// `fft_threads` fan-out when predictions drift (bit-safe: the
    /// fan-out is pinned bitwise-identical across all values). Share
    /// the [`znn_plan::Planner`] to read its calibration trajectory.
    Auto(Arc<znn_plan::Planner>),
    /// Execute a fixed, externally supplied plan — reproducing a
    /// previously reported plan, or pinning one strategy for A/B
    /// comparison. No calibration, no re-planning.
    ///
    /// Pads must be valid engine transform shapes: at least the
    /// from-node shape on every axis, even (or unit) packed axis, and
    /// shared by all out-edges of a node (use
    /// [`znn_plan::NetPlan::force`] or a planner-produced plan; the
    /// engine panics at construction on an invalid pad).
    Fixed(Arc<znn_plan::NetPlan>),
}

/// Training-engine configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Worker threads (the paper's "predetermined number of workers").
    pub workers: usize,
    /// Global queue policy (§VI-A default, §X alternatives).
    pub queue: QueuePolicy,
    /// Use the §X work-stealing scheduler instead of the global
    /// priority queue (priorities are then ignored).
    pub work_stealing: bool,
    /// Worker cap for intra-transform FFT line parallelism. `None`
    /// (the default) shares the scheduler's thread budget: transforms
    /// may fan out across up to [`TrainConfig::workers`] chunks, which
    /// run on the task's own thread and on idle scheduler workers
    /// donating to the engine's fork-join pool — never on extra OS
    /// threads. `Some(1)` forces transforms serial; `Some(n)` caps the
    /// fan-out at `n` chunks. Transforms are bit-for-bit identical for
    /// every value.
    pub fft_threads: Option<usize>,
    /// SGD learning rate η.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables; classic heavy-ball).
    pub momentum: f32,
    /// L2 weight decay coefficient (0 disables).
    pub weight_decay: f32,
    /// Convolution method selection (ignored when [`TrainConfig::plan`]
    /// is set — the plan carries per-edge methods).
    pub conv: ConvPolicy,
    /// Cost-model execution planning; `None` (the default) keeps the
    /// legacy [`ConvPolicy`]-driven behaviour.
    pub plan: Option<PlanPolicy>,
    /// Memoize FFTs of images and kernels across passes (Table II).
    pub memoize_fft: bool,
    /// Loss function.
    pub loss: Loss,
    /// Dropout probability on hidden transfer edges (§XI extension);
    /// `None` disables. Inverted dropout: outputs scale by `1/(1-p)` at
    /// train time, inference needs no correction.
    pub dropout: Option<f32>,
    /// Seed for parameter init and dropout masks.
    pub seed: u64,
    /// The §VII-C recycling pools every hot-path buffer is leased from:
    /// images, half-spectra, FFT scratch, dropout masks, direct-conv
    /// outputs. The default is the process-wide [`PoolSet::global`], so
    /// all engines in a process share one flat footprint and
    /// steady-state rounds allocate nothing; `None` falls back to plain
    /// `Vec` allocation (the pre-pool behaviour, kept for ablation and
    /// the CLI's `--no-pool`). Pooling never changes a computed bit.
    pub pools: Option<Arc<PoolSet>>,
    /// Durable-checkpoint settings; `None` (the default) trains
    /// without touching disk.
    pub checkpoint: Option<CheckpointConfig>,
    /// Health-sentinel thresholds for divergence detection and
    /// rollback.
    pub health: HealthPolicy,
    /// Deterministic fault-injection plan (tests and the `fault_soak`
    /// bench). `None` — the default and the production setting — costs
    /// one pointer check per potential fault site.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue: QueuePolicy::Priority,
            work_stealing: false,
            fft_threads: None,
            learning_rate: 0.01,
            momentum: 0.0,
            weight_decay: 0.0,
            conv: ConvPolicy::Autotune,
            plan: None,
            memoize_fft: true,
            loss: Loss::Mse,
            dropout: None,
            seed: 0x5EED,
            pools: Some(PoolSet::global()),
            checkpoint: None,
            health: HealthPolicy::default(),
            faults: None,
        }
    }
}

impl TrainConfig {
    /// A deterministic, single-purpose config for tests: direct conv,
    /// no momentum/decay/dropout.
    pub fn test_default(workers: usize) -> Self {
        TrainConfig {
            workers,
            conv: ConvPolicy::ForceDirect,
            memoize_fft: false,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TrainConfig::default();
        assert!(c.workers >= 1);
        assert_eq!(c.conv, ConvPolicy::Autotune);
        assert!(c.plan.is_none(), "planning is opt-in");
        assert!(c.memoize_fft);
        assert!(c.dropout.is_none());
        // FFT line parallelism shares the scheduler's budget by default
        assert!(c.fft_threads.is_none());
        // fault tolerance machinery is fully off by default
        assert!(c.checkpoint.is_none());
        assert!(c.faults.is_none());
        assert!(c.health.max_retries >= 1);
        // hot-path buffers lease from the process-wide pool by default
        assert!(c
            .pools
            .as_ref()
            .is_some_and(|p| Arc::ptr_eq(p, &PoolSet::global())));
    }

    #[test]
    fn test_default_pins_determinism_knobs() {
        let c = TrainConfig::test_default(2);
        assert_eq!(c.workers, 2);
        assert_eq!(c.conv, ConvPolicy::ForceDirect);
        assert!(!c.memoize_fft);
    }
}
