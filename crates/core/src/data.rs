//! Synthetic training data (the substitution for the paper's EM /
//! ImageNet volumes — see DESIGN.md).
//!
//! Throughput experiments only need correctly-shaped samples; the
//! convergence tests and the boundary-detection example use
//! [`BlobsDataset`], a procedural stand-in for the neuronal boundary
//! detection task of the paper's own applications [13][23]: volumes
//! filled with soft spheres ("cell bodies") whose thresholded rims form
//! the target boundary map.

use znn_tensor::{ops, Image, Tensor3, Vec3};

/// A source of (inputs, targets) training pairs.
pub trait Dataset {
    /// The `round`-th sample: one image per network input node and one
    /// target per output node.
    fn sample(&mut self, round: u64) -> (Vec<Image>, Vec<Image>);
}

/// Pure random fields — shape-correct data for throughput benchmarks.
pub struct RandomDataset {
    /// Input patch shape.
    pub input_shape: Vec3,
    /// Output patch shape.
    pub output_shape: Vec3,
    /// Number of input nodes.
    pub inputs: usize,
    /// Number of output nodes.
    pub outputs: usize,
    /// Base seed.
    pub seed: u64,
}

impl Dataset for RandomDataset {
    fn sample(&mut self, round: u64) -> (Vec<Image>, Vec<Image>) {
        let ins = (0..self.inputs)
            .map(|i| ops::random(self.input_shape, self.seed ^ round ^ (i as u64) << 32))
            .collect();
        let outs = (0..self.outputs)
            .map(|i| {
                ops::random(self.output_shape, !self.seed ^ round ^ (i as u64) << 32)
                    .map(|v| if v > 0.0 { 1.0 } else { 0.0 })
            })
            .collect();
        (ins, outs)
    }
}

/// Procedural "boundary detection" volumes.
///
/// Each sample scatters a few soft spheres in the input volume; the
/// input voxel value is the summed soft density plus noise, and the
/// target marks voxels near a sphere *surface* — a learnable local
/// edge-detection task with the flavour of the connectomics workloads
/// ZNN was built for.
pub struct BlobsDataset {
    /// Input patch shape.
    pub input_shape: Vec3,
    /// Output patch shape (centered crop of the full target volume).
    pub output_shape: Vec3,
    /// Number of spheres per volume.
    pub blobs: usize,
    /// Noise amplitude added to the input.
    pub noise: f32,
    /// Base seed.
    pub seed: u64,
}

impl BlobsDataset {
    fn build(&self, round: u64) -> (Image, Image) {
        let n = self.input_shape;
        let seed = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ round;
        // sphere centers and radii
        let centers: Vec<(f32, f32, f32, f32)> = (0..self.blobs)
            .map(|b| {
                let r = |j: u64| (ops::splitmix_f32(seed, b as u64 * 7 + j) + 1.0) * 0.5;
                (
                    r(0) * n[0] as f32,
                    r(1) * n[1] as f32,
                    r(2) * n[2] as f32,
                    2.0 + r(3) * 0.25 * n.0.iter().copied().min().unwrap_or(4) as f32,
                )
            })
            .collect();
        let mut input = Tensor3::<f32>::zeros(n);
        let mut boundary = Tensor3::<f32>::zeros(n);
        for at in n.iter() {
            let mut density = 0.0f32;
            let mut min_surface = f32::INFINITY;
            for &(cx, cy, cz, r) in &centers {
                let d = ((at[0] as f32 - cx).powi(2)
                    + (at[1] as f32 - cy).powi(2)
                    + (at[2] as f32 - cz).powi(2))
                .sqrt();
                density += (-((d / r).powi(2))).exp();
                min_surface = min_surface.min((d - r).abs());
            }
            let noise = self.noise * ops::splitmix_f32(seed ^ 0xBEEF, n.offset(at) as u64);
            input[at] = density + noise;
            boundary[at] = if min_surface < 1.0 { 1.0 } else { 0.0 };
        }
        (input, boundary)
    }
}

impl Dataset for BlobsDataset {
    fn sample(&mut self, round: u64) -> (Vec<Image>, Vec<Image>) {
        let (input, boundary) = self.build(round);
        // the target is the centered crop matching the output patch
        let n = self.input_shape;
        let o = self.output_shape;
        let at = Vec3::new((n[0] - o[0]) / 2, (n[1] - o[1]) / 2, (n[2] - o[2]) / 2);
        let target = znn_tensor::pad::crop(&boundary, at, o);
        (vec![input], vec![target])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dataset_shapes_and_determinism() {
        let mut d = RandomDataset {
            input_shape: Vec3::cube(6),
            output_shape: Vec3::cube(2),
            inputs: 2,
            outputs: 1,
            seed: 5,
        };
        let (i1, o1) = d.sample(3);
        let (i2, o2) = d.sample(3);
        assert_eq!(i1.len(), 2);
        assert_eq!(o1.len(), 1);
        assert_eq!(i1[0].shape(), Vec3::cube(6));
        assert_eq!(o1[0].shape(), Vec3::cube(2));
        assert_eq!(i1[0], i2[0]);
        assert_eq!(o1[0], o2[0]);
        let (i3, _) = d.sample(4);
        assert_ne!(i1[0], i3[0], "different rounds differ");
    }

    #[test]
    fn random_targets_are_binary() {
        let mut d = RandomDataset {
            input_shape: Vec3::cube(4),
            output_shape: Vec3::cube(4),
            inputs: 1,
            outputs: 1,
            seed: 9,
        };
        let (_, o) = d.sample(0);
        assert!(o[0].as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn blobs_have_signal_and_boundaries() {
        let mut d = BlobsDataset {
            input_shape: Vec3::cube(12),
            output_shape: Vec3::cube(6),
            blobs: 3,
            noise: 0.05,
            seed: 11,
        };
        let (ins, outs) = d.sample(0);
        assert_eq!(ins[0].shape(), Vec3::cube(12));
        assert_eq!(outs[0].shape(), Vec3::cube(6));
        // the input has structure (nonconstant) and the target is binary
        // with at least some boundary voxels across a few samples
        assert!(ins[0].as_slice().iter().any(|&v| v > 0.5));
        let mut boundary_voxels = 0;
        for round in 0..4 {
            let (_, outs) = d.sample(round);
            assert!(outs[0].as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
            boundary_voxels += outs[0].as_slice().iter().filter(|&&v| v == 1.0).count();
        }
        assert!(boundary_voxels > 0, "no boundary voxels generated");
    }
}
