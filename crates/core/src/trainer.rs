//! A training-loop driver on top of [`crate::Znn`]: datasets, learning
//! rate schedules, progress reporting, and parameter checkpoints.
//!
//! The engine itself (following the paper) only knows about single
//! rounds; this module packages the loop every user writes anyway.

use crate::data::Dataset;
use crate::engine::Znn;
use znn_graph::init::ParamSet;

/// Learning-rate schedules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant η.
    Constant,
    /// `η · decay^(round / step)` (staircase exponential decay).
    StepDecay {
        /// Multiplier applied every `every` rounds.
        decay: f32,
        /// Interval in rounds.
        every: u64,
    },
    /// Linear warm-up from `η/10` over the given number of rounds, then
    /// constant.
    Warmup {
        /// Warm-up length in rounds.
        rounds: u64,
    },
}

impl LrSchedule {
    /// The multiplier applied to the base learning rate at `round`.
    pub fn factor(&self, round: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { decay, every } => {
                decay.powi((round / every.max(1)) as i32)
            }
            LrSchedule::Warmup { rounds } => {
                if rounds == 0 || round >= rounds {
                    1.0
                } else {
                    0.1 + 0.9 * (round as f32 / rounds as f32)
                }
            }
        }
    }
}

/// Progress record for one reporting window.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// First round of the window.
    pub round: u64,
    /// Mean loss over the window.
    pub mean_loss: f64,
    /// Learning-rate factor in effect.
    pub lr_factor: f32,
}

/// The training loop driver.
///
/// The engine's learning rate is fixed at construction, so the schedule
/// is applied by shrinking the per-round target residual (`t' = y +
/// f·(t−y)`), which scales the MSE gradient by exactly the schedule
/// factor — equivalent to scaling the SGD step.
pub struct Trainer<'a, D: Dataset> {
    znn: &'a Znn,
    data: D,
    schedule: LrSchedule,
    round: u64,
    history: Vec<f64>,
}

impl<'a, D: Dataset> Trainer<'a, D> {
    /// A trainer for `znn` drawing samples from `data`.
    pub fn new(znn: &'a Znn, data: D) -> Self {
        Trainer {
            znn,
            data,
            schedule: LrSchedule::Constant,
            round: 0,
            history: Vec::new(),
        }
    }

    /// Sets the learning-rate schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Runs `rounds` training rounds; invokes `report` every
    /// `report_every` rounds with windowed statistics.
    pub fn run(
        &mut self,
        rounds: u64,
        report_every: u64,
        mut report: impl FnMut(Progress),
    ) -> f64 {
        let mut window = Vec::new();
        let mut last = 0.0;
        for _ in 0..rounds {
            let factor = self.schedule.factor(self.round);
            let (inputs, mut targets) = self.data.sample(self.round);
            // schedule-by-target-scaling: for MSE-family losses, scaling
            // the residual scales the gradient; for exactness across
            // losses we instead scale by running extra no-op rounds —
            // here we take the simple route of scaling targets toward
            // the current output only when factor != 1, which reduces
            // the effective step. Constant schedules take the fast path.
            last = if (factor - 1.0).abs() < f32::EPSILON {
                self.znn.train_step(&inputs, &targets)
            } else {
                // blend target toward prediction: t' = y + f·(t − y)
                let preds = self.znn.forward(&inputs);
                for (t, y) in targets.iter_mut().zip(&preds) {
                    let mut blended = y.clone();
                    for (b, (&tv, &yv)) in blended
                        .as_mut_slice()
                        .iter_mut()
                        .zip(t.as_slice().iter().zip(y.as_slice()))
                    {
                        *b = yv + factor * (tv - yv);
                    }
                    *t = blended;
                }
                self.znn.train_step(&inputs, &targets)
            };
            window.push(last);
            self.history.push(last);
            self.round += 1;
            if self.round.is_multiple_of(report_every.max(1)) {
                report(Progress {
                    round: self.round - window.len() as u64,
                    mean_loss: window.iter().sum::<f64>() / window.len() as f64,
                    lr_factor: factor,
                });
                window.clear();
            }
        }
        last
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// Full per-round loss history.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Parameter checkpoint (forces pending updates).
    pub fn checkpoint(&self) -> ParamSet {
        self.znn.params()
    }

    /// Restores a checkpoint.
    pub fn restore(&self, params: &ParamSet) {
        self.znn.set_params(params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomDataset, TrainConfig};
    use znn_graph::NetBuilder;
    use znn_ops::Transfer;
    use znn_tensor::Vec3;

    fn tiny() -> Znn {
        let (g, _) = NetBuilder::new("tr", 1)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Tanh)
            .conv(1, Vec3::cube(2))
            .build()
            .unwrap();
        Znn::new(g, Vec3::cube(2), TrainConfig::test_default(1)).unwrap()
    }

    fn data(znn: &Znn) -> RandomDataset {
        RandomDataset {
            input_shape: znn.input_shape(),
            output_shape: Vec3::cube(2),
            inputs: 1,
            outputs: 1,
            seed: 7,
        }
    }

    #[test]
    fn schedules_produce_expected_factors() {
        assert_eq!(LrSchedule::Constant.factor(100), 1.0);
        let s = LrSchedule::StepDecay {
            decay: 0.5,
            every: 10,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
        let w = LrSchedule::Warmup { rounds: 10 };
        assert!((w.factor(0) - 0.1).abs() < 1e-6);
        assert!(w.factor(5) < 1.0);
        assert_eq!(w.factor(10), 1.0);
    }

    #[test]
    fn run_reports_windows_and_counts_rounds() {
        let znn = tiny();
        let mut trainer = Trainer::new(&znn, data(&znn));
        let mut reports = Vec::new();
        trainer.run(9, 3, |p| reports.push(p));
        assert_eq!(trainer.rounds_done(), 9);
        assert_eq!(reports.len(), 3);
        assert_eq!(trainer.history().len(), 9);
        assert!(reports.iter().all(|p| p.mean_loss.is_finite()));
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let znn = tiny();
        let mut trainer = Trainer::new(&znn, data(&znn));
        let before = trainer.checkpoint();
        trainer.run(5, 5, |_| {});
        let after = trainer.checkpoint();
        assert!(before.max_abs_diff(&after) > 0.0, "training changed nothing");
        trainer.restore(&before);
        assert_eq!(trainer.checkpoint().max_abs_diff(&before), 0.0);
    }

    #[test]
    fn warmup_changes_the_early_trajectory() {
        let a = tiny();
        let b = tiny();
        let mut t1 = Trainer::new(&a, data(&a));
        let mut t2 = Trainer::new(&b, data(&b)).with_schedule(LrSchedule::Warmup { rounds: 8 });
        t1.run(4, 4, |_| {});
        t2.run(4, 4, |_| {});
        let d = a.params().max_abs_diff(&b.params());
        assert!(d > 0.0, "warm-up had no effect");
    }
}
