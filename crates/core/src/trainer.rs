//! A training-loop driver on top of [`crate::Znn`]: datasets, learning
//! rate schedules, progress reporting, and parameter checkpoints.
//!
//! The engine itself (following the paper) only knows about single
//! rounds; this module packages the loop every user writes anyway.

use crate::checkpoint::{latest_valid, Checkpoint};
use crate::data::Dataset;
use crate::engine::Znn;
use znn_fault::FaultKind;
use znn_graph::init::ParamSet;
use znn_tensor::Image;

/// Learning-rate schedules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant η.
    Constant,
    /// `η · decay^(round / step)` (staircase exponential decay).
    StepDecay {
        /// Multiplier applied every `every` rounds.
        decay: f32,
        /// Interval in rounds.
        every: u64,
    },
    /// Linear warm-up from `η/10` over the given number of rounds, then
    /// constant.
    Warmup {
        /// Warm-up length in rounds.
        rounds: u64,
    },
}

impl LrSchedule {
    /// The multiplier applied to the base learning rate at `round`.
    pub fn factor(&self, round: u64) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { decay, every } => {
                decay.powi((round / every.max(1)) as i32)
            }
            LrSchedule::Warmup { rounds } => {
                if rounds == 0 || round >= rounds {
                    1.0
                } else {
                    0.1 + 0.9 * (round as f32 / rounds as f32)
                }
            }
        }
    }
}

/// Progress record for one reporting window.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// First round of the window.
    pub round: u64,
    /// Mean loss over the window.
    pub mean_loss: f64,
    /// Learning-rate factor in effect.
    pub lr_factor: f32,
}

/// How a recoverable training run ended (other than in error).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrainOutcome {
    /// All requested rounds ran (possibly after recovered faults).
    Completed {
        /// Loss of the final round.
        final_loss: f64,
    },
    /// A simulated crash (fault injection, [`FaultKind::Crash`]) ended
    /// the run between rounds; resume from the checkpoint directory.
    Interrupted {
        /// Rounds completed when the crash fired.
        at_round: u64,
    },
}

/// Why a recoverable training run gave up.
#[derive(Debug)]
pub enum TrainError {
    /// The same round failed health checks more than
    /// [`crate::HealthPolicy::max_retries`] times in a row, each retry
    /// starting from the last good state with a backed-off learning
    /// rate.
    RetriesExhausted {
        /// The round that kept failing (1-based).
        round: u64,
        /// Rollback-and-retry attempts made.
        retries: u32,
        /// What the last failure looked like.
        diagnostic: String,
    },
    /// Writing a durable checkpoint failed.
    Checkpoint(std::io::Error),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::RetriesExhausted {
                round,
                retries,
                diagnostic,
            } => write!(
                f,
                "training aborted at round {round} after {retries} rollback retries: {diagnostic}"
            ),
            TrainError::Checkpoint(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// In-memory copy of the last known-good training state, captured
/// after every healthy round (cheap next to a round: two buffer
/// copies, no disk).
struct LastGood {
    round: u64,
    params: ParamSet,
    velocities: Vec<Option<Image>>,
}

/// The training loop driver.
///
/// The engine's learning rate is fixed at construction, so the schedule
/// is applied by shrinking the per-round target residual (`t' = y +
/// f·(t−y)`), which scales the MSE gradient by exactly the schedule
/// factor — equivalent to scaling the SGD step.
pub struct Trainer<'a, D: Dataset> {
    znn: &'a Znn,
    data: D,
    schedule: LrSchedule,
    round: u64,
    history: Vec<f64>,
}

impl<'a, D: Dataset> Trainer<'a, D> {
    /// A trainer for `znn` drawing samples from `data`.
    pub fn new(znn: &'a Znn, data: D) -> Self {
        Trainer {
            znn,
            data,
            schedule: LrSchedule::Constant,
            round: 0,
            history: Vec::new(),
        }
    }

    /// Sets the learning-rate schedule.
    pub fn with_schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Runs `rounds` training rounds; invokes `report` every
    /// `report_every` rounds with windowed statistics.
    pub fn run(
        &mut self,
        rounds: u64,
        report_every: u64,
        mut report: impl FnMut(Progress),
    ) -> f64 {
        let mut window = Vec::new();
        let mut last = 0.0;
        for _ in 0..rounds {
            let factor = self.schedule.factor(self.round);
            let (inputs, mut targets) = self.data.sample(self.round);
            // schedule-by-target-scaling: for MSE-family losses, scaling
            // the residual scales the gradient; for exactness across
            // losses we instead scale by running extra no-op rounds —
            // here we take the simple route of scaling targets toward
            // the current output only when factor != 1, which reduces
            // the effective step. Constant schedules take the fast path.
            last = if (factor - 1.0).abs() < f32::EPSILON {
                self.znn.train_step(&inputs, &targets)
            } else {
                // blend target toward prediction: t' = y + f·(t − y)
                let preds = self.znn.forward(&inputs);
                for (t, y) in targets.iter_mut().zip(&preds) {
                    let mut blended = y.clone();
                    for (b, (&tv, &yv)) in blended
                        .as_mut_slice()
                        .iter_mut()
                        .zip(t.as_slice().iter().zip(y.as_slice()))
                    {
                        *b = yv + factor * (tv - yv);
                    }
                    *t = blended;
                }
                self.znn.train_step(&inputs, &targets)
            };
            window.push(last);
            self.history.push(last);
            self.round += 1;
            if self.round.is_multiple_of(report_every.max(1)) {
                report(Progress {
                    round: self.round - window.len() as u64,
                    mean_loss: window.iter().sum::<f64>() / window.len() as f64,
                    lr_factor: factor,
                });
                window.clear();
            }
        }
        last
    }

    /// Resumes from the newest valid snapshot in the configured
    /// checkpoint directory ([`crate::CheckpointConfig::dir`]), if any:
    /// parameters, optimizer velocities and the round counter are all
    /// restored, so the continuation is bit-identical to a run that was
    /// never interrupted. Returns the restored round, or `None` when no
    /// checkpointing is configured or no valid snapshot exists (corrupt
    /// ones are skipped, falling back to the previous snapshot).
    pub fn resume(&mut self) -> std::io::Result<Option<u64>> {
        let Some(cc) = &self.znn.config().checkpoint else {
            return Ok(None);
        };
        match latest_valid(&cc.dir)? {
            Some(c) => {
                self.znn.set_params(&c.params);
                self.znn.set_optimizer_state(&c.velocities);
                self.znn.set_round(c.round);
                self.round = c.round;
                Ok(Some(c.round))
            }
            None => Ok(None),
        }
    }

    /// Like [`Trainer::run`], but fault tolerant. Runs `rounds` rounds
    /// with three layers of protection:
    ///
    /// 1. **Panic containment** — a panicking task fails its round
    ///    ([`Znn::try_train_step`]), not the process.
    /// 2. **Health sentinels** — after each round: the loss must be
    ///    finite, must not exceed [`crate::HealthPolicy`]'s
    ///    `divergence_factor` × the rolling median of recent healthy
    ///    losses, and every parameter must be finite.
    /// 3. **Rollback with backoff** — an unhealthy round rolls back to
    ///    the last good state (in memory; captured after every healthy
    ///    round) and retries the *same* round with the learning rate
    ///    scaled down by `lr_backoff` per consecutive failure. More
    ///    than `max_retries` consecutive failures abort with a
    ///    diagnostic; any healthy round resets the backoff.
    ///
    /// With [`crate::CheckpointConfig`] set, durable snapshots are
    /// written every `every` rounds and at the end of the run.
    pub fn run_recoverable(
        &mut self,
        rounds: u64,
        report_every: u64,
        mut report: impl FnMut(Progress),
    ) -> Result<TrainOutcome, TrainError> {
        let health = self.znn.config().health.clone();
        let start = self.round;
        let mut window = Vec::new();
        let mut healthy_losses: Vec<f64> = Vec::new();
        let mut last = 0.0;
        let mut consecutive_failures: u32 = 0;
        let mut backoff = 1.0f64;
        let mut last_good = self.capture_good();
        while self.round - start < rounds {
            let factor = self.schedule.factor(self.round) * backoff as f32;
            let (inputs, mut targets) = self.data.sample(self.round);
            if (factor - 1.0).abs() >= f32::EPSILON {
                self.blend_targets(factor, &inputs, &mut targets);
            }
            let diagnostic = match self.znn.try_train_step(&inputs, &targets) {
                Err(e) => Some(e.to_string()),
                Ok(loss) if !loss.is_finite() => {
                    Some(format!("non-finite loss {loss} at round {}", self.round + 1))
                }
                Ok(loss) if diverged(loss, &healthy_losses, &health) => Some(format!(
                    "loss {loss:.3e} exceeds {}x the rolling median at round {}",
                    health.divergence_factor,
                    self.round + 1
                )),
                Ok(loss) if !self.znn.params_all_finite() => Some(format!(
                    "non-finite parameter after round {} (loss {loss:.3e})",
                    self.round + 1
                )),
                Ok(loss) => {
                    last = loss;
                    None
                }
            };
            if let Some(diagnostic) = diagnostic {
                consecutive_failures += 1;
                if consecutive_failures > health.max_retries {
                    // leave the engine on the last good state, not the
                    // poisoned one, so the caller can keep using it
                    self.rollback(&last_good);
                    return Err(TrainError::RetriesExhausted {
                        round: last_good.round + 1,
                        retries: consecutive_failures - 1,
                        diagnostic,
                    });
                }
                self.rollback(&last_good);
                backoff *= health.lr_backoff;
                continue;
            }
            // healthy round: advance, re-arm the safety net
            consecutive_failures = 0;
            backoff = 1.0;
            self.round += 1;
            window.push(last);
            self.history.push(last);
            healthy_losses.push(last);
            last_good = self.capture_good();
            if self.round.is_multiple_of(report_every.max(1)) {
                report(Progress {
                    round: self.round - window.len() as u64,
                    mean_loss: window.iter().sum::<f64>() / window.len() as f64,
                    lr_factor: factor,
                });
                window.clear();
            }
            let cc = self.znn.config().checkpoint.clone();
            if let Some(cc) = &cc {
                if cc.every > 0 && self.round.is_multiple_of(cc.every) {
                    self.write_checkpoint(cc).map_err(TrainError::Checkpoint)?;
                }
            }
            // fault injection: a crash between rounds — the run ends
            // here with whatever snapshots already reached disk, and a
            // later process resumes from them
            if let Some(faults) = &self.znn.config().faults {
                if faults.take(FaultKind::Crash, self.round) {
                    return Ok(TrainOutcome::Interrupted {
                        at_round: self.round,
                    });
                }
            }
        }
        if let Some(cc) = self.znn.config().checkpoint.clone() {
            self.write_checkpoint(&cc).map_err(TrainError::Checkpoint)?;
        }
        Ok(TrainOutcome::Completed { final_loss: last })
    }

    /// Blends targets toward the current prediction (`t' = y + f·(t −
    /// y)`), scaling the MSE gradient by `factor`.
    fn blend_targets(&self, factor: f32, inputs: &[Image], targets: &mut [Image]) {
        let preds = self.znn.forward(inputs);
        for (t, y) in targets.iter_mut().zip(&preds) {
            let mut blended = y.clone();
            for (b, (&tv, &yv)) in blended
                .as_mut_slice()
                .iter_mut()
                .zip(t.as_slice().iter().zip(y.as_slice()))
            {
                *b = yv + factor * (tv - yv);
            }
            *t = blended;
        }
    }

    fn capture_good(&self) -> LastGood {
        LastGood {
            round: self.round,
            params: self.znn.params(),
            velocities: self.znn.optimizer_state(),
        }
    }

    fn rollback(&mut self, good: &LastGood) {
        self.znn.set_params(&good.params);
        self.znn.set_optimizer_state(&good.velocities);
        self.znn.set_round(good.round);
        self.round = good.round;
    }

    fn write_checkpoint(&self, cc: &crate::CheckpointConfig) -> std::io::Result<()> {
        let ckpt = Checkpoint {
            round: self.round,
            params: self.znn.params(),
            velocities: self.znn.optimizer_state(),
        };
        ckpt.write_atomic(&cc.dir, cc.keep)?;
        Ok(())
    }

    /// Rounds completed so far.
    pub fn rounds_done(&self) -> u64 {
        self.round
    }

    /// Full per-round loss history.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Parameter checkpoint (forces pending updates).
    pub fn checkpoint(&self) -> ParamSet {
        self.znn.params()
    }

    /// Restores a checkpoint.
    pub fn restore(&self, params: &ParamSet) {
        self.znn.set_params(params);
    }
}

/// True when `loss` exceeds the policy's multiple of the rolling
/// median of recent healthy losses. Needs a full window before it can
/// trip — early training is too noisy to judge — and floors the median
/// at `1e-12` so a perfectly-converged run (median 0) doesn't flag
/// every subsequent nonzero loss.
fn diverged(loss: f64, healthy: &[f64], health: &crate::HealthPolicy) -> bool {
    let w = health.divergence_window;
    if w == 0 || healthy.len() < w {
        return false;
    }
    let mut recent: Vec<f64> = healthy[healthy.len() - w..].to_vec();
    recent.sort_by(|a, b| a.partial_cmp(b).expect("healthy losses are finite"));
    let median = recent[w / 2];
    loss > health.divergence_factor * median.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomDataset, TrainConfig};
    use znn_graph::NetBuilder;
    use znn_ops::Transfer;
    use znn_tensor::Vec3;

    fn tiny() -> Znn {
        let (g, _) = NetBuilder::new("tr", 1)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Tanh)
            .conv(1, Vec3::cube(2))
            .build()
            .unwrap();
        Znn::new(g, Vec3::cube(2), TrainConfig::test_default(1)).unwrap()
    }

    fn data(znn: &Znn) -> RandomDataset {
        RandomDataset {
            input_shape: znn.input_shape(),
            output_shape: Vec3::cube(2),
            inputs: 1,
            outputs: 1,
            seed: 7,
        }
    }

    #[test]
    fn schedules_produce_expected_factors() {
        assert_eq!(LrSchedule::Constant.factor(100), 1.0);
        let s = LrSchedule::StepDecay {
            decay: 0.5,
            every: 10,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
        let w = LrSchedule::Warmup { rounds: 10 };
        assert!((w.factor(0) - 0.1).abs() < 1e-6);
        assert!(w.factor(5) < 1.0);
        assert_eq!(w.factor(10), 1.0);
    }

    #[test]
    fn run_reports_windows_and_counts_rounds() {
        let znn = tiny();
        let mut trainer = Trainer::new(&znn, data(&znn));
        let mut reports = Vec::new();
        trainer.run(9, 3, |p| reports.push(p));
        assert_eq!(trainer.rounds_done(), 9);
        assert_eq!(reports.len(), 3);
        assert_eq!(trainer.history().len(), 9);
        assert!(reports.iter().all(|p| p.mean_loss.is_finite()));
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let znn = tiny();
        let mut trainer = Trainer::new(&znn, data(&znn));
        let before = trainer.checkpoint();
        trainer.run(5, 5, |_| {});
        let after = trainer.checkpoint();
        assert!(before.max_abs_diff(&after) > 0.0, "training changed nothing");
        trainer.restore(&before);
        assert_eq!(trainer.checkpoint().max_abs_diff(&before), 0.0);
    }

    #[test]
    fn warmup_changes_the_early_trajectory() {
        let a = tiny();
        let b = tiny();
        let mut t1 = Trainer::new(&a, data(&a));
        let mut t2 = Trainer::new(&b, data(&b)).with_schedule(LrSchedule::Warmup { rounds: 8 });
        t1.run(4, 4, |_| {});
        t2.run(4, 4, |_| {});
        let d = a.params().max_abs_diff(&b.params());
        assert!(d > 0.0, "warm-up had no effect");
    }
}
