//! The ZNN training engine: task-parallel gradient learning for 3D
//! ConvNets on shared-memory machines (the paper's primary
//! contribution).
//!
//! [`Znn`] executes a [`znn_graph::Graph`] as the paper describes:
//!
//! * the computation decomposes into **per-edge forward, backward and
//!   update tasks** scheduled on a global priority queue (§V–VI), with
//!   priorities from the two distance orderings of `znn-graph`;
//! * convergent convolutions accumulate through the **wait-free
//!   concurrent summation** of Algorithm 4 — in the *frequency domain*
//!   when a node's incoming edges share a transform geometry, so a node
//!   pays one inverse FFT regardless of fan-in (§IV);
//! * update tasks run at the lowest priority and are **forced** by the
//!   next round's forward tasks (Algorithms 1–3), so parameters are
//!   written cache-hot right before use and no thread ever blocks;
//! * per-layer **autotuning** picks direct vs FFT convolution, and FFT
//!   **memoization** reuses forward-pass transforms in the backward and
//!   update passes (Table II);
//! * image buffers are recycled through the pooled allocator of
//!   §VII-C.
//!
//! The engine supports dense and sparse ("skip kernel") training,
//! dropout and multi-scale topologies (§XI extensions), SGD with
//! momentum and weight decay, and exposes per-round scheduler and
//! memory statistics for the paper's experiments.
//!
//! Training is **fault tolerant** (see `docs/ARCHITECTURE.md` §Fault
//! tolerance): a panicking task poisons its round instead of the
//! process ([`Znn::try_train_step`]), [`checkpoint`] persists durable
//! CRC-checked snapshots, and [`Trainer::run_recoverable`] adds health
//! sentinels with checkpoint rollback and learning-rate backoff. The
//! `znn-fault` crate injects deterministic faults through
//! [`TrainConfig::faults`] to test all of it.

#![warn(missing_docs)]

pub mod checkpoint;
mod config;
mod data;
pub mod dense;
mod engine;
mod state;
mod trainer;

pub use checkpoint::{latest_valid, Checkpoint, CheckpointError};
pub use config::{CheckpointConfig, ConvPolicy, HealthPolicy, PlanPolicy, TrainConfig};
pub use data::{BlobsDataset, Dataset, RandomDataset};
pub use dense::{BlockEvent, Cancelled, DenseConfig, DenseError, DenseNet};
pub use engine::{RoundError, RoundStats, Znn};
pub use trainer::{LrSchedule, Progress, TrainError, TrainOutcome, Trainer};
