//! Serial FLOP counts per layer (Tables I and II).

use crate::DEFAULT_C;

/// Which convolution algorithm a layer's cost is computed for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvAlgorithm {
    /// Direct spatial convolution.
    Direct,
    /// FFT-based convolution without cross-pass reuse.
    Fft,
    /// FFT-based with memoized transforms (Table II, right column).
    FftMemoized,
}

/// FLOPs of one forward/backward/update pass of a layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PassCost {
    /// Forward pass FLOPs.
    pub forward: f64,
    /// Backward pass FLOPs.
    pub backward: f64,
    /// Update pass FLOPs.
    pub update: f64,
}

impl PassCost {
    /// Total FLOPs across passes.
    pub fn total(&self) -> f64 {
        self.forward + self.backward + self.update
    }
}

/// Cost of transforming one `n×n×n` image: `C·n³·log₂(n³) = 3C·n³·log₂ n`.
pub fn fft_image_cost(n: f64, c: f64) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    3.0 * c * n.powi(3) * n.log2()
}

/// A layer of the analytic model. All images in a layer share the
/// (isotropic) input size `n`; convolution layers map `f` inputs to
/// `f_out` outputs with `k³` kernels (output size `n' = n − k + 1`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LayerModel {
    /// Fully connected convolutional layer.
    Conv {
        /// Input image size per axis.
        n: f64,
        /// Kernel size per axis.
        k: f64,
        /// Input width.
        f_in: f64,
        /// Output width.
        f_out: f64,
    },
    /// Transfer-function layer over `f` images of size `n³`.
    Transfer {
        /// Image size per axis.
        n: f64,
        /// Width.
        f: f64,
    },
    /// Max-pooling layer over `f` images of size `n³`.
    MaxPool {
        /// Image size per axis.
        n: f64,
        /// Width.
        f: f64,
    },
    /// Max-filtering layer over `f` images of size `n³`, window `k³`.
    MaxFilter {
        /// Image size per axis.
        n: f64,
        /// Width.
        f: f64,
        /// Window size per axis.
        k: f64,
    },
}

impl LayerModel {
    /// Serial FLOPs of the layer per pass (Table I for nonlinear
    /// layers, Table II for convolutional layers).
    pub fn flops(&self, algo: ConvAlgorithm, c: f64) -> PassCost {
        match *self {
            LayerModel::Conv { n, k, f_in, f_out } => {
                let np = n - k + 1.0;
                match algo {
                    ConvAlgorithm::Direct => {
                        let pass = f_out * f_in * np.powi(3) * k.powi(3);
                        PassCost {
                            forward: pass,
                            backward: pass,
                            update: pass,
                        }
                    }
                    ConvAlgorithm::Fft => {
                        let t = fft_image_cost(n, c);
                        let pw = 4.0 * f_out * f_in * n.powi(3);
                        let all = t * (f_out + f_in + f_out * f_in) + pw;
                        PassCost {
                            forward: all,
                            backward: all,
                            update: all,
                        }
                    }
                    ConvAlgorithm::FftMemoized => {
                        let t = fft_image_cost(n, c);
                        let pw = 4.0 * f_out * f_in * n.powi(3);
                        PassCost {
                            forward: t * (f_out + f_in + f_out * f_in) + pw,
                            backward: t * (f_out + f_in) + pw,
                            update: t * (f_out * f_in) + pw,
                        }
                    }
                }
            }
            LayerModel::Transfer { n, f } => PassCost {
                forward: f * n.powi(3),
                backward: f * n.powi(3),
                update: f * n.powi(3),
            },
            LayerModel::MaxPool { n, f } => PassCost {
                forward: f * n.powi(3),
                backward: f * n.powi(3),
                update: 0.0,
            },
            LayerModel::MaxFilter { n, f, k } => PassCost {
                forward: f * 6.0 * n.powi(3) * k.log2().max(1.0),
                backward: f * n.powi(3),
                update: 0.0,
            },
        }
    }

    /// Shorthand using [`DEFAULT_C`].
    pub fn flops_default(&self, algo: ConvAlgorithm) -> PassCost {
        self.flops(algo, DEFAULT_C)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_conv_matches_table_ii() {
        // Table II total: 3·f'·f·n'³·k³
        let l = LayerModel::Conv {
            n: 20.0,
            k: 5.0,
            f_in: 8.0,
            f_out: 16.0,
        };
        let c = l.flops_default(ConvAlgorithm::Direct);
        let np = 16.0f64;
        let expect = 16.0 * 8.0 * np.powi(3) * 125.0;
        assert_eq!(c.forward, expect);
        assert_eq!(c.total(), 3.0 * expect);
    }

    #[test]
    fn fft_conv_matches_table_ii_totals() {
        let (n, k, f, fp) = (20.0f64, 5.0f64, 8.0f64, 16.0f64);
        let l = LayerModel::Conv {
            n,
            k,
            f_in: f,
            f_out: fp,
        };
        let t = fft_image_cost(n, DEFAULT_C);
        let full = l.flops_default(ConvAlgorithm::Fft);
        // 9C n³ log n [f'+f+f'f] + 12 f'f n³ — note our t = 3C n³ log n
        let expect_total = 3.0 * t * (fp + f + fp * f) + 12.0 * fp * f * n.powi(3);
        assert!((full.total() - expect_total).abs() < 1e-6);
        let memo = l.flops_default(ConvAlgorithm::FftMemoized);
        let expect_memo = 2.0 * t * (fp + f + fp * f) + 12.0 * fp * f * n.powi(3);
        assert!((memo.total() - expect_memo).abs() < 1e-6);
    }

    #[test]
    fn memoization_saves_about_a_third_of_transform_cost() {
        // §IV: "the reduction in complexity is approximately a third"
        // (of the transform terms, for wide layers)
        let l = LayerModel::Conv {
            n: 40.0,
            k: 5.0,
            f_in: 64.0,
            f_out: 64.0,
        };
        let fft = l.flops_default(ConvAlgorithm::Fft).total();
        let memo = l.flops_default(ConvAlgorithm::FftMemoized).total();
        let ratio = memo / fft;
        assert!(
            (0.63..0.75).contains(&ratio),
            "memoized/full ratio {ratio}"
        );
    }

    #[test]
    fn fft_beats_direct_for_large_kernels_only() {
        // the §IV crossover: small k -> direct wins, large k -> FFT wins
        let cost = |k: f64| {
            let l = LayerModel::Conv {
                n: 48.0,
                k,
                f_in: 10.0,
                f_out: 10.0,
            };
            (
                l.flops_default(ConvAlgorithm::Direct).total(),
                l.flops_default(ConvAlgorithm::FftMemoized).total(),
            )
        };
        let (d_small, f_small) = cost(2.0);
        assert!(d_small < f_small, "direct should win at k=2");
        let (d_big, f_big) = cost(11.0);
        assert!(f_big < d_big, "FFT should win at k=11");
    }

    #[test]
    fn crossover_comes_earlier_for_wider_layers() {
        // FFT sharing means wider layers cross over at smaller k (§IV)
        let crossover = |width: f64| {
            (2..40)
                .map(|k| k as f64)
                .find(|&k| {
                    let l = LayerModel::Conv {
                        n: 48.0,
                        k,
                        f_in: width,
                        f_out: width,
                    };
                    l.flops_default(ConvAlgorithm::FftMemoized).total()
                        < l.flops_default(ConvAlgorithm::Direct).total()
                })
                .unwrap_or(40.0)
        };
        assert!(
            crossover(64.0) <= crossover(1.0),
            "wide {} vs single {}",
            crossover(64.0),
            crossover(1.0)
        );
        assert!(crossover(64.0) < 40.0);
    }

    #[test]
    fn table_i_nonlinear_layers() {
        let n = 10.0f64;
        let f = 4.0f64;
        let p = LayerModel::MaxPool { n, f }.flops_default(ConvAlgorithm::Direct);
        assert_eq!(p.forward, f * 1000.0);
        assert_eq!(p.update, 0.0);
        let m = LayerModel::MaxFilter { n, f, k: 4.0 }.flops_default(ConvAlgorithm::Direct);
        assert_eq!(m.forward, f * 6.0 * 1000.0 * 2.0); // log2(4)=2
        let t = LayerModel::Transfer { n, f }.flops_default(ConvAlgorithm::Direct);
        assert_eq!(t.total(), 3.0 * f * 1000.0);
    }
}
