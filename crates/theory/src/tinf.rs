//! Per-layer latency with unboundedly many processors (Tables III–IV).
//!
//! With infinite processors the paper's algorithm does all tasks in a
//! layer in parallel; only the binary-tree collapse of convergent sums
//! keeps a (logarithmic) dependence on layer width.

use crate::flops::{fft_image_cost, ConvAlgorithm, LayerModel, PassCost};

/// `⌈log₂ f⌉` as used by the binary collapse of `f` convergent sums.
fn log2_ceil(f: f64) -> f64 {
    if f <= 1.0 {
        0.0
    } else {
        f.log2().ceil()
    }
}

/// The `T∞` of one layer per pass (Tables III and IV).
pub fn t_inf(layer: &LayerModel, algo: ConvAlgorithm, c: f64) -> PassCost {
    match *layer {
        LayerModel::Conv { n, k, f_in, f_out } => {
            let np = n - k + 1.0;
            match algo {
                ConvAlgorithm::Direct => PassCost {
                    forward: np.powi(3) * k.powi(3) + np.powi(3) * log2_ceil(f_in),
                    backward: np.powi(3) * k.powi(3) + n.powi(3) * log2_ceil(f_out),
                    update: np.powi(3) * k.powi(3),
                },
                ConvAlgorithm::Fft | ConvAlgorithm::FftMemoized => {
                    let t = fft_image_cost(n, c); // = 3C n³ log n
                    let two_t = 2.0 * t; // the paper's 6C n³ log n
                    let upd_t = if algo == ConvAlgorithm::FftMemoized {
                        t // 3C n³ log n (update reuses both spectra)
                    } else {
                        two_t
                    };
                    PassCost {
                        forward: two_t + 4.0 * n.powi(3) * log2_ceil(f_in),
                        backward: two_t + 4.0 * n.powi(3) * log2_ceil(f_out),
                        update: upd_t + 4.0 * n.powi(3),
                    }
                }
            }
        }
        LayerModel::Transfer { n, .. } => PassCost {
            forward: n.powi(3),
            backward: n.powi(3),
            update: n.powi(3),
        },
        LayerModel::MaxPool { n, .. } => PassCost {
            forward: n.powi(3),
            backward: n.powi(3),
            update: 0.0,
        },
        LayerModel::MaxFilter { n, k, .. } => PassCost {
            forward: 6.0 * n.powi(3) * k.log2().max(1.0),
            backward: n.powi(3),
            update: 0.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_C;

    #[test]
    fn t_inf_depends_on_width_only_logarithmically() {
        let layer = |f: f64| LayerModel::Conv {
            n: 24.0,
            k: 5.0,
            f_in: f,
            f_out: f,
        };
        let narrow = t_inf(&layer(2.0), ConvAlgorithm::Direct, DEFAULT_C).forward;
        let wide = t_inf(&layer(128.0), ConvAlgorithm::Direct, DEFAULT_C).forward;
        // 64x width increase must cost only ~log-factor more latency
        assert!(wide < narrow * 8.0, "narrow {narrow} wide {wide}");
    }

    #[test]
    fn serial_cost_grows_quadratically_but_t_inf_does_not() {
        // the §V-A argument: T1 ~ f², T∞ ~ log f, so S∞ diverges with f
        let layer = |f: f64| LayerModel::Conv {
            n: 24.0,
            k: 5.0,
            f_in: f,
            f_out: f,
        };
        let s_inf = |f: f64| {
            let l = layer(f);
            l.flops_default(ConvAlgorithm::Direct).total()
                / t_inf(&l, ConvAlgorithm::Direct, DEFAULT_C).total()
        };
        assert!(s_inf(64.0) > 16.0 * s_inf(2.0) / 4.0);
        assert!(s_inf(64.0) > s_inf(8.0));
    }

    #[test]
    fn memoized_update_halves_transform_latency() {
        let l = LayerModel::Conv {
            n: 24.0,
            k: 5.0,
            f_in: 16.0,
            f_out: 16.0,
        };
        let fft = t_inf(&l, ConvAlgorithm::Fft, DEFAULT_C).update;
        let memo = t_inf(&l, ConvAlgorithm::FftMemoized, DEFAULT_C).update;
        assert!(memo < fft);
        // forward latency is unchanged by memoization (Table III)
        assert_eq!(
            t_inf(&l, ConvAlgorithm::Fft, DEFAULT_C).forward,
            t_inf(&l, ConvAlgorithm::FftMemoized, DEFAULT_C).forward
        );
    }

    #[test]
    fn width_one_layer_has_no_collapse_term() {
        let l = LayerModel::Conv {
            n: 10.0,
            k: 3.0,
            f_in: 1.0,
            f_out: 1.0,
        };
        let t = t_inf(&l, ConvAlgorithm::Direct, DEFAULT_C);
        assert_eq!(t.forward, 8.0f64.powi(3) * 27.0);
    }
}
