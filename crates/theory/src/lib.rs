//! The analytic complexity model of the ZNN paper (§II Table I, §IV
//! Table II, §V-A Tables III–IV and Fig 4).
//!
//! Costs are measured in floating-point operations, exactly as the
//! paper measures them. The model has three levels:
//!
//! * [`flops`] — serial FLOP counts per layer and pass (Tables I–II),
//! * [`tinf`] — per-layer latency with unboundedly many processors
//!   (Tables III–IV),
//! * [`brent`] — network-level `T₁`, `T∞`, `S∞ = T₁/T∞` and the
//!   theoretically achievable speedup bound
//!   `S_P ≥ S∞ / (1 + (S∞−1)/P)` from Brent's theorem (Eq. 1–2, Fig 4).
//!
//! The FFT constant `C` defaults to [`DEFAULT_C`] `= 5`, the value the
//! paper assumes for Fig 4 (footnote 4).

#![warn(missing_docs)]

pub mod brent;
pub mod flops;
pub mod tinf;

pub use brent::{achievable_speedup, NetworkModel};
pub use flops::{ConvAlgorithm, LayerModel, PassCost};

/// The paper's FFT constant: an `n×n×n` transform costs `C·n³·log₂ n³`.
pub const DEFAULT_C: f64 = 5.0;
