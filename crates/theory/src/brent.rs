//! Network-level `T₁`, `T∞` and the Brent's-theorem speedup bound
//! (§V-A, Eq. 1–2, Fig 4).

use crate::flops::{ConvAlgorithm, LayerModel};
use crate::tinf::t_inf;
use crate::DEFAULT_C;

/// A layered network in the analytic model.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// The layers, in forward order.
    pub layers: Vec<LayerModel>,
}

impl NetworkModel {
    /// A fully-connected ConvNet of `depth` convolutional layers of
    /// width `f`, each followed by a transfer layer, with isotropic
    /// kernels of size `k` and an output patch of size `out` — the
    /// family of architectures Fig 4 sweeps (kernels 5³, depths 4–40).
    ///
    /// Image sizes are derived backwards from the output patch: each
    /// convolution grows the image by `k − 1`.
    pub fn fully_connected(depth: usize, f: f64, k: f64, out: f64) -> Self {
        let mut layers = Vec::with_capacity(2 * depth);
        // walk backwards to find per-layer input sizes
        let mut sizes = vec![out];
        for _ in 0..depth {
            let n = sizes.last().unwrap() + (k - 1.0);
            sizes.push(n);
        }
        sizes.reverse(); // sizes[i] = input to conv layer i
        for (i, window) in sizes.windows(2).enumerate() {
            let f_in = if i == 0 { 1.0 } else { f };
            let f_out = if i == depth - 1 { 1.0 } else { f };
            layers.push(LayerModel::Conv {
                n: window[0],
                k,
                f_in,
                f_out,
            });
            layers.push(LayerModel::Transfer {
                n: window[1],
                f: f_out,
            });
        }
        NetworkModel { layers }
    }

    /// Serial time of one gradient-learning iteration (sum of Tables
    /// I–II over layers).
    pub fn t1(&self, algo: ConvAlgorithm, c: f64) -> f64 {
        self.layers
            .iter()
            .map(|l| l.flops(algo, c).total())
            .sum()
    }

    /// Infinite-processor time of one iteration: layers run
    /// sequentially within the forward and backward passes; all updates
    /// run in parallel so the update term is the *maximum* over layers
    /// (§V-A).
    pub fn t_inf(&self, algo: ConvAlgorithm, c: f64) -> f64 {
        let mut fwd = 0.0;
        let mut bwd = 0.0;
        let mut upd_max: f64 = 0.0;
        for l in &self.layers {
            let t = t_inf(l, algo, c);
            fwd += t.forward;
            bwd += t.backward;
            upd_max = upd_max.max(t.update);
        }
        fwd + bwd + upd_max
    }

    /// `S∞ = T₁ / T∞`.
    pub fn s_inf(&self, algo: ConvAlgorithm, c: f64) -> f64 {
        self.t1(algo, c) / self.t_inf(algo, c)
    }
}

/// The theoretically achievable speedup `S_P ≥ S∞ / (1 + (S∞ − 1)/P)`
/// (Eq. 2) for `p` processors.
pub fn achievable_speedup(net: &NetworkModel, algo: ConvAlgorithm, p: f64) -> f64 {
    let s_inf = net.s_inf(algo, DEFAULT_C);
    s_inf / (1.0 + (s_inf - 1.0) / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_net(width: f64, depth: usize) -> NetworkModel {
        NetworkModel::fully_connected(depth, width, 5.0, 12.0)
    }

    #[test]
    fn speedup_is_bounded_by_p_and_by_s_inf() {
        for algo in [ConvAlgorithm::Direct, ConvAlgorithm::FftMemoized] {
            for &w in &[2.0, 10.0, 60.0, 120.0] {
                let net = fig4_net(w, 8);
                let s_inf = net.s_inf(algo, DEFAULT_C);
                for &p in &[8.0, 18.0, 40.0, 60.0, 120.0] {
                    let s = achievable_speedup(&net, algo, p);
                    assert!(s <= p + 1e-9, "S_P {s} exceeds P {p}");
                    assert!(s <= s_inf + 1e-9, "S_P {s} exceeds S∞ {s_inf}");
                    assert!(s >= 1.0);
                }
            }
        }
    }

    #[test]
    fn speedup_increases_with_width_and_saturates_at_p() {
        // Fig 4: S_P -> P as width grows
        let p = 60.0;
        let mut last = 0.0;
        for &w in &[2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 120.0] {
            let s = achievable_speedup(&fig4_net(w, 8), ConvAlgorithm::Direct, p);
            assert!(s >= last - 1e-9, "not monotone at width {w}");
            last = s;
        }
        assert!(
            last > 0.9 * p,
            "wide network should approach P={p}, got {last}"
        );
    }

    #[test]
    fn modest_widths_reach_most_of_the_speedup() {
        // §V-A: "theoretically achievable speedup approaches its maximum
        // value even for networks with rather modest widths" (f² ≈ P)
        let p = 18.0;
        let s = achievable_speedup(&fig4_net(10.0, 8), ConvAlgorithm::Direct, p);
        assert!(s > 0.75 * p, "width 10 at P=18: {s}");
    }

    #[test]
    fn width_needed_grows_with_p() {
        // Fig 4: the width at which S_P reaches 75% of P grows with P
        let width_for = |p: f64| {
            (1..200)
                .map(|w| w as f64)
                .find(|&w| achievable_speedup(&fig4_net(w, 8), ConvAlgorithm::Direct, p) > 0.75 * p)
                .unwrap()
        };
        assert!(width_for(120.0) > width_for(8.0));
    }

    #[test]
    fn t1_scales_quadratically_in_width() {
        let t = |w: f64| fig4_net(w, 8).t1(ConvAlgorithm::Direct, DEFAULT_C);
        let ratio = t(80.0) / t(40.0);
        assert!((3.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn depth_grows_t_inf_superlinearly() {
        // deeper nets both add layers and enlarge the field of view, so
        // T∞ grows faster than linearly in depth
        let t = |d: usize| fig4_net(20.0, d).t_inf(ConvAlgorithm::Direct, DEFAULT_C);
        assert!(t(16) > 2.0 * t(8));
        assert!(t(32) > 2.0 * t(16));
    }
}
