//! The planner: prices the cost model through a [`Machine`], picks a
//! per-edge execution plan plus an `fft_threads` fan-out, and
//! calibrates the machine model online from measured round times.

use crate::cost;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use znn_fft::{good_shape, pow2_shape};
use znn_graph::{shapes, EdgeOp, Graph, NodeId};
use znn_ops::ConvMethod;
use znn_sim::Machine;
use znn_tensor::{Spectrum, Vec3};

/// Fan-out below this many padded voxels never splits a transform
/// (mirrors the FFT engine's parallelism threshold), so the planner
/// charges no spawn overhead for it.
const FANOUT_MIN_ELEMS: usize = 1 << 15;

/// Rough wall-clock cost of scheduling one engine task (enqueue +
/// dequeue + latch traffic). Not scaled by calibration: it is queueing
/// overhead, not FLOPs.
const SCHED_OVERHEAD_US: f64 = 2.0;

/// Backward + update work relative to the forward pass along the
/// critical path (the backward sweep mirrors the forward one and the
/// update adds roughly half again).
const ROUND_CRIT_FACTOR: f64 = 2.5;

/// Planner configuration: the machine prior plus calibration knobs.
#[derive(Clone, Debug)]
pub struct PlanConfig {
    /// The machine model costs are priced through — the *uncalibrated
    /// prior*. Use [`Machine::detect`] for the current host or a
    /// Table V model for simulation studies.
    pub machine: Machine,
    /// Measured rounds observed before online calibration starts
    /// updating the scale (the first rounds pay warmup: plan caches,
    /// pool growth).
    pub calibrate_after: u64,
    /// Relative predicted-vs-measured drift that triggers a re-plan of
    /// the fan-out (`0.25` = 25%). Re-plans are bit-safe: they only
    /// change `fft_threads`, which is pinned bitwise-identical across
    /// all values.
    pub drift_threshold: f64,
    /// EWMA weight of the newest calibration observation.
    pub ewma: f64,
    /// Wall-clock cost of spawning one extra fork-join chunk when a
    /// transform fans out. Not scaled by calibration, which is what
    /// makes the fan-out argmin move as the scale converges.
    pub spawn_overhead_us: f64,
    /// Whether the engine memoizes FFTs across passes (Table II);
    /// must match `TrainConfig::memoize_fft` for honest pricing.
    pub memoize_fft: bool,
}

impl PlanConfig {
    /// A config priced through the given machine model, default
    /// calibration knobs.
    pub fn for_machine(machine: Machine) -> Self {
        PlanConfig {
            machine,
            calibrate_after: 3,
            drift_threshold: 0.25,
            ewma: 0.4,
            spawn_overhead_us: 15.0,
            memoize_fft: true,
        }
    }

    /// A config priced through a microprobed model of the current host
    /// ([`Machine::detect`]).
    pub fn host() -> Self {
        Self::for_machine(Machine::detect())
    }
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self::host()
    }
}

/// The chosen execution strategy for one convolution edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgePlan {
    /// Direct or FFT convolution.
    pub method: ConvMethod,
    /// The padded transform shape FFT edges plan at. Chosen per *node*
    /// (all out-edges of a node share it), so frequency-domain
    /// accumulation stays eligible.
    pub pad: Vec3,
    /// Predicted per-round time of this edge at plan time, µs.
    pub predicted_us: f64,
}

/// A complete execution plan for one network.
#[derive(Clone, Debug, PartialEq)]
pub struct NetPlan {
    /// Per-edge plans, indexed like `graph.edges()`; `None` for
    /// non-convolution edges.
    pub edges: Vec<Option<EdgePlan>>,
    /// The chosen intra-transform fan-out (≤ the budget given to
    /// [`Planner::plan`]).
    pub fft_threads: usize,
    /// Predicted round time at plan time (calibrated scale), µs.
    pub predicted_round_us: f64,
    /// Predicted round time at calibration scale 1.0, µs — the
    /// reference the online calibrator compares measurements against.
    pub raw_round_us: f64,
}

impl NetPlan {
    /// A fixed single-method plan: every conv edge uses `method`, pads
    /// are `good_shape` (or `pow2_shape` with `pow2`), and the fan-out
    /// is pinned to `fft_threads`. This is the "best fixed strategy"
    /// grid the planner is benchmarked against, and the `Fixed`
    /// escape hatch for reproducing a previously reported plan.
    pub fn force(
        graph: &Graph,
        output_shape: Vec3,
        method: ConvMethod,
        fft_threads: usize,
        pow2: bool,
    ) -> Result<NetPlan, shapes::ShapeError> {
        let input_shape = shapes::required_input_shape(graph, output_shape)?;
        let shape_of = shapes::infer_shapes(graph, input_shape)?;
        let edges = graph
            .edges()
            .iter()
            .map(|e| match e.op {
                EdgeOp::Conv { .. } => {
                    let n = shape_of[&e.from];
                    let pad = if pow2 { pow2_shape(n) } else { good_shape(n) };
                    Some(EdgePlan {
                        method,
                        pad,
                        predicted_us: 0.0,
                    })
                }
                _ => None,
            })
            .collect();
        Ok(NetPlan {
            edges,
            fft_threads: fft_threads.max(1),
            predicted_round_us: 0.0,
            raw_round_us: 0.0,
        })
    }
}

/// One calibration observation: a measured round against its
/// prediction, and the scale after folding it in.
#[derive(Clone, Copy, Debug)]
pub struct RoundObs {
    /// 1-based observed round number (in observation order).
    pub round: u64,
    /// Predicted round time when the round ran (current scale), µs.
    pub predicted_us: f64,
    /// Measured round time, µs.
    pub measured_us: f64,
    /// Calibration scale after this observation.
    pub scale: f64,
}

/// Snapshot of the calibration state for reporting.
#[derive(Clone, Debug)]
pub struct CalibrationReport {
    /// Current machine-speed scale (measured speed / prior speed).
    pub scale: f64,
    /// Currently chosen fan-out.
    pub fft_threads: usize,
    /// Fan-out re-plans triggered by drift.
    pub replans: u64,
    /// All observations, in order.
    pub rounds: Vec<RoundObs>,
}

/// One point of the fan-out cost curve: predicted round time at a
/// candidate `fft_threads`, split into a FLOP-derived part (divided by
/// the calibration scale) and a wall-clock overhead part (not).
#[derive(Clone, Copy, Debug)]
struct FanPoint {
    threads: usize,
    raw_us: f64,
    overhead_us: f64,
}

impl FanPoint {
    fn predicted(&self, scale: f64) -> f64 {
        self.raw_us / scale + self.overhead_us
    }
}

#[derive(Debug, Default)]
struct CalState {
    /// Multiplier on the machine prior's speed; 1.0 = prior is exact,
    /// >1 = host is faster than the prior.
    scale: f64,
    rounds: u64,
    replans: u64,
    fft_threads: usize,
    curve: Vec<FanPoint>,
    history: Vec<RoundObs>,
}

/// The execution planner.
///
/// [`Planner::plan`] chooses, per conv edge, direct vs FFT convolution
/// and the padded transform shape, plus one global `fft_threads`
/// fan-out, by pricing the [`cost`] FLOP model through the configured
/// [`Machine`]. The round-time prediction is the Brent bound
/// `T₁/P + T∞` — total work spread over the workers plus the critical
/// path — with transform terms on the critical path sped up by the
/// candidate fan-out and charged its spawn overhead.
///
/// [`Planner::observe`] feeds measured round times back: after a
/// warmup of `calibrate_after` rounds the machine-speed scale is
/// EWMA-updated, and when the prediction drifts past
/// `drift_threshold` the fan-out is re-chosen under the new scale.
/// Re-plans only ever change the fan-out — transforms are pinned
/// bit-identical across `fft_threads`, so a live re-plan cannot change
/// a computed bit — while methods and pads stay frozen at plan time
/// (direct and FFT results differ in low-order bits).
pub struct Planner {
    cfg: PlanConfig,
    state: Mutex<CalState>,
}

impl fmt::Debug for Planner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock();
        f.debug_struct("Planner")
            .field("machine", &self.cfg.machine.name)
            .field("scale", &s.scale)
            .field("fft_threads", &s.fft_threads)
            .field("replans", &s.replans)
            .finish()
    }
}

impl Planner {
    /// A planner with the given configuration and no observations.
    pub fn new(cfg: PlanConfig) -> Self {
        Planner {
            cfg,
            state: Mutex::new(CalState {
                scale: 1.0,
                fft_threads: 1,
                ..Default::default()
            }),
        }
    }

    /// The configuration the planner was built with.
    pub fn config(&self) -> &PlanConfig {
        &self.cfg
    }

    /// Computes a plan for `graph` trained at `output_shape` with
    /// `workers` scheduler threads and at most `budget` intra-transform
    /// fan-out. Deterministic: the same inputs, machine model and
    /// calibration scale always produce the identical plan.
    pub fn plan(
        &self,
        graph: &Graph,
        output_shape: Vec3,
        workers: usize,
        budget: usize,
    ) -> Result<NetPlan, shapes::ShapeError> {
        let input_shape = shapes::required_input_shape(graph, output_shape)?;
        let shape_of = shapes::infer_shapes(graph, input_shape)?;
        let workers = workers.max(1);
        let budget = budget.max(1);
        let scale = self.state.lock().scale;

        // pads are keyed per *node*: every out-edge of a node transforms
        // the same image, and the engine's frequency-domain summation
        // requires all contributions at a node to share the transform
        // shape — a per-edge pad would silently forfeit it
        let mut node_pad: HashMap<NodeId, Vec3> = HashMap::new();
        for i in 0..graph.node_count() {
            let n = shape_of[&NodeId(i)];
            let smooth = good_shape(n);
            let pow2 = pow2_shape(n);
            let pad = if cost::fft3_flops(pow2) < cost::fft3_flops(smooth) {
                pow2
            } else {
                smooth
            };
            node_pad.insert(NodeId(i), pad);
        }

        // per-edge method choice: the per-edge argmin of the priced
        // cost model
        let d_out = |n: NodeId| graph.node(n).out_edges.len().max(1);
        let d_in = |n: NodeId| graph.node(n).in_edges.len().max(1);
        let mut edges: Vec<Option<EdgePlan>> = Vec::with_capacity(graph.edge_count());
        for e in graph.edges() {
            let nu = shape_of[&e.from];
            match e.op {
                EdgeOp::Conv { kernel, sparsity } => {
                    let pad = node_pad[&e.from];
                    let direct_us = self.us(cost::direct_round_flops(nu, kernel, sparsity));
                    let (tf, pw) =
                        cost::fft_round_split(pad, d_out(e.from), d_in(e.to), self.cfg.memoize_fft);
                    let fft_us = self.us(tf) + self.us_pw(pw);
                    let (method, us) = if direct_us <= fft_us {
                        (ConvMethod::Direct, direct_us)
                    } else {
                        (ConvMethod::Fft, fft_us)
                    };
                    edges.push(Some(EdgePlan {
                        method,
                        pad,
                        predicted_us: us / scale,
                    }));
                }
                _ => edges.push(None),
            }
        }

        // fan-out sweep: Brent bound T₁/P + T∞ at every power-of-two
        // candidate up to the budget
        let priced = self.price_edges(graph, &shape_of, &edges);
        let mut curve: Vec<FanPoint> = Vec::new();
        let mut t = 1usize;
        loop {
            curve.push(self.fan_point(&priced, workers, t));
            if t >= budget {
                break;
            }
            t = (t * 2).min(budget);
        }
        let best = curve
            .iter()
            .copied()
            .min_by(|a, b| a.predicted(scale).total_cmp(&b.predicted(scale)))
            .expect("curve is never empty");

        let mut st = self.state.lock();
        st.fft_threads = best.threads;
        st.curve = curve;
        drop(st);

        Ok(NetPlan {
            edges,
            fft_threads: best.threads,
            predicted_round_us: best.predicted(scale),
            raw_round_us: best.raw_us + best.overhead_us,
        })
    }

    /// Prices an arbitrary plan (typically a [`NetPlan::force`] fixed
    /// strategy) through this planner's model at the current
    /// calibration scale: the predicted round time in µs. This is the
    /// "what would that strategy cost" query behind the
    /// planner-vs-best-fixed gap report, and it satisfies the argmin
    /// property by construction — no plan prices below the one
    /// [`Planner::plan`] picks.
    pub fn price(
        &self,
        graph: &Graph,
        output_shape: Vec3,
        workers: usize,
        plan: &NetPlan,
    ) -> Result<f64, shapes::ShapeError> {
        let input_shape = shapes::required_input_shape(graph, output_shape)?;
        let shape_of = shapes::infer_shapes(graph, input_shape)?;
        let priced = self.price_edges(graph, &shape_of, &plan.edges);
        let fp = self.fan_point(&priced, workers.max(1), plan.fft_threads.max(1));
        Ok(fp.predicted(self.state.lock().scale))
    }

    /// Work totals of a concrete per-edge plan: (transform, other)
    /// split per edge so fan-out candidates can speed up transform
    /// terms only, plus the critical path and overhead populations.
    fn price_edges(
        &self,
        graph: &Graph,
        shape_of: &HashMap<NodeId, Vec3>,
        edges: &[Option<EdgePlan>],
    ) -> PricedNet {
        let d_out = |n: NodeId| graph.node(n).out_edges.len().max(1);
        let d_in = |n: NodeId| graph.node(n).in_edges.len().max(1);
        let mut edge_split: Vec<(f64, f64)> = Vec::with_capacity(graph.edge_count());
        let mut n_big_transforms = 0.0;
        for (i, e) in graph.edges().iter().enumerate() {
            let nu = shape_of[&e.from];
            let nv = shape_of[&e.to];
            match e.op {
                EdgeOp::Conv { kernel, sparsity } => {
                    let ep = edges[i].expect("conv edge must be planned");
                    match ep.method {
                        ConvMethod::Direct => edge_split.push((
                            0.0,
                            self.us(cost::direct_round_flops(nu, kernel, sparsity)),
                        )),
                        ConvMethod::Fft => {
                            let (tf, pw) = cost::fft_round_split(
                                ep.pad,
                                d_out(e.from),
                                d_in(e.to),
                                self.cfg.memoize_fft,
                            );
                            edge_split.push((self.us(tf), self.us_pw(pw)));
                            if ep.pad.len() >= FANOUT_MIN_ELEMS {
                                // ≈ transforms per FFT edge per round
                                n_big_transforms += 6.0;
                            }
                        }
                    }
                }
                EdgeOp::Transfer { .. } => edge_split.push((
                    0.0,
                    self.us_pw(cost::other_round_flops(
                        nu.len() as f64,
                        nv.len() as f64,
                        None,
                    )),
                )),
                EdgeOp::MaxPool { window } | EdgeOp::MaxFilter { window, .. } => edge_split.push((
                    0.0,
                    self.us_pw(cost::other_round_flops(
                        nu.len() as f64,
                        nv.len() as f64,
                        Some(window),
                    )),
                )),
            }
        }
        let crit = critical_path(graph, &edge_split);
        PricedNet {
            work_us: edge_split.iter().map(|(t, o)| t + o).sum(),
            crit,
            n_big_transforms,
            n_tasks: (3 * graph.edge_count()) as f64,
        }
    }

    /// One fan-out candidate priced with the Brent bound `T₁/P + T∞`:
    /// total work spread over the machine's `workers`-thread
    /// throughput, the critical path with its transform terms sped up
    /// by the candidate fan-out, and wall-clock overhead (task
    /// scheduling + chunk spawns) that calibration deliberately does
    /// not scale.
    fn fan_point(&self, priced: &PricedNet, workers: usize, t: usize) -> FanPoint {
        let throughput = self.cfg.machine.total_throughput(workers).max(1e-9);
        let fan_speed = self.cfg.machine.total_throughput(t).max(1.0);
        let raw_us = priced.work_us / throughput
            + ROUND_CRIT_FACTOR * (priced.crit.transform_us / fan_speed + priced.crit.other_us);
        let overhead_us = SCHED_OVERHEAD_US * priced.n_tasks
            + self.cfg.spawn_overhead_us * (t - 1) as f64 * priced.n_big_transforms;
        FanPoint {
            threads: t,
            raw_us,
            overhead_us,
        }
    }

    /// Direct/FFT choice for a single *serving* (forward-only)
    /// geometry — the cost-model replacement for the measurement-based
    /// `convolver::autotune` in `DenseNet`'s method cache. Returns the
    /// method and the pad FFT would use.
    pub fn choose_forward(&self, n: Vec3, k: Vec3, sparsity: Vec3) -> (ConvMethod, Vec3) {
        let pad = self.pad_for(n);
        let kd = k.dilated(sparsity);
        let direct = match n.valid_conv(kd) {
            Some(out) => self.us(2.0 * out.len() as f64 * k.len() as f64),
            None => f64::INFINITY,
        };
        // forward only: shared image FFT amortizes across a dense
        // layer's edges (assume it is shared at least once), kernel
        // spectra are memoized across requests (free in steady state),
        // plus the pointwise product and the per-edge inverse
        let t3 = self.us(cost::fft3_flops(pad));
        let fft = t3 / 2.0 + self.us_pw(cost::pointwise_flops(pad)) + t3;
        if direct <= fft {
            (ConvMethod::Direct, pad)
        } else {
            (ConvMethod::Fft, pad)
        }
    }

    /// The pad this planner assigns to images of shape `n`: the
    /// cheaper of the 5-smooth and power-of-two pads under the
    /// radix-aware transform model. Always a valid engine transform
    /// shape (even or unit packed axis).
    pub fn pad_for(&self, n: Vec3) -> Vec3 {
        let smooth = good_shape(n);
        let pow2 = pow2_shape(n);
        let pad = if cost::fft3_flops(pow2) < cost::fft3_flops(smooth) {
            pow2
        } else {
            smooth
        };
        debug_assert!(Spectrum::packed_axis_is_even(pad));
        pad
    }

    /// Feeds one measured round time back. Returns `Some(fft_threads)`
    /// when drift triggered a re-plan and the engine should move to a
    /// new fan-out (bit-safe); `None` otherwise.
    pub fn observe(&self, measured_us: f64) -> Option<usize> {
        if !measured_us.is_finite() || measured_us <= 0.0 {
            return None;
        }
        let mut st = self.state.lock();
        st.rounds += 1;
        let round = st.rounds;
        let current = st
            .curve
            .iter()
            .find(|p| p.threads == st.fft_threads)
            .copied();
        let predicted = current.map(|p| p.predicted(st.scale)).unwrap_or(0.0);
        if round > self.cfg.calibrate_after {
            if let Some(p) = current {
                // instantaneous scale that would make the FLOP-derived
                // part of the prediction match this measurement
                let flop_measured = (measured_us - p.overhead_us).max(measured_us * 0.1);
                let inst = p.raw_us / flop_measured;
                st.scale = st.scale * (1.0 - self.cfg.ewma) + inst * self.cfg.ewma;
            }
        }
        let scale = st.scale;
        st.history.push(RoundObs {
            round,
            predicted_us: predicted,
            measured_us,
            scale,
        });
        // drift check: re-pick the fan-out under the calibrated scale
        if round > self.cfg.calibrate_after && predicted > 0.0 {
            let drift = (predicted / measured_us - 1.0).abs();
            if drift > self.cfg.drift_threshold {
                let best = st
                    .curve
                    .iter()
                    .copied()
                    .min_by(|a, b| a.predicted(scale).total_cmp(&b.predicted(scale)));
                if let Some(b) = best {
                    if b.threads != st.fft_threads {
                        st.fft_threads = b.threads;
                        st.replans += 1;
                        return Some(b.threads);
                    }
                }
            }
        }
        None
    }

    /// Snapshot of the calibration trajectory.
    pub fn calibration(&self) -> CalibrationReport {
        let st = self.state.lock();
        CalibrationReport {
            scale: st.scale,
            fft_threads: st.fft_threads,
            replans: st.replans,
            rounds: st.history.clone(),
        }
    }

    /// µs of `flops` on one worker of the prior machine at scale 1.
    fn us(&self, flops: f64) -> f64 {
        flops / (self.cfg.machine.gflops * 1e3)
    }

    /// µs of bandwidth-bound `flops` (pointwise sweeps) on one worker.
    fn us_pw(&self, flops: f64) -> f64 {
        flops / (self.cfg.machine.gflops * cost::PW_EFF * 1e3)
    }
}

/// Per-edge forward cost split along the critical path.
struct CritPath {
    transform_us: f64,
    other_us: f64,
}

/// Priced work totals of a concrete plan, ready for the fan-out sweep.
struct PricedNet {
    /// Total per-round work across all edges, µs at one prior thread.
    work_us: f64,
    /// The T∞ term, transform and other parts kept separate.
    crit: CritPath,
    /// Transforms per round large enough to fan out (spawn-overhead
    /// population).
    n_big_transforms: f64,
    /// Scheduled tasks per round (scheduling-overhead population).
    n_tasks: f64,
}

/// Longest path through the DAG, accumulating per-edge forward-pass
/// costs (one third of the round split, since `edge_split` holds full
/// rounds) — Kahn topological order, O(V+E).
fn critical_path(graph: &Graph, edge_split: &[(f64, f64)]) -> CritPath {
    let n = graph.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|i| graph.node(NodeId(i)).in_edges.len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    // (transform_us, other_us) of the heaviest chain ending at node i
    let mut best: Vec<(f64, f64)> = vec![(0.0, 0.0); n];
    while let Some(i) = ready.pop() {
        for &e in &graph.node(NodeId(i)).out_edges {
            let to = graph.edge(e).to.0;
            let (tf, ot) = edge_split[e.0];
            // forward share of the full-round edge cost
            let cand = (best[i].0 + tf / 3.0, best[i].1 + ot / 3.0);
            if cand.0 + cand.1 > best[to].0 + best[to].1 {
                best[to] = cand;
            }
            indeg[to] -= 1;
            if indeg[to] == 0 {
                ready.push(to);
            }
        }
    }
    let (transform_us, other_us) = best
        .iter()
        .copied()
        .max_by(|a, b| (a.0 + a.1).total_cmp(&(b.0 + b.1)))
        .unwrap_or((0.0, 0.0));
    CritPath {
        transform_us,
        other_us,
    }
}
