//! `znn-plan` — the cost-model-driven execution planner that closes
//! the loop between `znn-theory` (FLOP counts, Brent bounds),
//! `znn-sim` (machine models) and the running engine.
//!
//! The paper's §IV observation is that the direct-vs-FFT crossover is
//! input-size *and* machine dependent, so any static choice is wrong
//! somewhere. The engine's measurement-based autotuner handles the
//! method choice by timing both paths, but it cannot see pad shapes or
//! the `fft_threads` fan-out, and it re-measures on every new
//! geometry. This crate instead *prices* every candidate strategy:
//!
//! 1. [`cost`] counts per-edge FLOPs from the paper's Tables I–II,
//!    refined to be pad- and radix-aware (a 5-smooth pad's mixed-radix
//!    stages price differently from a power-of-two pad's radix-4
//!    ladder);
//! 2. a [`znn_sim::Machine`] — a Table V model or the microprobed
//!    host from [`Machine::detect`] — turns FLOPs into µs, and the
//!    Brent bound `T₁/P + T∞` turns edge costs into a round-time
//!    prediction per candidate fan-out;
//! 3. the [`Planner`] picks the argmin: per-edge method, per-node pad,
//!    one global `fft_threads`;
//! 4. measured round times stream back through [`Planner::observe`],
//!    which calibrates the machine model online (EWMA on the
//!    measured/predicted ratio) and re-plans the fan-out when the
//!    prediction drifts — safely, because transforms are pinned
//!    bit-identical across every `fft_threads` value, while method and
//!    pad (which do change low-order bits) stay frozen at plan time.
//!
//! The engine consumes plans through `TrainConfig::plan`
//! (`PlanPolicy::Auto` / `PlanPolicy::Fixed` in `znn-core`), and
//! `DenseNet`'s serving-side method cache can route through the same
//! planner via [`Planner::choose_forward`].
//!
//! ```
//! use znn_plan::{PlanConfig, Planner};
//! use znn_sim::Machine;
//! use znn_graph::builder::scalability_net_3d;
//! use znn_tensor::Vec3;
//!
//! let (graph, _) = scalability_net_3d(2);
//! let planner = Planner::new(PlanConfig::for_machine(Machine::xeon_e5_18core()));
//! let plan = planner.plan(&graph, Vec3::cube(8), 18, 18).unwrap();
//! assert_eq!(plan.edges.len(), graph.edge_count());
//! assert!(plan.fft_threads >= 1);
//! ```

#![warn(missing_docs)]

pub mod cost;
mod planner;

pub use planner::{CalibrationReport, EdgePlan, NetPlan, PlanConfig, Planner, RoundObs};
pub use znn_sim::Machine;
