//! The planner's per-edge cost model: the paper's FLOP counts
//! (Tables I–II), made pad- and radix-aware.
//!
//! `crates/sim` prices tasks with the generic `C·N·log₂N` transform
//! cost at the *unpadded* image size. The planner refines that in two
//! ways so it can rank concrete execution strategies:
//!
//! * transforms are priced at the **padded** shape the engine would
//!   actually plan (`good_shape` vs `pow2_shape`), and
//! * each 1D line length is decomposed into its 2^a·3^b·5^c radix
//!   stages, weighted per radix — radix-4 passes are cheaper per
//!   log₂ unit than radix-3/5 passes, which is exactly why 5-smooth
//!   padding usually beats power-of-two padding despite more voxels.
//!
//! Shared work is amortized the same way the engine shares it (and the
//! same way [`znn_sim::costs`] models it): a node's image transform is
//! split across its out-edges, the inverse of a node sum across its
//! in-edges.

use znn_tensor::Vec3;
use znn_theory::DEFAULT_C;

/// Relative cost per log₂ unit of a radix-4 stage (the workhorse of
/// the iterative Stockham path; two log₂ units per stage).
const W_RADIX4: f64 = 0.85;
/// Relative cost per log₂ unit of a radix-2 stage.
const W_RADIX2: f64 = 1.0;
/// Relative cost per log₂ unit of a radix-3 stage (log₂3 ≈ 1.585
/// units per stage).
const W_RADIX3: f64 = 1.1;
/// Relative cost per log₂ unit of a radix-5 stage (log₂5 ≈ 2.322
/// units per stage).
const W_RADIX5: f64 = 1.25;

/// Weighted stage cost of a 5-smooth line length, in equivalent
/// radix-2 log₂ units. `stage_units(l) / log2(l)` is the mix factor
/// relative to the textbook `N·log₂N`; a pure power of two running
/// radix-4 stages comes out *below* 1.0.
pub fn stage_units(len: usize) -> f64 {
    if len <= 1 {
        return 0.0;
    }
    let mut l = len;
    let mut units = 0.0;
    while l.is_multiple_of(4) {
        units += 2.0 * W_RADIX4;
        l /= 4;
    }
    while l.is_multiple_of(2) {
        units += W_RADIX2;
        l /= 2;
    }
    while l.is_multiple_of(3) {
        units += W_RADIX3 * 3f64.log2();
        l /= 3;
    }
    while l.is_multiple_of(5) {
        units += W_RADIX5 * 5f64.log2();
        l /= 5;
    }
    if l > 1 {
        // non-smooth residue: priced as a generic O(n²)-ish straggler,
        // heavily penalized so the planner never *prefers* it (the
        // engine's pad candidates are always smooth, so this only
        // triggers for hand-built plans)
        units += 4.0 * (l as f64).log2();
    }
    units
}

/// FLOPs of one 3D r2c (or c2r) transform at padded shape `m`: the
/// theory model's `C·N·log₂N` per axis, radix-weighted, halved for the
/// half-spectrum (the r2c packed stage does each real axis pass at
/// half length, and the two complex axes sweep half the bins).
pub fn fft3_flops(m: Vec3) -> f64 {
    let n = m.len() as f64;
    if m.len() <= 1 {
        return 0.0;
    }
    let units: f64 = m.0.iter().map(|&l| stage_units(l)).sum();
    0.5 * DEFAULT_C * n * units
}

/// FLOPs of one pointwise pass over the half-spectrum of pad `m`
/// (complex multiply ≈ 6 real FLOPs per bin, ≈ `m.len()/2` bins —
/// folded to `3·|m|` and priced at [`PW_EFF`] because these sweeps are
/// bandwidth-bound, not FLOP-bound).
pub fn pointwise_flops(m: Vec3) -> f64 {
    3.0 * m.len() as f64
}

/// Effective FLOP efficiency of pointwise/bandwidth-bound sweeps
/// relative to the machine's dense-kernel throughput.
pub const PW_EFF: f64 = 0.25;

/// Total FLOPs of one training round of a direct-convolution edge
/// (forward valid conv + backward full conv + kernel update; 2 FLOPs
/// per multiply-accumulate, Table I). Skip kernels touch the same
/// number of taps, so sparsity does not change the count.
pub fn direct_round_flops(n: Vec3, k: Vec3, sparsity: Vec3) -> f64 {
    let kd = k.dilated(sparsity);
    let out = match n.valid_conv(kd) {
        Some(o) => o.len() as f64,
        None => return f64::INFINITY,
    };
    let taps = k.len() as f64;
    // forward: |out|·|k| MACs; backward: full conv back to |n|;
    // update: |out|·|k| MACs again
    2.0 * taps * (out + n.len() as f64 + out)
}

/// Per-round FLOPs of an FFT-convolution edge at pad `m`, split into
/// `(transform_flops, pointwise_flops)` so the caller can apply the
/// `fft_threads` fan-out speedup to the transform part only.
///
/// Transform sharing follows the engine (and [`znn_sim::costs`]): the
/// image FFT is amortized over the from-node's `d_out` edges, the
/// inverse of the node sum over the to-node's `d_in` contributions.
/// With memoization (Table II) the backward pass derives the flipped
/// kernel spectrum pointwise and the update reuses the forward
/// transforms; without it the kernel is retransformed and the update
/// pays two extra forward FFTs.
pub fn fft_round_split(m: Vec3, d_out: usize, d_in: usize, memoize: bool) -> (f64, f64) {
    let t3 = fft3_flops(m);
    let d_out = d_out.max(1) as f64;
    let d_in = d_in.max(1) as f64;
    // forward: shared image FFT + kernel FFT + shared inverse;
    // backward: shared gradient FFT + shared inverse;
    // update: one inverse for the kernel gradient
    let mut transforms = t3 / d_out + t3 + t3 / d_in // forward
        + t3 / d_in + t3 / d_out                      // backward
        + t3; // update inverse
    if !memoize {
        transforms += 3.0 * t3; // kernel retransform + two update FFTs
    }
    // pointwise products in all three passes, plus the frequency-domain
    // sum and the spectrum flip
    let pw = 5.0 * pointwise_flops(m);
    (transforms, pw)
}

/// Per-round FLOPs of a non-convolution edge (transfer, max-pool,
/// max-filter), all passes, priced like [`znn_sim::costs`]. These are
/// bandwidth-bound sweeps; price them at [`PW_EFF`].
pub fn other_round_flops(nu: f64, nv: f64, window: Option<Vec3>) -> f64 {
    match window {
        // max-filter/pool: forward scan + backward scatter
        Some(w) => 6.0 * nu * (w.len() as f64).log2().max(1.0) + nv + (nv + nu),
        // transfer: forward + backward + bias update
        None => 2.0 * nv + 2.0 * nv + (nv + 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_pads_beat_pow2_pads() {
        // 24 = 2³·3 stays 24 under good_shape but inflates to 32 under
        // pow2; the radix-aware model must prefer the smooth pad
        assert!(fft3_flops(Vec3::cube(24)) < fft3_flops(Vec3::cube(32)));
        assert!(fft3_flops(Vec3::flat(48, 60)) < fft3_flops(Vec3::flat(64, 64)));
    }

    #[test]
    fn pure_pow2_mix_is_below_textbook(){
        // radix-4 stages price a 64-point line below C·N·log₂N
        let l = 64usize;
        assert!(stage_units(l) < (l as f64).log2());
    }

    #[test]
    fn direct_cost_grows_with_kernel_fft_does_not() {
        let n = Vec3::cube(24);
        let d3 = direct_round_flops(n, Vec3::cube(3), Vec3::one());
        let d7 = direct_round_flops(n, Vec3::cube(7), Vec3::one());
        assert!(d7 > 5.0 * d3);
        let (t3, p3) = fft_round_split(n, 1, 1, true);
        assert!(t3 > 0.0 && p3 > 0.0);
        // the paper's crossover: at 3³ direct wins, at 7³ FFT wins
        assert!(d3 < t3 + p3 / PW_EFF);
        assert!(d7 > t3 + p3 / PW_EFF);
    }

    #[test]
    fn memoization_only_cheapens() {
        let m = Vec3::cube(32);
        let (plain, _) = fft_round_split(m, 2, 3, false);
        let (memo, _) = fft_round_split(m, 2, 3, true);
        assert!(memo < plain);
    }

    #[test]
    fn degenerate_shapes_are_finite() {
        assert_eq!(fft3_flops(Vec3::one()), 0.0);
        assert_eq!(stage_units(1), 0.0);
        assert!(direct_round_flops(Vec3::cube(4), Vec3::cube(8), Vec3::one()).is_infinite());
    }
}
