//! Planner contract tests: determinism, cost-model sanity, the
//! fan-out argmin, and online calibration convergence.

use znn_graph::builder::{comparison_net, scalability_net_2d, scalability_net_3d};
use znn_ops::ConvMethod;
use znn_plan::{Machine, NetPlan, PlanConfig, Planner};
use znn_tensor::Vec3;

fn planner(m: Machine) -> Planner {
    Planner::new(PlanConfig::for_machine(m))
}

#[test]
fn same_net_and_machine_give_identical_plans() {
    let (g, _) = scalability_net_3d(3);
    let out = Vec3::cube(8);
    let a = planner(Machine::xeon_e5_18core());
    let b = planner(Machine::xeon_e5_18core());
    let pa = a.plan(&g, out, 18, 18).unwrap();
    let pb = b.plan(&g, out, 18, 18).unwrap();
    assert_eq!(pa, pb, "planning must be a pure function of its inputs");
    // and re-planning on the same planner is stable too
    let pa2 = a.plan(&g, out, 18, 18).unwrap();
    assert_eq!(pa, pa2);
}

#[test]
fn plan_covers_exactly_the_conv_edges() {
    let (g, _) = scalability_net_2d(3);
    let p = planner(Machine::xeon_e5_8core());
    let plan = p.plan(&g, Vec3::flat(24, 24), 8, 8).unwrap();
    assert_eq!(plan.edges.len(), g.edge_count());
    for (i, e) in g.edges().iter().enumerate() {
        match e.op {
            znn_graph::EdgeOp::Conv { .. } => {
                let ep = plan.edges[i].expect("conv edge planned");
                assert!(ep.predicted_us > 0.0);
            }
            _ => assert!(plan.edges[i].is_none()),
        }
    }
    assert!(plan.predicted_round_us > 0.0);
    assert!(plan.fft_threads >= 1 && plan.fft_threads <= 8);
}

#[test]
fn crossover_matches_the_paper() {
    // fig9's claim: in 3D, FFT is competitive at 5³ and wins at 7³;
    // at 3³ (small images) direct wins. fig8: 2D 11² kernels are FFT
    // territory.
    let p = planner(Machine::xeon_e5_18core());
    let method_for = |kernel: usize, flat: bool| {
        let (g, _) = if flat {
            comparison_net(2, Vec3::flat(kernel, kernel), Vec3::flat(2, 2), true)
        } else {
            comparison_net(2, Vec3::cube(kernel), Vec3::cube(2), true)
        };
        let out = if flat { Vec3::flat(8, 8) } else { Vec3::cube(4) };
        let plan = p.plan(&g, out, 18, 18).unwrap();
        // first conv edge = the largest image in the net
        let first = g
            .edges()
            .iter()
            .position(|e| matches!(e.op, znn_graph::EdgeOp::Conv { .. }))
            .unwrap();
        plan.edges[first].unwrap().method
    };
    assert_eq!(method_for(3, false), ConvMethod::Direct, "3³ → direct");
    assert_eq!(method_for(7, false), ConvMethod::Fft, "7³ → FFT");
    assert_eq!(method_for(11, true), ConvMethod::Fft, "11² → FFT");
}

#[test]
fn pads_are_keyed_per_node() {
    // all out-edges of a node must share the pad, or the engine loses
    // frequency-domain accumulation
    let (g, _) = scalability_net_3d(4);
    let p = planner(Machine::xeon_e5_18core());
    let plan = p.plan(&g, Vec3::cube(8), 18, 18).unwrap();
    for i in 0..g.node_count() {
        let node = g.node(znn_graph::NodeId(i));
        let pads: Vec<_> = node
            .out_edges
            .iter()
            .filter_map(|e| plan.edges[e.0].map(|ep| ep.pad))
            .collect();
        assert!(
            pads.windows(2).all(|w| w[0] == w[1]),
            "node {i} out-edges disagree on pad: {pads:?}"
        );
    }
}

#[test]
fn fan_out_shrinks_on_small_machines_and_nets() {
    let (g, _) = scalability_net_3d(2);
    let out = Vec3::cube(4);
    // a tiny net on one core: fanning out can only add overhead
    let p1 = planner(Machine::detect_like_single_core());
    let plan1 = p1.plan(&g, out, 1, 1).unwrap();
    assert_eq!(plan1.fft_threads, 1);
    // the budget is always respected
    let p4 = planner(Machine::xeon_e5_18core());
    let plan4 = p4.plan(&g, out, 18, 4).unwrap();
    assert!(plan4.fft_threads <= 4);
}

#[test]
fn auto_prediction_is_argmin_over_forced_strategies() {
    // the planner's own cost model must never prefer a forced strategy
    // to its chosen plan — Auto is the per-edge argmin by construction,
    // so its predicted time lower-bounds every single-method plan's
    // when both are priced through the same model
    let nets = [
        comparison_net(2, Vec3::cube(5), Vec3::cube(2), true).0,
        scalability_net_3d(3).0,
    ];
    let outs = [Vec3::cube(4), Vec3::cube(8)];
    for (g, out) in nets.iter().zip(outs) {
        let p = planner(Machine::xeon_e5_18core());
        let auto = p.plan(g, out, 18, 18).unwrap();
        let auto_us = p.price(g, out, 18, &auto).unwrap();
        assert!(
            (auto_us - auto.predicted_round_us).abs() <= auto_us * 1e-9,
            "price(auto) must agree with the plan's own prediction: \
             {auto_us} vs {}",
            auto.predicted_round_us
        );
        for method in [ConvMethod::Direct, ConvMethod::Fft] {
            for pow2 in [false, true] {
                for t in [1usize, 4, 18] {
                    let forced = NetPlan::force(g, out, method, t, pow2).unwrap();
                    let forced_us = p.price(g, out, 18, &forced).unwrap();
                    assert!(
                        auto_us <= forced_us * (1.0 + 1e-9),
                        "auto {auto_us:.1}µs beaten by {method:?} pow2={pow2} \
                         t={t}: {forced_us:.1}µs"
                    );
                }
            }
        }
    }
}

#[test]
fn force_builds_single_method_plans() {
    let (g, _) = scalability_net_3d(2);
    let out = Vec3::cube(4);
    for (method, pow2) in [
        (ConvMethod::Direct, false),
        (ConvMethod::Fft, false),
        (ConvMethod::Fft, true),
    ] {
        let plan = NetPlan::force(&g, out, method, 2, pow2).unwrap();
        assert_eq!(plan.edges.len(), g.edge_count());
        assert_eq!(plan.fft_threads, 2);
        for (i, e) in g.edges().iter().enumerate() {
            if matches!(e.op, znn_graph::EdgeOp::Conv { .. }) {
                let ep = plan.edges[i].unwrap();
                assert_eq!(ep.method, method);
                if pow2 {
                    assert!(ep.pad.0.iter().all(|l| l.is_power_of_two()));
                }
            }
        }
    }
}

#[test]
fn calibration_tightens_predictions() {
    // feed the planner rounds measured at a constant 3× slower than
    // its prior predicts; after calibration the predicted/measured
    // ratio must converge toward 1
    let (g, _) = scalability_net_3d(3);
    let p = planner(Machine::xeon_e5_18core());
    let plan = p.plan(&g, Vec3::cube(8), 18, 18).unwrap();
    let truth_us = plan.predicted_round_us * 3.0;
    for _ in 0..12 {
        let _ = p.observe(truth_us);
    }
    let cal = p.calibration();
    assert_eq!(cal.rounds.len(), 12);
    let first_err = (cal.rounds[0].predicted_us / truth_us - 1.0).abs();
    let last = cal.rounds.last().unwrap();
    // predicted_us recorded per round uses the *current* scale, so the
    // trajectory must tighten monotonically toward the measurement
    let last_pred = {
        // one more observation reports the post-convergence prediction
        let _ = p.observe(truth_us);
        p.calibration().rounds.last().unwrap().predicted_us
    };
    let last_err = (last_pred / truth_us - 1.0).abs();
    assert!(
        last_err < first_err * 0.5,
        "calibration did not tighten: first {first_err:.3}, last {last_err:.3}"
    );
    assert!(last.scale > 0.0 && last.scale.is_finite());
}

#[test]
fn choose_forward_prices_serving_geometries() {
    let p = planner(Machine::xeon_e5_18core());
    // large kernel on a healthy image → FFT; tiny kernel → direct
    let (m_big, pad) = p.choose_forward(Vec3::cube(32), Vec3::cube(7), Vec3::one());
    assert_eq!(m_big, ConvMethod::Fft);
    assert!(Vec3::cube(32).le(pad));
    let (m_small, _) = p.choose_forward(Vec3::cube(12), Vec3::cube(2), Vec3::one());
    assert_eq!(m_small, ConvMethod::Direct);
}

#[test]
fn observe_ignores_garbage_measurements() {
    let p = planner(Machine::xeon_e5_8core());
    assert!(p.observe(f64::NAN).is_none());
    assert!(p.observe(-1.0).is_none());
    assert!(p.observe(0.0).is_none());
    assert_eq!(p.calibration().rounds.len(), 0);
}

/// A 1-core stand-in with detect()'s shape but deterministic rates
/// (tests must not depend on the host microprobe).
trait SingleCore {
    fn detect_like_single_core() -> Machine;
}

impl SingleCore for Machine {
    fn detect_like_single_core() -> Machine {
        Machine {
            name: "single-core test host",
            cores: 1,
            hw_threads: 1,
            ghz: 0.0,
            smt_throughput: vec![1.0],
            gflops: 5.0,
            bandwidth_gbs: 10.0,
        }
    }
}
