//! The discrete-event list scheduler.

use crate::machine::Machine;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use znn_graph::TaskGraph;
use znn_sched::queue::TaskQueue;
use znn_sched::QueuePolicy;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Queue policy (the §X ablation switches this).
    pub policy: QueuePolicy,
    /// Fixed per-task overhead in FLOP-equivalents — stands in for the
    /// scheduler critical section.
    pub overhead: f64,
    /// How many consecutive training rounds to simulate (pipelining
    /// across rounds is what lets update tasks overlap the next forward
    /// pass; 1 is enough for speedup shapes).
    pub rounds: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            workers: 1,
            policy: QueuePolicy::Priority,
            overhead: 0.0,
            rounds: 1,
        }
    }
}

/// Simulation outcome.
#[derive(Clone, Copy, Debug)]
pub struct SimResult {
    /// Wall-clock of the parallel schedule (FLOPs / unit speed).
    pub makespan: f64,
    /// Serial time of the same work on one thread of the same machine.
    pub t1: f64,
    /// `t1 / makespan`.
    pub speedup: f64,
    /// Mean worker utilization over the makespan.
    pub busy_fraction: f64,
}

/// Non-negative f64 ordered for the completion heap.
#[derive(PartialEq, PartialOrd)]
struct Time(f64);
impl Eq for Time {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Simulates `cfg.rounds` iterations of the task graph on `machine`
/// with `cfg.workers` workers under `cfg.policy`.
///
/// Cross-round dependencies follow Fig 3: the tasks of round `r+1`
/// additionally wait on their own round-`r` instance (a task is a
/// stateful edge computation), which is modelled by chaining the whole
/// round.
pub fn simulate(
    tg: &TaskGraph,
    costs: &[f64],
    machine: &Machine,
    cfg: &SimConfig,
) -> SimResult {
    assert_eq!(tg.tasks.len(), costs.len());
    assert!(cfg.workers >= 1 && cfg.rounds >= 1);
    let n = tg.tasks.len();
    // oversubscribed workers timeshare hardware threads without adding
    // throughput; model them as capped
    let worker_count = cfg.workers.min(machine.hw_threads);
    let speed = machine.worker_speed(worker_count);
    let total_flops: f64 = costs.iter().map(|c| c + cfg.overhead).sum::<f64>() * cfg.rounds as f64;
    let t1 = total_flops / machine.worker_speed(1);

    // replicate the task graph across rounds; task r*n+i depends on
    // ((r-1)*n + i) to chain rounds
    let rounds = cfg.rounds;
    let mut indeg = vec![0usize; n * rounds];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n * rounds];
    for r in 0..rounds {
        for (i, t) in tg.tasks.iter().enumerate() {
            let id = r * n + i;
            for d in &t.deps {
                succs[r * n + d.0].push(id);
                indeg[id] += 1;
            }
            if r > 0 {
                succs[(r - 1) * n + i].push(id);
                indeg[id] += 1;
            }
        }
    }

    let mut ready: TaskQueue<usize> = TaskQueue::new(cfg.policy);
    for (id, &d) in indeg.iter().enumerate() {
        if d == 0 {
            ready.push(tg.tasks[id % n].priority, id);
        }
    }

    let mut completions: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    let mut now = 0.0f64;
    let mut idle = worker_count;
    let mut busy_area = 0.0f64;
    let mut done = 0usize;

    loop {
        // assign idle workers
        while idle > 0 {
            let Some(id) = ready.pop() else { break };
            let dt = (costs[id % n] + cfg.overhead) / speed;
            completions.push(Reverse((Time(now + dt), id)));
            busy_area += dt;
            idle -= 1;
        }
        let Some(Reverse((Time(t), id))) = completions.pop() else {
            break;
        };
        now = t;
        idle += 1;
        done += 1;
        for &s in &succs[id] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(tg.tasks[s % n].priority, s);
            }
        }
    }
    assert_eq!(done, n * rounds, "deadlock: not all tasks completed");

    let makespan = now.max(f64::MIN_POSITIVE);
    SimResult {
        makespan,
        t1,
        speedup: t1 / makespan,
        busy_fraction: busy_area / (makespan * worker_count as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::task_costs;
    use znn_graph::builder::{scalability_net_2d, scalability_net_3d};
    use znn_tensor::Vec3;
    use znn_theory::flops::ConvAlgorithm;

    fn net3d(w: usize) -> (TaskGraph, Vec<f64>) {
        let (g, _) = scalability_net_3d(w);
        task_costs(&g, Vec3::cube(12), ConvAlgorithm::Direct, false).unwrap()
    }

    #[test]
    fn one_worker_speedup_is_one() {
        let (tg, costs) = net3d(4);
        let m = Machine::xeon_e5_8core();
        let r = simulate(&tg, &costs, &m, &SimConfig::default());
        assert!((r.speedup - 1.0).abs() < 1e-9);
        assert!((r.busy_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_grows_with_workers_up_to_cores() {
        let (tg, costs) = net3d(12);
        let m = Machine::xeon_e5_8core();
        let mut last = 0.0;
        for w in [1, 2, 4, 8] {
            let r = simulate(
                &tg,
                &costs,
                &m,
                &SimConfig {
                    workers: w,
                    ..Default::default()
                },
            );
            assert!(r.speedup > last, "workers {w}: {} <= {last}", r.speedup);
            last = r.speedup;
        }
        assert!(last > 5.0, "8 workers on a wide net should get near 8x: {last}");
    }

    #[test]
    fn hyperthreads_help_less_than_cores() {
        let (tg, costs) = net3d(12);
        let m = Machine::xeon_e5_8core();
        let run = |w| {
            simulate(
                &tg,
                &costs,
                &m,
                &SimConfig {
                    workers: w,
                    ..Default::default()
                },
            )
            .speedup
        };
        let s4 = run(4);
        let s8 = run(8);
        let s16 = run(16);
        assert!(s8 - s4 > s16 - s8, "HT slope must be flatter: {s4} {s8} {s16}");
        assert!(s16 > s8, "HT still helps");
    }

    #[test]
    fn wide_networks_scale_better_than_narrow() {
        let m = Machine::xeon_e7_40core();
        let speed = |w: usize| {
            let (tg, costs) = net3d(w);
            simulate(
                &tg,
                &costs,
                &m,
                &SimConfig {
                    workers: 40,
                    ..Default::default()
                },
            )
            .speedup
        };
        assert!(speed(30) > speed(5) * 1.5, "{} vs {}", speed(30), speed(5));
    }

    #[test]
    fn priority_policy_beats_fifo_and_lifo_in_makespan() {
        // the §X claim, on the 2D net where convergent sums matter
        let (g, _) = scalability_net_2d(10);
        let (tg, costs) =
            task_costs(&g, Vec3::flat(48, 48), ConvAlgorithm::Fft, true).unwrap();
        let m = Machine::xeon_e5_18core();
        let run = |policy| {
            simulate(
                &tg,
                &costs,
                &m,
                &SimConfig {
                    workers: 18,
                    policy,
                    rounds: 2,
                    ..Default::default()
                },
            )
            .makespan
        };
        let prio = run(QueuePolicy::Priority);
        let fifo = run(QueuePolicy::Fifo);
        let lifo = run(QueuePolicy::Lifo);
        assert!(
            prio <= fifo * 1.02 && prio <= lifo * 1.02,
            "priority {prio} vs fifo {fifo} lifo {lifo}"
        );
    }

    #[test]
    fn multi_round_pipelines_updates() {
        let (tg, costs) = net3d(8);
        let m = Machine::xeon_e5_8core();
        let one = simulate(
            &tg,
            &costs,
            &m,
            &SimConfig {
                workers: 8,
                rounds: 1,
                ..Default::default()
            },
        );
        let four = simulate(
            &tg,
            &costs,
            &m,
            &SimConfig {
                workers: 8,
                rounds: 4,
                ..Default::default()
            },
        );
        // per-round makespan should not degrade across rounds
        assert!(four.makespan < 4.2 * one.makespan);
        assert!(four.speedup >= one.speedup * 0.9);
    }

    #[test]
    fn overhead_hurts_scalability() {
        let (tg, costs) = net3d(8);
        let m = Machine::xeon_e7_40core();
        let run = |overhead| {
            simulate(
                &tg,
                &costs,
                &m,
                &SimConfig {
                    workers: 40,
                    overhead,
                    ..Default::default()
                },
            )
            .speedup
        };
        // overhead inflates both t1 and makespan; with contention-free
        // modelling speedup stays similar, so just check it stays sane
        let clean = run(0.0);
        let dirty = run(1e4);
        assert!(dirty.is_finite() && clean.is_finite());
    }
}
