//! Per-task FLOP costs for a concrete network, derived from the
//! paper's complexity model with shared work amortized exactly as the
//! engine shares it.
//!
//! FFT transforms of a node image are computed once and used by every
//! edge at that node; in the cost model that transform's FLOPs are
//! split evenly across those edges. Kernel transforms belong to single
//! edges. The inverse transform of a node sum is split across the
//! node's incoming contributions. Sums contribute one add per voxel.

use std::collections::HashMap;
use znn_graph::{shapes, EdgeOp, Graph, NodeId, TaskGraph, TaskKind};
use znn_tensor::Vec3;
use znn_theory::flops::ConvAlgorithm;
use znn_theory::DEFAULT_C;

/// `C·N·log₂N` for an image of `voxels` total voxels.
fn fft_cost(voxels: f64) -> f64 {
    if voxels <= 1.0 {
        0.0
    } else {
        DEFAULT_C * voxels * voxels.log2()
    }
}

fn len(v: Vec3) -> f64 {
    v.len() as f64
}

/// Builds the task graph of `graph` and assigns every task a FLOP cost
/// under the given convolution algorithm and memoization setting.
pub fn task_costs(
    graph: &Graph,
    output_shape: Vec3,
    algo: ConvAlgorithm,
    memoize: bool,
) -> Result<(TaskGraph, Vec<f64>), shapes::ShapeError> {
    let input_shape = shapes::required_input_shape(graph, output_shape)?;
    let shape_of: HashMap<NodeId, Vec3> = shapes::infer_shapes(graph, input_shape)?;
    let tg = TaskGraph::build(graph);
    let out_deg = |n: NodeId| graph.node(n).out_edges.len().max(1) as f64;
    let in_deg = |n: NodeId| graph.node(n).in_edges.len().max(1) as f64;

    let costs = tg
        .tasks
        .iter()
        .map(|t| match t.kind {
            TaskKind::DataProvider(n) => len(shape_of[&n]),
            TaskKind::LossGradient(n) => 2.0 * len(shape_of[&n]),
            TaskKind::Forward(e) => {
                let edge = graph.edge(e);
                let (nu, nv) = (len(shape_of[&edge.from]), len(shape_of[&edge.to]));
                match edge.op {
                    EdgeOp::Conv { kernel, .. } => match algo {
                        ConvAlgorithm::Direct => nv * kernel.len() as f64 + nv,
                        _ => {
                            fft_cost(nu) / out_deg(edge.from)      // shared image FFT
                                + fft_cost(nu)                      // kernel FFT
                                + 4.0 * nu                          // pointwise + freq sum
                                + fft_cost(nu) / in_deg(edge.to)    // shared inverse
                        }
                    },
                    EdgeOp::MaxPool { .. } => nu + nv,
                    EdgeOp::MaxFilter { window, .. } => {
                        6.0 * nu * (window.len() as f64).log2().max(1.0) + nv
                    }
                    EdgeOp::Transfer { .. } => 2.0 * nv,
                }
            }
            TaskKind::Backward(e) => {
                let edge = graph.edge(e);
                let (nu, nv) = (len(shape_of[&edge.from]), len(shape_of[&edge.to]));
                match edge.op {
                    EdgeOp::Conv { kernel, .. } => match algo {
                        ConvAlgorithm::Direct => nu * kernel.len() as f64 + nu,
                        _ => {
                            let kernel_term = if memoize {
                                2.0 * nu // derive flip-spectrum pointwise
                            } else {
                                fft_cost(nu) // retransform the kernel
                            };
                            fft_cost(nu) / in_deg(edge.to)          // shared grad FFT
                                + kernel_term
                                + 4.0 * nu
                                + fft_cost(nu) / out_deg(edge.from) // shared inverse
                        }
                    },
                    EdgeOp::MaxPool { .. } | EdgeOp::MaxFilter { .. } => nv + nu,
                    EdgeOp::Transfer { .. } => 2.0 * nv,
                }
            }
            TaskKind::Update(e) => {
                let edge = graph.edge(e);
                let nu = len(shape_of[&edge.from]);
                let nv = len(shape_of[&edge.to]);
                match edge.op {
                    EdgeOp::Conv { kernel, .. } => {
                        let k = kernel.len() as f64;
                        match algo {
                            ConvAlgorithm::Direct => nv * k + k,
                            _ => {
                                if memoize {
                                    // pointwise corr + one inverse
                                    4.0 * nu + fft_cost(nu) + k
                                } else {
                                    // two forward FFTs + pointwise + inverse
                                    3.0 * fft_cost(nu) + 4.0 * nu + k
                                }
                            }
                        }
                    }
                    EdgeOp::Transfer { .. } => nv + 1.0,
                    _ => 0.0,
                }
            }
        })
        .collect();
    Ok((tg, costs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_graph::builder::scalability_net_3d;

    fn total(costs: &[f64]) -> f64 {
        costs.iter().sum()
    }

    #[test]
    fn totals_scale_quadratically_with_width() {
        let out = Vec3::cube(12);
        let t = |w: usize| {
            let (g, _) = scalability_net_3d(w);
            let (_, c) = task_costs(&g, out, ConvAlgorithm::Direct, false).unwrap();
            total(&c)
        };
        let ratio = t(16) / t(8);
        assert!((3.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn memoization_cheapens_backward_and_update_only() {
        let out = Vec3::cube(12);
        let (g, _) = scalability_net_3d(4);
        let (tg, plain) = task_costs(&g, out, ConvAlgorithm::Fft, false).unwrap();
        let (_, memo) = task_costs(&g, out, ConvAlgorithm::Fft, true).unwrap();
        for (i, t) in tg.tasks.iter().enumerate() {
            match t.kind {
                TaskKind::Forward(_) | TaskKind::DataProvider(_) | TaskKind::LossGradient(_) => {
                    assert_eq!(plain[i], memo[i], "forward costs must not change");
                }
                TaskKind::Backward(e) | TaskKind::Update(e) => {
                    if matches!(g.edge(e).op, EdgeOp::Conv { .. }) {
                        assert!(memo[i] <= plain[i], "memoized task {i} costs more");
                    }
                }
            }
        }
        assert!(total(&memo) < total(&plain));
    }

    #[test]
    fn fft_layer_total_tracks_table_ii_structure() {
        // one fully-connected conv layer f -> f': sum of per-edge fwd
        // costs must equal T(f' + f + f'f) + 4f'f·N within rounding
        let mut g = Graph::new();
        let f = 3usize;
        let fp = 4usize;
        let ins: Vec<_> = (0..f).map(|i| g.add_node(format!("i{i}"))).collect();
        let outs: Vec<_> = (0..fp).map(|i| g.add_node(format!("o{i}"))).collect();
        for &a in &ins {
            for &b in &outs {
                g.add_edge(
                    a,
                    b,
                    EdgeOp::Conv {
                        kernel: Vec3::cube(3),
                        sparsity: Vec3::one(),
                    },
                );
            }
        }
        let out_shape = Vec3::cube(6);
        let (tg, costs) = task_costs(&g, out_shape, ConvAlgorithm::Fft, false).unwrap();
        let n = len(Vec3::cube(8)); // input shape 6+2
        let fwd_total: f64 = tg
            .tasks
            .iter()
            .zip(&costs)
            .filter(|(t, _)| matches!(t.kind, TaskKind::Forward(_)))
            .map(|(_, &c)| c)
            .sum();
        let t = fft_cost(n);
        let expect = t * (f as f64 + fp as f64 + (f * fp) as f64) + 4.0 * n * (f * fp) as f64;
        assert!(
            (fwd_total - expect).abs() < 1e-6 * expect,
            "fwd {fwd_total} vs table {expect}"
        );
    }

    #[test]
    fn every_task_has_a_finite_nonnegative_cost() {
        let (g, _) = scalability_net_3d(3);
        for (algo, memo) in [
            (ConvAlgorithm::Direct, false),
            (ConvAlgorithm::Fft, false),
            (ConvAlgorithm::Fft, true),
        ] {
            let (_, costs) = task_costs(&g, Vec3::cube(12), algo, memo).unwrap();
            assert!(costs.iter().all(|c| c.is_finite() && *c >= 0.0));
        }
    }
}
