//! Discrete-event simulation of the ZNN scheduler on the paper's
//! machines (§VIII, Table V, Figs 5–7).
//!
//! The scalability experiments of the paper ran on four physical
//! machines, up to a 61-core Xeon Phi. This crate substitutes those
//! machines with a simulator that is faithful where it matters:
//!
//! * it schedules the **actual task dependency graph** produced by
//!   [`znn_graph::TaskGraph`] for the actual benchmark architectures,
//! * under the **actual queue policy** implementations from
//!   `znn-sched` (priority / FIFO / LIFO),
//! * with per-task costs from the paper's own complexity model
//!   (`znn-theory`), amortizing shared FFTs exactly as the engine
//!   shares them,
//! * on machine models with core counts and SMT throughput curves
//!   matching Table V.
//!
//! What it abstracts away: cache effects, memory bandwidth, and
//! scheduler critical sections (an optional fixed per-task overhead
//! stands in for the latter). The *shape* claims of Figs 5–7 — linear
//! scaling to the core count, slower gains from hyperthreads, width
//! thresholds for saturation — are properties of the task graph and the
//! policy, which the simulator executes faithfully. See DESIGN.md.

#![warn(missing_docs)]

pub mod costs;
pub mod machine;
mod sim;

pub use machine::Machine;
pub use sim::{simulate, SimConfig, SimResult};
