//! Machine models for the Table V hardware.

/// A shared-memory machine model: core count, hardware threads, clock,
/// and an SMT throughput curve.
///
/// `smt_throughput[t-1]` is the *total* throughput of one core running
/// `t` threads, relative to one thread on one core. Desktop/server
/// Xeons gain ~25–30% from the second hyperthread; Xeon Phi's in-order
/// cores need at least two threads to approach peak and keep gaining
/// (more slowly) up to four — matching the three-slope curves of Fig 5.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads (cores × SMT ways).
    pub hw_threads: usize,
    /// Clock in GHz (scales absolute, not relative, results).
    pub ghz: f64,
    /// Total core throughput at 1..=ways threads.
    pub smt_throughput: Vec<f64>,
}

impl Machine {
    /// 8-core Intel Xeon E5-2666 v3 (Amazon EC2 c4.4xlarge).
    pub fn xeon_e5_8core() -> Machine {
        Machine {
            name: "8-core Xeon E5-2666 v3",
            cores: 8,
            hw_threads: 16,
            ghz: 2.9,
            smt_throughput: vec![1.0, 1.3],
        }
    }

    /// 18-core Intel Xeon E5-2666 v3 (Amazon EC2 c4.8xlarge).
    pub fn xeon_e5_18core() -> Machine {
        Machine {
            name: "18-core Xeon E5-2666 v3",
            cores: 18,
            hw_threads: 36,
            ghz: 2.9,
            smt_throughput: vec![1.0, 1.3],
        }
    }

    /// 40-core (4-way) Intel Xeon E7-4850.
    pub fn xeon_e7_40core() -> Machine {
        Machine {
            name: "40-core Xeon E7-4850",
            cores: 40,
            hw_threads: 80,
            ghz: 2.0,
            smt_throughput: vec![1.0, 1.3],
        }
    }

    /// 60-core Intel Xeon Phi 5110P (Knights Corner), 4 hardware
    /// threads per core; a single in-order thread cannot saturate a
    /// core, giving the three-slope curve of Fig 5(d)/(h).
    pub fn xeon_phi() -> Machine {
        Machine {
            name: "Xeon Phi 5110P",
            cores: 60,
            hw_threads: 240,
            ghz: 1.053,
            smt_throughput: vec![1.0, 1.7, 1.85, 1.95],
        }
    }

    /// All Table V machines.
    pub fn table_v() -> Vec<Machine> {
        vec![
            Machine::xeon_e5_8core(),
            Machine::xeon_e5_18core(),
            Machine::xeon_e7_40core(),
            Machine::xeon_phi(),
        ]
    }

    /// SMT ways per core.
    pub fn ways(&self) -> usize {
        self.hw_threads / self.cores
    }

    /// Total machine throughput with `workers` threads (workers spread
    /// round-robin over cores), in single-thread units.
    pub fn total_throughput(&self, workers: usize) -> f64 {
        let workers = workers.min(self.hw_threads);
        let base = workers / self.cores; // threads on every core
        let extra = workers % self.cores; // cores with one more
        let t_of = |t: usize| -> f64 {
            if t == 0 {
                0.0
            } else {
                self.smt_throughput[(t - 1).min(self.smt_throughput.len() - 1)]
            }
        };
        (self.cores - extra) as f64 * t_of(base) + extra as f64 * t_of(base + 1)
    }

    /// Per-worker speed with `workers` active (uniform approximation).
    pub fn worker_speed(&self, workers: usize) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        let workers = workers.min(self.hw_threads);
        self.total_throughput(workers) / workers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_matches_paper() {
        let ms = Machine::table_v();
        assert_eq!(ms.len(), 4);
        assert_eq!(
            ms.iter().map(|m| m.cores).collect::<Vec<_>>(),
            vec![8, 18, 40, 60]
        );
        assert_eq!(
            ms.iter().map(|m| m.hw_threads).collect::<Vec<_>>(),
            vec![16, 36, 80, 240]
        );
    }

    #[test]
    fn throughput_is_linear_up_to_core_count() {
        let m = Machine::xeon_e5_18core();
        for w in 1..=18 {
            assert!((m.total_throughput(w) - w as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn hyperthreads_add_less_than_cores() {
        let m = Machine::xeon_e5_8core();
        let at_cores = m.total_throughput(8);
        let at_ht = m.total_throughput(16);
        assert!(at_ht > at_cores);
        let ht_gain = at_ht - at_cores;
        assert!(ht_gain < at_cores * 0.5, "HT gain too large: {ht_gain}");
    }

    #[test]
    fn phi_keeps_gaining_to_four_threads_per_core() {
        let m = Machine::xeon_phi();
        let t60 = m.total_throughput(60);
        let t120 = m.total_throughput(120);
        let t240 = m.total_throughput(240);
        assert!(t120 > t60 * 1.3, "second thread should add a lot");
        assert!(t240 > t120, "threads 3-4 still add something");
        assert!(t240 - t120 < t120 - t60, "but less than the second");
    }

    #[test]
    fn oversubscription_is_capped() {
        let m = Machine::xeon_e5_8core();
        assert_eq!(m.total_throughput(1000), m.total_throughput(16));
    }

    #[test]
    fn worker_speed_decreases_when_sharing_cores() {
        let m = Machine::xeon_e5_8core();
        assert!(m.worker_speed(8) > m.worker_speed(16));
        assert!((m.worker_speed(1) - 1.0).abs() < 1e-9);
    }
}
