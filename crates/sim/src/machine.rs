//! Machine models for the Table V hardware.

/// A shared-memory machine model: core count, hardware threads, clock,
/// and an SMT throughput curve.
///
/// `smt_throughput[t-1]` is the *total* throughput of one core running
/// `t` threads, relative to one thread on one core. Desktop/server
/// Xeons gain ~25–30% from the second hyperthread; Xeon Phi's in-order
/// cores need at least two threads to approach peak and keep gaining
/// (more slowly) up to four — matching the three-slope curves of Fig 5.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// Hardware threads (cores × SMT ways).
    pub hw_threads: usize,
    /// Clock in GHz (scales absolute, not relative, results).
    pub ghz: f64,
    /// Total core throughput at 1..=ways threads.
    pub smt_throughput: Vec<f64>,
    /// Sustained single-thread f32 throughput in GFLOP/s — the
    /// absolute price of one FLOP for planners that turn FLOP counts
    /// into wall time. Nominal for the Table V machines, measured by a
    /// microprobe for [`Machine::detect`]; either way it is only a
    /// *prior* the planner calibrates online.
    pub gflops: f64,
    /// Sustained single-thread memory bandwidth in GB/s (prices
    /// bandwidth-bound sweeps; same prior status as `gflops`).
    pub bandwidth_gbs: f64,
}

impl Machine {
    /// 8-core Intel Xeon E5-2666 v3 (Amazon EC2 c4.4xlarge).
    pub fn xeon_e5_8core() -> Machine {
        Machine {
            name: "8-core Xeon E5-2666 v3",
            cores: 8,
            hw_threads: 16,
            ghz: 2.9,
            smt_throughput: vec![1.0, 1.3],
            gflops: 23.2,
            bandwidth_gbs: 55.0,
        }
    }

    /// 18-core Intel Xeon E5-2666 v3 (Amazon EC2 c4.8xlarge).
    pub fn xeon_e5_18core() -> Machine {
        Machine {
            name: "18-core Xeon E5-2666 v3",
            cores: 18,
            hw_threads: 36,
            ghz: 2.9,
            smt_throughput: vec![1.0, 1.3],
            gflops: 23.2,
            bandwidth_gbs: 55.0,
        }
    }

    /// 40-core (4-way) Intel Xeon E7-4850.
    pub fn xeon_e7_40core() -> Machine {
        Machine {
            name: "40-core Xeon E7-4850",
            cores: 40,
            hw_threads: 80,
            ghz: 2.0,
            smt_throughput: vec![1.0, 1.3],
            gflops: 8.0,
            bandwidth_gbs: 30.0,
        }
    }

    /// 60-core Intel Xeon Phi 5110P (Knights Corner), 4 hardware
    /// threads per core; a single in-order thread cannot saturate a
    /// core, giving the three-slope curve of Fig 5(d)/(h).
    pub fn xeon_phi() -> Machine {
        Machine {
            name: "Xeon Phi 5110P",
            cores: 60,
            hw_threads: 240,
            ghz: 1.053,
            smt_throughput: vec![1.0, 1.7, 1.85, 1.95],
            gflops: 8.4,
            bandwidth_gbs: 40.0,
        }
    }

    /// A machine model of the **current host**: core count from the
    /// OS, single-thread FLOP and bandwidth rates from one-shot
    /// microprobes (a dependent-FMA sweep and a large `memcpy`,
    /// ~10 ms each). The probes are deliberately rough — the model is
    /// a planner *prior*, refined online from measured round times —
    /// but they anchor absolute predictions to the right order of
    /// magnitude on unknown hardware, where a hardcoded Table V model
    /// could be off by 10×.
    ///
    /// SMT topology is not probed: the model treats every hardware
    /// thread as a core with a flat throughput curve, which makes
    /// `total_throughput` linear in the worker count — the safe
    /// default when the OS only reports `available_parallelism`.
    pub fn detect() -> Machine {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Machine {
            name: "host (detected)",
            cores: hw,
            hw_threads: hw,
            ghz: 0.0, // unknown; absolute speed lives in `gflops`
            smt_throughput: vec![1.0],
            gflops: flop_probe(),
            bandwidth_gbs: bandwidth_probe(),
        }
    }

    /// All Table V machines.
    pub fn table_v() -> Vec<Machine> {
        vec![
            Machine::xeon_e5_8core(),
            Machine::xeon_e5_18core(),
            Machine::xeon_e7_40core(),
            Machine::xeon_phi(),
        ]
    }

    /// SMT ways per core.
    pub fn ways(&self) -> usize {
        self.hw_threads / self.cores
    }

    /// Total machine throughput with `workers` threads (workers spread
    /// round-robin over cores), in single-thread units.
    pub fn total_throughput(&self, workers: usize) -> f64 {
        let workers = workers.min(self.hw_threads);
        let base = workers / self.cores; // threads on every core
        let extra = workers % self.cores; // cores with one more
        let t_of = |t: usize| -> f64 {
            if t == 0 {
                0.0
            } else {
                self.smt_throughput[(t - 1).min(self.smt_throughput.len() - 1)]
            }
        };
        (self.cores - extra) as f64 * t_of(base) + extra as f64 * t_of(base + 1)
    }

    /// Per-worker speed with `workers` active (uniform approximation).
    pub fn worker_speed(&self, workers: usize) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        let workers = workers.min(self.hw_threads);
        self.total_throughput(workers) / workers as f64
    }
}

/// Measured single-thread f32 throughput, GFLOP/s: 16 independent
/// FMA chains (enough to cover FMA latency on anything current), a
/// few million iterations, `black_box` so the loop survives.
fn flop_probe() -> f64 {
    use std::time::Instant;
    let mut acc = [1.0f32; 16];
    let mul = [0.999_999f32; 16];
    let iters: u32 = 4_000_000;
    let start = Instant::now();
    for i in 0..iters {
        let x = (i & 1023) as f32 * 1e-9;
        for (a, m) in acc.iter_mut().zip(mul) {
            *a = a.mul_add(m, x);
        }
    }
    let dt = start.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(acc);
    let flops = iters as f64 * 16.0 * 2.0; // mul + add per lane
    (flops / dt / 1e9).max(0.1)
}

/// Measured single-thread copy bandwidth, GB/s (read + write bytes),
/// over buffers far larger than L2.
fn bandwidth_probe() -> f64 {
    use std::time::Instant;
    const WORDS: usize = 4 << 20; // 16 MiB per buffer
    let src = vec![1u32; WORDS];
    let mut dst = vec![0u32; WORDS];
    let reps = 4;
    let start = Instant::now();
    for _ in 0..reps {
        dst.copy_from_slice(&src);
        std::hint::black_box(&mut dst);
    }
    let dt = start.elapsed().as_secs_f64().max(1e-9);
    let bytes = (reps * 2 * WORDS * std::mem::size_of::<u32>()) as f64;
    (bytes / dt / 1e9).max(0.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_matches_paper() {
        let ms = Machine::table_v();
        assert_eq!(ms.len(), 4);
        assert_eq!(
            ms.iter().map(|m| m.cores).collect::<Vec<_>>(),
            vec![8, 18, 40, 60]
        );
        assert_eq!(
            ms.iter().map(|m| m.hw_threads).collect::<Vec<_>>(),
            vec![16, 36, 80, 240]
        );
    }

    #[test]
    fn throughput_is_linear_up_to_core_count() {
        let m = Machine::xeon_e5_18core();
        for w in 1..=18 {
            assert!((m.total_throughput(w) - w as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn hyperthreads_add_less_than_cores() {
        let m = Machine::xeon_e5_8core();
        let at_cores = m.total_throughput(8);
        let at_ht = m.total_throughput(16);
        assert!(at_ht > at_cores);
        let ht_gain = at_ht - at_cores;
        assert!(ht_gain < at_cores * 0.5, "HT gain too large: {ht_gain}");
    }

    #[test]
    fn phi_keeps_gaining_to_four_threads_per_core() {
        let m = Machine::xeon_phi();
        let t60 = m.total_throughput(60);
        let t120 = m.total_throughput(120);
        let t240 = m.total_throughput(240);
        assert!(t120 > t60 * 1.3, "second thread should add a lot");
        assert!(t240 > t120, "threads 3-4 still add something");
        assert!(t240 - t120 < t120 - t60, "but less than the second");
    }

    #[test]
    fn oversubscription_is_capped() {
        let m = Machine::xeon_e5_8core();
        assert_eq!(m.total_throughput(1000), m.total_throughput(16));
    }

    #[test]
    fn detect_reports_sane_host_numbers() {
        let m = Machine::detect();
        assert!(m.cores >= 1);
        assert_eq!(m.cores, m.hw_threads);
        // microprobes can be slow under emulation/contention but must
        // land at a physically plausible order of magnitude
        assert!(m.gflops > 0.05 && m.gflops < 1000.0, "gflops {}", m.gflops);
        assert!(
            m.bandwidth_gbs > 0.05 && m.bandwidth_gbs < 2000.0,
            "bandwidth {}",
            m.bandwidth_gbs
        );
        // flat SMT curve → throughput linear in workers
        assert!((m.total_throughput(m.cores) - m.cores as f64).abs() < 1e-9);
    }

    #[test]
    fn table_v_priors_have_absolute_rates() {
        for m in Machine::table_v() {
            assert!(m.gflops > 0.0 && m.bandwidth_gbs > 0.0, "{}", m.name);
        }
    }

    #[test]
    fn worker_speed_decreases_when_sharing_cores() {
        let m = Machine::xeon_e5_8core();
        assert!(m.worker_speed(8) > m.worker_speed(16));
        assert!((m.worker_speed(1) - 1.0).abs() < 1e-9);
    }
}
