//! Property tests for the discrete-event simulator: classic list-
//! scheduling bounds must hold for every network, machine and policy.

use proptest::prelude::*;
use znn_graph::builder::scalability_net_3d;
use znn_graph::TaskGraph;
use znn_sched::QueuePolicy;
use znn_sim::costs::task_costs;
use znn_sim::{simulate, Machine, SimConfig};
use znn_tensor::Vec3;
use znn_theory::flops::ConvAlgorithm;

fn machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        Just(Machine::xeon_e5_8core()),
        Just(Machine::xeon_e5_18core()),
        Just(Machine::xeon_e7_40core()),
        Just(Machine::xeon_phi()),
    ]
}

fn policy() -> impl Strategy<Value = QueuePolicy> {
    prop_oneof![
        Just(QueuePolicy::Priority),
        Just(QueuePolicy::Fifo),
        Just(QueuePolicy::Lifo),
        Just(QueuePolicy::BinaryHeap),
    ]
}

/// Longest cost-weighted path through the task graph — the schedule-
/// independent lower bound on makespan (in 1-worker time units).
fn critical_path(tg: &TaskGraph, costs: &[f64]) -> f64 {
    let mut longest = vec![0.0f64; tg.tasks.len()];
    for (i, t) in tg.tasks.iter().enumerate() {
        let dep_max = t
            .deps
            .iter()
            .map(|d| longest[d.0])
            .fold(0.0f64, f64::max);
        longest[i] = dep_max + costs[i];
    }
    longest.into_iter().fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn makespan_respects_list_scheduling_bounds(
        width in 2usize..12,
        workers in 1usize..40,
        m in machine(),
        p in policy(),
    ) {
        let (g, _) = scalability_net_3d(width);
        let (tg, costs) = task_costs(&g, Vec3::cube(8), ConvAlgorithm::Direct, false).unwrap();
        let cfg = SimConfig { workers, policy: p, ..Default::default() };
        let r = simulate(&tg, &costs, &m, &cfg);

        let speed = m.worker_speed(workers.min(m.hw_threads));
        let total: f64 = costs.iter().sum();
        let cp = critical_path(&tg, &costs) / speed;
        let area = total / (speed * workers.min(m.hw_threads) as f64);

        // lower bounds: critical path and total-work area
        prop_assert!(r.makespan + 1e-6 >= cp, "below critical path");
        prop_assert!(r.makespan + 1e-6 >= area, "below work area");
        // Graham bound for any greedy list schedule: 2x optimal
        prop_assert!(
            r.makespan <= cp + area + 1e-6,
            "greedy bound violated: {} > {} + {}",
            r.makespan, cp, area
        );
        // utilization is a fraction
        prop_assert!(r.busy_fraction > 0.0 && r.busy_fraction <= 1.0 + 1e-9);
    }

    #[test]
    fn speedup_never_exceeds_total_throughput(
        width in 2usize..10,
        m in machine(),
    ) {
        let (g, _) = scalability_net_3d(width);
        let (tg, costs) = task_costs(&g, Vec3::cube(8), ConvAlgorithm::Fft, true).unwrap();
        let workers = m.hw_threads;
        let r = simulate(&tg, &costs, &m, &SimConfig { workers, ..Default::default() });
        prop_assert!(
            r.speedup <= m.total_throughput(workers) + 1e-6,
            "speedup {} beyond machine throughput {}",
            r.speedup,
            m.total_throughput(workers)
        );
        prop_assert!(r.speedup >= 1.0 - 1e-9);
    }

    #[test]
    fn more_workers_never_increase_total_work(
        width in 2usize..8,
        w1 in 1usize..16,
        w2 in 1usize..16,
    ) {
        // busy area (work) is invariant under worker count
        let (g, _) = scalability_net_3d(width);
        let (tg, costs) = task_costs(&g, Vec3::cube(8), ConvAlgorithm::Direct, false).unwrap();
        let m = Machine::xeon_e5_18core();
        let r1 = simulate(&tg, &costs, &m, &SimConfig { workers: w1, ..Default::default() });
        let r2 = simulate(&tg, &costs, &m, &SimConfig { workers: w2, ..Default::default() });
        let work1 = r1.busy_fraction * r1.makespan * w1.min(m.hw_threads) as f64
            * m.worker_speed(w1);
        let work2 = r2.busy_fraction * r2.makespan * w2.min(m.hw_threads) as f64
            * m.worker_speed(w2);
        prop_assert!(
            (work1 - work2).abs() < 1e-6 * work1.max(work2),
            "{work1} vs {work2}"
        );
    }
}
