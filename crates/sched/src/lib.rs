//! ZNN's task scheduling and synchronization machinery (paper §VI–VII).
//!
//! The entire gradient-learning computation is decomposed into tasks
//! (one forward, backward and update task per computation-graph edge)
//! that a fixed set of workers execute from a **global priority queue**.
//! This crate implements that machinery, independent of what the tasks
//! compute:
//!
//! * [`queue`] — the global task queue as a *heap of lists*: insertion
//!   and removal cost O(log K) in the number of **distinct priorities**
//!   K rather than O(log N) in the number of tasks (§VII-A). FIFO and
//!   LIFO policies from §X are provided for the scheduling ablation,
//!   plus a plain binary heap for the data-structure ablation.
//! * [`executor`] — the worker pool: each worker repeatedly picks the
//!   highest-priority ready task and runs it (§VI-B). Workers can
//!   *donate* idle time to a `rayon` fork-join pool
//!   ([`Executor::with_donation`]): when the task queue is empty they
//!   execute pending scope jobs — parallel FFT line chunks spawned by
//!   a sibling's convolution task — instead of parking. Paired with a
//!   [`rayon::ThreadPool::donor_only`] pool this gives the paper's
//!   "predetermined number of workers" a single thread budget covering
//!   both task- and data-parallelism: an FFT inside a task never
//!   oversubscribes the machine, because its chunks only ever run on
//!   the scheduler's own (idle) workers and on the task's own thread.
//! * [`stealing`] — the work-stealing alternative scheduler mentioned in
//!   §X, built on crossbeam deques; its workers donate the same way
//!   ([`StealingExecutor::with_donation`]).
//! * [`update`] — the FORCE state machine of Algorithms 1–3: forward
//!   tasks *force* their edge's pending update task — executing it
//!   inline (Queued), delegating themselves to its executor (Executing),
//!   or proceeding (Completed) — so **no thread ever waits** on an
//!   update and the updated kernel is used while cache-hot.
//! * [`sum`] — the wait-free concurrent summation of Algorithm 4: the
//!   O(n³) image additions happen outside the critical section; only
//!   pointer swaps happen inside.
//! * [`latch`] — a countdown latch used to detect the end of a training
//!   round.
//!
//! Priorities are `u64`s where **smaller runs earlier**; update tasks
//! use [`UPDATE_PRIORITY`] (the lowest of all, §VI-A).

#![warn(missing_docs)]

pub mod executor;
pub mod latch;
pub mod queue;
pub mod stealing;
pub mod sum;
pub mod update;

pub use executor::{Executor, SchedStats, Scheduler, Task};
pub use latch::Latch;
pub use queue::QueuePolicy;
pub use stealing::StealingExecutor;
pub use sum::{Accumulate, ConcurrentSum};
pub use update::UpdateHandle;

/// The priority of update tasks — lower than every other task (§VI-A:
/// "the update tasks will have the lowest priority of all tasks").
pub const UPDATE_PRIORITY: u64 = u64::MAX;
