//! Wait-free concurrent summation (paper §VII-B, Algorithm 4).
//!
//! When multiple convolutions converge on one computation-graph node,
//! their results must be summed. A naive lock around `sum += image`
//! would serialize O(n³) additions. Algorithm 4 keeps only **pointer
//! swaps** inside the critical section: each contributing thread tries
//! to park its image in the shared slot; if the slot is occupied it
//! *takes* the parked image instead, merges outside the lock, and
//! retries. No thread ever waits for another's addition.

use parking_lot::Mutex;

/// Values that can absorb another value of the same type — the
/// `ADD-TO(v, v')` of Algorithm 4.
pub trait Accumulate {
    /// Merges `other` into `self`.
    fn accumulate(&mut self, other: Self);
}

impl Accumulate for f64 {
    fn accumulate(&mut self, other: Self) {
        *self += other;
    }
}

impl Accumulate for usize {
    fn accumulate(&mut self, other: Self) {
        *self += other;
    }
}

struct Slot<T> {
    sum: Option<T>,
    total: usize,
}

/// A reusable concurrent accumulator for a known number of
/// contributions.
///
/// The structure mirrors Algorithm 4: `S.sum` is the parked value,
/// `S.total` counts parked contributions, `S.required` is the number of
/// convergent edges. [`ConcurrentSum::add`] returns `true` to exactly
/// one caller — the one whose parking completed the sum — which then
/// collects the result with [`ConcurrentSum::take`] and schedules the
/// dependent tasks (Algorithm 1, lines 2–6).
pub struct ConcurrentSum<T> {
    slot: Mutex<Slot<T>>,
    required: usize,
}

impl<T: Accumulate> ConcurrentSum<T> {
    /// An accumulator expecting `required >= 1` contributions.
    pub fn new(required: usize) -> Self {
        assert!(required >= 1, "a sum needs at least one contribution");
        ConcurrentSum {
            slot: Mutex::new(Slot {
                sum: None,
                total: 0,
            }),
            required,
        }
    }

    /// Number of contributions the accumulator waits for.
    pub fn required(&self) -> usize {
        self.required
    }

    /// Contributes `v`; returns `true` iff this call completed the sum
    /// (Algorithm 4's `last`). The heavy merge work runs outside the
    /// lock; the critical section is two pointer-sized writes.
    pub fn add(&self, mut v: T) -> bool {
        let mut merged: Option<T>;
        loop {
            {
                let mut slot = self.slot.lock();
                if slot.sum.is_none() {
                    slot.sum = Some(v);
                    slot.total += 1;
                    return slot.total == self.required;
                }
                merged = slot.sum.take();
            }
            // outside the critical section: v = v + v'
            let other = merged.take().expect("taken under lock");
            v.accumulate(other);
        }
    }

    /// Discards any partial (or complete-but-untaken) sum and re-arms
    /// the accumulator. This is the recovery path for a *poisoned*
    /// round: when a contributing task panics, the sum can be left
    /// mid-flight — some contributions parked, the completing `take`
    /// never issued — and the next round would deadlock on it. The
    /// caller must guarantee no contributor is still running (the
    /// engine quiesces its scheduler first).
    pub fn reset(&self) {
        let mut slot = self.slot.lock();
        slot.sum = None;
        slot.total = 0;
    }

    /// Collects the completed sum and resets the accumulator for the
    /// next round. Panics if the sum is incomplete — callers must only
    /// invoke this after [`ConcurrentSum::add`] returned `true`.
    pub fn take(&self) -> T {
        let mut slot = self.slot.lock();
        assert_eq!(
            slot.total, self.required,
            "take() before the sum completed"
        );
        slot.total = 0;
        slot.sum.take().expect("completed sum must hold a value")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_contribution() {
        let s = ConcurrentSum::<f64>::new(1);
        assert!(s.add(2.5));
        assert_eq!(s.take(), 2.5);
    }

    #[test]
    fn sequential_contributions_sum() {
        let s = ConcurrentSum::<f64>::new(3);
        assert!(!s.add(1.0));
        assert!(!s.add(2.0));
        assert!(s.add(4.0));
        assert_eq!(s.take(), 7.0);
    }

    #[test]
    fn reusable_across_rounds() {
        let s = ConcurrentSum::<usize>::new(2);
        for round in 1..5usize {
            assert!(!s.add(round));
            assert!(s.add(round * 10));
            assert_eq!(s.take(), round * 11);
        }
    }

    #[test]
    fn reset_discards_partial_sums() {
        let s = ConcurrentSum::<f64>::new(3);
        assert!(!s.add(1.0)); // a poisoned round leaves a partial sum
        s.reset();
        // the accumulator works normally again
        assert!(!s.add(10.0));
        assert!(!s.add(20.0));
        assert!(s.add(30.0));
        assert_eq!(s.take(), 60.0);
        // reset after a completed-but-untaken sum also re-arms
        assert!(!s.add(1.0));
        assert!(!s.add(2.0));
        assert!(s.add(3.0));
        s.reset();
        assert!(!s.add(5.0));
    }

    #[test]
    #[should_panic(expected = "before the sum completed")]
    fn take_panics_when_incomplete() {
        let s = ConcurrentSum::<f64>::new(2);
        s.add(1.0);
        let _ = s.take();
    }

    #[test]
    fn exactly_one_caller_sees_last_under_contention() {
        for _ in 0..50 {
            let n = 8;
            let s = Arc::new(ConcurrentSum::<usize>::new(n));
            let lasts = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let s = Arc::clone(&s);
                    let lasts = Arc::clone(&lasts);
                    std::thread::spawn(move || {
                        if s.add(1 << i) {
                            lasts.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(lasts.load(Ordering::SeqCst), 1);
            assert_eq!(s.take(), (1 << n) - 1, "every contribution counted once");
        }
    }

    /// An Accumulate impl that records how long merges take to show the
    /// merge happens outside the lock (threads make progress in
    /// parallel). This is a smoke test, not a timing proof.
    #[test]
    fn heavy_merges_do_not_serialize_completion() {
        #[derive(Clone)]
        struct Slow(Vec<u64>);
        impl Accumulate for Slow {
            fn accumulate(&mut self, other: Self) {
                for (a, b) in self.0.iter_mut().zip(other.0) {
                    *a += b;
                }
            }
        }
        let n = 4;
        let s = Arc::new(ConcurrentSum::<Slow>::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || s.add(Slow(vec![i as u64 + 1; 1 << 16])))
            })
            .collect();
        let lasts = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&last| last)
            .count();
        assert_eq!(lasts, 1);
        let total = s.take();
        assert_eq!(total.0[0], (1..=n as u64).sum::<u64>());
        assert_eq!(total.0[1 << 15], (1..=n as u64).sum::<u64>());
    }
}
