//! A countdown latch for detecting the end of a training round.
//!
//! The training engine knows how many terminal events a round produces
//! (e.g. one per updated edge plus one per input node of the backward
//! graph); the driver thread waits on a latch that those tasks count
//! down. This keeps the workers themselves free of any notion of
//! "rounds".

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// A reusable countdown latch.
pub struct Latch {
    count: Mutex<usize>,
    cond: Condvar,
}

impl Latch {
    /// A latch that opens after `count` calls to [`Latch::count_down`].
    pub fn new(count: usize) -> Self {
        Latch {
            count: Mutex::new(count),
            cond: Condvar::new(),
        }
    }

    /// Records one event; wakes waiters when the count reaches zero.
    ///
    /// Counting down an already-open latch is a no-op rather than a
    /// panic: when a poisoned round force-opens a latch with
    /// [`Latch::open`], healthy straggler tasks still in flight finish
    /// afterwards and count down a latch that is already at zero —
    /// that is legitimate, not a protocol violation.
    pub fn count_down(&self) {
        let mut c = self.count.lock();
        if *c == 0 {
            return;
        }
        *c -= 1;
        if *c == 0 {
            self.cond.notify_all();
        }
    }

    /// Forces the latch open regardless of the remaining count, waking
    /// every waiter. Used by the engine's panic containment: a poisoned
    /// round can never deliver its remaining events, so the driver is
    /// released immediately and recovery proceeds.
    pub fn open(&self) {
        let mut c = self.count.lock();
        *c = 0;
        self.cond.notify_all();
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        let mut c = self.count.lock();
        while *c > 0 {
            self.cond.wait(&mut c);
        }
    }

    /// Blocks until the count reaches zero or `timeout` elapses; returns
    /// `true` if the latch opened.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut c = self.count.lock();
        while *c > 0 {
            if self.cond.wait_until(&mut c, deadline).timed_out() {
                return *c == 0;
            }
        }
        true
    }

    /// Re-arms the latch for another round. Must only be called while no
    /// thread is waiting.
    pub fn reset(&self, count: usize) {
        *self.count.lock() = count;
    }

    /// Current remaining count.
    pub fn remaining(&self) -> usize {
        *self.count.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn opens_after_exact_count() {
        let l = Latch::new(3);
        l.count_down();
        l.count_down();
        assert_eq!(l.remaining(), 1);
        l.count_down();
        l.wait(); // must not block
    }

    #[test]
    fn wakes_waiting_thread() {
        let l = Arc::new(Latch::new(2));
        let l2 = Arc::clone(&l);
        let waiter = std::thread::spawn(move || l2.wait());
        std::thread::sleep(Duration::from_millis(10));
        l.count_down();
        l.count_down();
        waiter.join().unwrap();
    }

    #[test]
    fn timeout_expires_when_unopened() {
        let l = Latch::new(1);
        assert!(!l.wait_timeout(Duration::from_millis(20)));
        l.count_down();
        assert!(l.wait_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn reset_rearms() {
        let l = Latch::new(1);
        l.count_down();
        l.wait();
        l.reset(2);
        assert_eq!(l.remaining(), 2);
        l.count_down();
        l.count_down();
        l.wait();
    }

    #[test]
    fn overcounting_saturates_at_zero() {
        // stragglers of a force-opened round count down an open latch
        let l = Latch::new(1);
        l.count_down();
        l.count_down(); // no-op, not a panic
        assert_eq!(l.remaining(), 0);
        l.reset(2);
        assert_eq!(l.remaining(), 2, "saturation must not break re-arming");
    }

    #[test]
    fn open_releases_waiters_immediately() {
        let l = Arc::new(Latch::new(5));
        let l2 = Arc::clone(&l);
        let waiter = std::thread::spawn(move || l2.wait());
        std::thread::sleep(Duration::from_millis(10));
        l.open();
        waiter.join().unwrap();
        assert_eq!(l.remaining(), 0);
        // stragglers after the open are harmless
        l.count_down();
        assert_eq!(l.remaining(), 0);
    }
}
