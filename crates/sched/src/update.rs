//! The FORCE state machine for update tasks (paper Algorithms 1–3).
//!
//! Update tasks run at the lowest priority; they only execute early when
//! a forward task of the next round *needs* the updated parameters. The
//! FORCE protocol guarantees **no thread ever waits** for an update:
//!
//! 1. **Completed** (or never scheduled) — the forcing thread just runs
//!    its forward subtask.
//! 2. **Queued** — the forcing thread claims the update (its queue entry
//!    becomes a no-op), executes it inline, then runs the subtask — the
//!    freshly written parameters are still cache-hot for the forward
//!    computation.
//! 3. **Executing** — the subtask is attached to the running update;
//!    whichever thread finishes the update executes the subtask next.
//!    The forcing thread returns and picks up other work.
//!
//! Claiming instead of physically deleting the queue entry keeps the
//! queue free of random-access removal; a claimed entry is skipped in
//! O(1) when popped.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Work payloads.
type Work = Box<dyn FnOnce() + Send + 'static>;

enum State {
    /// No pending update (first round, or the previous update finished
    /// and the handle was not re-armed). Equivalent to Completed for
    /// forcing purposes.
    Idle,
    /// Scheduled, waiting in the queue.
    Queued(Work),
    /// Some thread is running the update; a forced subtask may be
    /// parked here.
    Executing { attached: Option<Work> },
}

/// Counters for the three FORCE outcomes, exposed for tests and the
/// scheduler-behaviour benchmarks.
#[derive(Debug, Default)]
pub struct ForceStats {
    /// FORCE found the update already done (case 1).
    pub already_done: AtomicU64,
    /// FORCE claimed a queued update and ran it inline (case 2).
    pub ran_inline: AtomicU64,
    /// FORCE attached the subtask to a running update (case 3).
    pub delegated: AtomicU64,
}

/// A per-edge handle owning the lifecycle of that edge's update task.
#[derive(Clone)]
pub struct UpdateHandle {
    inner: Arc<Inner>,
}

struct Inner {
    state: Mutex<State>,
    stats: ForceStats,
}

impl UpdateHandle {
    /// A handle with no pending update.
    pub fn new() -> Self {
        UpdateHandle {
            inner: Arc::new(Inner {
                state: Mutex::new(State::Idle),
                stats: ForceStats::default(),
            }),
        }
    }

    /// Arms the handle with this round's update work (called by the
    /// edge's backward task, Algorithm 2 line 4). The caller must then
    /// enqueue [`UpdateHandle::queue_entry`] at [`crate::UPDATE_PRIORITY`].
    ///
    /// Panics if an update is already pending — the task dependency
    /// graph guarantees the previous round's update completed (a forward
    /// task forces it) before the next backward task runs.
    pub fn arm(&self, work: Work) {
        let mut st = self.inner.state.lock();
        match *st {
            State::Idle => *st = State::Queued(work),
            _ => panic!("armed an update that is still pending"),
        }
    }

    /// The closure to enqueue on the scheduler: runs the update if it is
    /// still queued, then any attached subtask; a claimed (forced) entry
    /// is a no-op.
    pub fn queue_entry(&self) -> Work {
        let this = self.clone();
        Box::new(move || this.run_queued())
    }

    fn run_queued(&self) {
        let work = {
            let mut st = self.inner.state.lock();
            match std::mem::replace(&mut *st, State::Idle) {
                State::Queued(work) => {
                    *st = State::Executing { attached: None };
                    work
                }
                other => {
                    // stale entry: the update was forced (Idle) or is
                    // being run by the forcing thread (Executing)
                    *st = other;
                    return;
                }
            }
        };
        work();
        self.finish();
    }

    /// Algorithm 1's FORCE: ensures the pending update (if any) runs
    /// before `subtask`. Either executes both on the calling thread or
    /// delegates `subtask` to the thread running the update.
    pub fn force(&self, subtask: Work) {
        let claimed = {
            let mut st = self.inner.state.lock();
            match std::mem::replace(&mut *st, State::Idle) {
                State::Idle => {
                    // case 1: completed (or never scheduled)
                    self.inner.stats.already_done.fetch_add(1, Ordering::Relaxed);
                    None
                }
                State::Queued(work) => {
                    // case 2: claim it; the queue entry becomes stale
                    *st = State::Executing { attached: None };
                    self.inner.stats.ran_inline.fetch_add(1, Ordering::Relaxed);
                    Some(work)
                }
                State::Executing { .. } => {
                    // case 3: park the subtask with the running update
                    *st = State::Executing {
                        attached: Some(subtask),
                    };
                    self.inner.stats.delegated.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        };
        if let Some(work) = claimed {
            work();
            self.finish();
        }
        subtask();
    }

    /// Completes an execution: flips back to Idle and runs any subtask
    /// that was attached while the update ran (Algorithm 3 lines 3–6).
    fn finish(&self) {
        let attached = {
            let mut st = self.inner.state.lock();
            match std::mem::replace(&mut *st, State::Idle) {
                State::Executing { attached } => attached,
                _ => unreachable!("finish() without a running update"),
            }
        };
        if let Some(sub) = attached {
            sub();
        }
    }

    /// True when no update is pending or running.
    pub fn is_idle(&self) -> bool {
        matches!(*self.inner.state.lock(), State::Idle)
    }

    /// FORCE outcome counters.
    pub fn stats(&self) -> &ForceStats {
        &self.inner.stats
    }
}

impl Default for UpdateHandle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Executor, Latch, QueuePolicy, Scheduler, UPDATE_PRIORITY};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn force_on_idle_runs_subtask_immediately() {
        let h = UpdateHandle::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        h.force(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(h.stats().already_done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn force_on_queued_runs_update_then_subtask_inline() {
        let h = UpdateHandle::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        h.arm(Box::new(move || l1.lock().push("update")));
        let l2 = Arc::clone(&log);
        h.force(Box::new(move || l2.lock().push("forward")));
        assert_eq!(*log.lock(), vec!["update", "forward"]);
        assert_eq!(h.stats().ran_inline.load(Ordering::SeqCst), 1);
        assert!(h.is_idle());
    }

    #[test]
    fn stale_queue_entry_is_noop_after_force() {
        let h = UpdateHandle::new();
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        h.arm(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }));
        let entry = h.queue_entry();
        h.force(Box::new(|| {}));
        entry(); // popped later by a worker: must not rerun the update
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn queue_entry_runs_update_when_not_forced() {
        let h = UpdateHandle::new();
        let runs = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&runs);
        h.arm(Box::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }));
        h.queue_entry()();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert!(h.is_idle());
        // forcing afterwards is case 1
        h.force(Box::new(|| {}));
        assert_eq!(h.stats().already_done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn force_during_execution_delegates_subtask() {
        let h = UpdateHandle::new();
        let entered = Arc::new(Latch::new(1));
        let release = Arc::new(Latch::new(1));
        let log = Arc::new(Mutex::new(Vec::new()));
        {
            let entered = Arc::clone(&entered);
            let release = Arc::clone(&release);
            let log = Arc::clone(&log);
            h.arm(Box::new(move || {
                entered.count_down();
                release.wait();
                log.lock().push("update");
            }));
        }
        // run the queued update on another thread and pause inside it
        let runner = {
            let h = h.clone();
            std::thread::spawn(move || h.queue_entry()())
        };
        entered.wait();
        // force while Executing: subtask must be delegated, not run here
        {
            let log = Arc::clone(&log);
            h.force(Box::new(move || log.lock().push("forward")));
        }
        assert!(log.lock().is_empty(), "subtask ran before update finished");
        assert_eq!(h.stats().delegated.load(Ordering::SeqCst), 1);
        release.count_down();
        runner.join().unwrap();
        assert_eq!(*log.lock(), vec!["update", "forward"]);
    }

    #[test]
    fn works_end_to_end_on_an_executor() {
        // one edge trained for several rounds: backward arms the update,
        // enqueues it at lowest priority; the next round's forward forces
        // it; ordering update-before-forward must hold every round.
        let ex = Executor::new(4, QueuePolicy::Priority);
        let h = UpdateHandle::new();
        let updates = Arc::new(AtomicUsize::new(0));
        let forwards = Arc::new(AtomicUsize::new(0));
        for _round in 0..100 {
            let done = Arc::new(Latch::new(1));
            {
                let u = Arc::clone(&updates);
                h.arm(Box::new(move || {
                    u.fetch_add(1, Ordering::SeqCst);
                }));
                ex.submit(UPDATE_PRIORITY, h.queue_entry());
            }
            {
                let h2 = h.clone();
                let f = Arc::clone(&forwards);
                let u = Arc::clone(&updates);
                let done = Arc::clone(&done);
                ex.submit(
                    0,
                    Box::new(move || {
                        h2.force(Box::new(move || {
                            // the update for this round must be complete
                            let fs = f.fetch_add(1, Ordering::SeqCst) + 1;
                            assert!(u.load(Ordering::SeqCst) >= fs);
                            done.count_down();
                        }));
                    }),
                );
            }
            done.wait();
        }
        ex.wait_quiescent();
        assert_eq!(updates.load(Ordering::SeqCst), 100);
        assert_eq!(forwards.load(Ordering::SeqCst), 100);
    }
}
