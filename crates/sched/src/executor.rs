//! The worker pool (paper §VI-B).
//!
//! A predetermined number of workers repeatedly pick the
//! highest-priority task off the global queue and execute it. Tasks are
//! plain `FnOnce` closures; they may submit further tasks (that is how
//! the dependency graph unfolds at runtime — the task that completes a
//! node's sum enqueues the node's dependent tasks).
//!
//! Workers can additionally **donate** themselves to a fork-join pool
//! ([`Executor::with_donation`]): whenever the task queue is empty, a
//! worker executes pending `rayon` scope jobs instead of parking. A
//! scheduler task that opens a parallel FFT scope therefore runs its
//! line chunks on otherwise-idle sibling workers — one thread budget
//! for task- and data-parallelism, no oversubscription. Scheduler
//! tasks always take precedence: donation happens only when the queue
//! has nothing runnable.

use crate::queue::{QueuePolicy, TaskQueue};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A unit of work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Registers a donor waker on `pool` that calls `wake(&target)` for
/// every queued fork-join job, holding `target` weakly. Returns the
/// `Arc` that keeps the registration alive — drop it to unregister.
/// Shared by both executor flavours so the lost-wakeup-sensitive
/// pairing lives in one place.
pub(crate) fn register_donor_waker<T, F>(
    pool: &rayon::ThreadPool,
    target: &Arc<T>,
    wake: F,
) -> Arc<dyn Fn() + Send + Sync>
where
    T: Send + Sync + 'static,
    F: Fn(&T) + Send + Sync + 'static,
{
    let weak = Arc::downgrade(target);
    let waker: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
        if let Some(t) = weak.upgrade() {
            wake(&t);
        }
    });
    pool.add_donor_waker(&waker);
    waker
}

/// Anything that can run tasks at a priority — implemented by the
/// queue-based [`Executor`] and the work-stealing alternative.
pub trait Scheduler: Send + Sync {
    /// Enqueues a task; smaller priority runs earlier.
    fn submit(&self, priority: u64, task: Task);
    /// Scheduler statistics snapshot.
    fn stats(&self) -> SchedStats;
    /// Tasks waiting right now — the lock-free backpressure gauge an
    /// admission controller polls per request ([`SchedStats::queue_depth`]
    /// carries the same number in snapshots). Both executors override
    /// this with an atomic read; the default goes through [`Scheduler::stats`].
    fn queue_depth(&self) -> u64 {
        self.stats().queue_depth
    }
}

/// Counters describing scheduler activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks executed by workers.
    pub executed: u64,
    /// Maximum queue length observed at submit time.
    pub peak_queue_len: u64,
    /// Maximum number of distinct priorities observed at submit time
    /// (the K of the heap-of-lists bound; 0 for non-priority policies).
    pub peak_distinct_priorities: u64,
    /// Tasks waiting in the queue at the moment of the snapshot — the
    /// backpressure signal a caller polls to throttle submission. Zero
    /// when the scheduler is quiescent. (For the work-stealing
    /// executor this counts submitted-but-unfinished tasks, which also
    /// includes tasks currently executing.)
    pub queue_depth: u64,
    /// Tasks that panicked while executing. Workers catch the unwind,
    /// count it here, and keep serving — a panicking task must never
    /// take a worker thread (and with it the whole round protocol)
    /// down. Callers that need round-level containment (the engine)
    /// additionally wrap their task bodies; panics caught there do not
    /// reach this counter.
    pub task_panics: u64,
    /// Panics of *detached* fork-join spawns recorded by the donation
    /// pool this executor's workers serve ([`Executor::with_donation`]).
    /// Zero for executors without a donation pool. Surfaced here so a
    /// silently-discarded spawn panic is visible to round statistics
    /// and CI assertions.
    pub detached_panics: u64,
}

struct Shared {
    queue: Mutex<TaskQueue<Task>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Lock-free mirror of the queue length (incremented on submit,
    /// decremented when a worker takes a task) so backpressure polls
    /// never contend on the queue mutex.
    depth: AtomicU64,
    executed: AtomicU64,
    task_panics: AtomicU64,
    peak_len: AtomicU64,
    peak_k: AtomicU64,
    idle_workers: AtomicUsize,
    workers: usize,
    idle_cond: Condvar,
    idle_lock: Mutex<()>,
    /// Fork-join pool idle workers donate to (scope jobs run when the
    /// task queue is empty).
    donate: Option<Arc<rayon::ThreadPool>>,
}

/// The queue-based worker pool. Dropping the executor shuts the workers
/// down after the queue drains.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Keeps the donor waker registered with the fork-join pool alive;
    /// dropping the executor unregisters it.
    _waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Executor {
    /// Starts `workers >= 1` worker threads with the given queue policy.
    pub fn new(workers: usize, policy: QueuePolicy) -> Self {
        Self::build(workers, policy, None)
    }

    /// Starts `workers >= 1` worker threads that **donate** to `pool`:
    /// whenever the task queue is empty, a worker executes pending
    /// fork-join jobs (parallel FFT line chunks, baseline `par_iter`
    /// chunks) from `pool` instead of parking. Pair with a
    /// [`rayon::ThreadPool::donor_only`] pool so the executor's workers
    /// are the *only* threads in the budget.
    ///
    /// # Example
    ///
    /// One thread budget, two kinds of parallelism: a scheduler task
    /// opens a fork-join scope on the shared donor-only pool, and its
    /// chunks run on the task's own thread plus idle sibling workers —
    /// never on new OS threads. (This is exactly how `znn-core` wires
    /// `FftEngine::with_pool` to its executor.)
    ///
    /// ```
    /// use std::sync::{mpsc, Arc};
    /// use znn_sched::{Executor, QueuePolicy, Scheduler};
    ///
    /// let pool = Arc::new(rayon::ThreadPool::donor_only());
    /// let exec = Executor::with_donation(2, QueuePolicy::Priority, Arc::clone(&pool));
    /// let (tx, rx) = mpsc::channel();
    /// exec.submit(0, {
    ///     let pool = Arc::clone(&pool);
    ///     Box::new(move || {
    ///         let mut halves = [0u32; 2];
    ///         pool.scope(|s| {
    ///             for (i, h) in halves.iter_mut().enumerate() {
    ///                 s.spawn(move |_| *h = i as u32 + 1);
    ///             }
    ///         });
    ///         tx.send(halves[0] + halves[1]).unwrap();
    ///     })
    /// });
    /// assert_eq!(rx.recv().unwrap(), 3);
    /// ```
    pub fn with_donation(workers: usize, policy: QueuePolicy, pool: Arc<rayon::ThreadPool>) -> Self {
        Self::build(workers, policy, Some(pool))
    }

    fn build(workers: usize, policy: QueuePolicy, donate: Option<Arc<rayon::ThreadPool>>) -> Self {
        assert!(workers >= 1, "an executor needs at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(TaskQueue::new(policy)),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            depth: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            task_panics: AtomicU64::new(0),
            peak_len: AtomicU64::new(0),
            peak_k: AtomicU64::new(0),
            idle_workers: AtomicUsize::new(0),
            workers,
            idle_cond: Condvar::new(),
            idle_lock: Mutex::new(()),
            donate,
        });
        // wake a parked worker when a fork-join job is queued. Taking
        // the queue lock before notifying pairs with the worker's
        // has-pending re-check under that same lock, so workers can
        // park on an untimed wait without ever missing a donated job.
        // notify_one: every `available` waiter re-checks queue + pool
        // identically, so one wakeup per job is enough and a burst of
        // W chunk pushes wakes at most W workers.
        let waker = shared.donate.as_ref().map(|pool| {
            register_donor_waker(pool, &shared, |s: &Shared| {
                drop(s.queue.lock());
                s.available.notify_one();
            })
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("znn-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn worker")
            })
            .collect();
        Executor {
            shared,
            handles,
            _waker: waker,
        }
    }

    /// The paper's default configuration: priority policy, one worker
    /// per available hardware thread.
    pub fn with_default_workers() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Executor::new(n, QueuePolicy::Priority)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Tasks waiting in the queue right now, from the atomic gauge —
    /// safe to poll per request without touching the queue lock.
    pub fn queue_depth(&self) -> u64 {
        self.shared.depth.load(Ordering::Acquire)
    }

    /// Blocks until the queue is empty **and** every worker is idle.
    /// Only meaningful when no external thread keeps submitting.
    pub fn wait_quiescent(&self) {
        let mut guard = self.shared.idle_lock.lock();
        loop {
            let queue_empty = self.shared.queue.lock().is_empty();
            let all_idle =
                self.shared.idle_workers.load(Ordering::SeqCst) == self.shared.workers;
            if queue_empty && all_idle {
                return;
            }
            self.shared
                .idle_cond
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }
}

impl Scheduler for Executor {
    fn submit(&self, priority: u64, task: Task) {
        let (len, k) = {
            let mut q = self.shared.queue.lock();
            q.push(priority, task);
            // gauge update under the queue lock so it never drifts from
            // the queue it mirrors (pop decrements under the same lock)
            self.shared.depth.fetch_add(1, Ordering::Release);
            (q.len() as u64, q.distinct_priorities() as u64)
        };
        self.shared.peak_len.fetch_max(len, Ordering::Relaxed);
        self.shared.peak_k.fetch_max(k, Ordering::Relaxed);
        self.shared.available.notify_one();
    }

    fn stats(&self) -> SchedStats {
        SchedStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            peak_queue_len: self.shared.peak_len.load(Ordering::Relaxed),
            peak_distinct_priorities: self.shared.peak_k.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            task_panics: self.shared.task_panics.load(Ordering::Relaxed),
            detached_panics: self
                .shared
                .donate
                .as_ref()
                .map(|p| p.detached_panics())
                .unwrap_or(0),
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        // 1) scheduler tasks first — they carry the priorities
        let task = {
            let mut q = shared.queue.lock();
            let t = q.pop();
            if t.is_some() {
                shared.depth.fetch_sub(1, Ordering::Release);
            }
            t
        };
        if let Some(task) = task {
            // contain panics at the worker: a panicking task must fail
            // *itself*, not kill this thread — a dead worker would
            // strand the queue, break `wait_quiescent`'s all-idle
            // accounting, and hang every later round. The executed
            // counter and idle notification must fire either way.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
                shared.task_panics.fetch_add(1, Ordering::Relaxed);
            }
            shared.executed.fetch_add(1, Ordering::Relaxed);
            shared.idle_cond.notify_all();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // 2) queue empty: donate this thread to pending fork-join jobs
        if let Some(pool) = &shared.donate {
            if pool.run_pending_job() {
                continue;
            }
        }
        // 3) nothing anywhere: park until a submit or a fork-join
        //    waker arrives. Every wake source flips its state and
        //    notifies while holding the queue lock (submit pushes
        //    under it, the donor waker acquires it, drop takes it),
        //    and all three conditions are re-checked under that lock
        //    here — so the untimed wait cannot miss a wakeup and idle
        //    workers never poll.
        let mut q = shared.queue.lock();
        if !q.is_empty() {
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(pool) = &shared.donate {
            if pool.has_pending_jobs() {
                continue; // a job slipped in between step 2 and here
            }
        }
        shared.idle_workers.fetch_add(1, Ordering::SeqCst);
        shared.idle_cond.notify_all();
        shared.available.wait(&mut q);
        shared.idle_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // take the queue lock before notifying: a worker between its
        // shutdown re-check (under the lock) and its untimed wait
        // would otherwise sleep through this notification forever
        drop(self.shared.queue.lock());
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Latch;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn executes_every_task_once() {
        let ex = Executor::new(4, QueuePolicy::Priority);
        let counter = Arc::new(TestCounter::new(0));
        let latch = Arc::new(Latch::new(100));
        for i in 0..100u64 {
            let counter = Arc::clone(&counter);
            let latch = Arc::clone(&latch);
            ex.submit(i % 7, Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                latch.count_down();
            }));
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        // the latch opens inside the last task, before the worker
        // bumps `executed` — quiesce before reading the counter
        ex.wait_quiescent();
        assert_eq!(ex.stats().executed, 100);
    }

    #[test]
    fn single_worker_respects_priority_order() {
        let ex = Executor::new(1, QueuePolicy::Priority);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(Latch::new(1));
        let done = Arc::new(Latch::new(4));
        // block the worker so all submissions land before execution
        {
            let gate = Arc::clone(&gate);
            ex.submit(0, Box::new(move || gate.wait()));
        }
        for (p, name) in [(5u64, "low"), (1, "high"), (3, "mid"), (crate::UPDATE_PRIORITY, "update")] {
            let order = Arc::clone(&order);
            let done = Arc::clone(&done);
            ex.submit(p, Box::new(move || {
                order.lock().push(name);
                done.count_down();
            }));
        }
        gate.count_down();
        done.wait();
        assert_eq!(*order.lock(), vec!["high", "mid", "low", "update"]);
    }

    #[test]
    fn tasks_can_submit_tasks() {
        let ex = Arc::new(Executor::new(2, QueuePolicy::Priority));
        let latch = Arc::new(Latch::new(10));
        let ex2 = Arc::clone(&ex);
        let latch2 = Arc::clone(&latch);
        ex.submit(0, Box::new(move || {
            for _ in 0..10 {
                let latch = Arc::clone(&latch2);
                ex2.submit(1, Box::new(move || latch.count_down()));
            }
        }));
        latch.wait();
    }

    #[test]
    fn wait_quiescent_waits_for_running_tasks() {
        let ex = Executor::new(2, QueuePolicy::Fifo);
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        ex.submit(0, Box::new(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            flag2.store(true, Ordering::SeqCst);
        }));
        ex.wait_quiescent();
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let ex = Executor::new(3, QueuePolicy::Lifo);
        let latch = Arc::new(Latch::new(5));
        for _ in 0..5 {
            let latch = Arc::clone(&latch);
            ex.submit(0, Box::new(move || latch.count_down()));
        }
        latch.wait();
        drop(ex); // must not hang
    }

    #[test]
    fn queue_depth_tracks_backpressure() {
        let ex = Executor::new(1, QueuePolicy::Priority);
        let gate = Arc::new(Latch::new(1));
        let done = Arc::new(Latch::new(4));
        {
            let gate = Arc::clone(&gate);
            ex.submit(0, Box::new(move || gate.wait()));
        }
        for _ in 0..4 {
            let done = Arc::clone(&done);
            ex.submit(1, Box::new(move || done.count_down()));
        }
        // the worker holds the gate task; four tasks queue behind it
        assert!(ex.stats().queue_depth >= 4);
        gate.count_down();
        done.wait();
        ex.wait_quiescent();
        assert_eq!(ex.stats().queue_depth, 0, "depth must drain to zero");
    }

    #[test]
    fn panicking_task_is_counted_and_workers_survive() {
        let ex = Executor::new(2, QueuePolicy::Priority);
        let done = Arc::new(Latch::new(20));
        for i in 0..20u64 {
            let done = Arc::clone(&done);
            if i % 5 == 0 {
                ex.submit(0, Box::new(move || {
                    done.count_down();
                    panic!("injected task panic");
                }));
            } else {
                ex.submit(0, Box::new(move || done.count_down()));
            }
        }
        // all 20 ran despite 4 panics — the workers survived
        done.wait();
        ex.wait_quiescent();
        let stats = ex.stats();
        assert_eq!(stats.executed, 20);
        assert_eq!(stats.task_panics, 4, "every panic must be counted");
        // the pool still serves tasks after the panics
        let after = Arc::new(Latch::new(1));
        let a2 = Arc::clone(&after);
        ex.submit(0, Box::new(move || a2.count_down()));
        after.wait();
    }

    #[test]
    fn stats_track_peaks() {
        let ex = Executor::new(1, QueuePolicy::Priority);
        let gate = Arc::new(Latch::new(1));
        let done = Arc::new(Latch::new(6));
        {
            let gate = Arc::clone(&gate);
            ex.submit(0, Box::new(move || gate.wait()));
        }
        for i in 0..6u64 {
            let done = Arc::clone(&done);
            ex.submit(i % 3, Box::new(move || done.count_down()));
        }
        let stats = ex.stats();
        assert!(stats.peak_queue_len >= 6);
        assert!(stats.peak_distinct_priorities >= 3);
        gate.count_down();
        done.wait();
    }
}
