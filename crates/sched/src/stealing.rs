//! The work-stealing alternative scheduler (paper §X).
//!
//! "The repository also provides alternative scheduling strategies such
//! as simple FIFO or LIFO as well as some more complex ones based on
//! work stealing \[22\]. The alternative scheduling strategies achieve
//! noticeably lower scalability than the one proposed in the paper for
//! most networks." — this module provides the work-stealing one so the
//! §X ablation can measure that claim.
//!
//! Workers own Chase–Lev deques (crossbeam); external submissions go to
//! a shared injector; a worker pops its own deque LIFO, refills from the
//! injector, and steals FIFO from siblings. Priorities are ignored —
//! that is precisely the property the ablation probes.

use crate::executor::{SchedStats, Scheduler, Task};
use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

thread_local! {
    /// The local deque of the current worker thread, if it belongs to a
    /// stealing pool; tasks submitted from a worker go here (the classic
    /// work-first rule).
    static LOCAL: RefCell<Option<(usize, Arc<Pool>)>> = const { RefCell::new(None) };
}

struct Pool {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    locals: Vec<Mutex<Worker<Task>>>,
    shutdown: AtomicBool,
    executed: AtomicU64,
    task_panics: AtomicU64,
    submitted: AtomicU64,
    parked: Mutex<usize>,
    wake: Condvar,
    id: u64,
    /// Fork-join pool idle workers donate to (scope jobs run when no
    /// task is runnable anywhere).
    donate: Option<Arc<rayon::ThreadPool>>,
}

/// A work-stealing executor with the same [`Scheduler`] interface as the
/// priority [`crate::Executor`]. Like it, workers can donate idle time
/// to a fork-join pool ([`StealingExecutor::with_donation`]).
pub struct StealingExecutor {
    pool: Arc<Pool>,
    handles: Vec<JoinHandle<()>>,
    /// Keeps the donor waker registered with the fork-join pool alive.
    _waker: Option<Arc<dyn Fn() + Send + Sync>>,
}

static POOL_IDS: AtomicU64 = AtomicU64::new(0);

impl StealingExecutor {
    /// Blocks until every submitted task has executed. Only meaningful
    /// when no external thread keeps submitting.
    pub fn wait_quiescent(&self) {
        loop {
            let submitted = self.pool.submitted.load(Ordering::Acquire);
            let executed = self.pool.executed.load(Ordering::Acquire);
            if submitted == executed {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Submitted-but-unfinished tasks right now (includes tasks
    /// currently executing — there is no central queue to measure) —
    /// the lock-free backpressure gauge, matching
    /// [`crate::SchedStats::queue_depth`].
    pub fn queue_depth(&self) -> u64 {
        let executed = self.pool.executed.load(Ordering::Acquire);
        let submitted = self.pool.submitted.load(Ordering::Acquire);
        submitted.saturating_sub(executed)
    }

    /// Starts `workers >= 1` stealing workers.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, None)
    }

    /// Starts `workers >= 1` stealing workers that donate idle time to
    /// `pool`: whenever no task is runnable (own deque, injector and
    /// siblings all empty), a worker executes pending fork-join jobs
    /// from `pool` instead of parking.
    pub fn with_donation(workers: usize, pool: Arc<rayon::ThreadPool>) -> Self {
        Self::build(workers, Some(pool))
    }

    fn build(workers: usize, donate: Option<Arc<rayon::ThreadPool>>) -> Self {
        assert!(workers >= 1);
        let locals: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(|w| w.stealer()).collect();
        let pool = Arc::new(Pool {
            injector: Injector::new(),
            stealers,
            locals: locals.into_iter().map(Mutex::new).collect(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            task_panics: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            parked: Mutex::new(0),
            wake: Condvar::new(),
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            donate,
        });
        // notify_one per queued job (all parked stealers react to a
        // wake identically); the 1ms timed park below is the backstop
        // for the push-vs-park race, as for the pool's own submits
        let waker = pool.donate.as_ref().map(|fj| {
            crate::executor::register_donor_waker(fj, &pool, |p: &Pool| {
                p.wake.notify_one();
            })
        });
        let handles = (0..workers)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("znn-stealer-{i}"))
                    .spawn(move || worker_loop(i, pool))
                    .expect("failed to spawn stealing worker")
            })
            .collect();
        StealingExecutor {
            pool,
            handles,
            _waker: waker,
        }
    }
}

fn find_task(index: usize, pool: &Pool) -> Option<Task> {
    // own deque first (LIFO: depth-first, cache-friendly)
    if let Some(t) = pool.locals[index].lock().pop() {
        return Some(t);
    }
    // then the shared injector, then steal from siblings
    loop {
        let steal = pool.injector.steal();
        if steal.is_retry() {
            continue;
        }
        if let Some(t) = steal.success() {
            return Some(t);
        }
        break;
    }
    for (j, s) in pool.stealers.iter().enumerate() {
        if j == index {
            continue;
        }
        loop {
            let steal = s.steal();
            if steal.is_retry() {
                continue;
            }
            if let Some(t) = steal.success() {
                return Some(t);
            }
            break;
        }
    }
    None
}

fn worker_loop(index: usize, pool: Arc<Pool>) {
    LOCAL.with(|l| *l.borrow_mut() = Some((index, Arc::clone(&pool))));
    loop {
        match find_task(index, &pool) {
            Some(task) => {
                // same containment as the queue executor: a panicking
                // task must not kill the worker, and `executed` must
                // advance regardless or `wait_quiescent` (which spins
                // on submitted == executed) would hang forever.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)).is_err() {
                    pool.task_panics.fetch_add(1, Ordering::Relaxed);
                }
                pool.executed.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                if pool.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // no runnable task anywhere: donate to fork-join work
                if let Some(fj) = &pool.donate {
                    if fj.run_pending_job() {
                        continue;
                    }
                }
                let mut parked = pool.parked.lock();
                *parked += 1;
                pool.wake
                    .wait_for(&mut parked, std::time::Duration::from_millis(1));
                *parked -= 1;
            }
        }
    }
    LOCAL.with(|l| *l.borrow_mut() = None);
}

impl Scheduler for StealingExecutor {
    fn submit(&self, _priority: u64, task: Task) {
        // count the submission BEFORE the task becomes runnable: a
        // worker may pop and finish it instantly, and `executed` must
        // never be observed above `submitted` (stats() relies on the
        // subtraction being conservative for the queue-depth signal)
        self.pool.submitted.fetch_add(1, Ordering::Release);
        // a worker of *this* pool pushes to its own deque (the classic
        // work-first rule); everyone else goes through the injector
        let mut task = Some(task);
        LOCAL.with(|l| {
            if let Some((i, pool)) = l.borrow().as_ref() {
                if pool.id == self.pool.id {
                    pool.locals[*i]
                        .lock()
                        .push(task.take().expect("task still present"));
                }
            }
        });
        if let Some(t) = task {
            self.pool.injector.push(t);
        }
        self.pool.wake.notify_all();
    }

    fn queue_depth(&self) -> u64 {
        self.queue_depth()
    }

    fn stats(&self) -> SchedStats {
        // no central queue to measure: depth is submitted-but-unfinished
        // (submit counts before the push and the load order — executed
        // before submitted — keeps the subtraction conservative under
        // concurrent submits)
        let executed = self.pool.executed.load(Ordering::Acquire);
        let submitted = self.pool.submitted.load(Ordering::Acquire);
        SchedStats {
            executed,
            peak_queue_len: 0,
            peak_distinct_priorities: 0,
            queue_depth: submitted.saturating_sub(executed),
            task_panics: self.pool.task_panics.load(Ordering::Relaxed),
            detached_panics: self
                .pool
                .donate
                .as_ref()
                .map(|p| p.detached_panics())
                .unwrap_or(0),
        }
    }
}

impl Drop for StealingExecutor {
    fn drop(&mut self) {
        self.pool.shutdown.store(true, Ordering::Release);
        self.pool.wake.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Latch;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn executes_every_task_once() {
        let ex = StealingExecutor::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new(Latch::new(200));
        for _ in 0..200 {
            let counter = Arc::clone(&counter);
            let latch = Arc::clone(&latch);
            ex.submit(0, Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                latch.count_down();
            }));
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        // the latch opens inside each task, before the worker bumps
        // `executed` — quiesce before reading the counter
        ex.wait_quiescent();
        assert_eq!(ex.stats().executed, 200);
    }

    #[test]
    fn workers_submit_to_their_local_deque() {
        let ex = Arc::new(StealingExecutor::new(2));
        let latch = Arc::new(Latch::new(64));
        let ex2 = Arc::clone(&ex);
        let latch2 = Arc::clone(&latch);
        // recursive fan-out from inside workers exercises local pushes
        fn fan(ex: Arc<StealingExecutor>, latch: Arc<Latch>, depth: usize) {
            latch.count_down();
            if depth == 0 {
                return;
            }
            for _ in 0..1 {
                let e = Arc::clone(&ex);
                let l = Arc::clone(&latch);
                let e2 = Arc::clone(&ex);
                e2.submit(0, Box::new(move || fan(e, l, depth - 1)));
            }
        }
        // 64 = sum over a binary tree of depth 5 (2^6 - 1 = 63) + root... use a chain:
        // chain of 64 tasks, each spawning the next
        ex.submit(0, Box::new(move || fan(ex2, latch2, 63)));
        latch.wait();
    }

    #[test]
    fn panicking_task_is_counted_and_workers_survive() {
        let ex = StealingExecutor::new(2);
        let done = Arc::new(Latch::new(10));
        for i in 0..10 {
            let done = Arc::clone(&done);
            if i % 3 == 0 {
                ex.submit(0, Box::new(move || {
                    done.count_down();
                    panic!("injected stealing-task panic");
                }));
            } else {
                ex.submit(0, Box::new(move || done.count_down()));
            }
        }
        done.wait();
        ex.wait_quiescent();
        let stats = ex.stats();
        assert_eq!(stats.executed, 10);
        assert_eq!(stats.task_panics, 4);
        assert_eq!(stats.queue_depth, 0, "panicked tasks still count as done");
    }

    #[test]
    fn drop_joins_cleanly() {
        let ex = StealingExecutor::new(3);
        let latch = Arc::new(Latch::new(10));
        for _ in 0..10 {
            let latch = Arc::clone(&latch);
            ex.submit(0, Box::new(move || latch.count_down()));
        }
        latch.wait();
        drop(ex);
    }

    #[test]
    fn two_pools_do_not_cross_contaminate() {
        let a = Arc::new(StealingExecutor::new(1));
        let b = Arc::new(StealingExecutor::new(1));
        let latch = Arc::new(Latch::new(2));
        // submit to b from inside a worker of a: must go to b's injector,
        // not a's local deque
        let b2 = Arc::clone(&b);
        let l2 = Arc::clone(&latch);
        a.submit(0, Box::new(move || {
            let l3 = Arc::clone(&l2);
            b2.submit(0, Box::new(move || l3.count_down()));
            l2.count_down();
        }));
        latch.wait();
        // quiesce both pools: the latch opens inside the tasks,
        // before the workers bump their `executed` counters
        a.wait_quiescent();
        b.wait_quiescent();
        assert!(a.stats().executed + b.stats().executed >= 2);
    }
}
