//! The global task queue (paper §VII-A) and the §X policy alternatives.
//!
//! The production queue is a **heap of lists**: a sorted map from
//! priority to a FIFO list of tasks. Insertion and removal touch the map
//! in O(log K), where K is the number of *distinct priorities* currently
//! present — much smaller than the number of queued tasks N for wide
//! networks, where whole layers share a priority.

use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Ordering policy for the global queue (§VI-A default, §X alternatives).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// The paper's priority scheduler: smaller priority value first,
    /// FIFO among equals. Backed by the heap-of-lists.
    #[default]
    Priority,
    /// First-in first-out, ignoring priorities (§X).
    Fifo,
    /// Last-in first-out, ignoring priorities (§X).
    Lifo,
    /// Priority order backed by a plain binary heap keyed on every task
    /// (O(log N)); kept for the data-structure ablation of §VII-A.
    BinaryHeap,
}

/// A non-thread-safe priority multi-queue; the executor wraps it in a
/// mutex + condvar. Generic in the task type so tests can use integers.
pub struct TaskQueue<T> {
    policy: QueuePolicy,
    lists: BTreeMap<u64, VecDeque<T>>,
    fifo: VecDeque<(u64, T)>,
    heap: BinaryHeap<HeapEntry<T>>,
    seq: u64,
    len: usize,
}

struct HeapEntry<T> {
    priority: u64,
    seq: u64,
    task: T,
}

// Order entries so the *smallest* (priority, seq) pops first from the
// max-heap: reverse the comparison.
impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.priority, other.seq).cmp(&(self.priority, self.seq))
    }
}

impl<T> TaskQueue<T> {
    /// An empty queue with the given policy.
    pub fn new(policy: QueuePolicy) -> Self {
        TaskQueue {
            policy,
            lists: BTreeMap::new(),
            fifo: VecDeque::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct priority values currently present — the K of
    /// the heap-of-lists complexity bound (meaningful for
    /// [`QueuePolicy::Priority`]).
    pub fn distinct_priorities(&self) -> usize {
        self.lists.len()
    }

    /// Enqueues `task` at `priority` (smaller runs earlier).
    pub fn push(&mut self, priority: u64, task: T) {
        self.len += 1;
        match self.policy {
            QueuePolicy::Priority => {
                self.lists.entry(priority).or_default().push_back(task);
            }
            QueuePolicy::Fifo | QueuePolicy::Lifo => {
                self.fifo.push_back((priority, task));
            }
            QueuePolicy::BinaryHeap => {
                self.heap.push(HeapEntry {
                    priority,
                    seq: self.seq,
                    task,
                });
                self.seq += 1;
            }
        }
    }

    /// Removes and returns the next task per the policy.
    pub fn pop(&mut self) -> Option<T> {
        let out = match self.policy {
            QueuePolicy::Priority => {
                let (&p, _) = self.lists.iter().next()?;
                let list = self.lists.get_mut(&p).expect("key just observed");
                let task = list.pop_front();
                if list.is_empty() {
                    self.lists.remove(&p);
                }
                task
            }
            QueuePolicy::Fifo => self.fifo.pop_front().map(|(_, t)| t),
            QueuePolicy::Lifo => self.fifo.pop_back().map(|(_, t)| t),
            QueuePolicy::BinaryHeap => self.heap.pop().map(|e| e.task),
        };
        if out.is_some() {
            self.len -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_pops_smallest_first_fifo_within() {
        let mut q = TaskQueue::new(QueuePolicy::Priority);
        q.push(5, "c1");
        q.push(1, "a");
        q.push(5, "c2");
        q.push(3, "b");
        assert_eq!(q.distinct_priorities(), 3);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c1"));
        assert_eq!(q.pop(), Some("c2"));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn binary_heap_matches_priority_semantics() {
        let mut a = TaskQueue::new(QueuePolicy::Priority);
        let mut b = TaskQueue::new(QueuePolicy::BinaryHeap);
        let items = [(4u64, 0), (2, 1), (4, 2), (1, 3), (2, 4), (9, 5)];
        for (p, v) in items {
            a.push(p, v);
            b.push(p, v);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn fifo_ignores_priorities() {
        let mut q = TaskQueue::new(QueuePolicy::Fifo);
        q.push(9, 1);
        q.push(1, 2);
        q.push(5, 3);
        assert_eq!((q.pop(), q.pop(), q.pop()), (Some(1), Some(2), Some(3)));
    }

    #[test]
    fn lifo_reverses() {
        let mut q = TaskQueue::new(QueuePolicy::Lifo);
        q.push(9, 1);
        q.push(1, 2);
        q.push(5, 3);
        assert_eq!((q.pop(), q.pop(), q.pop()), (Some(3), Some(2), Some(1)));
    }

    #[test]
    fn distinct_priorities_shrinks_as_lists_drain() {
        let mut q = TaskQueue::new(QueuePolicy::Priority);
        for i in 0..100 {
            q.push(i % 4, i);
        }
        assert_eq!(q.distinct_priorities(), 4);
        assert_eq!(q.len(), 100);
        for _ in 0..25 {
            q.pop();
        }
        assert_eq!(q.distinct_priorities(), 3);
    }

    #[test]
    fn update_priority_is_last() {
        let mut q = TaskQueue::new(QueuePolicy::Priority);
        q.push(crate::UPDATE_PRIORITY, "update");
        q.push(0, "forward");
        q.push(7, "backward");
        assert_eq!(q.pop(), Some("forward"));
        assert_eq!(q.pop(), Some("backward"));
        assert_eq!(q.pop(), Some("update"));
    }
}
