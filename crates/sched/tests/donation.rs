//! Deadlock regression tests for worker donation: scheduler tasks that
//! open fork-join scopes (an FFT inside an executor task), including
//! scopes nested inside scopes, must complete on donor-only pools with
//! 1 and 2 scheduler workers. The no-deadlock argument is that a
//! thread waiting on a scope executes pending scope jobs itself, so
//! progress never depends on another thread being free.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use znn_sched::{Executor, Latch, QueuePolicy, Scheduler, StealingExecutor};

/// Runs `f` on a fresh thread and fails the test instead of hanging if
/// it does not finish in time — a deadlock shows up as a clean panic.
fn must_finish(name: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(()) => handle.join().expect("worker thread panicked"),
        Err(_) => panic!("{name}: deadlocked (did not finish within 60s)"),
    }
}

/// A scheduler task that opens a scope, whose jobs open nested scopes —
/// the shape of a parallel FFT (multi-stage fan-out) run from a task.
fn nested_scope_task(pool: &rayon::ThreadPool, hits: &AtomicUsize) {
    pool.scope(|s| {
        for _ in 0..4 {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    // scope inside scope inside the executor task, on
                    // the same donor-only pool: the waiting job must
                    // execute the nested jobs itself if no sibling is
                    // free
                    pool.scope(|s2| {
                        for _ in 0..3 {
                            s2.spawn(|_| {
                                hits.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
    });
}

/// Floods `ex` with more nested-scope tasks than it has workers and
/// asserts every fork-join job ran. Generic over the scheduler so both
/// executor flavours share one scenario.
fn scenario(ex: Arc<dyn Scheduler>, pool: Arc<rayon::ThreadPool>, workers: usize) {
    let hits = Arc::new(AtomicUsize::new(0));
    let tasks = 2 * workers + 1; // more tasks than workers
    let latch = Arc::new(Latch::new(tasks));
    for _ in 0..tasks {
        let pool = Arc::clone(&pool);
        let hits = Arc::clone(&hits);
        let latch = Arc::clone(&latch);
        ex.submit(
            0,
            Box::new(move || {
                nested_scope_task(&pool, &hits);
                latch.count_down();
            }),
        );
    }
    latch.wait();
    // 4 outer + 4 inner + 4 * 3 nested-scope jobs per task
    assert_eq!(hits.load(Ordering::SeqCst), tasks * 20);
}

fn executor_scenario(workers: usize) {
    let pool = Arc::new(rayon::ThreadPool::donor_only());
    let ex = Executor::with_donation(workers, QueuePolicy::Priority, Arc::clone(&pool));
    scenario(Arc::new(ex), pool, workers);
}

fn stealing_scenario(workers: usize) {
    let pool = Arc::new(rayon::ThreadPool::donor_only());
    let ex = StealingExecutor::with_donation(workers, Arc::clone(&pool));
    scenario(Arc::new(ex), pool, workers);
}

#[test]
fn nested_scopes_complete_on_a_one_worker_executor() {
    must_finish("executor(1)", || executor_scenario(1));
}

#[test]
fn nested_scopes_complete_on_a_two_worker_executor() {
    must_finish("executor(2)", || executor_scenario(2));
}

#[test]
fn nested_scopes_complete_on_a_one_worker_stealing_executor() {
    must_finish("stealing(1)", || stealing_scenario(1));
}

#[test]
fn nested_scopes_complete_on_a_two_worker_stealing_executor() {
    must_finish("stealing(2)", || stealing_scenario(2));
}

#[test]
fn idle_workers_donate_to_external_scopes() {
    // a scope opened OUTSIDE the executor: its jobs must still run —
    // picked up by idle donating workers (or the owner), never lost
    must_finish("external scope", || {
        let pool = Arc::new(rayon::ThreadPool::donor_only());
        let _ex = Executor::with_donation(2, QueuePolicy::Priority, Arc::clone(&pool));
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(count.load(Ordering::SeqCst), 32);
    });
}

#[test]
fn donation_does_not_starve_scheduler_tasks() {
    // keep the fork-join pool saturated with jobs while submitting
    // scheduler tasks: the tasks must still all run (donation only
    // happens when the queue is empty)
    must_finish("no starvation", || {
        let pool = Arc::new(rayon::ThreadPool::donor_only());
        let ex = Arc::new(Executor::with_donation(
            2,
            QueuePolicy::Priority,
            Arc::clone(&pool),
        ));
        let done = Arc::new(Latch::new(50));
        for _ in 0..200 {
            pool.spawn(std::thread::yield_now);
        }
        for _ in 0..50 {
            let done = Arc::clone(&done);
            ex.submit(1, Box::new(move || done.count_down()));
        }
        done.wait();
        // drain the fire-and-forget jobs so none outlive the pool
        while pool.run_pending_job() {}
    });
}
