//! Property-based tests for the scheduling machinery: queue ordering
//! invariants across policies, concurrent-sum linearizability, and the
//! FORCE protocol under randomized interleavings.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use znn_sched::queue::TaskQueue;
use znn_sched::{ConcurrentSum, Latch, QueuePolicy, UpdateHandle};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The priority queue is a stable priority sort: output is ordered
    /// by priority, and FIFO within equal priorities.
    #[test]
    fn priority_queue_is_a_stable_sort(items in proptest::collection::vec(0u64..6, 0..60)) {
        let mut q = TaskQueue::new(QueuePolicy::Priority);
        for (i, &p) in items.iter().enumerate() {
            q.push(p, (p, i));
        }
        let mut out = Vec::new();
        while let Some(x) = q.pop() {
            out.push(x);
        }
        prop_assert_eq!(out.len(), items.len());
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "priority order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie order violated");
            }
        }
    }

    /// The binary-heap policy agrees with the heap-of-lists on every
    /// input (same schedule, different data structure).
    #[test]
    fn heap_policies_agree(items in proptest::collection::vec(0u64..10, 0..80)) {
        let mut a = TaskQueue::new(QueuePolicy::Priority);
        let mut b = TaskQueue::new(QueuePolicy::BinaryHeap);
        for (i, &p) in items.iter().enumerate() {
            a.push(p, i);
            b.push(p, i);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            prop_assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    /// Interleaved pushes and pops never lose or duplicate tasks.
    #[test]
    fn queue_conserves_tasks(
        script in proptest::collection::vec((any::<bool>(), 0u64..5), 1..100)
    ) {
        for policy in [QueuePolicy::Priority, QueuePolicy::Fifo, QueuePolicy::Lifo, QueuePolicy::BinaryHeap] {
            let mut q = TaskQueue::new(policy);
            let mut pushed = 0usize;
            let mut popped = 0usize;
            for (i, &(push, p)) in script.iter().enumerate() {
                if push {
                    q.push(p, i);
                    pushed += 1;
                } else if q.pop().is_some() {
                    popped += 1;
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(pushed, popped, "{:?}", policy);
            prop_assert!(q.is_empty());
        }
    }

    /// ConcurrentSum totals are exact for any contribution multiset and
    /// any thread split.
    #[test]
    fn concurrent_sum_is_exact(
        values in proptest::collection::vec(1usize..1000, 1..24),
        threads in 1usize..5,
    ) {
        let sum = Arc::new(ConcurrentSum::<usize>::new(values.len()));
        let expect: usize = values.iter().sum();
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len().div_ceil(threads)) {
                let sum = Arc::clone(&sum);
                s.spawn(move || {
                    for &v in chunk {
                        sum.add(v);
                    }
                });
            }
        });
        prop_assert_eq!(sum.take(), expect);
    }
}

/// FORCE under randomized racing: one thread plays the queue entry, one
/// plays the forcing forward task; whatever the interleaving, the
/// update runs exactly once and strictly before the subtask.
#[test]
fn force_races_preserve_update_before_subtask() {
    for round in 0..200 {
        let h = UpdateHandle::new();
        let update_done = Arc::new(AtomicUsize::new(0));
        let order_ok = Arc::new(AtomicUsize::new(0));
        {
            let u = Arc::clone(&update_done);
            h.arm(Box::new(move || {
                u.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let start = Arc::new(Latch::new(1));
        let t1 = {
            let h = h.clone();
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                h.queue_entry()()
            })
        };
        let t2 = {
            let h = h.clone();
            let start = Arc::clone(&start);
            let u = Arc::clone(&update_done);
            let ok = Arc::clone(&order_ok);
            std::thread::spawn(move || {
                start.wait();
                if round % 2 == 0 {
                    std::thread::yield_now();
                }
                h.force(Box::new(move || {
                    if u.load(Ordering::SeqCst) == 1 {
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            })
        };
        start.count_down();
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(update_done.load(Ordering::SeqCst), 1, "round {round}");
        assert_eq!(order_ok.load(Ordering::SeqCst), 1, "round {round}");
        assert!(h.is_idle());
    }
}

/// Hammering one latch from many threads opens it exactly once.
#[test]
fn latch_under_contention() {
    for _ in 0..50 {
        let n = 16;
        let l = Arc::new(Latch::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.count_down())
            })
            .collect();
        l.wait();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.remaining(), 0);
    }
}
