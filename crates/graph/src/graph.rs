use std::fmt;
use znn_ops::Transfer;
use znn_tensor::Vec3;

/// Index of a node (a 3D image) in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub usize);

/// Index of an edge (a filtering operation) in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EdgeId(pub usize);

/// The four edge operations of §II.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeOp {
    /// Valid convolution with a trainable kernel, optionally sparse
    /// ("skip kernels").
    Conv {
        /// Kernel shape `k`.
        kernel: Vec3,
        /// Per-axis sparsity `s` (1 = dense).
        sparsity: Vec3,
    },
    /// Max-pooling over disjoint blocks.
    MaxPool {
        /// Block shape `p`; must divide the input shape.
        window: Vec3,
    },
    /// Sliding-window max-filtering, optionally with a dilated window.
    MaxFilter {
        /// Window shape `k`.
        window: Vec3,
        /// Per-axis window dilation.
        sparsity: Vec3,
    },
    /// Trainable bias followed by a pointwise nonlinearity.
    Transfer {
        /// The nonlinearity.
        function: Transfer,
    },
}

impl EdgeOp {
    /// True for edges with trainable parameters (convolutions train a
    /// kernel, transfer edges train a bias).
    pub fn is_trainable(&self) -> bool {
        matches!(self, EdgeOp::Conv { .. } | EdgeOp::Transfer { .. })
    }

    /// Output shape given the input shape, or `None` when the op does
    /// not fit (kernel larger than image, indivisible pooling).
    pub fn output_shape(&self, input: Vec3) -> Option<Vec3> {
        match *self {
            EdgeOp::Conv { kernel, sparsity } => input.valid_conv(kernel.dilated(sparsity)),
            EdgeOp::MaxPool { window } => input.pooled(window),
            EdgeOp::MaxFilter { window, sparsity } => {
                input.valid_conv(window.dilated(sparsity))
            }
            EdgeOp::Transfer { .. } => Some(input),
        }
    }

    /// Input shape needed to produce `output` — the inverse of
    /// [`EdgeOp::output_shape`], used to size input patches (§II-A).
    pub fn required_input_shape(&self, output: Vec3) -> Vec3 {
        match *self {
            EdgeOp::Conv { kernel, sparsity } => output.full_conv(kernel.dilated(sparsity)),
            EdgeOp::MaxPool { window } => output * window,
            EdgeOp::MaxFilter { window, sparsity } => {
                output.full_conv(window.dilated(sparsity))
            }
            EdgeOp::Transfer { .. } => output,
        }
    }
}

/// A node: a 3D image produced by summing its incoming edges.
#[derive(Clone, Debug)]
pub struct Node {
    /// Human-readable name (layer/index), used in diagnostics.
    pub name: String,
    /// Incoming edges (their outputs are summed, §II).
    pub in_edges: Vec<EdgeId>,
    /// Outgoing edges.
    pub out_edges: Vec<EdgeId>,
}

/// An edge: a filtering operation between two nodes.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// The operation.
    pub op: EdgeOp,
}

/// Structural errors reported by [`Graph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The graph contains a directed cycle through the named node.
    Cycle(String),
    /// The graph has no input nodes (every node has incoming edges).
    NoInputs,
    /// The graph has no output nodes.
    NoOutputs,
    /// A node mixes convolution and non-convolution incoming edges, or
    /// has multiple non-convolution incoming edges — the paper requires
    /// all convergent edges to be convolutions.
    MixedConvergence(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Cycle(n) => write!(f, "cycle through node {n}"),
            GraphError::NoInputs => write!(f, "graph has no input nodes"),
            GraphError::NoOutputs => write!(f, "graph has no output nodes"),
            GraphError::MixedConvergence(n) => {
                write!(f, "node {n} has convergent non-convolution edges")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// The computation graph: a DAG of image nodes and filtering edges.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            in_edges: Vec::new(),
            out_edges: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds an edge and returns its id.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, op: EdgeOp) -> EdgeId {
        assert!(from.0 < self.nodes.len() && to.0 < self.nodes.len());
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to, op });
        self.nodes[from.0].out_edges.push(id);
        self.nodes[to.0].in_edges.push(id);
        id
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Edge accessor.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// All nodes, indexable by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges, indexable by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Nodes with no incoming edges (the network inputs).
    pub fn inputs(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].in_edges.is_empty())
            .map(NodeId)
            .collect()
    }

    /// Nodes with no outgoing edges (the network outputs).
    pub fn outputs(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].out_edges.is_empty())
            .map(NodeId)
            .collect()
    }

    /// Topological order of nodes; errors on cycles.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let mut indeg: Vec<usize> = self.nodes.iter().map(|n| n.in_edges.len()).collect();
        let mut queue: Vec<NodeId> = self.inputs();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop() {
            order.push(n);
            for &e in &self.nodes[n.0].out_edges {
                let t = self.edges[e.0].to;
                indeg[t.0] -= 1;
                if indeg[t.0] == 0 {
                    queue.push(t);
                }
            }
        }
        if order.len() != self.nodes.len() {
            let stuck = indeg
                .iter()
                .position(|&d| d > 0)
                .map(|i| self.nodes[i].name.clone())
                .unwrap_or_default();
            return Err(GraphError::Cycle(stuck));
        }
        Ok(order)
    }

    /// Validates the structural requirements of §II: acyclic, has inputs
    /// and outputs, and convergent edges are all convolutions.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.inputs().is_empty() {
            return Err(GraphError::NoInputs);
        }
        if self.outputs().is_empty() {
            return Err(GraphError::NoOutputs);
        }
        self.topo_order()?;
        for node in &self.nodes {
            if node.in_edges.len() > 1 {
                let all_conv = node
                    .in_edges
                    .iter()
                    .all(|&e| matches!(self.edges[e.0].op, EdgeOp::Conv { .. }));
                if !all_conv {
                    return Err(GraphError::MixedConvergence(node.name.clone()));
                }
            }
        }
        Ok(())
    }

    /// Total trainable parameter count (kernel voxels plus one bias per
    /// transfer edge).
    pub fn parameter_count(&self) -> usize {
        self.edges
            .iter()
            .map(|e| match e.op {
                EdgeOp::Conv { kernel, .. } => kernel.len(),
                EdgeOp::Transfer { .. } => 1,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        // in -> (conv) -> h <- (conv) <- in2 ; h -> (transfer) -> out
        let mut g = Graph::new();
        let a = g.add_node("in");
        let b = g.add_node("in2");
        let h = g.add_node("h");
        let o = g.add_node("out");
        let conv = EdgeOp::Conv {
            kernel: Vec3::cube(3),
            sparsity: Vec3::one(),
        };
        g.add_edge(a, h, conv);
        g.add_edge(b, h, conv);
        g.add_edge(
            h,
            o,
            EdgeOp::Transfer {
                function: Transfer::Relu,
            },
        );
        g
    }

    #[test]
    fn inputs_and_outputs_are_detected() {
        let g = tiny();
        assert_eq!(g.inputs(), vec![NodeId(0), NodeId(1)]);
        assert_eq!(g.outputs(), vec![NodeId(3)]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = tiny();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = (0..g.node_count())
            .map(|i| order.iter().position(|n| n.0 == i).unwrap())
            .collect();
        for e in g.edges() {
            assert!(pos[e.from.0] < pos[e.to.0]);
        }
    }

    #[test]
    fn cycles_are_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let inp = g.add_node("in");
        let out = g.add_node("out");
        let t = EdgeOp::Transfer {
            function: Transfer::Linear,
        };
        g.add_edge(a, b, t);
        g.add_edge(b, a, t);
        g.add_edge(inp, a, t);
        g.add_edge(b, out, t);
        assert!(matches!(g.validate(), Err(GraphError::Cycle(_))));
    }

    #[test]
    fn mixed_convergence_is_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let h = g.add_node("h");
        g.add_edge(
            a,
            h,
            EdgeOp::Conv {
                kernel: Vec3::one(),
                sparsity: Vec3::one(),
            },
        );
        g.add_edge(
            b,
            h,
            EdgeOp::Transfer {
                function: Transfer::Relu,
            },
        );
        assert!(matches!(
            g.validate(),
            Err(GraphError::MixedConvergence(_))
        ));
    }

    #[test]
    fn op_shape_algebra_round_trips() {
        let ops = [
            EdgeOp::Conv {
                kernel: Vec3::cube(3),
                sparsity: Vec3::cube(2),
            },
            EdgeOp::MaxPool {
                window: Vec3::cube(2),
            },
            EdgeOp::MaxFilter {
                window: Vec3::cube(2),
                sparsity: Vec3::cube(3),
            },
            EdgeOp::Transfer {
                function: Transfer::Tanh,
            },
        ];
        let out = Vec3::cube(12);
        for op in ops {
            let input = op.required_input_shape(out);
            assert_eq!(op.output_shape(input), Some(out), "{op:?}");
        }
    }

    #[test]
    fn trainability_matches_op_kind() {
        assert!(EdgeOp::Conv {
            kernel: Vec3::one(),
            sparsity: Vec3::one()
        }
        .is_trainable());
        assert!(EdgeOp::Transfer {
            function: Transfer::Relu
        }
        .is_trainable());
        assert!(!EdgeOp::MaxPool {
            window: Vec3::one()
        }
        .is_trainable());
        assert!(!EdgeOp::MaxFilter {
            window: Vec3::one(),
            sparsity: Vec3::one()
        }
        .is_trainable());
    }

    #[test]
    fn parameter_count_sums_kernels_and_biases() {
        let g = tiny();
        assert_eq!(g.parameter_count(), 27 + 27 + 1);
    }
}
