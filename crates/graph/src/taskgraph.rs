//! The task dependency graph of one gradient-learning iteration
//! (paper §V, Fig 3).
//!
//! Every computation-graph edge contributes a forward, a backward and —
//! if trainable — an update task. A data-provider task feeds the input
//! nodes and one loss-gradient task per output node starts the backward
//! phase. Following Fig 3, an iteration is drawn as steps 3–5 of one
//! round followed by steps 1–2 of the next: backward tasks at the top,
//! then updates, then the data provider and the forward tasks, with
//! each forward task of a trainable edge additionally depending on that
//! edge's update task. This composite round is what the discrete-event
//! simulator (`znn-sim`) schedules to predict speedup.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::priority;
use std::collections::HashMap;

/// Index of a task in a [`TaskGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TaskId(pub usize);

/// What a task computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Forward transform of an edge.
    Forward(EdgeId),
    /// Backward (Jacobian) transform of an edge.
    Backward(EdgeId),
    /// Parameter update of a trainable edge.
    Update(EdgeId),
    /// Supplies the training sample to the named input node.
    DataProvider(NodeId),
    /// Computes ∂loss/∂output at the named output node.
    LossGradient(NodeId),
}

/// One task with its dependencies and queue priority.
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// What this task computes.
    pub kind: TaskKind,
    /// Tasks that must complete first.
    pub deps: Vec<TaskId>,
    /// Queue priority (smaller runs earlier; updates use `u64::MAX`).
    pub priority: u64,
}

/// The task dependency graph of one training iteration.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    /// All tasks; `deps` index into this vector.
    pub tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// Builds the composite-round task graph for `graph` (backward →
    /// update → forward of the next sample, per Fig 3).
    pub fn build(graph: &Graph) -> TaskGraph {
        let fwd_prio = priority::forward_priorities(graph);
        let bwd_prio = priority::backward_priorities(graph);
        let mut tasks: Vec<TaskSpec> = Vec::new();
        let mut bwd_of: HashMap<EdgeId, TaskId> = HashMap::new();
        let mut upd_of: HashMap<EdgeId, TaskId> = HashMap::new();
        let mut fwd_of: HashMap<EdgeId, TaskId> = HashMap::new();
        let mut loss_of: HashMap<NodeId, TaskId> = HashMap::new();

        // loss gradients at every output node start the round
        for out in graph.outputs() {
            let id = TaskId(tasks.len());
            tasks.push(TaskSpec {
                kind: TaskKind::LossGradient(out),
                deps: vec![],
                priority: 0,
            });
            loss_of.insert(out, id);
        }

        // backward tasks, created in reverse topological order so deps
        // already exist
        let order = graph.topo_order().expect("graph must be acyclic");
        for &node in order.iter().rev() {
            for &eid in &graph.node(node).in_edges {
                debug_assert_eq!(graph.edge(eid).to, node);
                let mut deps: Vec<TaskId> = Vec::new();
                if let Some(&lg) = loss_of.get(&node) {
                    deps.push(lg);
                }
                for &down in &graph.node(node).out_edges {
                    deps.push(bwd_of[&down]);
                }
                let id = TaskId(tasks.len());
                tasks.push(TaskSpec {
                    kind: TaskKind::Backward(eid),
                    deps,
                    priority: bwd_prio[&eid],
                });
                bwd_of.insert(eid, id);
            }
        }

        // update tasks depend on the edge's backward task (the forward
        // image is retained from the previous forward pass)
        for (i, e) in graph.edges().iter().enumerate() {
            let eid = EdgeId(i);
            if e.op.is_trainable() {
                let id = TaskId(tasks.len());
                tasks.push(TaskSpec {
                    kind: TaskKind::Update(eid),
                    deps: vec![bwd_of[&eid]],
                    priority: u64::MAX,
                });
                upd_of.insert(eid, id);
            }
        }

        // the data provider for the next sample has no dependencies
        let mut provider_of: HashMap<NodeId, TaskId> = HashMap::new();
        for input in graph.inputs() {
            let id = TaskId(tasks.len());
            tasks.push(TaskSpec {
                kind: TaskKind::DataProvider(input),
                deps: vec![],
                priority: 0,
            });
            provider_of.insert(input, id);
        }

        // forward tasks in topological order: depend on the forward
        // tasks producing their source node (or its data provider), and
        // on their own update task
        for &node in order.iter() {
            for &eid in &graph.node(node).out_edges {
                debug_assert_eq!(graph.edge(eid).from, node);
                let mut deps: Vec<TaskId> = Vec::new();
                if let Some(&p) = provider_of.get(&node) {
                    deps.push(p);
                }
                for &up in &graph.node(node).in_edges {
                    deps.push(fwd_of[&up]);
                }
                if let Some(&u) = upd_of.get(&eid) {
                    deps.push(u);
                }
                let id = TaskId(tasks.len());
                tasks.push(TaskSpec {
                    kind: TaskKind::Forward(eid),
                    deps,
                    priority: fwd_prio[&eid],
                });
                fwd_of.insert(eid, id);
            }
        }

        TaskGraph { tasks }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Verifies the dependency relation is acyclic (it is by
    /// construction; exposed for tests).
    pub fn is_acyclic(&self) -> bool {
        // deps always reference earlier ids except forward-on-forward,
        // which follow topological order; do a real check anyway
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                out[d.0].push(i);
                indeg[i] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(i) = stack.pop() {
            seen += 1;
            for &j in &out[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    stack.push(j);
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{scalability_net_3d, NetBuilder};
    use crate::graph::EdgeOp;
    use znn_ops::Transfer;
    use znn_tensor::Vec3;

    #[test]
    fn task_counts_match_structure() {
        let (g, _) = NetBuilder::new("t", 2)
            .conv(3, Vec3::cube(2))
            .transfer(Transfer::Relu)
            .build()
            .unwrap();
        let tg = TaskGraph::build(&g);
        let e = g.edge_count();
        let trainable = g
            .edges()
            .iter()
            .filter(|edge| edge.op.is_trainable())
            .count();
        // fwd + bwd per edge, update per trainable, 2 providers, 3 loss grads
        assert_eq!(tg.len(), 2 * e + trainable + 2 + 3);
        assert!(tg.is_acyclic());
    }

    #[test]
    fn forward_depends_on_update_of_same_edge() {
        let (g, _) = NetBuilder::new("t", 1)
            .conv(2, Vec3::cube(2))
            .build()
            .unwrap();
        let tg = TaskGraph::build(&g);
        for (i, t) in tg.tasks.iter().enumerate() {
            if let TaskKind::Forward(e) = t.kind {
                let has_update_dep = t.deps.iter().any(|d| {
                    matches!(tg.tasks[d.0].kind, TaskKind::Update(ue) if ue == e)
                });
                assert!(has_update_dep, "forward task {i} missing update dep");
            }
        }
    }

    #[test]
    fn backward_of_output_edges_depends_on_loss_gradient() {
        let (g, _) = NetBuilder::new("t", 1)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Tanh)
            .build()
            .unwrap();
        let tg = TaskGraph::build(&g);
        for t in &tg.tasks {
            if let TaskKind::Backward(e) = t.kind {
                if g.node(g.edge(e).to).out_edges.is_empty() {
                    assert!(t
                        .deps
                        .iter()
                        .any(|d| matches!(tg.tasks[d.0].kind, TaskKind::LossGradient(_))));
                }
            }
        }
    }

    #[test]
    fn pooling_edges_have_no_update_task() {
        let (g, _) = NetBuilder::new("t", 1)
            .conv(1, Vec3::cube(2))
            .max_pool(Vec3::one())
            .build()
            .unwrap();
        let tg = TaskGraph::build(&g);
        for t in &tg.tasks {
            if let TaskKind::Update(e) = t.kind {
                assert!(
                    !matches!(g.edge(e).op, EdgeOp::MaxPool { .. }),
                    "pooling edge has an update task"
                );
            }
        }
    }

    #[test]
    fn paper_net_task_graph_scales_quadratically_in_width() {
        let t4 = TaskGraph::build(&scalability_net_3d(4).0).len();
        let t8 = TaskGraph::build(&scalability_net_3d(8).0).len();
        // conv tasks dominate: ~3w² edges × 3 tasks
        assert!(t8 > 3 * t4);
        assert!(TaskGraph::build(&scalability_net_3d(4).0).is_acyclic());
    }

    #[test]
    fn update_tasks_use_lowest_priority() {
        let (g, _) = NetBuilder::new("t", 1)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Relu)
            .build()
            .unwrap();
        let tg = TaskGraph::build(&g);
        for t in &tg.tasks {
            match t.kind {
                TaskKind::Update(_) => assert_eq!(t.priority, u64::MAX),
                _ => assert!(t.priority < u64::MAX),
            }
        }
    }
}
