//! Task priorities from graph structure (paper §VI-A).
//!
//! The scheduler prefers tasks with the longest remaining path to a
//! sink, which favours low-latency schedules, and breaks ties with a
//! *unique strict ordering* of nodes so that tasks whose outputs
//! accumulate into the same sum run near each other in time (temporal
//! locality → the partial sum stays in cache).
//!
//! Concretely, the paper defines two strict orderings of the nodes by
//! **longest distance, in decreasing order, to any output node** and
//! **to any input node** respectively. The priority of an edge's
//! forward task is the position of its *target* node in the first
//! ordering; the priority of its backward task is the position of its
//! *source* node in the second. Update tasks always use
//! `UPDATE_PRIORITY` (handled by `znn-sched`).

use crate::graph::{EdgeId, Graph};
use std::collections::HashMap;

/// Longest distance (in edges) from each node to any output node.
pub fn distance_to_outputs(graph: &Graph) -> Vec<usize> {
    let order = graph.topo_order().expect("graph must be acyclic");
    let mut dist = vec![0usize; graph.node_count()];
    for &n in order.iter().rev() {
        for &e in &graph.node(n).in_edges {
            let from = graph.edge(e).from;
            dist[from.0] = dist[from.0].max(dist[n.0] + 1);
        }
    }
    dist
}

/// Longest distance (in edges) from any input node to each node.
pub fn distance_from_inputs(graph: &Graph) -> Vec<usize> {
    let order = graph.topo_order().expect("graph must be acyclic");
    let mut dist = vec![0usize; graph.node_count()];
    for &n in order.iter() {
        for &e in &graph.node(n).out_edges {
            let to = graph.edge(e).to;
            dist[to.0] = dist[to.0].max(dist[n.0] + 1);
        }
    }
    dist
}

/// A strict total order of nodes: sorts by `key` descending, then by
/// node id for uniqueness; returns each node's position.
fn strict_positions(keys: &[usize]) -> Vec<u64> {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by_key(|&i| (std::cmp::Reverse(keys[i]), i));
    let mut pos = vec![0u64; keys.len()];
    for (p, &i) in idx.iter().enumerate() {
        pos[i] = p as u64;
    }
    pos
}

/// Priorities of forward tasks, keyed by edge: the position of the
/// edge's **target** node in the ordering by distance-to-outputs
/// (descending). Smaller = runs earlier, so nodes deep inside the
/// network (far from outputs) are produced first.
pub fn forward_priorities(graph: &Graph) -> HashMap<EdgeId, u64> {
    let pos = strict_positions(&distance_to_outputs(graph));
    graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (EdgeId(i), pos[e.to.0]))
        .collect()
}

/// Priorities of backward tasks, keyed by edge: the position of the
/// edge's **source** node in the ordering by distance-to-inputs
/// (descending).
pub fn backward_priorities(graph: &Graph) -> HashMap<EdgeId, u64> {
    let pos = strict_positions(&distance_from_inputs(graph));
    graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (EdgeId(i), pos[e.from.0]))
        .collect()
}

/// Position of each node in the forward ordering — exposed for the
/// simulator and diagnostics.
pub fn forward_node_positions(graph: &Graph) -> Vec<u64> {
    strict_positions(&distance_to_outputs(graph))
}

/// Position of each node in the backward ordering.
pub fn backward_node_positions(graph: &Graph) -> Vec<u64> {
    strict_positions(&distance_from_inputs(graph))
}

/// Convenience: has every node a distinct priority position?
/// (Guaranteed by construction; used as a sanity check in tests.)
pub fn is_strict(positions: &[u64]) -> bool {
    let mut seen = vec![false; positions.len()];
    for &p in positions {
        if seen[p as usize] {
            return false;
        }
        seen[p as usize] = true;
    }
    true
}

/// Marker re-export so callers need not depend on `znn-sched` just for
/// the constant.
pub use priority_consts::UPDATE_PRIORITY;
mod priority_consts {
    /// Mirror of `znn_sched::UPDATE_PRIORITY`.
    pub const UPDATE_PRIORITY: u64 = u64::MAX;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::graph::EdgeOp;
    use znn_ops::Transfer;
    use znn_tensor::Vec3;

    fn diamond() -> Graph {
        // in -> a, in -> b, a -> out, b -> out (all conv edges)
        let mut g = Graph::new();
        let i = g.add_node("in");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let o = g.add_node("out");
        let c = EdgeOp::Conv {
            kernel: Vec3::one(),
            sparsity: Vec3::one(),
        };
        g.add_edge(i, a, c);
        g.add_edge(i, b, c);
        g.add_edge(a, o, c);
        g.add_edge(b, o, c);
        g
    }

    #[test]
    fn distances_on_a_diamond() {
        let g = diamond();
        assert_eq!(distance_to_outputs(&g), vec![2, 1, 1, 0]);
        assert_eq!(distance_from_inputs(&g), vec![0, 1, 1, 2]);
    }

    #[test]
    fn orderings_are_strict() {
        let g = diamond();
        assert!(is_strict(&forward_node_positions(&g)));
        assert!(is_strict(&backward_node_positions(&g)));
    }

    #[test]
    fn forward_priorities_run_deep_nodes_first() {
        let g = diamond();
        let p = forward_priorities(&g);
        // edges into a/b (deep, distance 1) must run before edges into
        // out (distance 0)
        assert!(p[&EdgeId(0)] < p[&EdgeId(2)]);
        assert!(p[&EdgeId(1)] < p[&EdgeId(3)]);
    }

    #[test]
    fn convergent_edges_share_forward_priority() {
        // temporal locality: both edges into `out` accumulate into one
        // sum and must share a priority value
        let g = diamond();
        let p = forward_priorities(&g);
        assert_eq!(p[&EdgeId(2)], p[&EdgeId(3)]);
        let b = backward_priorities(&g);
        // and both edges out of `in` share a backward priority
        assert_eq!(b[&EdgeId(0)], b[&EdgeId(1)]);
    }

    #[test]
    fn layered_net_priorities_are_layer_monotone() {
        let (g, _) = NetBuilder::new("t", 1)
            .conv(3, Vec3::cube(2))
            .transfer(Transfer::Relu)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Relu)
            .build()
            .unwrap();
        let fwd = forward_priorities(&g);
        let d = distance_to_outputs(&g);
        // any edge whose target is deeper (larger distance-to-output)
        // must have smaller priority than any edge whose target is
        // shallower
        for (i, a) in g.edges().iter().enumerate() {
            for (j, b) in g.edges().iter().enumerate() {
                if d[a.to.0] > d[b.to.0] {
                    assert!(
                        fwd[&EdgeId(i)] < fwd[&EdgeId(j)],
                        "edge {i} (depth {}) vs {j} (depth {})",
                        d[a.to.0],
                        d[b.to.0]
                    );
                }
            }
        }
    }
}
