//! The ZNN computation graph (paper §II) and everything derived from
//! its structure: shape inference, the two distance-based strict
//! orderings that become task priorities (§VI-A), and the task
//! dependency graph of one gradient-learning iteration (§V, Fig 3).
//!
//! A ConvNet is a DAG whose **nodes are 3D images** and whose **edges
//! are filtering operations** — convolution (possibly sparse),
//! max-pooling, max-filtering, or a transfer function. Edges converging
//! on a node sum their outputs. ZNN "works for general computation
//! graphs", and so does this crate; [`builder`] provides the layered
//! fully-connected architectures of the paper's experiments as a
//! convenience on top.

#![warn(missing_docs)]

pub mod builder;
pub mod init;
mod graph;
pub mod priority;
pub mod shapes;
pub mod taskgraph;

pub use builder::NetBuilder;
pub use graph::{Edge, EdgeId, EdgeOp, Graph, GraphError, Node, NodeId};
pub use taskgraph::{TaskGraph, TaskId, TaskKind, TaskSpec};
