//! Layered network builder and the paper's benchmark architectures.
//!
//! The experiments all use layered, fully-connected architectures
//! described by strings like `CTMCTMCTCT`: **C**onvolution layers (all
//! `f·f′` node pairs connected), **T**ransfer layers (one edge per
//! node) and **M**ax-filtering / **P**ooling layers (one edge per
//! node). [`NetBuilder`] assembles such networks — and, following
//! §II-A, automatically increases convolution sparsity after each
//! max-filtering layer (the skip-kernel / filter-rarefaction trick),
//! while also allowing the sparsity to be set manually ("the sparsity
//! of convolution need not increase in lock step with max-filtering").

use crate::graph::{EdgeOp, Graph, GraphError, NodeId};
use znn_ops::Transfer;
use znn_tensor::Vec3;

/// Kinds of layers a built network records, for diagnostics and cost
/// models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LayerKind {
    /// Fully-connected convolution layer.
    Conv {
        /// Kernel shape.
        kernel: Vec3,
        /// Sparsity in effect.
        sparsity: Vec3,
    },
    /// Transfer layer.
    Transfer(Transfer),
    /// Max-pooling layer.
    MaxPool(Vec3),
    /// Max-filtering layer (window, dilation).
    MaxFilter(Vec3, Vec3),
}

/// Description of one built layer.
#[derive(Clone, Debug)]
pub struct LayerDesc {
    /// What the layer does.
    pub kind: LayerKind,
    /// Number of nodes after the layer.
    pub width: usize,
}

/// Metadata returned alongside the built [`Graph`].
#[derive(Clone, Debug)]
pub struct NetInfo {
    /// The input nodes.
    pub inputs: Vec<NodeId>,
    /// The output nodes.
    pub outputs: Vec<NodeId>,
    /// Layer-by-layer description.
    pub layers: Vec<LayerDesc>,
}

/// Incremental builder for layered ConvNets.
pub struct NetBuilder {
    graph: Graph,
    name: String,
    current: Vec<NodeId>,
    sparsity: Vec3,
    layers: Vec<LayerDesc>,
    inputs: Vec<NodeId>,
}

impl NetBuilder {
    /// Starts a network with `input_width` input nodes.
    pub fn new(name: impl Into<String>, input_width: usize) -> Self {
        assert!(input_width >= 1);
        let name = name.into();
        let mut graph = Graph::new();
        let current: Vec<NodeId> = (0..input_width)
            .map(|i| graph.add_node(format!("{name}/in/{i}")))
            .collect();
        NetBuilder {
            graph,
            name,
            inputs: current.clone(),
            current,
            sparsity: Vec3::one(),
            layers: Vec::new(),
        }
    }

    /// The sparsity applied to subsequent convolutions.
    pub fn sparsity(&self) -> Vec3 {
        self.sparsity
    }

    /// Overrides the sparsity for subsequent convolutions (§II-A:
    /// sparsity "can be controlled independently").
    pub fn set_sparsity(mut self, s: Vec3) -> Self {
        assert!(s[0] >= 1 && s[1] >= 1 && s[2] >= 1);
        self.sparsity = s;
        self
    }

    /// Adds a fully-connected convolution layer of `width` nodes with
    /// the given kernel shape at the current sparsity.
    pub fn conv(mut self, width: usize, kernel: Vec3) -> Self {
        assert!(width >= 1);
        let li = self.layers.len();
        let next: Vec<NodeId> = (0..width)
            .map(|i| self.graph.add_node(format!("{}/l{li}c/{i}", self.name)))
            .collect();
        for &from in &self.current {
            for &to in &next {
                self.graph.add_edge(
                    from,
                    to,
                    EdgeOp::Conv {
                        kernel,
                        sparsity: self.sparsity,
                    },
                );
            }
        }
        self.layers.push(LayerDesc {
            kind: LayerKind::Conv {
                kernel,
                sparsity: self.sparsity,
            },
            width,
        });
        self.current = next;
        self
    }

    /// Adds a transfer layer (one edge per node).
    pub fn transfer(mut self, f: Transfer) -> Self {
        let li = self.layers.len();
        let next: Vec<NodeId> = (0..self.current.len())
            .map(|i| self.graph.add_node(format!("{}/l{li}t/{i}", self.name)))
            .collect();
        for (&from, &to) in self.current.iter().zip(&next) {
            self.graph
                .add_edge(from, to, EdgeOp::Transfer { function: f });
        }
        self.layers.push(LayerDesc {
            kind: LayerKind::Transfer(f),
            width: next.len(),
        });
        self.current = next;
        self
    }

    /// Adds a max-pooling layer (one edge per node). Pooling shrinks
    /// resolution; it does *not* change the sparsity bookkeeping.
    pub fn max_pool(mut self, p: Vec3) -> Self {
        let li = self.layers.len();
        let next: Vec<NodeId> = (0..self.current.len())
            .map(|i| self.graph.add_node(format!("{}/l{li}p/{i}", self.name)))
            .collect();
        for (&from, &to) in self.current.iter().zip(&next) {
            self.graph.add_edge(from, to, EdgeOp::MaxPool { window: p });
        }
        self.layers.push(LayerDesc {
            kind: LayerKind::MaxPool(p),
            width: next.len(),
        });
        self.current = next;
        self
    }

    /// Adds a max-filtering layer at the current sparsity and then — the
    /// lock-step default of §II-A — multiplies the sparsity of
    /// subsequent convolutions by the window size.
    pub fn max_filter(mut self, window: Vec3) -> Self {
        let s = self.sparsity;
        self = self.max_filter_sparse(window, s);
        self.sparsity = self.sparsity * window;
        self
    }

    /// Adds a max-filtering layer with an explicit window dilation and
    /// no sparsity bookkeeping — the manual-control escape hatch.
    pub fn max_filter_sparse(mut self, window: Vec3, dilation: Vec3) -> Self {
        let li = self.layers.len();
        let next: Vec<NodeId> = (0..self.current.len())
            .map(|i| self.graph.add_node(format!("{}/l{li}m/{i}", self.name)))
            .collect();
        for (&from, &to) in self.current.iter().zip(&next) {
            self.graph.add_edge(
                from,
                to,
                EdgeOp::MaxFilter {
                    window,
                    sparsity: dilation,
                },
            );
        }
        self.layers.push(LayerDesc {
            kind: LayerKind::MaxFilter(window, dilation),
            width: next.len(),
        });
        self.current = next;
        self
    }

    /// Finishes the network, validating its structure.
    pub fn build(self) -> Result<(Graph, NetInfo), GraphError> {
        self.graph.validate()?;
        let outputs = self.current.clone();
        Ok((
            self.graph,
            NetInfo {
                inputs: self.inputs,
                outputs,
                layers: self.layers,
            },
        ))
    }
}

/// The 3D scalability network of §VIII: `CTMCTMCTCT` with 3³ kernels,
/// rectified-linear transfers and two 2³ max-filter layers; the paper
/// trains it with a 12³ output patch.
pub fn scalability_net_3d(width: usize) -> (Graph, NetInfo) {
    NetBuilder::new("fig5-3d", 1)
        .conv(width, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .max_filter(Vec3::cube(2))
        .conv(width, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .max_filter(Vec3::cube(2))
        .conv(width, Vec3::cube(3))
        .transfer(Transfer::Relu)
        .conv(1, Vec3::cube(3))
        .transfer(Transfer::Logistic)
        .build()
        .expect("paper architecture is valid")
}

/// The 2D scalability network of §VIII: `CTMCTMCTCTCTCT` with 11²
/// kernels and two 2² max-filter layers; output patch 48².
pub fn scalability_net_2d(width: usize) -> (Graph, NetInfo) {
    let k = Vec3::flat(11, 11);
    let m = Vec3::flat(2, 2);
    NetBuilder::new("fig5-2d", 1)
        .conv(width, k)
        .transfer(Transfer::Relu)
        .max_filter(m)
        .conv(width, k)
        .transfer(Transfer::Relu)
        .max_filter(m)
        .conv(width, k)
        .transfer(Transfer::Relu)
        .conv(width, k)
        .transfer(Transfer::Relu)
        .conv(width, k)
        .transfer(Transfer::Relu)
        .conv(1, k)
        .transfer(Transfer::Logistic)
        .build()
        .expect("paper architecture is valid")
}

/// The §IX CPU-vs-GPU comparison network: `CTPCTPCTCTCTCT`, six
/// fully-connected convolution layers of the given width and kernel.
/// `sparse` selects the ZNN formulation (max-filter + skip kernels,
/// "sparse training"); dense selects plain max-pooling as used by the
/// GPU baselines.
pub fn comparison_net(width: usize, kernel: Vec3, pool: Vec3, sparse: bool) -> (Graph, NetInfo) {
    let mut b = NetBuilder::new(if sparse { "fig89-znn" } else { "fig89-base" }, 1);
    for layer in 0..6 {
        let w = if layer == 5 { 1 } else { width };
        b = b.conv(w, kernel).transfer(Transfer::Relu);
        if layer < 2 {
            b = if sparse {
                b.max_filter(pool)
            } else {
                b.max_pool(pool)
            };
        }
    }
    b.build().expect("paper architecture is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn fully_connected_layer_has_f_times_fprime_edges() {
        let (g, info) = NetBuilder::new("t", 3)
            .conv(5, Vec3::cube(3))
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 15);
        assert_eq!(info.inputs.len(), 3);
        assert_eq!(info.outputs.len(), 5);
    }

    #[test]
    fn max_filter_bumps_sparsity_lock_step() {
        let b = NetBuilder::new("t", 1)
            .conv(2, Vec3::cube(3))
            .max_filter(Vec3::cube(2));
        assert_eq!(b.sparsity(), Vec3::cube(2));
        let b = b.max_filter(Vec3::cube(2));
        assert_eq!(b.sparsity(), Vec3::cube(4));
    }

    #[test]
    fn manual_sparsity_control_is_independent() {
        let b = NetBuilder::new("t", 1)
            .max_filter_sparse(Vec3::cube(2), Vec3::one());
        assert_eq!(b.sparsity(), Vec3::one());
        let b = b.set_sparsity(Vec3::new(1, 3, 3));
        assert_eq!(b.sparsity(), Vec3::new(1, 3, 3));
    }

    #[test]
    fn scalability_net_3d_has_paper_structure() {
        let w = 4;
        let (g, info) = scalability_net_3d(w);
        // edges: w + w² + w² + w convs, 3w+1 transfers, 2w filters
        let conv_edges = w + w * w + w * w + w;
        let transfer_edges = 3 * w + 1;
        let filter_edges = 2 * w;
        assert_eq!(g.edge_count(), conv_edges + transfer_edges + filter_edges);
        assert_eq!(info.outputs.len(), 1);
        // field of view: convs at sparsities 1,2,4,4 contribute
        // 2·(1+2+4+4) = 22; filters at dilations 1,2 contribute 3;
        // so a 12³ output patch needs a (12+25)³ = 37³ input
        let input = shapes::required_input_shape(&g, Vec3::cube(12)).unwrap();
        assert_eq!(input, Vec3::cube(37));
    }

    #[test]
    fn scalability_net_2d_is_flat() {
        let (g, _) = scalability_net_2d(3);
        let input = shapes::required_input_shape(&g, Vec3::flat(48, 48)).unwrap();
        assert_eq!(input[0], 1, "2D networks stay flat");
        let inferred = shapes::infer_shapes(&g, input).unwrap();
        for (_, s) in inferred {
            assert_eq!(s[0], 1);
        }
    }

    #[test]
    fn comparison_net_variants_share_conv_structure() {
        let (sparse, _) = comparison_net(3, Vec3::flat(5, 5), Vec3::flat(2, 2), true);
        let (dense, _) = comparison_net(3, Vec3::flat(5, 5), Vec3::flat(2, 2), false);
        assert_eq!(sparse.edge_count(), dense.edge_count());
        let n_filter = sparse
            .edges()
            .iter()
            .filter(|e| matches!(e.op, EdgeOp::MaxFilter { .. }))
            .count();
        let n_pool = dense
            .edges()
            .iter()
            .filter(|e| matches!(e.op, EdgeOp::MaxPool { .. }))
            .count();
        assert_eq!(n_filter, n_pool);
        assert!(n_filter > 0);
    }

    #[test]
    fn max_filter_nets_preserve_resolution() {
        // §II-A: "unlike max-pooling, max-filtering does not decrease the
        // resolution" — the sparse net accepts any input one voxel larger
        // and produces one more output voxel (stride-1 dense output),
        // while the pooling net is pinned to the block lattice.
        let k = Vec3::flat(3, 3);
        let p = Vec3::flat(2, 2);
        let (sparse, _) = comparison_net(2, k, p, true);
        let (dense, _) = comparison_net(2, k, p, false);
        let si = shapes::required_input_shape(&sparse, Vec3::flat(4, 4)).unwrap();
        let di = shapes::required_input_shape(&dense, Vec3::flat(4, 4)).unwrap();
        // growing the sparse input by 1 grows the output by 1
        let plus = shapes::infer_shapes(&sparse, si + Vec3::new(0, 1, 1)).unwrap();
        let out_node = sparse.outputs()[0];
        assert_eq!(plus[&out_node], Vec3::flat(5, 5));
        // growing the dense input by 1 breaks pooling divisibility
        assert!(shapes::infer_shapes(&dense, di + Vec3::new(0, 1, 1)).is_err());
    }
}
