//! Deterministic parameter initialization shared by every engine.
//!
//! The core task-parallel engine, the sequential reference engine and
//! the layerwise baseline all initialize from the same (seed, edge)
//! stream, so their outputs are bit-comparable in differential tests.

use crate::graph::{EdgeId, EdgeOp, Graph};
use znn_tensor::{ops, Image, Vec3};

/// Initial kernel for a convolution edge: deterministic pseudo-random
/// values scaled by `1/√(kernel volume)` (a fan-in-ish scale that keeps
/// activations bounded in deep nets).
pub fn kernel_init(seed: u64, edge: EdgeId, kernel: Vec3) -> Image {
    let mut k = ops::random(kernel, seed ^ (0x9E37_79B9 + edge.0 as u64));
    let scale = 1.0 / (kernel.len() as f32).sqrt();
    ops::scale(&mut k, scale);
    k
}

/// Initial bias for a transfer edge.
pub fn bias_init(_seed: u64, _edge: EdgeId) -> f32 {
    0.0
}

/// Snapshot of every trainable parameter of a graph, used to compare
/// engines after training steps.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamSet {
    /// Kernels by edge index (empty tensor for non-conv edges).
    pub kernels: Vec<Option<Image>>,
    /// Biases by edge index.
    pub biases: Vec<Option<f32>>,
}

impl ParamSet {
    /// The default initialization for `graph` under `seed`.
    pub fn init(graph: &Graph, seed: u64) -> Self {
        let mut kernels = Vec::with_capacity(graph.edge_count());
        let mut biases = Vec::with_capacity(graph.edge_count());
        for (i, e) in graph.edges().iter().enumerate() {
            match e.op {
                EdgeOp::Conv { kernel, .. } => {
                    kernels.push(Some(kernel_init(seed, EdgeId(i), kernel)));
                    biases.push(None);
                }
                EdgeOp::Transfer { .. } => {
                    kernels.push(None);
                    biases.push(Some(bias_init(seed, EdgeId(i))));
                }
                _ => {
                    kernels.push(None);
                    biases.push(None);
                }
            }
        }
        ParamSet { kernels, biases }
    }

    /// Maximum absolute difference across all parameters of two sets.
    pub fn max_abs_diff(&self, other: &ParamSet) -> f32 {
        let mut d = 0.0f32;
        for (a, b) in self.kernels.iter().zip(&other.kernels) {
            if let (Some(a), Some(b)) = (a, b) {
                d = d.max(a.max_abs_diff(b));
            }
        }
        for (a, b) in self.biases.iter().zip(&other.biases) {
            if let (Some(a), Some(b)) = (a, b) {
                d = d.max((a - b).abs());
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use znn_ops::Transfer;

    #[test]
    fn init_is_deterministic_and_seed_sensitive() {
        let a = kernel_init(1, EdgeId(0), Vec3::cube(3));
        let b = kernel_init(1, EdgeId(0), Vec3::cube(3));
        let c = kernel_init(2, EdgeId(0), Vec3::cube(3));
        let d = kernel_init(1, EdgeId(1), Vec3::cube(3));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn param_set_covers_trainable_edges_only() {
        let (g, _) = NetBuilder::new("t", 1)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Relu)
            .max_filter_sparse(Vec3::cube(2), Vec3::one())
            .build()
            .unwrap();
        let p = ParamSet::init(&g, 7);
        let kernels = p.kernels.iter().flatten().count();
        let biases = p.biases.iter().flatten().count();
        assert_eq!(kernels, 2);
        assert_eq!(biases, 2);
    }

    #[test]
    fn kernel_scale_shrinks_with_volume() {
        let small = kernel_init(3, EdgeId(0), Vec3::one());
        let big = kernel_init(3, EdgeId(0), Vec3::cube(5));
        let max_small = small.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let max_big = big.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(max_big < max_small);
    }
}
