//! Shape inference over the computation graph.
//!
//! Forward inference propagates input shapes through every edge and
//! checks that convergent edges agree. Backward inference computes the
//! input patch a desired output patch requires — the "field of view"
//! arithmetic of §II-A.

use crate::graph::{Graph, GraphError, NodeId};
use std::collections::HashMap;
use znn_tensor::Vec3;

/// Errors from shape inference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// An edge cannot be applied to its input shape.
    DoesNotFit {
        /// Name of the source node.
        node: String,
        /// The offending input shape.
        input: Vec3,
    },
    /// Two convergent edges produce different shapes at the named node.
    ConvergenceMismatch {
        /// Name of the target node.
        node: String,
        /// The two disagreeing shapes.
        shapes: (Vec3, Vec3),
    },
    /// A structural error surfaced during traversal.
    Graph(GraphError),
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::DoesNotFit { node, input } => {
                write!(f, "edge out of node {node} does not fit input {input}")
            }
            ShapeError::ConvergenceMismatch { node, shapes } => write!(
                f,
                "convergent edges at {node} produce {} vs {}",
                shapes.0, shapes.1
            ),
            ShapeError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Propagates shapes from the inputs; returns the shape of every node.
///
/// `input_shape` is applied to every input node (the paper's networks
/// have a single input; multi-input graphs with distinct shapes can use
/// [`infer_shapes_multi`]).
pub fn infer_shapes(graph: &Graph, input_shape: Vec3) -> Result<HashMap<NodeId, Vec3>, ShapeError> {
    let seed = graph
        .inputs()
        .into_iter()
        .map(|n| (n, input_shape))
        .collect();
    infer_shapes_multi(graph, seed)
}

/// Shape propagation with per-input shapes.
pub fn infer_shapes_multi(
    graph: &Graph,
    inputs: HashMap<NodeId, Vec3>,
) -> Result<HashMap<NodeId, Vec3>, ShapeError> {
    let order = graph.topo_order().map_err(ShapeError::Graph)?;
    let mut shapes: HashMap<NodeId, Vec3> = inputs;
    for n in order {
        let Some(&shape) = shapes.get(&n) else {
            continue; // unreachable node with no seed
        };
        for &eid in &graph.node(n).out_edges {
            let edge = graph.edge(eid);
            let out = edge.op.output_shape(shape).ok_or_else(|| ShapeError::DoesNotFit {
                node: graph.node(n).name.clone(),
                input: shape,
            })?;
            match shapes.get(&edge.to) {
                None => {
                    shapes.insert(edge.to, out);
                }
                Some(&existing) if existing == out => {}
                Some(&existing) => {
                    return Err(ShapeError::ConvergenceMismatch {
                        node: graph.node(edge.to).name.clone(),
                        shapes: (existing, out),
                    })
                }
            }
        }
    }
    Ok(shapes)
}

/// Computes the input shape required for every output node to have
/// shape `output_shape` — walking the graph backwards with the
/// per-edge inverse shape rule and taking the elementwise maximum where
/// paths merge.
pub fn required_input_shape(graph: &Graph, output_shape: Vec3) -> Result<Vec3, ShapeError> {
    let order = graph.topo_order().map_err(ShapeError::Graph)?;
    let mut need: HashMap<NodeId, Vec3> = graph
        .outputs()
        .into_iter()
        .map(|n| (n, output_shape))
        .collect();
    for &n in order.iter().rev() {
        let Some(&out_need) = need.get(&n) else {
            continue;
        };
        for &eid in &graph.node(n).in_edges {
            let edge = graph.edge(eid);
            let in_need = edge.op.required_input_shape(out_need);
            need.entry(edge.from)
                .and_modify(|v| *v = (*v).max(in_need))
                .or_insert(in_need);
        }
    }
    // every input node receives the same patch shape; take the maximum
    // requirement over all of them (paths not reaching any output place
    // no requirement and default to the others')
    let inputs = graph.inputs();
    if inputs.is_empty() {
        return Err(ShapeError::Graph(GraphError::NoInputs));
    }
    let shape = inputs
        .iter()
        .filter_map(|n| need.get(n).copied())
        .reduce(|a, b| a.max(b))
        .expect("at least one input is reachable from an output");
    Ok(shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeOp;
    use znn_ops::Transfer;

    fn chain() -> Graph {
        // in -C3-> a -T-> b -P2-> c
        let mut g = Graph::new();
        let i = g.add_node("in");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(
            i,
            a,
            EdgeOp::Conv {
                kernel: Vec3::cube(3),
                sparsity: Vec3::one(),
            },
        );
        g.add_edge(
            a,
            b,
            EdgeOp::Transfer {
                function: Transfer::Relu,
            },
        );
        g.add_edge(
            b,
            c,
            EdgeOp::MaxPool {
                window: Vec3::cube(2),
            },
        );
        g
    }

    #[test]
    fn forward_inference_walks_the_chain() {
        let g = chain();
        let shapes = infer_shapes(&g, Vec3::cube(10)).unwrap();
        assert_eq!(shapes[&NodeId(1)], Vec3::cube(8));
        assert_eq!(shapes[&NodeId(2)], Vec3::cube(8));
        assert_eq!(shapes[&NodeId(3)], Vec3::cube(4));
    }

    #[test]
    fn backward_inference_inverts_forward() {
        let g = chain();
        let input = required_input_shape(&g, Vec3::cube(4)).unwrap();
        assert_eq!(input, Vec3::cube(10));
        let shapes = infer_shapes(&g, input).unwrap();
        assert_eq!(shapes[&NodeId(3)], Vec3::cube(4));
    }

    #[test]
    fn too_small_input_errors() {
        let g = chain();
        let err = infer_shapes(&g, Vec3::cube(2)).unwrap_err();
        assert!(matches!(err, ShapeError::DoesNotFit { .. }));
    }

    #[test]
    fn indivisible_pooling_errors() {
        let g = chain();
        // input 9 -> conv -> 7, pooling by 2 fails
        let err = infer_shapes(&g, Vec3::cube(9)).unwrap_err();
        assert!(matches!(err, ShapeError::DoesNotFit { .. }));
    }

    #[test]
    fn convergence_mismatch_is_detected() {
        let mut g = Graph::new();
        let i = g.add_node("in");
        let a = g.add_node("a");
        let b = g.add_node("b");
        let h = g.add_node("h");
        let c3 = EdgeOp::Conv {
            kernel: Vec3::cube(3),
            sparsity: Vec3::one(),
        };
        let c5 = EdgeOp::Conv {
            kernel: Vec3::cube(5),
            sparsity: Vec3::one(),
        };
        g.add_edge(i, a, c3);
        g.add_edge(i, b, c3);
        g.add_edge(a, h, c3); // 10 -> 8 -> 6
        g.add_edge(b, h, c5); // 10 -> 8 -> 4: mismatch at h
        let err = infer_shapes(&g, Vec3::cube(10)).unwrap_err();
        assert!(matches!(err, ShapeError::ConvergenceMismatch { .. }));
    }

    #[test]
    fn sparse_field_of_view_matches_hand_computation() {
        // C(k=3,s=2): fov grows by s(k-1) = 4
        let mut g = Graph::new();
        let i = g.add_node("in");
        let o = g.add_node("out");
        g.add_edge(
            i,
            o,
            EdgeOp::Conv {
                kernel: Vec3::cube(3),
                sparsity: Vec3::cube(2),
            },
        );
        assert_eq!(required_input_shape(&g, Vec3::one()).unwrap(), Vec3::cube(5));
    }
}
