//! Property tests over randomly generated DAGs: priority orderings,
//! shape inference round trips, and task-graph structure.

use proptest::prelude::*;
use znn_graph::{priority, shapes, EdgeOp, Graph, TaskGraph, TaskKind};
use znn_ops::Transfer;
use znn_tensor::Vec3;

/// Random layered DAG with conv-only convergence (the §II constraint).
fn random_dag() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec(1usize..4, 2..5), // widths
        any::<u64>(),
    )
        .prop_map(|(widths, seed)| {
            let mut g = Graph::new();
            let mut rng = seed;
            let mut next = || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (rng >> 33) as usize
            };
            let mut prev: Vec<_> = (0..widths[0])
                .map(|i| g.add_node(format!("0/{i}")))
                .collect();
            for (l, &w) in widths.iter().enumerate().skip(1) {
                let cur: Vec<_> = (0..w).map(|i| g.add_node(format!("{l}/{i}"))).collect();
                for &to in &cur {
                    for _ in 0..=(next() % 2) {
                        let from = prev[next() % prev.len()];
                        let op = if next() % 4 == 0 && g.node(to).in_edges.is_empty() {
                            // sole in-edge may be nonlinear
                            EdgeOp::Transfer {
                                function: Transfer::Relu,
                            }
                        } else {
                            EdgeOp::Conv {
                                kernel: Vec3::cube(1 + next() % 2),
                                sparsity: Vec3::one(),
                            }
                        };
                        // keep convergence conv-only
                        let convergent = !g.node(to).in_edges.is_empty();
                        let op = if convergent {
                            EdgeOp::Conv {
                                kernel: Vec3::cube(1 + next() % 2),
                                sparsity: Vec3::one(),
                            }
                        } else {
                            op
                        };
                        // a transfer edge target must stay sole-input
                        g.add_edge(from, to, op);
                    }
                }
                prev = cur;
            }
            g
        })
        .prop_filter("valid", |g| g.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn orderings_are_strict_permutations(g in random_dag()) {
        let fwd = priority::forward_node_positions(&g);
        let bwd = priority::backward_node_positions(&g);
        prop_assert!(priority::is_strict(&fwd));
        prop_assert!(priority::is_strict(&bwd));
        prop_assert_eq!(fwd.len(), g.node_count());
        prop_assert_eq!(bwd.len(), g.node_count());
    }

    #[test]
    fn deeper_nodes_run_earlier_forward(g in random_dag()) {
        let d = priority::distance_to_outputs(&g);
        let pos = priority::forward_node_positions(&g);
        for a in 0..g.node_count() {
            for b in 0..g.node_count() {
                if d[a] > d[b] {
                    prop_assert!(pos[a] < pos[b], "node {a} (d{}) vs {b} (d{})", d[a], d[b]);
                }
            }
        }
    }

    #[test]
    fn task_graph_is_acyclic_and_complete(g in random_dag()) {
        let tg = TaskGraph::build(&g);
        prop_assert!(tg.is_acyclic());
        let trainable = g.edges().iter().filter(|e| e.op.is_trainable()).count();
        let expect = 2 * g.edge_count() + trainable + g.inputs().len() + g.outputs().len();
        prop_assert_eq!(tg.len(), expect);
        // every forward task of a trainable edge depends on its update
        for t in &tg.tasks {
            if let TaskKind::Forward(e) = t.kind {
                if g.edge(e).op.is_trainable() {
                    prop_assert!(t.deps.iter().any(|d| matches!(
                        tg.tasks[d.0].kind,
                        TaskKind::Update(ue) if ue == e
                    )));
                }
            }
        }
    }

    #[test]
    fn shape_inference_round_trips(g in random_dag(), out in 1usize..4) {
        let out_shape = Vec3::cube(out);
        let Ok(input) = shapes::required_input_shape(&g, out_shape) else {
            return Ok(()); // e.g. pooling divisibility; not generated here
        };
        let Ok(inferred) = shapes::infer_shapes(&g, input) else {
            // convergent paths with mismatched field of view: legal DAG,
            // unsatisfiable shapes — required_input_shape's max() can't
            // always fix convergence mismatches
            return Ok(());
        };
        // every output node is at least as large as requested, and the
        // bottleneck one is exactly out_shape
        let mut exact = false;
        for o in g.outputs() {
            let s = inferred[&o];
            prop_assert!(out_shape.le(s));
            if s == out_shape {
                exact = true;
            }
        }
        prop_assert!(exact, "no output matches the requested shape");
    }

    #[test]
    fn parameter_count_matches_manual_sum(g in random_dag()) {
        let manual: usize = g
            .edges()
            .iter()
            .map(|e| match e.op {
                EdgeOp::Conv { kernel, .. } => kernel.len(),
                EdgeOp::Transfer { .. } => 1,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(g.parameter_count(), manual);
    }
}
