//! Deterministic fault injection for the training engine and the
//! serving front end.
//!
//! The fault-tolerance layer (durable checkpoints, divergence rollback,
//! panic containment, overload shedding) is only trustworthy if its
//! recovery paths run in CI on every change. This crate turns "what if
//! a task panics mid round" from a thought experiment into a
//! reproducible test input: a [`FaultPlan`] is a set of *armed* faults,
//! each naming a [`FaultKind`] and a [`Schedule`] over the driver's
//! monotone tick counter (the training-round counter for the engine,
//! the request id for the serving path). The engine, trainer and server
//! query the plan at well-defined injection sites; each armed fault
//! fires **at most once per tick** (an atomic claim), so a retried
//! round replays clean and recovery is observable as a deterministic
//! before/after.
//!
//! Three schedule shapes cover the soak benches:
//!
//! * [`Schedule::Once`] — fire exactly once, at one tick (the original
//!   fire-exactly-once arms of the training soak);
//! * [`Schedule::EveryN`] — recurring: fire at `start`, `start + n`,
//!   `start + 2n`, … (sustained-pressure soaks);
//! * [`Schedule::Chance`] — seeded-probabilistic: at tick `t`, fire iff
//!   a SplitMix64 hash of `(seed, t)` lands under the per-mille
//!   threshold. The firing *set* is a pure function of the seed, so a
//!   soak under probabilistic faults is still bit-reproducible.
//!
//! Threading is free: a plan is shared as `Arc<FaultPlan>` through
//! `TrainConfig`/`ServeConfig` and probed lock-free. When no plan is
//! configured the injection sites cost a single `Option` branch — zero
//! allocation, zero atomics — so production runs pay nothing.
//!
//! The fault classes mirror the failure modes the recovery designs must
//! contain:
//!
//! * [`FaultKind::TaskPanic`] — a scheduler task (or a serving
//!   request's compute) panics mid-flight (exercises panic containment
//!   + round poisoning / response poisoning),
//! * [`FaultKind::LeaseFail`] — a pooled buffer lease blows up
//!   (exercises RAII lease custody under unwinding),
//! * [`FaultKind::NanPoke`] — a non-finite value enters a gradient
//!   (exercises the health sentinels + checkpoint rollback),
//! * [`FaultKind::Crash`] — the process "dies" between rounds
//!   (exercises durable checkpoints + resume),
//! * [`FaultKind::SlowTask`] — a task stalls (exercises deadline
//!   expiry and that a slow request never blocks the batch behind it),
//! * [`FaultKind::RejectLease`] — a pooled lease is *refused* on the
//!   request path (exercises graceful typed rejection instead of a
//!   panic: the server must shed the request, not die).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// The classes of fault the harness can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside a scheduler task (a forward task of the engine) or
    /// inside a serving request's compute.
    TaskPanic,
    /// Panic at a pooled-buffer lease site.
    LeaseFail,
    /// Overwrite one gradient value with NaN (no panic; the health
    /// sentinels must catch it downstream).
    NanPoke,
    /// Simulated process death between rounds: the trainer stops its
    /// loop without any orderly shutdown of the round state, as a
    /// `kill -9` would. Recovery is a fresh engine + `resume()`.
    Crash,
    /// A stalled task: the injection site sleeps before proceeding.
    /// The serving path uses this to force deadline expiry mid-volume
    /// deterministically.
    SlowTask,
    /// A refused pooled lease on the request path — unlike
    /// [`FaultKind::LeaseFail`] this must *not* unwind: the server
    /// sheds the affected request with a typed rejection and keeps
    /// serving.
    RejectLease,
}

impl FaultKind {
    /// Stable lowercase name, used in diagnostics and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::TaskPanic => "task_panic",
            FaultKind::LeaseFail => "lease_fail",
            FaultKind::NanPoke => "nan_poke",
            FaultKind::Crash => "crash",
            FaultKind::SlowTask => "slow_task",
            FaultKind::RejectLease => "reject_lease",
        }
    }
}

/// When an armed fault fires, over the driver's monotone tick counter
/// (training rounds for the engine, request ids for the server).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Fire exactly once, at this tick.
    Once(u64),
    /// Fire at `start`, `start + n`, `start + 2n`, …
    EveryN {
        /// First tick that fires.
        start: u64,
        /// Period between firings (≥ 1).
        n: u64,
    },
    /// At tick `t`, fire iff `hash(seed, t) % 1000 < permille`. The
    /// firing set is deterministic per `(seed, permille)`.
    Chance {
        /// Firing probability in thousandths (0–1000).
        permille: u16,
        /// Seed the per-tick hash is derived from.
        seed: u64,
    },
}

impl Schedule {
    /// Whether this schedule matches tick `tick` (ignoring claims).
    fn matches(&self, tick: u64) -> bool {
        match *self {
            Schedule::Once(at) => tick == at,
            Schedule::EveryN { start, n } => {
                tick >= start && (tick - start).is_multiple_of(n.max(1))
            }
            Schedule::Chance { permille, seed } => {
                splitmix(seed ^ tick.wrapping_mul(0xA24B_AED4_963E_E407)) % 1000
                    < u64::from(permille)
            }
        }
    }
}

/// One armed fault: a kind, its schedule, and the claim state.
///
/// `claimed` holds the last tick this arm fired at (`0` = never; ticks
/// are 1-based everywhere in the workspace). A recurring arm fires at
/// most once per matching tick — concurrent takers race on a CAS — and
/// a *retried* tick (the engine rewinds its round counter on rollback)
/// replays clean, because the claim for that tick is already taken.
#[derive(Debug)]
struct Arm {
    kind: FaultKind,
    schedule: Schedule,
    claimed: AtomicU64,
    fired: AtomicU64,
}

/// A deterministic set of armed faults, threaded through
/// `TrainConfig::faults` / the server config and probed by the
/// injection sites.
///
/// # Example
///
/// ```
/// use znn_fault::{FaultKind, FaultPlan, Schedule};
///
/// let plan = FaultPlan::new()
///     .task_panic_at(3)
///     .every_n(FaultKind::SlowTask, 2, 4); // ticks 2, 6, 10, …
/// assert!(!plan.take(FaultKind::TaskPanic, 2)); // wrong tick
/// assert!(plan.take(FaultKind::TaskPanic, 3));  // fires
/// assert!(!plan.take(FaultKind::TaskPanic, 3)); // exactly once
/// assert!(plan.take(FaultKind::SlowTask, 6));   // recurring
/// assert!(plan.take(FaultKind::SlowTask, 10));
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: Vec<Arm>,
}

impl FaultPlan {
    /// An empty plan (no faults). Arm it with the builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms a fault of `kind` under an arbitrary [`Schedule`].
    pub fn arm_schedule(mut self, kind: FaultKind, schedule: Schedule) -> Self {
        self.arms.push(Arm {
            kind,
            schedule,
            claimed: AtomicU64::new(0),
            fired: AtomicU64::new(0),
        });
        self
    }

    /// Arms a fire-exactly-once fault of `kind` at tick `tick`
    /// (1-based; the engine's round counter or the server's request
    /// id).
    pub fn arm(self, kind: FaultKind, tick: u64) -> Self {
        self.arm_schedule(kind, Schedule::Once(tick))
    }

    /// Arms a recurring fault: fires at `start`, `start + n`,
    /// `start + 2n`, …
    pub fn every_n(self, kind: FaultKind, start: u64, n: u64) -> Self {
        assert!(n >= 1, "period must be >= 1");
        self.arm_schedule(kind, Schedule::EveryN { start, n })
    }

    /// Arms a seeded-probabilistic fault: at tick `t` it fires iff a
    /// hash of `(seed, t)` lands under `permille`/1000. Deterministic
    /// per seed.
    pub fn chance(self, kind: FaultKind, permille: u16, seed: u64) -> Self {
        assert!(permille <= 1000, "permille is a probability in 1/1000");
        self.arm_schedule(kind, Schedule::Chance { permille, seed })
    }

    /// Arms a [`FaultKind::TaskPanic`] at `round`.
    pub fn task_panic_at(self, round: u64) -> Self {
        self.arm(FaultKind::TaskPanic, round)
    }

    /// Arms a [`FaultKind::LeaseFail`] at `round`.
    pub fn lease_fail_at(self, round: u64) -> Self {
        self.arm(FaultKind::LeaseFail, round)
    }

    /// Arms a [`FaultKind::NanPoke`] at `round`.
    pub fn nan_poke_at(self, round: u64) -> Self {
        self.arm(FaultKind::NanPoke, round)
    }

    /// Arms a [`FaultKind::Crash`] *after* `round` completes.
    pub fn crash_after(self, round: u64) -> Self {
        self.arm(FaultKind::Crash, round)
    }

    /// A seeded pseudo-random plan: `count` recoverable fire-once
    /// faults (never `Crash`) spread over rounds `1..=rounds`. The same
    /// `(seed, rounds, count)` always produces the same plan — what the
    /// `fault_soak` bench uses to stress recovery reproducibly.
    pub fn seeded(seed: u64, rounds: u64, count: usize) -> Self {
        let kinds = [FaultKind::TaskPanic, FaultKind::LeaseFail, FaultKind::NanPoke];
        let mut plan = FaultPlan::new();
        for i in 0..count {
            let r = splitmix(seed.wrapping_add(i as u64));
            let kind = kinds[(r % 3) as usize];
            let round = 1 + (r >> 8) % rounds.max(1);
            plan = plan.arm(kind, round);
        }
        plan
    }

    /// Claims the armed fault of `kind` at tick `tick`, if any: returns
    /// `true` at most once per `(arm, tick)`. Injection sites call this
    /// and fire iff it returns `true`. A `Once` arm never fires a
    /// second time even at a different tick; recurring arms fire once
    /// per matching tick (retries of a claimed tick replay clean).
    pub fn take(&self, kind: FaultKind, tick: u64) -> bool {
        if tick == 0 {
            return false;
        }
        self.arms.iter().any(|a| {
            if a.kind != kind || !a.schedule.matches(tick) {
                return false;
            }
            if matches!(a.schedule, Schedule::Once(_))
                && a.fired.load(Ordering::Acquire) != 0
            {
                return false;
            }
            let won = a
                .claimed
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |last| {
                    (last != tick).then_some(tick)
                })
                .is_ok();
            if won {
                a.fired.fetch_add(1, Ordering::AcqRel);
            }
            won
        })
    }

    /// Whether an armed fault of `kind` can still fire at some future
    /// tick — used by drivers to pre-size retry budgets. `Once` arms
    /// stop pending after they fire; recurring arms always pend.
    pub fn pending(&self, kind: FaultKind) -> bool {
        self.arms.iter().any(|a| {
            a.kind == kind
                && (!matches!(a.schedule, Schedule::Once(_))
                    || a.fired.load(Ordering::Acquire) == 0)
        })
    }

    /// Total armed faults (fired or not).
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// True when the plan holds no arms at all.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Total firings so far, across all arms (a recurring arm counts
    /// once per tick it fired at).
    pub fn fired(&self) -> usize {
        self.arms
            .iter()
            .map(|a| a.fired.load(Ordering::Acquire) as usize)
            .sum()
    }

    /// How many times the arms of `kind` have fired.
    pub fn fired_of(&self, kind: FaultKind) -> usize {
        self.arms
            .iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.fired.load(Ordering::Acquire) as usize)
            .sum()
    }

    /// The `(kind, schedule)` of every armed fault, in arm order — lets
    /// a driver iterate the plan it is about to survive.
    pub fn arms(&self) -> Vec<(FaultKind, Schedule)> {
        self.arms.iter().map(|a| (a.kind, a.schedule)).collect()
    }

    /// The ticks in `1..=ticks` at which an arm of `kind` would fire,
    /// ignoring claims — the deterministic firing set a soak bench can
    /// size its assertions against.
    pub fn firing_ticks(&self, kind: FaultKind, ticks: u64) -> Vec<u64> {
        (1..=ticks)
            .filter(|&t| {
                self.arms
                    .iter()
                    .any(|a| a.kind == kind && a.schedule.matches(t))
            })
            .collect()
    }
}

/// SplitMix64 — the same tiny deterministic generator the tensor ops
/// use for data, re-derived here so this crate stays dependency-free.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fires_exactly_once_at_the_armed_round() {
        let p = FaultPlan::new().task_panic_at(4);
        assert!(!p.take(FaultKind::TaskPanic, 3));
        assert!(!p.take(FaultKind::NanPoke, 4));
        assert!(p.take(FaultKind::TaskPanic, 4));
        assert!(!p.take(FaultKind::TaskPanic, 4), "must fire exactly once");
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn multiple_arms_of_one_kind_fire_independently() {
        let p = FaultPlan::new().nan_poke_at(2).nan_poke_at(5);
        assert!(p.take(FaultKind::NanPoke, 2));
        assert!(!p.take(FaultKind::NanPoke, 2));
        assert!(p.take(FaultKind::NanPoke, 5));
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn concurrent_takers_claim_exactly_once() {
        for _ in 0..50 {
            let p = Arc::new(FaultPlan::new().lease_fail_at(1));
            let claims: usize = (0..8)
                .map(|_| {
                    let p = Arc::clone(&p);
                    std::thread::spawn(move || p.take(FaultKind::LeaseFail, 1))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap() as usize)
                .sum();
            assert_eq!(claims, 1);
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(7, 10, 5);
        let b = FaultPlan::seeded(7, 10, 5);
        assert_eq!(a.arms(), b.arms());
        assert_eq!(a.len(), 5);
        assert!(a.arms().iter().all(|&(k, s)| {
            k != FaultKind::Crash
                && matches!(s, Schedule::Once(r) if (1..=10).contains(&r))
        }));
        let c = FaultPlan::seeded(8, 10, 5);
        assert_ne!(a.arms(), c.arms(), "different seeds differ");
    }

    #[test]
    fn pending_reflects_unfired_arms() {
        let p = FaultPlan::new().crash_after(3);
        assert!(p.pending(FaultKind::Crash));
        assert!(!p.pending(FaultKind::TaskPanic));
        assert!(p.take(FaultKind::Crash, 3));
        assert!(!p.pending(FaultKind::Crash));
    }

    #[test]
    fn every_n_fires_at_the_expected_ticks_only() {
        let p = FaultPlan::new().every_n(FaultKind::SlowTask, 3, 4);
        let fired: Vec<u64> = (1..=16).filter(|&t| p.take(FaultKind::SlowTask, t)).collect();
        assert_eq!(fired, vec![3, 7, 11, 15]);
        assert_eq!(p.firing_ticks(FaultKind::SlowTask, 16), vec![3, 7, 11, 15]);
        assert_eq!(p.fired(), 4);
        assert_eq!(p.fired_of(FaultKind::SlowTask), 4);
    }

    #[test]
    fn every_n_claims_once_per_tick_and_retries_replay_clean() {
        let p = FaultPlan::new().every_n(FaultKind::TaskPanic, 2, 2);
        assert!(p.take(FaultKind::TaskPanic, 2));
        // a rolled-back, retried tick must not re-fire
        assert!(!p.take(FaultKind::TaskPanic, 2));
        assert!(p.take(FaultKind::TaskPanic, 4));
        assert!(!p.take(FaultKind::TaskPanic, 3), "off-period tick");
    }

    #[test]
    fn chance_is_deterministic_per_seed() {
        let ticks = 2000;
        let a = FaultPlan::new().chance(FaultKind::RejectLease, 100, 42);
        let b = FaultPlan::new().chance(FaultKind::RejectLease, 100, 42);
        let fa = a.firing_ticks(FaultKind::RejectLease, ticks);
        let fb = b.firing_ticks(FaultKind::RejectLease, ticks);
        assert_eq!(fa, fb, "same seed, same firing set");
        // taking walks the identical set
        let taken: Vec<u64> = (1..=ticks)
            .filter(|&t| a.take(FaultKind::RejectLease, t))
            .collect();
        assert_eq!(taken, fa);
        // ~10% rate, loose bounds (deterministic, so this can't flake)
        assert!(
            (fa.len() as f64) > 0.05 * ticks as f64
                && (fa.len() as f64) < 0.2 * ticks as f64,
            "100‰ fired {} of {ticks}",
            fa.len()
        );
        let c = FaultPlan::new().chance(FaultKind::RejectLease, 100, 43);
        assert_ne!(
            c.firing_ticks(FaultKind::RejectLease, ticks),
            fa,
            "different seeds give different firing sets"
        );
    }

    #[test]
    fn chance_extremes() {
        let never = FaultPlan::new().chance(FaultKind::SlowTask, 0, 9);
        let always = FaultPlan::new().chance(FaultKind::SlowTask, 1000, 9);
        assert!(never.firing_ticks(FaultKind::SlowTask, 100).is_empty());
        assert_eq!(always.firing_ticks(FaultKind::SlowTask, 100).len(), 100);
        assert!(always.pending(FaultKind::SlowTask), "recurring arms always pend");
    }

    #[test]
    fn concurrent_takers_on_a_recurring_arm_claim_once_per_tick() {
        for _ in 0..20 {
            let p = Arc::new(FaultPlan::new().every_n(FaultKind::SlowTask, 1, 1));
            for tick in 1..=4 {
                let claims: usize = (0..8)
                    .map(|_| {
                        let p = Arc::clone(&p);
                        std::thread::spawn(move || p.take(FaultKind::SlowTask, tick))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap() as usize)
                    .sum();
                assert_eq!(claims, 1, "tick {tick}");
            }
            assert_eq!(p.fired(), 4);
        }
    }

    #[test]
    fn tick_zero_never_fires() {
        // 0 is the "never claimed" sentinel; a driver that has not
        // started counting must not trip EveryN{start: 0} arms
        let p = FaultPlan::new().every_n(FaultKind::SlowTask, 0, 1);
        assert!(!p.take(FaultKind::SlowTask, 0));
        assert!(p.take(FaultKind::SlowTask, 1));
    }
}
