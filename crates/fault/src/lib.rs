//! Deterministic fault injection for the training engine.
//!
//! The fault-tolerance layer (durable checkpoints, divergence rollback,
//! panic containment) is only trustworthy if its recovery paths run in
//! CI on every change. This crate turns "what if a task panics mid
//! round" from a thought experiment into a reproducible test input: a
//! [`FaultPlan`] is a set of *armed* faults, each naming a
//! [`FaultKind`] and the training round it fires in. The engine and
//! trainer query the plan at well-defined injection sites; each armed
//! fault fires **exactly once** (an atomic claim), so a retried round
//! replays clean and recovery is observable as a deterministic
//! before/after.
//!
//! Threading is free: a plan is shared as `Arc<FaultPlan>` through
//! `TrainConfig` and probed lock-free. When no plan is configured the
//! injection sites cost a single `Option` branch — zero allocation,
//! zero atomics — so production runs pay nothing.
//!
//! The four fault classes mirror the failure modes the recovery design
//! must contain:
//!
//! * [`FaultKind::TaskPanic`] — a scheduler task panics mid-round
//!   (exercises panic containment + round poisoning + rollback),
//! * [`FaultKind::LeaseFail`] — a pooled buffer lease blows up
//!   (exercises RAII lease custody under unwinding),
//! * [`FaultKind::NanPoke`] — a non-finite value enters a gradient
//!   (exercises the health sentinels + checkpoint rollback),
//! * [`FaultKind::Crash`] — the process "dies" between rounds
//!   (exercises durable checkpoints + resume).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

/// The classes of fault the harness can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside a scheduler task (a forward task of the engine).
    TaskPanic,
    /// Panic at a pooled-buffer lease site.
    LeaseFail,
    /// Overwrite one gradient value with NaN (no panic; the health
    /// sentinels must catch it downstream).
    NanPoke,
    /// Simulated process death between rounds: the trainer stops its
    /// loop without any orderly shutdown of the round state, as a
    /// `kill -9` would. Recovery is a fresh engine + `resume()`.
    Crash,
}

impl FaultKind {
    /// Stable lowercase name, used in diagnostics and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::TaskPanic => "task_panic",
            FaultKind::LeaseFail => "lease_fail",
            FaultKind::NanPoke => "nan_poke",
            FaultKind::Crash => "crash",
        }
    }
}

/// One armed fault: a kind, the round it fires in, and its claim flag.
#[derive(Debug)]
struct Arm {
    kind: FaultKind,
    round: u64,
    fired: AtomicBool,
}

/// A deterministic set of armed faults, threaded through
/// `TrainConfig::faults` and probed by the engine/trainer at their
/// injection sites.
///
/// # Example
///
/// ```
/// use znn_fault::{FaultKind, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .task_panic_at(3)
///     .nan_poke_at(7);
/// assert!(!plan.take(FaultKind::TaskPanic, 2)); // wrong round
/// assert!(plan.take(FaultKind::TaskPanic, 3));  // fires
/// assert!(!plan.take(FaultKind::TaskPanic, 3)); // exactly once
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    arms: Vec<Arm>,
}

impl FaultPlan {
    /// An empty plan (no faults). Arm it with the builder methods.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Arms a fault of `kind` for training round `round` (1-based, the
    /// engine's round counter).
    pub fn arm(mut self, kind: FaultKind, round: u64) -> Self {
        self.arms.push(Arm {
            kind,
            round,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Arms a [`FaultKind::TaskPanic`] at `round`.
    pub fn task_panic_at(self, round: u64) -> Self {
        self.arm(FaultKind::TaskPanic, round)
    }

    /// Arms a [`FaultKind::LeaseFail`] at `round`.
    pub fn lease_fail_at(self, round: u64) -> Self {
        self.arm(FaultKind::LeaseFail, round)
    }

    /// Arms a [`FaultKind::NanPoke`] at `round`.
    pub fn nan_poke_at(self, round: u64) -> Self {
        self.arm(FaultKind::NanPoke, round)
    }

    /// Arms a [`FaultKind::Crash`] *after* `round` completes.
    pub fn crash_after(self, round: u64) -> Self {
        self.arm(FaultKind::Crash, round)
    }

    /// A seeded pseudo-random plan: `count` recoverable faults (never
    /// `Crash`) spread over rounds `1..=rounds`. The same `(seed,
    /// rounds, count)` always produces the same plan — what the
    /// `fault_soak` bench uses to stress recovery reproducibly.
    pub fn seeded(seed: u64, rounds: u64, count: usize) -> Self {
        let kinds = [FaultKind::TaskPanic, FaultKind::LeaseFail, FaultKind::NanPoke];
        let mut plan = FaultPlan::new();
        for i in 0..count {
            let r = splitmix(seed.wrapping_add(i as u64));
            let kind = kinds[(r % 3) as usize];
            let round = 1 + (r >> 8) % rounds.max(1);
            plan = plan.arm(kind, round);
        }
        plan
    }

    /// Claims the armed fault of `kind` at `round`, if any: returns
    /// `true` exactly once per matching arm. Injection sites call this
    /// and fire iff it returns `true`.
    pub fn take(&self, kind: FaultKind, round: u64) -> bool {
        self.arms.iter().any(|a| {
            a.kind == kind
                && a.round == round
                && a.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
        })
    }

    /// Whether an armed (not yet fired) fault of `kind` exists at any
    /// round — used by drivers to pre-size retry budgets.
    pub fn pending(&self, kind: FaultKind) -> bool {
        self.arms
            .iter()
            .any(|a| a.kind == kind && !a.fired.load(Ordering::Acquire))
    }

    /// Total armed faults (fired or not).
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// True when the plan holds no arms at all.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// How many arms have fired so far.
    pub fn fired(&self) -> usize {
        self.arms
            .iter()
            .filter(|a| a.fired.load(Ordering::Acquire))
            .count()
    }

    /// The `(kind, round)` of every armed fault, in arm order — lets a
    /// driver iterate the plan it is about to survive.
    pub fn arms(&self) -> Vec<(FaultKind, u64)> {
        self.arms.iter().map(|a| (a.kind, a.round)).collect()
    }
}

/// SplitMix64 — the same tiny deterministic generator the tensor ops
/// use for data, re-derived here so this crate stays dependency-free.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fires_exactly_once_at_the_armed_round() {
        let p = FaultPlan::new().task_panic_at(4);
        assert!(!p.take(FaultKind::TaskPanic, 3));
        assert!(!p.take(FaultKind::NanPoke, 4));
        assert!(p.take(FaultKind::TaskPanic, 4));
        assert!(!p.take(FaultKind::TaskPanic, 4), "must fire exactly once");
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn multiple_arms_of_one_kind_fire_independently() {
        let p = FaultPlan::new().nan_poke_at(2).nan_poke_at(5);
        assert!(p.take(FaultKind::NanPoke, 2));
        assert!(!p.take(FaultKind::NanPoke, 2));
        assert!(p.take(FaultKind::NanPoke, 5));
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn concurrent_takers_claim_exactly_once() {
        for _ in 0..50 {
            let p = Arc::new(FaultPlan::new().lease_fail_at(1));
            let claims: usize = (0..8)
                .map(|_| {
                    let p = Arc::clone(&p);
                    std::thread::spawn(move || p.take(FaultKind::LeaseFail, 1))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap() as usize)
                .sum();
            assert_eq!(claims, 1);
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_in_range() {
        let a = FaultPlan::seeded(7, 10, 5);
        let b = FaultPlan::seeded(7, 10, 5);
        assert_eq!(a.arms(), b.arms());
        assert_eq!(a.len(), 5);
        assert!(a
            .arms()
            .iter()
            .all(|&(k, r)| (1..=10).contains(&r) && k != FaultKind::Crash));
        let c = FaultPlan::seeded(8, 10, 5);
        assert_ne!(a.arms(), c.arms(), "different seeds differ");
    }

    #[test]
    fn pending_reflects_unfired_arms() {
        let p = FaultPlan::new().crash_after(3);
        assert!(p.pending(FaultKind::Crash));
        assert!(!p.pending(FaultKind::TaskPanic));
        assert!(p.take(FaultKind::Crash, 3));
        assert!(!p.pending(FaultKind::Crash));
    }
}
