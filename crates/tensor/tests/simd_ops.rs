//! Differential coverage for the `znn-simd`-routed elementwise layer.
//!
//! Two kinds of pins:
//!
//! * **bitwise** — ops whose vector body preserves the scalar op order
//!   exactly (`add_assign`, `mul_assign`, `scale`, the complex
//!   products) must equal a naive reference loop bit for bit on every
//!   shape, including the vector-width tails;
//! * **error-bounded** — the fused ops (`axpy`, `sub_scaled`) are
//!   pinned against `f32::mul_add` bitwise (fusing is their contract)
//!   and against an `f64` reference within one final rounding. A naive
//!   "within 1 ulp of the unfused form" bound would be wrong: under
//!   cancellation the fused residual and the unfused result can sit
//!   many ulps apart *relative to the tiny result*, while both stay
//!   within half an ulp of the inputs' magnitudes absolutely.
//!
//! Shapes are drawn so total lengths sweep through every residue of
//! the 8-lane width (tails of 0..8 floats, 0..4 complexes).

use proptest::prelude::*;
use znn_tensor::{ops, Complex32, Spectrum, Tensor3, Vec3};

fn random_c(shape: Vec3, seed: u64) -> Tensor3<Complex32> {
    let mut v = Vec::with_capacity(shape.len());
    for i in 0..shape.len() as u64 {
        v.push(Complex32::new(
            ops::splitmix_f32(seed, 2 * i),
            ops::splitmix_f32(seed, 2 * i + 1),
        ));
    }
    Tensor3::from_vec(shape, v)
}

fn random_spectrum(full: Vec3, seed: u64) -> Spectrum {
    Spectrum::new(random_c(Spectrum::half_shape(full), seed), full)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn real_ops_match_naive_reference_bitwise(
        x in 1usize..5, y in 1usize..5, z in 1usize..11, seed in 0u64..1000,
    ) {
        let shape = Vec3::new(x, y, z);
        let a = ops::random(shape, seed);
        let b = ops::random(shape, seed ^ 0xDEAD);

        let mut got = a.clone();
        ops::add_assign(&mut got, &b);
        for (i, (&av, &bv)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            prop_assert_eq!(got.as_slice()[i].to_bits(), (av + bv).to_bits());
        }

        let mut got = a.clone();
        ops::mul_assign(&mut got, &b);
        for (i, (&av, &bv)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            prop_assert_eq!(got.as_slice()[i].to_bits(), (av * bv).to_bits());
        }

        let s = ops::splitmix_f32(seed, 7);
        let mut got = a.clone();
        ops::scale(&mut got, s);
        for (i, &av) in a.as_slice().iter().enumerate() {
            prop_assert_eq!(got.as_slice()[i].to_bits(), (av * s).to_bits());
        }
    }

    #[test]
    fn fused_ops_are_mul_add_bitwise_and_within_1_ulp_of_unfused(
        x in 1usize..5, y in 1usize..5, z in 1usize..11, seed in 0u64..1000,
    ) {
        let shape = Vec3::new(x, y, z);
        let a = ops::random(shape, seed);
        let b = ops::random(shape, seed ^ 0xBEEF);
        let c = ops::splitmix_f32(seed, 3);

        // |fma(x, y, z) − exact| ≤ ½ ulp(result); with all inputs in
        // [−1, 1) that is bounded by ε·(|z| + |x·y|) absolutely
        let bound = |p: f32, q: f32| f64::from(f32::EPSILON) * f64::from(p.abs() + q.abs());

        let mut got = a.clone();
        ops::axpy(&mut got, c, &b);
        for (i, (&av, &bv)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let fused = av.mul_add(c, bv);
            prop_assert_eq!(got.as_slice()[i].to_bits(), fused.to_bits());
            let exact = f64::from(av) * f64::from(c) + f64::from(bv);
            prop_assert!((f64::from(fused) - exact).abs() <= bound(av * c, bv));
        }

        let mut got = a.clone();
        ops::sub_scaled(&mut got, c, &b);
        for (i, (&av, &bv)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let fused = (-c).mul_add(bv, av);
            prop_assert_eq!(got.as_slice()[i].to_bits(), fused.to_bits());
            let exact = f64::from(av) - f64::from(c) * f64::from(bv);
            prop_assert!((f64::from(fused) - exact).abs() <= bound(c * bv, av));
        }
    }

    #[test]
    fn complex_ops_match_naive_reference_bitwise(
        x in 1usize..5, y in 1usize..5, z in 1usize..11, seed in 0u64..1000,
    ) {
        let shape = Vec3::new(x, y, z);
        let a = random_c(shape, seed);
        let b = random_c(shape, seed ^ 0xC0FFEE);

        let got = ops::mul_c(&a, &b);
        for (i, (&av, &bv)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let want = av * bv;
            prop_assert_eq!(got.as_slice()[i].re.to_bits(), want.re.to_bits());
            prop_assert_eq!(got.as_slice()[i].im.to_bits(), want.im.to_bits());
        }

        let mut got = random_c(shape, seed ^ 1);
        let init = got.clone();
        ops::mul_add_assign_c(&mut got, &a, &b);
        for (i, (&av, &bv)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            let want = init.as_slice()[i] + av * bv;
            prop_assert_eq!(got.as_slice()[i].re.to_bits(), want.re.to_bits());
            prop_assert_eq!(got.as_slice()[i].im.to_bits(), want.im.to_bits());
        }
    }

    /// The §IV frequency-product on the packed half-spectrum
    /// representation: `mul_s` must equal the per-bin `num_complex`
    /// product bitwise (and so trivially within any ulp bound).
    #[test]
    fn mul_s_is_bitwise_exact_per_bin(
        x in 1usize..6, y in 1usize..6, z in 1usize..9, seed in 0u64..1000,
    ) {
        let full = Vec3::new(x, y, z);
        let a = random_spectrum(full, seed);
        let b = random_spectrum(full, seed ^ 0xFEED);
        let got = ops::mul_s(&a, &b);
        for (i, (&av, &bv)) in a
            .half()
            .as_slice()
            .iter()
            .zip(b.half().as_slice())
            .enumerate()
        {
            let want = av * bv;
            prop_assert_eq!(got.half().as_slice()[i].re.to_bits(), want.re.to_bits());
            prop_assert_eq!(got.half().as_slice()[i].im.to_bits(), want.im.to_bits());
        }
    }
}
