//! Property-based tests for the tensor substrate's shape algebra and
//! shape-changing transforms.

use proptest::prelude::*;
use znn_tensor::{ops, pad, Tensor3, Vec3};

fn small_shape() -> impl Strategy<Value = Vec3> {
    (1usize..6, 1usize..6, 1usize..6).prop_map(Vec3::from)
}

fn small_tensor() -> impl Strategy<Value = Tensor3<f32>> {
    (small_shape(), any::<u64>()).prop_map(|(s, seed)| ops::random(s, seed))
}

proptest! {
    #[test]
    fn offset_is_bijective(shape in small_shape()) {
        let mut seen = vec![false; shape.len()];
        for at in shape.iter() {
            let o = shape.offset(at);
            prop_assert!(!seen[o]);
            seen[o] = true;
        }
        prop_assert!(seen.into_iter().all(|v| v));
    }

    #[test]
    fn valid_and_full_conv_shapes_are_inverse(
        n in small_shape(), k in small_shape()
    ) {
        // full conv with k then valid conv with k restores the shape
        let full = n.full_conv(k);
        prop_assert_eq!(full.valid_conv(k), Some(n));
    }

    #[test]
    fn flip_involution(t in small_tensor()) {
        prop_assert_eq!(pad::flip(&pad::flip(&t)), t);
    }

    #[test]
    fn pad_crop_round_trip(
        t in small_tensor(),
        extra in (0usize..4, 0usize..4, 0usize..4).prop_map(Vec3::from),
        frac in (0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let to = t.shape() + extra;
        // place the tensor at a deterministic offset inside the padding
        let at = Vec3::new(
            (extra[0] * frac.0 as usize) / 256,
            (extra[1] * frac.1 as usize) / 256,
            (extra[2] * frac.2 as usize) / 256,
        );
        let p = pad::pad(&t, to, at);
        prop_assert_eq!(pad::crop(&p, at, t.shape()), t.clone());
        // padding preserves mass
        prop_assert!((p.sum() - t.sum()).abs() <= 1e-4 * t.len() as f32);
    }

    #[test]
    fn dilate_gather_round_trip(
        t in small_tensor(),
        s in (1usize..4, 1usize..4, 1usize..4).prop_map(Vec3::from),
    ) {
        let d = pad::dilate(&t, s);
        prop_assert_eq!(d.shape(), t.shape().dilated(s));
        let g = pad::gather_strided(&d, Vec3::zero(), s, t.shape());
        prop_assert_eq!(g, t);
    }

    #[test]
    fn add_assign_is_commutative(a in small_tensor(), seed in any::<u64>()) {
        let b = ops::random(a.shape(), seed);
        let mut ab = a.clone();
        ops::add_assign(&mut ab, &b);
        let mut ba = b.clone();
        ops::add_assign(&mut ba, &a);
        prop_assert!(ab.max_abs_diff(&ba) == 0.0);
    }

    #[test]
    fn scale_then_inverse_scale_is_identity(t in small_tensor()) {
        let mut u = t.clone();
        ops::scale(&mut u, 4.0);
        ops::scale(&mut u, 0.25);
        prop_assert!(u.max_abs_diff(&t) < 1e-6);
    }

    #[test]
    fn complex_round_trip_preserves_values(t in small_tensor()) {
        prop_assert_eq!(ops::to_real(&ops::to_complex(&t)), t);
    }
}
