//! Dense 3D tensor substrate for the ZNN reproduction.
//!
//! ZNN (Zlateski, Lee, Seung — IPDPS 2016) represents every value flowing
//! through a convolutional network as a dense 3D image of `f32` voxels;
//! 2D images are the special case where one dimension has size one.
//! This crate provides that representation plus the layout/shape algebra
//! the rest of the workspace builds on:
//!
//! * [`Vec3`] — a shape / coordinate triple with the index arithmetic used
//!   by valid/full convolutions, pooling and filtering,
//! * [`Tensor3`] — an owned, contiguous, row-major (`z` fastest) 3D tensor,
//! * padding / cropping / reflection / dilation helpers ([`pad`]),
//! * elementwise kernels used on hot paths ([`ops`]),
//! * axis line iteration used by separable sliding-window maxima
//!   ([`lines`]),
//! * the pooled-storage contract ([`storage`]): tensors may lease their
//!   buffer from a [`BufferSource`] (implemented by `znn-alloc`'s
//!   recycling pools) and return it on drop — the §VII-C allocator
//!   discipline, invisible to every consumer of the tensor API.
//!
//! Everything here is single-threaded; parallelism lives in `znn-sched`
//! and above. The representation is deliberately simple — a `Vec<T>` plus
//! a [`Vec3`] shape — because ZNN's performance comes from task
//! parallelism and FFT sharing, not from fancy tensor layouts.

#![warn(missing_docs)]

pub mod lines;
pub mod ops;
pub mod pad;
mod shape;
mod spectrum;
pub mod storage;
mod tensor;

pub use shape::Vec3;
pub use spectrum::Spectrum;
pub use storage::BufferSource;
pub use tensor::Tensor3;

/// Complex number type used by the FFT substrate.
pub type Complex32 = num_complex::Complex<f32>;

/// A 3D tensor of single-precision voxels — the image type of the paper.
pub type Image = Tensor3<f32>;

/// A 3D tensor of complex voxels — the frequency-domain image type.
pub type CImage = Tensor3<Complex32>;
