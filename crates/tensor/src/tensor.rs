use crate::storage::{BufferSource, Storage};
use crate::Vec3;
use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// An owned, contiguous, row-major 3D tensor.
///
/// The element type is generic so the same container backs spatial images
/// (`Tensor3<f32>`) and frequency-domain images (`Tensor3<Complex32>`).
/// Layout is `[x][y][z]` with `z` fastest, matching [`Vec3::offset`].
///
/// The backing buffer may be **leased** from a [`BufferSource`] (see
/// [`Tensor3::leased`]): such a tensor behaves identically — same
/// layout, same ops, [`Clone`] stays pooled — but its storage returns
/// to the source when the tensor drops instead of being freed. That is
/// how the training engine keeps steady-state rounds allocation-free
/// (paper §VII-C).
#[derive(Clone, PartialEq)]
pub struct Tensor3<T> {
    shape: Vec3,
    data: Storage<T>,
}

impl<T: Copy + Default> Tensor3<T> {
    /// A tensor of the given shape filled with `T::default()` (zero for
    /// the numeric types used throughout ZNN).
    pub fn zeros(shape: impl Into<Vec3>) -> Self {
        let shape = shape.into();
        Tensor3 {
            shape,
            data: Storage::raw(vec![T::default(); shape.len()]),
        }
    }

    /// A zero-filled tensor whose buffer is leased from `home` and
    /// recycled there on drop. Pooling is invisible to every other
    /// API: a leased tensor is value-equal to its [`Tensor3::zeros`]
    /// twin, and clones lease fresh buffers from the same source.
    pub fn leased(shape: impl Into<Vec3>, home: Arc<dyn BufferSource<T>>) -> Self {
        let shape = shape.into();
        Tensor3 {
            shape,
            data: Storage::leased(home, shape.len()),
        }
    }
}

impl<T: Copy> Tensor3<T> {
    /// A tensor of the given shape with every voxel set to `value`.
    pub fn filled(shape: impl Into<Vec3>, value: T) -> Self {
        let shape = shape.into();
        Tensor3 {
            shape,
            data: Storage::raw(vec![value; shape.len()]),
        }
    }

    /// Wraps an existing buffer. `data.len()` must equal `shape.len()`.
    pub fn from_vec(shape: impl Into<Vec3>, data: Vec<T>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer of {} elements cannot have shape {shape}",
            data.len()
        );
        Tensor3 {
            shape,
            data: Storage::raw(data),
        }
    }

    /// Places this tensor's buffer in `home`'s custody: on drop it is
    /// recycled there, exactly as if it had been leased. Used where a
    /// buffer changes element type mid-pipeline (the in-place c2r
    /// transform reinterprets a complex buffer as reals) and must
    /// rejoin the pool under its new type.
    pub fn with_home(self, home: Arc<dyn BufferSource<T>>) -> Self {
        let shape = self.shape;
        Tensor3 {
            shape,
            data: Storage::adopted(self.into_vec(), home),
        }
    }

    /// The [`BufferSource`] this tensor's buffer returns to on drop, if
    /// it is pooled.
    pub fn home(&self) -> Option<&Arc<dyn BufferSource<T>>> {
        self.data.home()
    }

    /// Builds a tensor by evaluating `f` at every coordinate.
    pub fn from_fn(shape: impl Into<Vec3>, mut f: impl FnMut(Vec3) -> T) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.len());
        for at in shape.iter() {
            data.push(f(at));
        }
        Tensor3 {
            shape,
            data: Storage::raw(data),
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> Vec3 {
        self.shape
    }

    /// Number of voxels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no voxels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Mutable access to the underlying buffer in layout order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Consumes the tensor, returning its buffer. A pooled buffer
    /// leaves its source's custody (it will be freed normally unless
    /// re-adopted with [`Tensor3::with_home`]).
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_vec()
    }

    /// Voxel at `at` without bounds checks beyond debug assertions.
    ///
    /// Hot loops should index the slice directly with precomputed strides;
    /// this accessor is for tests and cold paths.
    #[inline]
    pub fn at(&self, at: impl Into<Vec3>) -> T {
        let at = at.into();
        self.data.as_slice()[self.shape.offset(at)]
    }

    /// Sets the voxel at `at`.
    #[inline]
    pub fn set(&mut self, at: impl Into<Vec3>, v: T) {
        let at = at.into();
        let i = self.shape.offset(at);
        self.data.as_mut_slice()[i] = v;
    }

    /// The contiguous `z` line at `(x, y)` — the unit the separable
    /// max-filter and axis FFTs operate on.
    #[inline]
    pub fn z_line(&self, x: usize, y: usize) -> &[T] {
        let start = self.shape.offset(Vec3::new(x, y, 0));
        &self.data.as_slice()[start..start + self.shape[2]]
    }

    /// Mutable contiguous `z` line at `(x, y)`.
    #[inline]
    pub fn z_line_mut(&mut self, x: usize, y: usize) -> &mut [T] {
        let start = self.shape.offset(Vec3::new(x, y, 0));
        let len = self.shape[2];
        &mut self.data.as_mut_slice()[start..start + len]
    }

    /// Reinterprets the buffer under a new shape with the same voxel
    /// count (e.g. collapsing a unit axis). A pooled buffer keeps its
    /// lease.
    pub fn reshaped(self, shape: impl Into<Vec3>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} voxels to {shape}",
            self.data.len()
        );
        Tensor3 {
            shape,
            data: self.data,
        }
    }

    /// Applies `f` to every voxel, producing a new tensor of the same
    /// shape.
    pub fn map<U: Copy>(&self, f: impl FnMut(T) -> U) -> Tensor3<U> {
        Tensor3 {
            shape: self.shape,
            data: Storage::raw(self.data.as_slice().iter().copied().map(f).collect()),
        }
    }
}

impl<T: Copy> Index<Vec3> for Tensor3<T> {
    type Output = T;
    #[inline]
    fn index(&self, at: Vec3) -> &T {
        &self.data.as_slice()[self.shape.offset(at)]
    }
}

impl<T: Copy> IndexMut<Vec3> for Tensor3<T> {
    #[inline]
    fn index_mut(&mut self, at: Vec3) -> &mut T {
        let i = self.shape.offset(at);
        &mut self.data.as_mut_slice()[i]
    }
}

impl<T: fmt::Debug + Copy> fmt::Debug for Tensor3<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor3<{}> {{", std::any::type_name::<T>())?;
        for x in 0..self.shape[0] {
            writeln!(f, "  x={x}:")?;
            for y in 0..self.shape[1] {
                write!(f, "    ")?;
                for z in 0..self.shape[2] {
                    write!(f, "{:?} ", self.at(Vec3::new(x, y, z)))?;
                }
                writeln!(f)?;
            }
        }
        write!(f, "}}")
    }
}

impl Tensor3<f32> {
    /// Maximum absolute difference against another tensor of the same
    /// shape — the metric used by the equivalence and gradient tests.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .as_slice()
            .iter()
            .zip(other.data.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Sum of all voxels (used by the bias-gradient rule, §III-B).
    pub fn sum(&self) -> f32 {
        // Pairwise summation keeps the error O(log n) instead of O(n),
        // which matters for the large flat images in gradient tests.
        fn pairwise(s: &[f32]) -> f64 {
            if s.len() <= 32 {
                s.iter().map(|&v| v as f64).sum()
            } else {
                let (a, b) = s.split_at(s.len() / 2);
                pairwise(a) + pairwise(b)
            }
        }
        pairwise(self.data.as_slice()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let t = Tensor3::<f32>::zeros(Vec3::new(2, 3, 4));
        assert_eq!(t.len(), 24);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        let u = Tensor3::filled(Vec3::cube(2), 1.5f32);
        assert!(u.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn from_fn_matches_layout() {
        let s = Vec3::new(2, 3, 4);
        let t = Tensor3::from_fn(s, |at| s.offset(at) as f32);
        for (i, &v) in t.as_slice().iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }

    #[test]
    fn z_lines_are_contiguous() {
        let s = Vec3::new(2, 2, 5);
        let t = Tensor3::from_fn(s, |at| s.offset(at) as f32);
        assert_eq!(t.z_line(1, 0), &[10.0, 11.0, 12.0, 13.0, 14.0]);
        let mut u = t.clone();
        u.z_line_mut(0, 1)[2] = -1.0;
        assert_eq!(u.at((0, 1, 2)), -1.0);
    }

    #[test]
    fn index_and_set_round_trip() {
        let mut t = Tensor3::<f32>::zeros(Vec3::cube(3));
        t.set((1, 2, 0), 7.0);
        assert_eq!(t.at((1, 2, 0)), 7.0);
        assert_eq!(t[Vec3::new(1, 2, 0)], 7.0);
        t[Vec3::new(0, 0, 2)] = 3.0;
        assert_eq!(t.at((0, 0, 2)), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_rejects_wrong_length() {
        let _ = Tensor3::from_vec(Vec3::cube(2), vec![0.0f32; 7]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor3::from_vec(Vec3::new(1, 2, 3), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let u = t.reshaped(Vec3::new(2, 3, 1));
        assert_eq!(u.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn sum_is_accurate_on_large_uniform_tensor() {
        let t = Tensor3::filled(Vec3::cube(32), 0.1f32);
        let expect = 32.0f64 * 32.0 * 32.0 * 0.1;
        assert!((t.sum() as f64 - expect).abs() < 1e-2);
    }

    #[test]
    fn max_abs_diff_detects_single_voxel_change() {
        let a = Tensor3::<f32>::zeros(Vec3::cube(4));
        let mut b = a.clone();
        b.set((3, 3, 3), 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }
}
