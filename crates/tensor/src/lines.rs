//! Axis line extraction.
//!
//! 3D max-filtering is performed "by sequential 1D max-filtering of n²
//! arrays in each of the three directions" (paper §II). The 3D FFT is
//! likewise decomposed into 1D transforms along each axis. This module
//! provides the strided line walks both of them need.

use crate::{Tensor3, Vec3};

/// One of the three tensor axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Slowest-varying dimension.
    X = 0,
    /// Middle dimension.
    Y = 1,
    /// Fastest-varying (contiguous) dimension.
    Z = 2,
}

impl Axis {
    /// All three axes in `X, Y, Z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];
}

/// Description of the lines along `axis` in a tensor of shape `shape`:
/// how many lines there are, their length, the element stride within a
/// line, and an iterator of line start offsets.
#[derive(Clone, Debug)]
pub struct LineSpec {
    /// Number of 1D lines along this axis (product of the other extents).
    pub count: usize,
    /// Number of elements per line (the extent along the axis).
    pub len: usize,
    /// Linear stride between consecutive elements of a line.
    pub stride: usize,
    starts: Vec<usize>,
}

impl LineSpec {
    /// Computes the line decomposition of `shape` along `axis`.
    pub fn new(shape: Vec3, axis: Axis) -> Self {
        let strides = [shape[1] * shape[2], shape[2], 1];
        let a = axis as usize;
        let (o1, o2) = match axis {
            Axis::X => (1, 2),
            Axis::Y => (0, 2),
            Axis::Z => (0, 1),
        };
        let mut starts = Vec::with_capacity(shape[o1] * shape[o2]);
        for i in 0..shape[o1] {
            for j in 0..shape[o2] {
                starts.push(i * strides[o1] + j * strides[o2]);
            }
        }
        LineSpec {
            count: starts.len(),
            len: shape[a],
            stride: strides[a],
            starts,
        }
    }

    /// Start offsets of every line, in a deterministic order.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Copies line `idx` of `src` into `buf` (which must have length
    /// [`LineSpec::len`]).
    pub fn read_line<T: Copy>(&self, src: &Tensor3<T>, idx: usize, buf: &mut [T]) {
        debug_assert_eq!(buf.len(), self.len);
        let data = src.as_slice();
        let mut p = self.starts[idx];
        for b in buf.iter_mut() {
            *b = data[p];
            p += self.stride;
        }
    }

    /// Writes `buf` back as line `idx` of `dst`.
    pub fn write_line<T: Copy>(&self, dst: &mut Tensor3<T>, idx: usize, buf: &[T]) {
        debug_assert_eq!(buf.len(), self.len);
        let data = dst.as_mut_slice();
        let mut p = self.starts[idx];
        for b in buf {
            data[p] = *b;
            p += self.stride;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Vec3) -> Tensor3<f32> {
        Tensor3::from_fn(shape, |at| shape.offset(at) as f32)
    }

    #[test]
    fn z_lines_are_unit_stride() {
        let s = Vec3::new(2, 3, 4);
        let spec = LineSpec::new(s, Axis::Z);
        assert_eq!(spec.count, 6);
        assert_eq!(spec.len, 4);
        assert_eq!(spec.stride, 1);
    }

    #[test]
    fn x_lines_cross_slices() {
        let s = Vec3::new(3, 2, 2);
        let t = seq(s);
        let spec = LineSpec::new(s, Axis::X);
        assert_eq!(spec.count, 4);
        assert_eq!(spec.len, 3);
        assert_eq!(spec.stride, 4);
        let mut buf = vec![0.0; 3];
        spec.read_line(&t, 0, &mut buf);
        assert_eq!(buf, vec![t.at((0, 0, 0)), t.at((1, 0, 0)), t.at((2, 0, 0))]);
    }

    #[test]
    fn read_write_round_trip_every_axis() {
        let s = Vec3::new(3, 4, 5);
        let t = seq(s);
        for axis in Axis::ALL {
            let spec = LineSpec::new(s, axis);
            assert_eq!(spec.count * spec.len, s.len());
            let mut copy = Tensor3::<f32>::zeros(s);
            let mut buf = vec![0.0; spec.len];
            for i in 0..spec.count {
                spec.read_line(&t, i, &mut buf);
                spec.write_line(&mut copy, i, &buf);
            }
            assert_eq!(copy, t, "axis {axis:?}");
        }
    }

    #[test]
    fn lines_partition_the_tensor() {
        let s = Vec3::new(2, 3, 4);
        for axis in Axis::ALL {
            let spec = LineSpec::new(s, axis);
            let mut seen = vec![false; s.len()];
            for &start in spec.starts() {
                let mut p = start;
                for _ in 0..spec.len {
                    assert!(!seen[p], "offset {p} visited twice on {axis:?}");
                    seen[p] = true;
                    p += spec.stride;
                }
            }
            assert!(seen.iter().all(|&v| v));
        }
    }
}
