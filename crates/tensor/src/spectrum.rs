//! The half-spectrum representation of real-input 3D transforms.
//!
//! The DFT of a real image is Hermitian-symmetric: `X[-f] = conj(X[f])`.
//! Storing only the non-negative frequencies along one axis —
//! `⌊m/2⌋ + 1` bins per line instead of `m` — halves the memory of
//! every spectrum without losing information. [`Spectrum`] pairs that
//! packed tensor with the *logical* full transform shape, so shape
//! agreement between spectra (and the placement of the Nyquist bin) is
//! checked once at construction instead of silently drifting at each
//! pointwise op.
//!
//! The halved axis is the [`Spectrum::packed_axis`]: the *last non-unit
//! axis* of the full shape. For 3D volumes that is `z` (the contiguous
//! axis); for flat 2D workloads (`m_z == 1`) it is `y` — whose lines
//! are contiguous in memory exactly because `z` is unit — so flat
//! shapes get the same memory and FLOP halving as volumes. Because the
//! packed axis is a pure function of the full shape, every consumer
//! (pointwise ops, spectrum identities, caches) agrees on the layout
//! without extra state.

use crate::{CImage, Vec3};

/// A half-spectrum: the stored packed-axis bins `0..=⌊m/2⌋` of the 3D
/// DFT of a real image, plus the logical full transform shape.
///
/// Invariant: `half.shape() == Spectrum::half_shape(full)`. Pointwise
/// frequency-domain ops must only combine spectra with equal `full`
/// shapes — equal *half* shapes are not sufficient, because full
/// packed-axis extents `2h-1` (odd) and `2h-2` (even) pack to the same
/// `h` bins.
#[derive(Clone, PartialEq, Debug)]
pub struct Spectrum {
    half: CImage,
    full: Vec3,
}

impl Spectrum {
    /// The axis along which a real transform of shape `full` stores only
    /// half its bins: the last non-unit axis (`z` for volumes, `y` for
    /// flat `m_z == 1` images, `x` for 1D rows), defaulting to `z` for
    /// the all-unit shape. Lines along this axis are always contiguous,
    /// because every later axis is unit.
    #[inline]
    pub fn packed_axis(full: Vec3) -> usize {
        if full[2] > 1 {
            2
        } else if full[1] > 1 {
            1
        } else if full[0] > 1 {
            0
        } else {
            2
        }
    }

    /// True when the packed-axis extent of `full` is even or unit —
    /// the **fast-path invariant** every transform shape produced by
    /// `znn-fft`'s `good_shape` satisfies.
    ///
    /// An even packed extent `m` is what makes the r2c pipeline pay:
    /// the packed stage runs a *half-length* (`m/2`) complex FFT per
    /// line, and the stored `m/2 + 1` bins are the tight half-spectrum.
    /// Odd extents still round-trip correctly (the engine falls back
    /// to a full-length transform per line, truncated to the stored
    /// bins) but silently forfeit both savings — so shape-producing
    /// call sites that *intend* the fast path should assert this
    /// predicate at construction rather than discover the regression
    /// as a slow, memory-doubled training run. A unit extent is exempt:
    /// a 1-point transform is the identity and is never inflated.
    ///
    /// ```
    /// use znn_tensor::{Spectrum, Vec3};
    /// assert!(Spectrum::packed_axis_is_even(Vec3::new(5, 7, 10)));
    /// assert!(!Spectrum::packed_axis_is_even(Vec3::new(4, 6, 9)));
    /// assert!(Spectrum::packed_axis_is_even(Vec3::one())); // unit exemption
    /// ```
    #[inline]
    pub fn packed_axis_is_even(full: Vec3) -> bool {
        let extent = full[Self::packed_axis(full)];
        extent == 1 || extent.is_multiple_of(2)
    }

    /// The packed shape of a real transform of logical shape `full`:
    /// `⌊m/2⌋ + 1` bins along the [`Spectrum::packed_axis`], full
    /// extents elsewhere.
    #[inline]
    pub fn half_shape(full: Vec3) -> Vec3 {
        let a = Self::packed_axis(full);
        let mut h = full;
        h[a] = full[a] / 2 + 1;
        h
    }

    /// Wraps a packed tensor produced for a transform of shape `full`.
    /// Panics if the tensor's shape is not the half shape of `full`.
    pub fn new(half: CImage, full: Vec3) -> Self {
        assert_eq!(
            half.shape(),
            Self::half_shape(full),
            "half-spectrum shape {} does not match logical shape {full}",
            half.shape()
        );
        Spectrum { half, full }
    }

    /// An all-zero spectrum for a transform of shape `full`.
    pub fn zeros(full: Vec3) -> Self {
        Spectrum {
            half: CImage::zeros(Self::half_shape(full)),
            full,
        }
    }

    /// The logical (full) transform shape.
    #[inline]
    pub fn full_shape(&self) -> Vec3 {
        self.full
    }

    /// The stored half-spectrum tensor.
    #[inline]
    pub fn half(&self) -> &CImage {
        &self.half
    }

    /// Mutable access to the stored half-spectrum tensor.
    #[inline]
    pub fn half_mut(&mut self) -> &mut CImage {
        &mut self.half
    }

    /// Consumes the spectrum, returning the packed tensor.
    #[inline]
    pub fn into_half(self) -> CImage {
        self.half
    }

    /// Number of stored complex bins.
    #[inline]
    pub fn stored_bins(&self) -> usize {
        self.half.len()
    }

    /// Bytes occupied by the stored bins.
    #[inline]
    pub fn stored_bytes(&self) -> usize {
        self.stored_bins() * std::mem::size_of::<crate::Complex32>()
    }

    /// Bytes a full complex spectrum of the same logical shape would
    /// occupy — the c2c cost this representation avoids.
    #[inline]
    pub fn full_bytes(&self) -> usize {
        self.full.len() * std::mem::size_of::<crate::Complex32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_shape_counts_nonredundant_bins() {
        assert_eq!(Spectrum::half_shape(Vec3::new(4, 6, 8)), Vec3::new(4, 6, 5));
        assert_eq!(Spectrum::half_shape(Vec3::new(4, 6, 7)), Vec3::new(4, 6, 4));
        // flat shapes pack along y (their contiguous non-unit axis)
        assert_eq!(Spectrum::half_shape(Vec3::new(3, 3, 1)), Vec3::new(3, 2, 1));
        assert_eq!(Spectrum::half_shape(Vec3::new(3, 8, 1)), Vec3::new(3, 5, 1));
        // 1D rows pack along x; all-unit stays unit
        assert_eq!(Spectrum::half_shape(Vec3::new(8, 1, 1)), Vec3::new(5, 1, 1));
        assert_eq!(Spectrum::half_shape(Vec3::one()), Vec3::one());
        assert_eq!(Spectrum::half_shape(Vec3::new(1, 1, 2)), Vec3::new(1, 1, 2));
    }

    #[test]
    fn packed_axis_is_last_non_unit_axis() {
        assert_eq!(Spectrum::packed_axis(Vec3::cube(4)), 2);
        assert_eq!(Spectrum::packed_axis(Vec3::new(4, 6, 1)), 1);
        assert_eq!(Spectrum::packed_axis(Vec3::new(4, 1, 1)), 0);
        assert_eq!(Spectrum::packed_axis(Vec3::new(1, 6, 1)), 1);
        assert_eq!(Spectrum::packed_axis(Vec3::one()), 2);
    }

    #[test]
    fn zeros_has_matching_shapes() {
        let s = Spectrum::zeros(Vec3::new(2, 3, 6));
        assert_eq!(s.full_shape(), Vec3::new(2, 3, 6));
        assert_eq!(s.half().shape(), Vec3::new(2, 3, 4));
        assert_eq!(s.stored_bins(), 24);
        assert_eq!(s.stored_bytes(), 24 * 8);
        assert_eq!(s.full_bytes(), 36 * 8);
    }

    #[test]
    #[should_panic(expected = "does not match logical shape")]
    fn rejects_mismatched_half_tensor() {
        let _ = Spectrum::new(CImage::zeros(Vec3::new(2, 3, 6)), Vec3::new(2, 3, 6));
    }

    #[test]
    fn even_and_odd_full_shapes_pack_differently() {
        // 8 -> 5 bins, 9 -> 5 bins: same half shape, different logical
        // shape — exactly why ops must compare full shapes.
        let even = Spectrum::zeros(Vec3::new(1, 1, 8));
        let odd = Spectrum::zeros(Vec3::new(1, 1, 9));
        assert_eq!(even.half().shape(), odd.half().shape());
        assert_ne!(even.full_shape(), odd.full_shape());
    }
}
