//! Elementwise kernels used on hot paths.
//!
//! The slice loops dispatch through `znn-simd`: AVX2+FMA bodies where
//! the host supports them, portable scalar twins everywhere else —
//! bitwise-identical per element either way (see `znn-simd`'s crate
//! docs for the exactness policy). They are the `ADD-TO(v, v')`
//! primitive of the paper's wait-free summation (Algorithm 4) and the
//! pointwise stages of FFT convolution.
//!
//! [`axpy`] and [`sub_scaled`] *fuse* their multiply-add (one rounding,
//! [`f32::mul_add`] semantics) on every backend — fusing is part of
//! their contract, not a vector-path quirk.

use crate::{Complex32, Spectrum, Tensor3, Vec3};

/// `dst += src`, elementwise. Panics on shape mismatch.
pub fn add_assign(dst: &mut Tensor3<f32>, src: &Tensor3<f32>) {
    assert_eq!(dst.shape(), src.shape(), "add_assign shape mismatch");
    znn_simd::add_assign_f(dst.as_mut_slice(), src.as_slice());
}

/// `dst += src` for complex tensors (frequency-domain accumulation).
pub fn add_assign_c(dst: &mut Tensor3<Complex32>, src: &Tensor3<Complex32>) {
    assert_eq!(dst.shape(), src.shape(), "add_assign_c shape mismatch");
    znn_simd::add_assign_c(dst.as_mut_slice(), src.as_slice());
}

/// `dst += a * b`, elementwise complex multiply-accumulate — the
/// frequency-domain convolution kernel of §IV.
pub fn mul_add_assign_c(dst: &mut Tensor3<Complex32>, a: &Tensor3<Complex32>, b: &Tensor3<Complex32>) {
    assert_eq!(dst.shape(), a.shape(), "mul_add_assign_c shape mismatch");
    assert_eq!(dst.shape(), b.shape(), "mul_add_assign_c shape mismatch");
    znn_simd::mul_add_assign_c(dst.as_mut_slice(), a.as_slice(), b.as_slice());
}

/// Elementwise complex product `a * b` into a fresh tensor.
pub fn mul_c(a: &Tensor3<Complex32>, b: &Tensor3<Complex32>) -> Tensor3<Complex32> {
    assert_eq!(a.shape(), b.shape(), "mul_c shape mismatch");
    let mut out = a.clone();
    znn_simd::mul_assign_c(out.as_mut_slice(), b.as_slice());
    out
}

/// `dst *= s` for real tensors.
pub fn scale(dst: &mut Tensor3<f32>, s: f32) {
    znn_simd::scale_f(dst.as_mut_slice(), s);
}

/// `dst *= s` for complex tensors (inverse-FFT normalization).
pub fn scale_c(dst: &mut Tensor3<Complex32>, s: f32) {
    // a complex × real scale is lanewise on the interleaved floats
    znn_simd::scale_f(znn_simd::complex_as_floats_mut(dst.as_mut_slice()), s);
}

/// `dst = fma(dst, a, b)`, the fused axpy used by SGD with momentum
/// (single rounding per element, every backend).
pub fn axpy(dst: &mut Tensor3<f32>, a: f32, b: &Tensor3<f32>) {
    assert_eq!(dst.shape(), b.shape(), "axpy shape mismatch");
    znn_simd::axpy_f(dst.as_mut_slice(), a, b.as_slice());
}

/// `dst = fma(-eta, g, dst)`, the SGD parameter update of Algorithm 3
/// line 2 (fused, single rounding per element).
pub fn sub_scaled(dst: &mut Tensor3<f32>, eta: f32, g: &Tensor3<f32>) {
    assert_eq!(dst.shape(), g.shape(), "sub_scaled shape mismatch");
    znn_simd::sub_scaled_f(dst.as_mut_slice(), eta, g.as_slice());
}

/// Elementwise product into `dst` — the transfer-function Jacobian
/// multiplies the backward image by the derivative image (§III-A).
pub fn mul_assign(dst: &mut Tensor3<f32>, src: &Tensor3<f32>) {
    assert_eq!(dst.shape(), src.shape(), "mul_assign shape mismatch");
    znn_simd::mul_assign_f(dst.as_mut_slice(), src.as_slice());
}

/// `dst += src` for half-spectra (frequency-domain accumulation on the
/// packed representation). Panics when the *logical* transform shapes
/// differ — equal half shapes are not enough, see [`Spectrum`].
pub fn add_assign_s(dst: &mut Spectrum, src: &Spectrum) {
    assert_eq!(
        dst.full_shape(),
        src.full_shape(),
        "add_assign_s logical shape mismatch"
    );
    add_assign_c(dst.half_mut(), src.half());
}

/// Elementwise half-spectrum product `a ∘ b` — the frequency-domain
/// convolution kernel of §IV on the packed representation.
pub fn mul_s(a: &Spectrum, b: &Spectrum) -> Spectrum {
    assert_eq!(
        a.full_shape(),
        b.full_shape(),
        "mul_s logical shape mismatch"
    );
    let mut out = a.clone();
    znn_simd::mul_assign_c(out.half_mut().as_mut_slice(), b.half().as_slice());
    out
}

/// `dst += a ∘ b` for half-spectra.
pub fn mul_add_assign_s(dst: &mut Spectrum, a: &Spectrum, b: &Spectrum) {
    assert_eq!(
        dst.full_shape(),
        a.full_shape(),
        "mul_add_assign_s logical shape mismatch"
    );
    assert_eq!(
        dst.full_shape(),
        b.full_shape(),
        "mul_add_assign_s logical shape mismatch"
    );
    mul_add_assign_c(dst.half_mut(), a.half(), b.half());
}

/// `dst *= s` for half-spectra.
pub fn scale_s(dst: &mut Spectrum, s: f32) {
    scale_c(dst.half_mut(), s);
}

/// Widens a real tensor to complex (imaginary part zero) for the FFT.
pub fn to_complex(t: &Tensor3<f32>) -> Tensor3<Complex32> {
    Tensor3::from_vec(
        t.shape(),
        t.as_slice()
            .iter()
            .map(|&v| Complex32::new(v, 0.0))
            .collect(),
    )
}

/// Takes the real part of a complex tensor (after an inverse FFT).
pub fn to_real(t: &Tensor3<Complex32>) -> Tensor3<f32> {
    Tensor3::from_vec(t.shape(), t.as_slice().iter().map(|c| c.re).collect())
}

/// Dot product of two equally-shaped real tensors, accumulated in `f64`
/// for stability (used by loss functions and gradient checks).
pub fn dot(a: &Tensor3<f32>, b: &Tensor3<f32>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "dot shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

/// Fills a tensor with values from an iterator-like closure over linear
/// indices (handy for deterministic pseudo-random test data).
pub fn fill_with(t: &mut Tensor3<f32>, mut f: impl FnMut(usize) -> f32) {
    for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
        *v = f(i);
    }
}

/// A tiny deterministic value generator for tests and examples: a
/// splitmix64-derived float in `[-1, 1)`. Not cryptographic; stable
/// across platforms.
pub fn splitmix_f32(seed: u64, i: u64) -> f32 {
    let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // take 24 mantissa bits -> [0,1), then shift to [-1,1)
    ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

/// A deterministic random-ish tensor for tests, benches and examples.
pub fn random(shape: impl Into<Vec3>, seed: u64) -> Tensor3<f32> {
    let shape = shape.into();
    let mut t = Tensor3::zeros(shape);
    fill_with(&mut t, |i| splitmix_f32(seed, i as u64));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_adds() {
        let mut a = Tensor3::filled(Vec3::cube(2), 1.0f32);
        let b = Tensor3::filled(Vec3::cube(2), 2.5f32);
        add_assign(&mut a, &b);
        assert!(a.as_slice().iter().all(|&v| v == 3.5));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_assign_rejects_mismatch() {
        let mut a = Tensor3::<f32>::zeros(Vec3::cube(2));
        let b = Tensor3::<f32>::zeros(Vec3::cube(3));
        add_assign(&mut a, &b);
    }

    #[test]
    fn complex_round_trip() {
        let t = random(Vec3::new(2, 3, 4), 7);
        let c = to_complex(&t);
        assert_eq!(to_real(&c), t);
    }

    #[test]
    fn mul_add_assign_c_accumulates_products() {
        let s = Vec3::cube(2);
        let a = Tensor3::filled(s, Complex32::new(2.0, 1.0));
        let b = Tensor3::filled(s, Complex32::new(0.0, 1.0));
        let mut d = Tensor3::filled(s, Complex32::new(1.0, 0.0));
        mul_add_assign_c(&mut d, &a, &b);
        // (2+i)(i) = -1 + 2i, plus 1 = 0 + 2i
        for v in d.as_slice() {
            assert!((v.re - 0.0).abs() < 1e-6 && (v.im - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sub_scaled_is_sgd_step() {
        let mut w = Tensor3::filled(Vec3::one(), 1.0f32);
        let g = Tensor3::filled(Vec3::one(), 4.0f32);
        sub_scaled(&mut w, 0.25, &g);
        assert_eq!(w.at((0, 0, 0)), 0.0);
    }

    #[test]
    fn axpy_matches_definition() {
        let mut v = Tensor3::filled(Vec3::one(), 2.0f32);
        let b = Tensor3::filled(Vec3::one(), 3.0f32);
        axpy(&mut v, 0.5, &b);
        assert_eq!(v.at((0, 0, 0)), 4.0);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Tensor3::from_vec(Vec3::new(1, 1, 3), vec![1.0, 2.0, 3.0]);
        let b = Tensor3::from_vec(Vec3::new(1, 1, 3), vec![4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b), 32.0);
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        for i in 0..1000 {
            let v = splitmix_f32(42, i);
            assert!((-1.0..1.0).contains(&v));
            assert_eq!(v, splitmix_f32(42, i));
        }
        // different seeds give different streams
        assert_ne!(random(Vec3::cube(3), 1), random(Vec3::cube(3), 2));
    }
}
