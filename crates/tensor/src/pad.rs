//! Shape-changing tensor transforms: zero padding, cropping, reflection
//! and sparse dilation.
//!
//! These are the building blocks of the convolution variants in §II–IV of
//! the paper: FFT convolution zero-pads to a common transform size and
//! crops the valid/full region afterwards; the backward pass reflects
//! kernels along all three axes; sparse (skip-kernel) convolution dilates
//! kernels by the sparsity factor.

use crate::{Tensor3, Vec3};

/// Zero-pads `t` into a tensor of shape `to`, placing the original at
/// offset `at`. Panics if the source does not fit.
pub fn pad<T: Copy + Default>(t: &Tensor3<T>, to: Vec3, at: Vec3) -> Tensor3<T> {
    let mut out = Tensor3::zeros(to);
    pad_into(t, &mut out, at);
    out
}

/// Copies `t` into the **already zero-filled** tensor `out` at offset
/// `at` — the allocation-free form of [`pad`], used with buffers leased
/// from a pool (pool leases are zeroed). Only the source box is
/// written; voxels outside it are left untouched, so a non-zeroed `out`
/// yields garbage padding.
pub fn pad_into<T: Copy + Default>(t: &Tensor3<T>, out: &mut Tensor3<T>, at: Vec3) {
    let s = t.shape();
    let to = out.shape();
    assert!(
        (s + at).le(to),
        "source {s} at offset {at} does not fit in {to}"
    );
    for x in 0..s[0] {
        for y in 0..s[1] {
            let src = t.z_line(x, y);
            let dst_start = to.offset(Vec3::new(x + at[0], y + at[1], at[2]));
            out.as_mut_slice()[dst_start..dst_start + s[2]].copy_from_slice(src);
        }
    }
}

/// Extracts the box of shape `shape` starting at `at`.
pub fn crop<T: Copy + Default>(t: &Tensor3<T>, at: Vec3, shape: Vec3) -> Tensor3<T> {
    let mut out = Tensor3::zeros(shape);
    crop_into(t, at, &mut out);
    out
}

/// Copies the box of `out`'s shape starting at `at` from `t` into
/// `out` — the allocation-free form of [`crop`] for pooled buffers.
/// Every voxel of `out` is overwritten.
pub fn crop_into<T: Copy + Default>(t: &Tensor3<T>, at: Vec3, out: &mut Tensor3<T>) {
    let s = t.shape();
    let shape = out.shape();
    assert!(
        (at + shape).le(s),
        "crop of {shape} at {at} exceeds source {s}"
    );
    for x in 0..shape[0] {
        for y in 0..shape[1] {
            let src_start = s.offset(Vec3::new(x + at[0], y + at[1], at[2]));
            let src = &t.as_slice()[src_start..src_start + shape[2]];
            out.z_line_mut(x, y).copy_from_slice(src);
        }
    }
}

/// Reflects a tensor along all three axes — the kernel transform of the
/// backward pass ("the kernel is the same, except that it is reflected
/// along all three dimensions", §III-A).
pub fn flip<T: Copy + Default>(t: &Tensor3<T>) -> Tensor3<T> {
    let s = t.shape();
    Tensor3::from_fn(s, |at| {
        t.at(Vec3::new(
            s[0] - 1 - at[0],
            s[1] - 1 - at[1],
            s[2] - 1 - at[2],
        ))
    })
}

/// Dilates a kernel by per-axis sparsity `s`: voxel `(x,y,z)` moves to
/// `(s₀·x, s₁·y, s₂·z)` and the gaps are zero. This converts a sparse
/// convolution into a dense one with a larger kernel, which is how the
/// FFT path implements the paper's skip kernels.
pub fn dilate<T: Copy + Default>(t: &Tensor3<T>, s: Vec3) -> Tensor3<T> {
    assert!(s[0] > 0 && s[1] > 0 && s[2] > 0, "sparsity must be >= 1");
    let out_shape = t.shape().dilated(s);
    let mut out = Tensor3::zeros(out_shape);
    for at in t.shape().iter() {
        out.set(at * s, t.at(at));
    }
    out
}

/// Strided gather: the inverse view of [`dilate`] — picks every
/// `s`-th voxel starting at `at`, producing a tensor of shape `shape`.
/// Sparse training assembles dense outputs from these lattices.
pub fn gather_strided<T: Copy + Default>(
    t: &Tensor3<T>,
    at: Vec3,
    s: Vec3,
    shape: Vec3,
) -> Tensor3<T> {
    let src = t.shape();
    if !shape.is_empty() {
        let last = at + (shape - Vec3::one()) * s;
        assert!(
            last.fits_in(src),
            "strided gather reaches {last} outside {src}"
        );
    }
    Tensor3::from_fn(shape, |o| t.at(at + o * s))
}

/// Strided scatter-add: adds `src` into `dst` on the lattice with origin
/// `at` and stride `s`. Used to assemble dense outputs from sparse
/// sub-problems and by the max-pooling Jacobian.
pub fn scatter_strided_add(dst: &mut Tensor3<f32>, src: &Tensor3<f32>, at: Vec3, s: Vec3) {
    let d = dst.shape();
    let shape = src.shape();
    if !shape.is_empty() {
        let last = at + (shape - Vec3::one()) * s;
        assert!(
            last.fits_in(d),
            "strided scatter reaches {last} outside {d}"
        );
    }
    for o in shape.iter() {
        let v = src.at(o);
        dst[at + o * s] += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: Vec3) -> Tensor3<f32> {
        Tensor3::from_fn(shape, |at| shape.offset(at) as f32)
    }

    #[test]
    fn pad_then_crop_round_trips() {
        let t = seq(Vec3::new(2, 3, 4));
        let p = pad(&t, Vec3::new(5, 6, 7), Vec3::new(1, 2, 3));
        assert_eq!(p.at((0, 0, 0)), 0.0);
        assert_eq!(p.at((1, 2, 3)), t.at((0, 0, 0)));
        let c = crop(&p, Vec3::new(1, 2, 3), t.shape());
        assert_eq!(c, t);
    }

    #[test]
    fn pad_preserves_total_sum() {
        let t = seq(Vec3::cube(3));
        let p = pad(&t, Vec3::cube(8), Vec3::new(2, 0, 4));
        assert_eq!(p.sum(), t.sum());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn pad_rejects_overflow() {
        let t = seq(Vec3::cube(3));
        let _ = pad(&t, Vec3::cube(4), Vec3::cube(2));
    }

    #[test]
    fn flip_is_involutive() {
        let t = seq(Vec3::new(2, 3, 4));
        assert_eq!(flip(&flip(&t)), t);
    }

    #[test]
    fn flip_reverses_all_axes() {
        let t = seq(Vec3::new(2, 2, 2));
        let f = flip(&t);
        assert_eq!(f.at((0, 0, 0)), t.at((1, 1, 1)));
        assert_eq!(f.at((1, 0, 1)), t.at((0, 1, 0)));
    }

    #[test]
    fn dilate_spaces_out_kernel_voxels() {
        let t = seq(Vec3::cube(2));
        let d = dilate(&t, Vec3::cube(3));
        assert_eq!(d.shape(), Vec3::cube(4));
        assert_eq!(d.at((0, 0, 0)), t.at((0, 0, 0)));
        assert_eq!(d.at((3, 3, 3)), t.at((1, 1, 1)));
        assert_eq!(d.at((1, 0, 0)), 0.0);
        // total mass is preserved
        assert_eq!(d.sum(), t.sum());
    }

    #[test]
    fn dilate_by_one_is_identity() {
        let t = seq(Vec3::new(3, 1, 2));
        assert_eq!(dilate(&t, Vec3::one()), t);
    }

    #[test]
    fn gather_inverts_dilate() {
        let t = seq(Vec3::cube(3));
        let d = dilate(&t, Vec3::cube(2));
        let g = gather_strided(&d, Vec3::zero(), Vec3::cube(2), t.shape());
        assert_eq!(g, t);
    }

    #[test]
    fn scatter_add_accumulates() {
        let mut dst = Tensor3::filled(Vec3::cube(5), 1.0f32);
        let src = Tensor3::filled(Vec3::cube(2), 2.0f32);
        scatter_strided_add(&mut dst, &src, Vec3::one(), Vec3::cube(2));
        assert_eq!(dst.at((1, 1, 1)), 3.0);
        assert_eq!(dst.at((3, 3, 3)), 3.0);
        assert_eq!(dst.at((2, 2, 2)), 1.0);
    }
}
