use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A triple of non-negative extents or coordinates.
///
/// `Vec3` doubles as a tensor *shape* and a voxel *coordinate*. Axis 0 is
/// the slowest-varying dimension, axis 2 the fastest (the `z` axis of the
/// `[x][y][z]` layout). The arithmetic here encodes the size algebra of
/// the paper's §II:
///
/// * valid convolution: `n → n - k + 1` ([`Vec3::valid_conv`]),
/// * full convolution: `n → n + k - 1` ([`Vec3::full_conv`]),
/// * sparse (dilated) kernels: `k → s·(k-1) + 1` ([`Vec3::dilated`]),
/// * max-pooling: `n → n / p` ([`Vec3::pooled`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vec3(pub [usize; 3]);

impl Vec3 {
    /// Builds a triple from its three extents.
    #[inline]
    pub const fn new(x: usize, y: usize, z: usize) -> Self {
        Vec3([x, y, z])
    }

    /// The cube `(s, s, s)`.
    #[inline]
    pub const fn cube(s: usize) -> Self {
        Vec3([s, s, s])
    }

    /// The triple `(1, 1, 1)` — the shape of a single voxel.
    #[inline]
    pub const fn one() -> Self {
        Vec3([1, 1, 1])
    }

    /// The triple `(0, 0, 0)`.
    #[inline]
    pub const fn zero() -> Self {
        Vec3([0, 0, 0])
    }

    /// A 2D shape, i.e. a 3D shape whose leading dimension is one — the
    /// paper treats 2D networks exactly this way.
    #[inline]
    pub const fn flat(y: usize, z: usize) -> Self {
        Vec3([1, y, z])
    }

    /// Number of voxels in a tensor with this shape.
    #[inline]
    pub fn len(&self) -> usize {
        self.0[0] * self.0[1] * self.0[2]
    }

    /// True when any extent is zero (an empty tensor).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }

    /// Row-major (z fastest) linear offset of coordinate `at` within this
    /// shape. Callers must keep `at` inside the shape.
    #[inline]
    pub fn offset(&self, at: Vec3) -> usize {
        debug_assert!(at.fits_in(*self), "coordinate {at} out of shape {self}");
        (at.0[0] * self.0[1] + at.0[1]) * self.0[2] + at.0[2]
    }

    /// True when `self`, as a coordinate, addresses a voxel of `shape`.
    #[inline]
    pub fn fits_in(&self, shape: Vec3) -> bool {
        self.0[0] < shape.0[0] && self.0[1] < shape.0[1] && self.0[2] < shape.0[2]
    }

    /// True when every extent of `self` is `<=` the matching extent of
    /// `other` — i.e. a kernel of this shape fits inside an image of shape
    /// `other` for a valid convolution.
    #[inline]
    pub fn le(&self, other: Vec3) -> bool {
        self.0[0] <= other.0[0] && self.0[1] <= other.0[1] && self.0[2] <= other.0[2]
    }

    /// Output shape of a *valid* convolution of an image of this shape
    /// with a kernel of shape `k`: `n - k + 1` per axis (paper §II).
    ///
    /// Returns `None` when the kernel does not fit.
    #[inline]
    pub fn valid_conv(&self, k: Vec3) -> Option<Vec3> {
        if k.le(*self) {
            Some(Vec3([
                self.0[0] - k.0[0] + 1,
                self.0[1] - k.0[1] + 1,
                self.0[2] - k.0[2] + 1,
            ]))
        } else {
            None
        }
    }

    /// Output shape of a *full* convolution: `n + k - 1` per axis
    /// (paper §III-A, "Convolution Jacobian").
    #[inline]
    pub fn full_conv(&self, k: Vec3) -> Vec3 {
        Vec3([
            self.0[0] + k.0[0] - 1,
            self.0[1] + k.0[1] - 1,
            self.0[2] + k.0[2] - 1,
        ])
    }

    /// Effective shape of this kernel dilated by per-axis sparsity `s`
    /// (the paper's sparse/skip-kernel convolution): `s·(k-1) + 1`.
    #[inline]
    pub fn dilated(&self, s: Vec3) -> Vec3 {
        Vec3([
            s.0[0] * (self.0[0] - 1) + 1,
            s.0[1] * (self.0[1] - 1) + 1,
            s.0[2] * (self.0[2] - 1) + 1,
        ])
    }

    /// Output shape of max-pooling with block shape `p`; the paper
    /// requires each extent to be divisible by the block extent.
    ///
    /// Returns `None` on indivisible shapes.
    #[inline]
    pub fn pooled(&self, p: Vec3) -> Option<Vec3> {
        if p.0.contains(&0) {
            return None;
        }
        if self.0[0].is_multiple_of(p.0[0]) && self.0[1].is_multiple_of(p.0[1]) && self.0[2].is_multiple_of(p.0[2]) {
            Some(Vec3([
                self.0[0] / p.0[0],
                self.0[1] / p.0[1],
                self.0[2] / p.0[2],
            ]))
        } else {
            None
        }
    }

    /// Elementwise maximum.
    #[inline]
    pub fn max(&self, other: Vec3) -> Vec3 {
        Vec3([
            self.0[0].max(other.0[0]),
            self.0[1].max(other.0[1]),
            self.0[2].max(other.0[2]),
        ])
    }

    /// Elementwise minimum.
    #[inline]
    pub fn min(&self, other: Vec3) -> Vec3 {
        Vec3([
            self.0[0].min(other.0[0]),
            self.0[1].min(other.0[1]),
            self.0[2].min(other.0[2]),
        ])
    }

    /// Iterates coordinates in row-major order (z fastest).
    pub fn iter(&self) -> impl Iterator<Item = Vec3> + '_ {
        let s = *self;
        (0..s.0[0]).flat_map(move |x| {
            (0..s.0[1]).flat_map(move |y| (0..s.0[2]).map(move |z| Vec3([x, y, z])))
        })
    }
}

impl Index<usize> for Vec3 {
    type Output = usize;
    #[inline]
    fn index(&self, i: usize) -> &usize {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut usize {
        &mut self.0[i]
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl Mul for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, o: Vec3) -> Vec3 {
        Vec3([self.0[0] * o.0[0], self.0[1] * o.0[1], self.0[2] * o.0[2]])
    }
}

impl Mul<usize> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: usize) -> Vec3 {
        Vec3([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

impl From<[usize; 3]> for Vec3 {
    #[inline]
    fn from(v: [usize; 3]) -> Self {
        Vec3(v)
    }
}

impl From<(usize, usize, usize)> for Vec3 {
    #[inline]
    fn from((x, y, z): (usize, usize, usize)) -> Self {
        Vec3([x, y, z])
    }
}

impl fmt::Debug for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.0[0], self.0[1], self.0[2])
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_row_major_z_fastest() {
        let s = Vec3::new(2, 3, 4);
        assert_eq!(s.offset(Vec3::zero()), 0);
        assert_eq!(s.offset(Vec3::new(0, 0, 1)), 1);
        assert_eq!(s.offset(Vec3::new(0, 1, 0)), 4);
        assert_eq!(s.offset(Vec3::new(1, 0, 0)), 12);
        assert_eq!(s.offset(Vec3::new(1, 2, 3)), 23);
    }

    #[test]
    fn valid_conv_shrinks_and_checks_fit() {
        let n = Vec3::cube(9);
        assert_eq!(n.valid_conv(Vec3::cube(3)), Some(Vec3::cube(7)));
        assert_eq!(n.valid_conv(Vec3::cube(9)), Some(Vec3::one()));
        assert_eq!(n.valid_conv(Vec3::cube(10)), None);
    }

    #[test]
    fn full_conv_grows() {
        assert_eq!(Vec3::cube(7).full_conv(Vec3::cube(3)), Vec3::cube(9));
        // full then valid with the same kernel round-trips the shape
        let n = Vec3::new(4, 5, 6);
        let k = Vec3::new(2, 3, 1);
        assert_eq!(n.full_conv(k).valid_conv(k), Some(n));
    }

    #[test]
    fn dilation_matches_paper_formula() {
        // sparsity s makes a kernel of size k span s(k-1)+1 voxels
        assert_eq!(Vec3::cube(3).dilated(Vec3::cube(2)), Vec3::cube(5));
        assert_eq!(Vec3::cube(3).dilated(Vec3::one()), Vec3::cube(3));
        assert_eq!(Vec3::one().dilated(Vec3::cube(7)), Vec3::one());
    }

    #[test]
    fn pooling_requires_divisibility() {
        assert_eq!(Vec3::cube(8).pooled(Vec3::cube(2)), Some(Vec3::cube(4)));
        assert_eq!(Vec3::cube(9).pooled(Vec3::cube(2)), None);
        assert_eq!(Vec3::cube(8).pooled(Vec3::zero()), None);
    }

    #[test]
    fn iter_visits_every_coordinate_in_layout_order() {
        let s = Vec3::new(2, 2, 2);
        let coords: Vec<_> = s.iter().collect();
        assert_eq!(coords.len(), 8);
        for (i, c) in coords.iter().enumerate() {
            assert_eq!(s.offset(*c), i);
        }
    }

    #[test]
    fn two_d_shapes_are_3d_with_unit_axis() {
        let s = Vec3::flat(48, 48);
        assert_eq!(s.len(), 48 * 48);
        assert_eq!(s.valid_conv(Vec3::flat(11, 11)), Some(Vec3::flat(38, 38)));
    }
}
