//! Pooled tensor storage: buffers leased from a recycler and pushed
//! back on drop.
//!
//! ZNN's training loop allocates and frees large image and spectrum
//! buffers constantly — one padded image, one half-spectrum and one
//! product spectrum per FFT convolution, every round. The paper (§VII-C)
//! avoids the `malloc` cost with pooled power-of-two allocators that
//! never return memory to the OS. This module is the tensor-side half of
//! that design: a [`Tensor3`](crate::Tensor3) can carry, next to its
//! `Vec<T>` buffer, a handle to the [`BufferSource`] the buffer was
//! leased from. When the tensor is dropped the buffer is **recycled**
//! into the source instead of freed — an RAII lease, invisible to every
//! consumer of the tensor API.
//!
//! The actual pools live in `znn-alloc` (`BufferPool` / `PoolSet`),
//! which implements [`BufferSource`]; this crate only defines the
//! contract so the dependency arrow keeps pointing from the allocator
//! to the tensor substrate.
//!
//! Pooled-ness **propagates through clones**: cloning a leased tensor
//! leases a fresh buffer from the same source, so chains like
//! `spectrum.clone()`-then-multiply (the frequency-domain convolution
//! kernel) stay allocation-free in the steady state. Conversions that
//! take the raw `Vec` out ([`Tensor3::into_vec`](crate::Tensor3::into_vec))
//! detach the buffer from its source; the caller owns it outright and
//! may re-attach it (or another) with
//! [`Tensor3::with_home`](crate::Tensor3::with_home).

use std::mem::ManuallyDrop;
use std::sync::Arc;

/// A recycler of `Vec<T>` buffers — the contract between tensors and
/// the pooled allocators of `znn-alloc`.
///
/// Implementations must hand out **zero-filled** buffers of exactly the
/// requested length (capacity may be larger, e.g. rounded up to a
/// power-of-two size class) and accept any buffer back, including ones
/// they did not lease.
pub trait BufferSource<T>: Send + Sync {
    /// A zero-filled buffer of exactly `len` elements.
    fn lease(&self, len: usize) -> Vec<T>;
    /// An **empty** buffer (length 0) with capacity for at least `len`
    /// elements — for callers that overwrite the full length anyway
    /// (pooled clones), skipping the zero-fill of [`BufferSource::lease`]
    /// halves the memory traffic. The default falls back to
    /// lease-then-clear; pool implementations override it to skip the
    /// fill entirely.
    fn lease_empty(&self, len: usize) -> Vec<T> {
        let mut v = self.lease(len);
        v.clear();
        v
    }
    /// Takes a buffer back for future leases.
    fn recycle(&self, buf: Vec<T>);
}

/// A tensor buffer plus the optional [`BufferSource`] it was leased
/// from. Dropping pooled storage recycles the buffer; dropping plain
/// storage frees it like any `Vec`.
pub(crate) struct Storage<T> {
    /// `ManuallyDrop` so [`Drop`] can move the `Vec` out and hand it to
    /// the recycler by value.
    data: ManuallyDrop<Vec<T>>,
    home: Option<Arc<dyn BufferSource<T>>>,
}

impl<T> Storage<T> {
    /// Plain (unpooled) storage over an owned buffer.
    pub fn raw(data: Vec<T>) -> Self {
        Storage {
            data: ManuallyDrop::new(data),
            home: None,
        }
    }

    /// Storage leased from `home`: the buffer returns there on drop.
    pub fn leased(home: Arc<dyn BufferSource<T>>, len: usize) -> Self {
        Storage {
            data: ManuallyDrop::new(home.lease(len)),
            home: Some(home),
        }
    }

    /// Adopts an owned buffer into `home`'s custody: it will be
    /// recycled there on drop, exactly as if it had been leased.
    pub fn adopted(data: Vec<T>, home: Arc<dyn BufferSource<T>>) -> Self {
        Storage {
            data: ManuallyDrop::new(data),
            home: Some(home),
        }
    }

    /// The source this buffer returns to on drop, if any.
    pub fn home(&self) -> Option<&Arc<dyn BufferSource<T>>> {
        self.home.as_ref()
    }

    /// Consumes the storage, returning the raw buffer. The buffer
    /// leaves its source's custody — it will be freed normally unless
    /// re-adopted.
    pub fn into_vec(mut self) -> Vec<T> {
        self.home = None;
        // SAFETY: `self` is forgotten right after, so `Drop` never runs
        // and the Vec is moved out exactly once.
        let v = unsafe { ManuallyDrop::take(&mut self.data) };
        std::mem::forget(self);
        v
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl<T> Drop for Storage<T> {
    fn drop(&mut self) {
        // SAFETY: `data` is taken exactly once; nothing reads it after.
        let v = unsafe { ManuallyDrop::take(&mut self.data) };
        if let Some(home) = self.home.take() {
            home.recycle(v);
        }
        // else: v drops here, freeing the buffer as usual
    }
}

impl<T: Clone> Clone for Storage<T> {
    /// Pooled storage clones to pooled storage **from the same
    /// source** (a fresh lease, overwritten with this buffer's
    /// contents), so no clone in a steady-state loop grows the
    /// process footprint. Plain storage clones to plain storage.
    fn clone(&self) -> Self {
        match &self.home {
            Some(home) => {
                // empty lease + extend: single write pass, no zero-fill
                let mut v = home.lease_empty(self.data.len());
                v.extend_from_slice(&self.data);
                Storage {
                    data: ManuallyDrop::new(v),
                    home: Some(Arc::clone(home)),
                }
            }
            None => Storage::raw((*self.data).clone()),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Storage")
            .field("data", &self.as_slice())
            .field("pooled", &self.home.is_some())
            .finish()
    }
}

impl<T: PartialEq> PartialEq for Storage<T> {
    /// Equality compares contents only — where a buffer returns on drop
    /// is an allocation detail, not part of the tensor's value.
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A counting recycler: leases fresh zeroed buffers, stashes
    /// recycled ones.
    #[derive(Default)]
    struct Stash {
        leases: AtomicUsize,
        returned: Mutex<Vec<Vec<f32>>>,
    }

    impl BufferSource<f32> for Stash {
        fn lease(&self, len: usize) -> Vec<f32> {
            self.leases.fetch_add(1, Ordering::SeqCst);
            self.returned
                .lock()
                .unwrap()
                .pop()
                .map(|mut v| {
                    v.clear();
                    v.resize(len, 0.0);
                    v
                })
                .unwrap_or_else(|| vec![0.0; len])
        }
        fn recycle(&self, buf: Vec<f32>) {
            self.returned.lock().unwrap().push(buf);
        }
    }

    #[test]
    fn drop_recycles_leased_storage() {
        let stash = Arc::new(Stash::default());
        let s = Storage::leased(stash.clone() as Arc<dyn BufferSource<f32>>, 8);
        assert_eq!(s.len(), 8);
        assert!(s.as_slice().iter().all(|&v| v == 0.0));
        drop(s);
        assert_eq!(stash.returned.lock().unwrap().len(), 1);
    }

    #[test]
    fn drop_frees_raw_storage_without_recycling() {
        let stash = Arc::new(Stash::default());
        drop(Storage::raw(vec![1.0f32; 4]));
        assert_eq!(stash.returned.lock().unwrap().len(), 0);
    }

    #[test]
    fn clone_of_pooled_storage_stays_pooled_and_equal() {
        let stash = Arc::new(Stash::default());
        let mut a = Storage::leased(stash.clone() as Arc<dyn BufferSource<f32>>, 4);
        a.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(b.home().is_some());
        assert_eq!(stash.leases.load(Ordering::SeqCst), 2);
        drop(a);
        drop(b);
        assert_eq!(stash.returned.lock().unwrap().len(), 2);
    }

    #[test]
    fn into_vec_detaches_from_the_source() {
        let stash = Arc::new(Stash::default());
        let s = Storage::leased(stash.clone() as Arc<dyn BufferSource<f32>>, 4);
        let v = s.into_vec();
        assert_eq!(v.len(), 4);
        assert_eq!(stash.returned.lock().unwrap().len(), 0);
        // re-adoption restores custody
        drop(Storage::adopted(v, stash.clone() as Arc<dyn BufferSource<f32>>));
        assert_eq!(stash.returned.lock().unwrap().len(), 1);
    }

    #[test]
    fn recycled_buffers_serve_later_leases() {
        let stash = Arc::new(Stash::default());
        let home = stash.clone() as Arc<dyn BufferSource<f32>>;
        drop(Storage::leased(Arc::clone(&home), 16));
        let s = Storage::leased(home, 10);
        // the stashed 16-element buffer was reused (capacity kept)
        assert_eq!(s.len(), 10);
        assert_eq!(stash.returned.lock().unwrap().len(), 0);
    }
}
