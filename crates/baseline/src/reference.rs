//! The sequential reference engine.

use std::collections::HashMap;
use znn_graph::init::ParamSet;
use znn_graph::{shapes, EdgeOp, Graph, NodeId};
use znn_ops::filter::{max_filter, max_filter_backward, FilterImpl};
use znn_ops::pool::{max_pool, max_pool_backward};
use znn_ops::{conv, Loss};
use znn_tensor::{ops, Image, Tensor3, Vec3};

/// Per-edge state saved by the forward pass for the backward pass.
pub(crate) enum Saved {
    None,
    /// Transfer output (derivative is computed from the output).
    TransferOutput(Image),
    /// Argmax map and input shape for pooling/filtering Jacobians.
    Argmax(Tensor3<u32>, Vec3),
}

/// A sequential, direct-convolution trainer over any computation graph.
///
/// Semantics follow §II–III exactly: nodes sum convergent edge outputs;
/// backward reverses every edge with its Jacobian-transpose; updates are
/// plain SGD (`w ← w − η·∇w`). No scheduler, no FFT, no memoization —
/// this is the *independent* implementation the task-parallel engine is
/// differentially tested against, and the computational core of the
/// layerwise GPU-style baseline.
pub struct ReferenceNet {
    pub(crate) graph: Graph,
    pub(crate) params: ParamSet,
    pub(crate) saved: Vec<Saved>,
    pub(crate) node_fwd: Vec<Option<Image>>,
    pub(crate) input_shape: Vec3,
    pub(crate) node_shapes: HashMap<NodeId, Vec3>,
}

impl ReferenceNet {
    /// Builds a reference net for `graph` sized so the outputs have
    /// shape `output_shape`, with deterministic parameter init from
    /// `seed`.
    pub fn new(graph: Graph, output_shape: Vec3, seed: u64) -> Result<Self, shapes::ShapeError> {
        let input_shape = shapes::required_input_shape(&graph, output_shape)?;
        let node_shapes = shapes::infer_shapes(&graph, input_shape)?;
        let params = ParamSet::init(&graph, seed);
        let saved = graph.edges().iter().map(|_| Saved::None).collect();
        let node_fwd = vec![None; graph.node_count()];
        Ok(ReferenceNet {
            graph,
            params,
            saved,
            node_fwd,
            input_shape,
            node_shapes,
        })
    }

    /// The input patch shape the network consumes.
    pub fn input_shape(&self) -> Vec3 {
        self.input_shape
    }

    /// The graph this engine runs.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Immutable access to the parameters.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the parameters (tests use this to align two
    /// engines exactly).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    pub(crate) fn edge_forward(&self, eid: usize, input: &Image) -> (Image, Saved) {
        let e = &self.graph.edges()[eid];
        match e.op {
            EdgeOp::Conv { kernel: _, sparsity } => {
                let w = self.params.kernels[eid].as_ref().expect("conv kernel");
                (conv::conv_valid(input, w, sparsity), Saved::None)
            }
            EdgeOp::MaxPool { window } => {
                let r = max_pool(input, window);
                (r.output, Saved::Argmax(r.argmax, input.shape()))
            }
            EdgeOp::MaxFilter { window, sparsity } => {
                let r = max_filter(input, window, sparsity, FilterImpl::Deque);
                (r.output, Saved::Argmax(r.argmax, input.shape()))
            }
            EdgeOp::Transfer { function } => {
                let b = self.params.biases[eid].expect("transfer bias");
                let out = function.forward(input, b);
                (out.clone(), Saved::TransferOutput(out))
            }
        }
    }

    /// Forward pass; returns the output node images in
    /// [`Graph::outputs`] order.
    pub fn forward(&mut self, inputs: &[Image]) -> Vec<Image> {
        let input_nodes = self.graph.inputs();
        assert_eq!(
            inputs.len(),
            input_nodes.len(),
            "expected {} input images",
            input_nodes.len()
        );
        let order = self.graph.topo_order().expect("validated graph");
        // node sums under construction
        let mut sums: Vec<Option<Image>> = vec![None; self.graph.node_count()];
        for (n, img) in input_nodes.iter().zip(inputs) {
            assert_eq!(img.shape(), self.input_shape, "input shape mismatch");
            sums[n.0] = Some(img.clone());
        }
        for n in order {
            let img = sums[n.0].take().expect("topological order fills sums");
            for &eid in &self.graph.node(n).out_edges.clone() {
                let (out, saved) = self.edge_forward(eid.0, &img);
                self.saved[eid.0] = saved;
                let to = self.graph.edge(eid).to;
                match &mut sums[to.0] {
                    None => sums[to.0] = Some(out),
                    Some(acc) => ops::add_assign(acc, &out),
                }
            }
            self.node_fwd[n.0] = Some(img);
        }
        self.graph
            .outputs()
            .iter()
            .map(|o| {
                self.node_fwd[o.0]
                    .clone()
                    .expect("outputs filled by forward")
            })
            .collect()
    }

    pub(crate) fn edge_backward(&self, eid: usize, grad: &Image) -> Image {
        let e = &self.graph.edges()[eid];
        match e.op {
            EdgeOp::Conv { kernel: _, sparsity } => {
                let w = self.params.kernels[eid].as_ref().expect("conv kernel");
                conv::input_gradient(grad, w, sparsity)
            }
            EdgeOp::MaxPool { .. } | EdgeOp::MaxFilter { .. } => {
                let Saved::Argmax(argmax, in_shape) = &self.saved[eid] else {
                    panic!("backward before forward on edge {eid}");
                };
                match e.op {
                    EdgeOp::MaxPool { .. } => max_pool_backward(grad, argmax, *in_shape),
                    _ => max_filter_backward(grad, argmax, *in_shape),
                }
            }
            EdgeOp::Transfer { function } => {
                let Saved::TransferOutput(y) = &self.saved[eid] else {
                    panic!("backward before forward on edge {eid}");
                };
                function.backward(grad, y)
            }
        }
    }

    /// Backward pass + immediate SGD update with learning rate `eta`.
    /// `output_grads` are ∂loss/∂output per output node. Returns the
    /// gradient at each input node.
    pub fn backward(&mut self, output_grads: &[Image], eta: f32) -> Vec<Image> {
        let outputs = self.graph.outputs();
        assert_eq!(output_grads.len(), outputs.len());
        let order = self.graph.topo_order().expect("validated graph");
        let mut sums: Vec<Option<Image>> = vec![None; self.graph.node_count()];
        for (n, g) in outputs.iter().zip(output_grads) {
            assert_eq!(
                g.shape(),
                self.node_shapes[n],
                "output gradient shape mismatch"
            );
            sums[n.0] = Some(g.clone());
        }
        let mut updates: Vec<(usize, Image)> = Vec::new(); // conv kernel grads
        let mut bias_updates: Vec<(usize, f32)> = Vec::new();
        for &n in order.iter().rev() {
            let Some(grad) = sums[n.0].take() else {
                continue;
            };
            for &eid in &self.graph.node(n).in_edges.clone() {
                let e = self.graph.edge(eid);
                let back = self.edge_backward(eid.0, &grad);
                // parameter gradients (§III-B)
                match e.op {
                    EdgeOp::Conv { kernel, sparsity } => {
                        let x = self.node_fwd[e.from.0]
                            .as_ref()
                            .expect("forward image retained");
                        let dw = conv::kernel_gradient(x, &grad, kernel, sparsity);
                        updates.push((eid.0, dw));
                    }
                    EdgeOp::Transfer { .. } => {
                        bias_updates.push((eid.0, back.sum()));
                    }
                    _ => {}
                }
                let from = e.from;
                match &mut sums[from.0] {
                    None => sums[from.0] = Some(back),
                    Some(acc) => ops::add_assign(acc, &back),
                }
            }
            // keep input-node grads for the return value
            if !self.graph.node(n).in_edges.is_empty() {
                continue;
            }
            sums[n.0] = Some(grad);
        }
        // apply updates after the full traversal (order-independent)
        for (eid, dw) in updates {
            let w = self.params.kernels[eid].as_mut().expect("conv kernel");
            ops::sub_scaled(w, eta, &dw);
        }
        for (eid, db) in bias_updates {
            let b = self.params.biases[eid].as_mut().expect("transfer bias");
            *b -= eta * db;
        }
        self.graph
            .inputs()
            .iter()
            .map(|n| {
                sums[n.0]
                    .clone()
                    .unwrap_or_else(|| Tensor3::zeros(self.input_shape))
            })
            .collect()
    }

    /// One full training step; returns the loss value.
    pub fn train_step(
        &mut self,
        inputs: &[Image],
        targets: &[Image],
        loss: Loss,
        eta: f32,
    ) -> f64 {
        let outputs = self.forward(inputs);
        assert_eq!(outputs.len(), targets.len());
        let mut total = 0.0;
        let grads: Vec<Image> = outputs
            .iter()
            .zip(targets)
            .map(|(y, t)| {
                total += loss.value(y, t);
                loss.gradient(y, t)
            })
            .collect();
        self.backward(&grads, eta);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_graph::NetBuilder;
    use znn_ops::Transfer;

    fn small_net() -> ReferenceNet {
        let (g, _) = NetBuilder::new("ref", 1)
            .conv(2, Vec3::cube(2))
            .transfer(Transfer::Tanh)
            .conv(1, Vec3::cube(2))
            .transfer(Transfer::Linear)
            .build()
            .unwrap();
        ReferenceNet::new(g, Vec3::cube(2), 42).unwrap()
    }

    #[test]
    fn shapes_flow_correctly() {
        let mut net = small_net();
        assert_eq!(net.input_shape(), Vec3::cube(4));
        let out = net.forward(&[ops::random(Vec3::cube(4), 1)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape(), Vec3::cube(2));
    }

    #[test]
    fn forward_is_deterministic() {
        let mut a = small_net();
        let mut b = small_net();
        let x = ops::random(Vec3::cube(4), 2);
        assert_eq!(a.forward(std::slice::from_ref(&x))[0], b.forward(&[x])[0]);
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_sample() {
        let mut net = small_net();
        let x = ops::random(Vec3::cube(4), 3);
        let t = ops::random(Vec3::cube(2), 4).map(|v| 0.3 * v);
        let first = net.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.05);
        let mut last = first;
        for _ in 0..60 {
            last = net.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.05);
        }
        assert!(
            last < first * 0.5,
            "loss did not halve: {first} -> {last}"
        );
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut net = small_net();
        let x = ops::random(Vec3::cube(4), 5);
        let t = Tensor3::<f32>::zeros(Vec3::cube(2));
        // gradient of loss wrt input via backward with eta=0
        let y = net.forward(std::slice::from_ref(&x));
        let g = Loss::Mse.gradient(&y[0], &t);
        let input_grad = net.backward(&[g], 0.0);
        let eps = 1e-2f32;
        for at in [Vec3::zero(), Vec3::new(1, 2, 3), Vec3::cube(3)] {
            let mut xp = x.clone();
            xp[at] += eps;
            let mut xm = x.clone();
            xm[at] -= eps;
            let lp = Loss::Mse.value(&net.forward(&[xp])[0], &t);
            let lm = Loss::Mse.value(&net.forward(&[xm])[0], &t);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (input_grad[0][at] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "at {at}: analytic {} vs fd {fd}",
                input_grad[0][at]
            );
        }
    }

    #[test]
    fn kernel_update_matches_finite_differences() {
        // dL/dw for the first conv edge via (w_before - w_after)/eta
        let x = ops::random(Vec3::cube(4), 6);
        let t = Tensor3::<f32>::zeros(Vec3::cube(2));
        let eta = 1e-3f32;
        let mut net = small_net();
        let w_before = net.params().kernels[0].clone().unwrap();
        net.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, eta);
        let w_after = net.params().kernels[0].clone().unwrap();
        let eps = 1e-2f32;
        for at in Vec3::cube(2).iter() {
            let analytic = (w_before[at] - w_after[at]) / eta;
            let mut np = small_net();
            np.params_mut().kernels[0].as_mut().unwrap()[at] += eps;
            let lp = {
                let y = np.forward(std::slice::from_ref(&x));
                Loss::Mse.value(&y[0], &t)
            };
            let mut nm = small_net();
            nm.params_mut().kernels[0].as_mut().unwrap()[at] -= eps;
            let lm = {
                let y = nm.forward(std::slice::from_ref(&x));
                Loss::Mse.value(&y[0], &t)
            };
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic - fd).abs() < 5e-2 * (1.0 + fd.abs()),
                "at {at}: analytic {analytic} vs fd {fd}"
            );
        }
    }

    #[test]
    fn works_with_pooling_and_filtering() {
        for sparse in [true, false] {
            let (g, _) = znn_graph::builder::comparison_net(
                2,
                Vec3::flat(3, 3),
                Vec3::flat(2, 2),
                sparse,
            );
            let out_shape = Vec3::flat(2, 2);
            let mut net = ReferenceNet::new(g, out_shape, 9).unwrap();
            // bias the rectifiers into their live region so gradients
            // flow from the first step
            for b in net.params_mut().biases.iter_mut().flatten() {
                *b = 0.2;
            }
            let x = ops::random(net.input_shape(), 10);
            let t = Tensor3::filled(out_shape, 0.5f32);
            let l0 = net.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.02);
            assert!(l0 > 0.0, "sparse={sparse}: needs a nonzero starting loss");
            let mut l = l0;
            for _ in 0..30 {
                l = net.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.02);
            }
            assert!(l < 0.5 * l0, "sparse={sparse}: {l0} -> {l}");
        }
    }
}
