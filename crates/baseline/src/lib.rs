//! Baseline ConvNet engines (paper §IX).
//!
//! The paper benchmarks ZNN against GPU frameworks (Caffe, Theano,
//! cuDNN) whose defining execution model is **layer-at-a-time SIMD data
//! parallelism with direct convolution**: "the current GPU
//! implementations employ SIMD parallelism to perform computation on
//! one whole layer at a time". This crate provides that comparator —
//! plus the sequential special case used as the independent reference
//! implementation for differential testing of the task-parallel engine:
//!
//! * [`ReferenceNet`] — a deliberately simple, sequential,
//!   direct-convolution trainer over any computation graph. Shares no
//!   code with `znn-core`'s execution machinery, which is what makes
//!   agreement between the two engines meaningful evidence of
//!   correctness.
//! * [`LayerwiseNet`] — the same semantics with each layer's edges
//!   evaluated in parallel (rayon) and a **barrier between layers**,
//!   standing in for the GPU baselines of Figs 8–9 (see DESIGN.md for
//!   the substitution argument).

#![warn(missing_docs)]

mod layerwise;
mod reference;

pub use layerwise::LayerwiseNet;
pub use reference::ReferenceNet;
