//! The layer-at-a-time data-parallel engine (the "GPU-style" baseline).
//!
//! GPU ConvNet frameworks parallelize *within* a layer and synchronize
//! *between* layers (paper §XI: "computation on one whole layer at a
//! time"). This engine reproduces that execution model on the CPU with
//! rayon: all edges whose source sits at the same depth run in
//! parallel, then a barrier, then the next depth. The `par_iter`
//! sweeps run on the same **persistent worker pool** as every other
//! parallel path in the workspace (the vendored rayon shim's global
//! pool, or whatever pool an enclosing `ThreadPool::install` makes
//! current) — no threads are spawned per level. Convolution is always
//! direct — the property that drives the FFT-vs-direct crossover in
//! Figs 8–9.

use crate::reference::{ReferenceNet, Saved};
use rayon::prelude::*;
use znn_graph::{shapes, EdgeOp, Graph};
use znn_ops::{conv, Loss};
use znn_tensor::{ops, Image, Vec3};

/// Layer-parallel trainer with barriers between depths.
pub struct LayerwiseNet {
    inner: ReferenceNet,
    fwd_levels: Vec<Vec<usize>>, // edge ids grouped by source-node depth
    bwd_levels: Vec<Vec<usize>>, // edge ids grouped by target-node depth-from-outputs
}

impl LayerwiseNet {
    /// Builds the engine; see [`ReferenceNet::new`] for sizing.
    pub fn new(graph: Graph, output_shape: Vec3, seed: u64) -> Result<Self, shapes::ShapeError> {
        let depth_in = znn_graph::priority::distance_from_inputs(&graph);
        let depth_out = znn_graph::priority::distance_to_outputs(&graph);
        let max_in = depth_in.iter().copied().max().unwrap_or(0);
        let max_out = depth_out.iter().copied().max().unwrap_or(0);
        let mut fwd_levels = vec![Vec::new(); max_in + 1];
        let mut bwd_levels = vec![Vec::new(); max_out + 1];
        for (i, e) in graph.edges().iter().enumerate() {
            fwd_levels[depth_in[e.from.0]].push(i);
            bwd_levels[depth_out[e.to.0]].push(i);
        }
        let inner = ReferenceNet::new(graph, output_shape, seed)?;
        Ok(LayerwiseNet {
            inner,
            fwd_levels,
            bwd_levels,
        })
    }

    /// The input patch shape.
    pub fn input_shape(&self) -> Vec3 {
        self.inner.input_shape()
    }

    /// Parameter access (aligning engines in tests).
    pub fn params_mut(&mut self) -> &mut znn_graph::init::ParamSet {
        self.inner.params_mut()
    }

    /// Immutable parameter access.
    pub fn params(&self) -> &znn_graph::init::ParamSet {
        self.inner.params()
    }

    /// Layer-parallel forward pass.
    pub fn forward(&mut self, inputs: &[Image]) -> Vec<Image> {
        let graph = self.inner.graph.clone();
        let input_nodes = graph.inputs();
        assert_eq!(inputs.len(), input_nodes.len());
        let mut sums: Vec<Option<Image>> = vec![None; graph.node_count()];
        for (n, img) in input_nodes.iter().zip(inputs) {
            assert_eq!(img.shape(), self.inner.input_shape);
            sums[n.0] = Some(img.clone());
        }
        for level in &self.fwd_levels {
            // finalize the images of this level's source nodes
            for &eid in level {
                let from = graph.edges()[eid].from;
                if let Some(img) = sums[from.0].take() {
                    self.inner.node_fwd[from.0] = Some(img);
                }
            }
            // barrier-synchronized parallel sweep over the level's edges
            let results: Vec<(usize, Image, Saved)> = level
                .par_iter()
                .map(|&eid| {
                    let from = graph.edges()[eid].from;
                    let img = self.inner.node_fwd[from.0]
                        .as_ref()
                        .expect("level order fills source images");
                    let (out, saved) = self.inner.edge_forward(eid, img);
                    (eid, out, saved)
                })
                .collect();
            // deterministic sequential accumulation
            for (eid, out, saved) in results {
                self.inner.saved[eid] = saved;
                let to = graph.edges()[eid].to;
                match &mut sums[to.0] {
                    None => sums[to.0] = Some(out),
                    Some(acc) => ops::add_assign(acc, &out),
                }
            }
        }
        // output nodes never have out-edges: their sums become images now
        graph
            .outputs()
            .iter()
            .map(|o| {
                let img = sums[o.0].take().expect("forward reaches outputs");
                self.inner.node_fwd[o.0] = Some(img.clone());
                img
            })
            .collect()
    }

    /// Layer-parallel backward + SGD update.
    pub fn backward(&mut self, output_grads: &[Image], eta: f32) {
        let graph = self.inner.graph.clone();
        let outputs = graph.outputs();
        assert_eq!(output_grads.len(), outputs.len());
        let mut sums: Vec<Option<Image>> = vec![None; graph.node_count()];
        for (n, g) in outputs.iter().zip(output_grads) {
            sums[n.0] = Some(g.clone());
        }
        let mut node_bwd: Vec<Option<Image>> = vec![None; graph.node_count()];
        let mut kernel_grads: Vec<(usize, Image)> = Vec::new();
        let mut bias_grads: Vec<(usize, f32)> = Vec::new();
        for level in &self.bwd_levels {
            for &eid in level {
                let to = graph.edges()[eid].to;
                if let Some(g) = sums[to.0].take() {
                    node_bwd[to.0] = Some(g);
                }
            }
            // parallel: backward transform + parameter gradients
            let results: Vec<(usize, Image, Option<Image>, Option<f32>)> = level
                .par_iter()
                .map(|&eid| {
                    let e = &graph.edges()[eid];
                    let g = node_bwd[e.to.0].as_ref().expect("level order");
                    let back = self.inner.edge_backward(eid, g);
                    let (dw, db) = match e.op {
                        EdgeOp::Conv { kernel, sparsity } => {
                            let x = self.inner.node_fwd[e.from.0]
                                .as_ref()
                                .expect("forward retained");
                            (Some(conv::kernel_gradient(x, g, kernel, sparsity)), None)
                        }
                        EdgeOp::Transfer { .. } => (None, Some(back.sum())),
                        _ => (None, None),
                    };
                    (eid, back, dw, db)
                })
                .collect();
            for (eid, back, dw, db) in results {
                if let Some(dw) = dw {
                    kernel_grads.push((eid, dw));
                }
                if let Some(db) = db {
                    bias_grads.push((eid, db));
                }
                let from = graph.edges()[eid].from;
                match &mut sums[from.0] {
                    None => sums[from.0] = Some(back),
                    Some(acc) => ops::add_assign(acc, &back),
                }
            }
        }
        for (eid, dw) in kernel_grads {
            let w = self.inner.params.kernels[eid].as_mut().expect("kernel");
            ops::sub_scaled(w, eta, &dw);
        }
        for (eid, db) in bias_grads {
            let b = self.inner.params.biases[eid].as_mut().expect("bias");
            *b -= eta * db;
        }
    }

    /// One training step; returns the loss.
    pub fn train_step(
        &mut self,
        inputs: &[Image],
        targets: &[Image],
        loss: Loss,
        eta: f32,
    ) -> f64 {
        let outputs = self.forward(inputs);
        let mut total = 0.0;
        let grads: Vec<Image> = outputs
            .iter()
            .zip(targets)
            .map(|(y, t)| {
                total += loss.value(y, t);
                loss.gradient(y, t)
            })
            .collect();
        self.backward(&grads, eta);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_graph::builder::comparison_net;
    use znn_graph::NetBuilder;
    use znn_ops::Transfer;
    use znn_tensor::Tensor3;

    #[test]
    fn layerwise_matches_reference_forward() {
        let (g, _) = NetBuilder::new("lw", 1)
            .conv(3, Vec3::cube(2))
            .transfer(Transfer::Tanh)
            .conv(2, Vec3::cube(2))
            .build()
            .unwrap();
        let mut seq = ReferenceNet::new(g.clone(), Vec3::cube(2), 5).unwrap();
        let mut par = LayerwiseNet::new(g, Vec3::cube(2), 5).unwrap();
        let x = ops::random(seq.input_shape(), 6);
        let a = seq.forward(std::slice::from_ref(&x));
        let b = par.forward(&[x]);
        assert!(a[0].max_abs_diff(&b[0]) < 1e-5);
    }

    #[test]
    fn layerwise_matches_reference_after_training_steps() {
        let (g, _) = comparison_net(2, Vec3::flat(3, 3), Vec3::flat(2, 2), false);
        let mut seq = ReferenceNet::new(g.clone(), Vec3::flat(2, 2), 7).unwrap();
        let mut par = LayerwiseNet::new(g, Vec3::flat(2, 2), 7).unwrap();
        let x = ops::random(seq.input_shape(), 8);
        let t = Tensor3::<f32>::zeros(Vec3::flat(2, 2));
        for step in 0..5 {
            let la = seq.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.02);
            let lb = par.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.02);
            assert!(
                (la - lb).abs() < 1e-4 * (1.0 + la.abs()),
                "step {step}: {la} vs {lb}"
            );
        }
        assert!(seq.params().max_abs_diff(par.params()) < 1e-3);
    }

    #[test]
    fn sparse_training_runs_on_the_layerwise_engine() {
        let (g, _) = comparison_net(2, Vec3::flat(3, 3), Vec3::flat(2, 2), true);
        let mut net = LayerwiseNet::new(g, Vec3::flat(3, 3), 9).unwrap();
        let x = ops::random(net.input_shape(), 10);
        let t = Tensor3::<f32>::zeros(Vec3::flat(3, 3));
        let l0 = net.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.02);
        let mut l = l0;
        for _ in 0..20 {
            l = net.train_step(std::slice::from_ref(&x), std::slice::from_ref(&t), Loss::Mse, 0.02);
        }
        assert!(l < l0);
    }
}
