//! Power-of-two size-class arithmetic shared by both allocators.

/// Number of size classes; pool *i* holds chunks of 2^*i* units, exactly
/// as in the paper ("32 global pools of memory chunks ... of sizes 2^i").
pub const CLASS_COUNT: usize = 32;

/// The size class for a request of `size` units: the smallest `i` with
/// `2^i >= size`. A request of 0 maps to class 0 (a 1-unit chunk), which
/// keeps the free path uniform.
#[inline]
pub fn class_of(size: usize) -> usize {
    debug_assert!(
        size <= (1usize << (CLASS_COUNT - 1)),
        "request of {size} units exceeds the largest size class"
    );
    let size = size.max(1);
    (usize::BITS - (size - 1).leading_zeros()) as usize * usize::from(size > 1)
}

/// The chunk size (in units) of class `i`.
#[inline]
pub fn size_of_class(class: usize) -> usize {
    debug_assert!(class < CLASS_COUNT);
    1usize << class
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_round_up_to_powers_of_two() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(2), 1);
        assert_eq!(class_of(3), 2);
        assert_eq!(class_of(4), 2);
        assert_eq!(class_of(5), 3);
        assert_eq!(class_of(1024), 10);
        assert_eq!(class_of(1025), 11);
    }

    #[test]
    fn class_size_is_sufficient_and_tight() {
        for size in 1..10_000usize {
            let c = class_of(size);
            assert!(size_of_class(c) >= size, "class too small for {size}");
            if c > 0 {
                assert!(
                    size_of_class(c - 1) < size,
                    "class not tight for {size}: got {c}"
                );
            }
        }
    }

    #[test]
    fn worst_case_overhead_is_under_2x() {
        for size in 1..4096usize {
            let granted = size_of_class(class_of(size));
            assert!(granted < 2 * size, "overhead >= 2x for {size}");
        }
    }
}
