//! Typed lock-free recycling pools for tensor buffers.
//!
//! A [`BufferPool<T>`] keeps 32 power-of-two *capacity* classes of
//! `Vec<T>` buffers in crossbeam [`SegQueue`]s (the same Michael–Scott
//! non-blocking queue family the paper cites). Getting a buffer pops
//! from the class queue or allocates; returning a buffer pushes it
//! back. Nothing is ever freed, so steady-state traffic does no
//! allocation at all. The training engine reaches these pools through
//! [`PoolSet`](crate::PoolSet), which fronts one shared `f32` chunk
//! pool for both real and complex tensor buffers and hands out RAII
//! leases instead of requiring explicit `put` calls.

use crate::class::{class_of, size_of_class, CLASS_COUNT};
use crate::stats::PoolStats;
use crossbeam_queue::SegQueue;
use std::sync::atomic::{AtomicUsize, Ordering};
use znn_tensor::{Tensor3, Vec3};

/// One row of a per-size-class occupancy report
/// ([`BufferPool::class_report`]): which classes a workload actually
/// touches, how well each recycles, and how many chunks sit parked.
#[derive(Clone, Copy, Debug)]
pub struct ClassReport {
    /// Class index (chunk capacity is `2^class` elements).
    pub class: usize,
    /// Elements per chunk in this class.
    pub chunk_len: usize,
    /// Chunks currently parked (leased out ones are not counted).
    pub parked: usize,
    /// Leases of this class served by recycling.
    pub hits: usize,
    /// Leases of this class that touched the system allocator.
    pub misses: usize,
}

impl ClassReport {
    /// Fraction of this class's leases served by recycling.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A lock-free pool of `Vec<T>` buffers in power-of-two capacity classes.
pub struct BufferPool<T> {
    classes: Vec<SegQueue<Vec<T>>>,
    stats: PoolStats,
    class_hits: Vec<AtomicUsize>,
    class_misses: Vec<AtomicUsize>,
}

impl<T: Copy + Default> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            classes: (0..CLASS_COUNT).map(|_| SegQueue::new()).collect(),
            stats: PoolStats::new(),
            class_hits: (0..CLASS_COUNT).map(|_| AtomicUsize::new(0)).collect(),
            class_misses: (0..CLASS_COUNT).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Fetches a zero-filled buffer of exactly `len` elements whose
    /// capacity is `len` rounded up to a power of two.
    pub fn get(&self, len: usize) -> Vec<T> {
        let class = class_of(len);
        let bytes = size_of_class(class) * std::mem::size_of::<T>();
        match self.classes[class].pop() {
            Some(mut buf) => {
                self.stats.record_hit(bytes);
                self.class_hits[class].fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf.resize(len, T::default());
                buf
            }
            None => {
                self.stats.record_miss(bytes);
                self.class_misses[class].fetch_add(1, Ordering::Relaxed);
                let mut buf = Vec::with_capacity(size_of_class(class));
                buf.resize(len, T::default());
                buf
            }
        }
    }

    /// Like [`BufferPool::get`] but returns the buffer **empty**
    /// (length 0, class capacity reserved): for callers that overwrite
    /// the full length anyway — pooled tensor clones — skipping the
    /// zero-fill halves the memory traffic. Accounted exactly like
    /// [`BufferPool::get`].
    pub fn get_empty(&self, len: usize) -> Vec<T> {
        let class = class_of(len);
        let bytes = size_of_class(class) * std::mem::size_of::<T>();
        match self.classes[class].pop() {
            Some(mut buf) => {
                self.stats.record_hit(bytes);
                self.class_hits[class].fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => {
                self.stats.record_miss(bytes);
                self.class_misses[class].fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(size_of_class(class))
            }
        }
    }

    /// Per-class occupancy and hit-rate rows, skipping classes the
    /// workload never touched.
    pub fn class_report(&self) -> Vec<ClassReport> {
        (0..CLASS_COUNT)
            .filter_map(|class| {
                let hits = self.class_hits[class].load(Ordering::Relaxed);
                let misses = self.class_misses[class].load(Ordering::Relaxed);
                let parked = self.classes[class].len();
                if hits + misses + parked == 0 {
                    return None;
                }
                Some(ClassReport {
                    class,
                    chunk_len: size_of_class(class),
                    parked,
                    hits,
                    misses,
                })
            })
            .collect()
    }

    /// Returns a buffer to its class pool. Buffers whose capacity is not
    /// a power of two (i.e. not born from this pool) are classed by the
    /// largest power of two they can hold, so nothing is wasted.
    pub fn put(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        // Class the buffer by guaranteed capacity: the largest class c
        // with size_of_class(c) <= capacity.
        let class = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        let class = class.min(CLASS_COUNT - 1);
        self.stats
            .record_free(size_of_class(class) * std::mem::size_of::<T>());
        self.classes[class].push(buf);
    }

    /// Number of buffers currently parked in class `i`.
    pub fn parked_in_class(&self, class: usize) -> usize {
        self.classes[class].len()
    }

    /// Allocation counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }
}

impl<T: Copy + Default> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// The paper's "3D image" allocator: a [`BufferPool<f32>`] that speaks
/// tensors. `get` yields a zeroed image of the requested shape; `put`
/// recycles the image's backing buffer.
pub struct ImagePool {
    inner: BufferPool<f32>,
}

impl ImagePool {
    /// An empty image pool.
    pub fn new() -> Self {
        ImagePool {
            inner: BufferPool::new(),
        }
    }

    /// A zero-filled image of `shape`, reusing pooled storage when
    /// available.
    pub fn get(&self, shape: impl Into<Vec3>) -> Tensor3<f32> {
        let shape = shape.into();
        Tensor3::from_vec(shape, self.inner.get(shape.len()))
    }

    /// Recycles an image's storage.
    pub fn put(&self, image: Tensor3<f32>) {
        self.inner.put(image.into_vec());
    }

    /// Allocation counters.
    pub fn stats(&self) -> &PoolStats {
        &self.inner.stats
    }
}

impl Default for ImagePool {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn buffers_are_recycled_within_class() {
        let pool = BufferPool::<f32>::new();
        let a = pool.get(100); // class 7 (128)
        assert_eq!(a.len(), 100);
        assert!(a.capacity() >= 128);
        pool.put(a);
        let _b = pool.get(120); // also class 7 -> must hit
        assert_eq!(pool.stats().hits(), 1);
        assert_eq!(pool.stats().misses(), 1);
    }

    #[test]
    fn recycled_buffers_are_zeroed() {
        let pool = ImagePool::new();
        let mut img = pool.get(Vec3::cube(4));
        img.as_mut_slice().fill(7.0);
        pool.put(img);
        let img2 = pool.get(Vec3::cube(4));
        assert!(img2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn footprint_never_decreases_but_plateaus() {
        let pool = ImagePool::new();
        let mut footprints = vec![];
        for _round in 0..5 {
            // a training-like loop: allocate a working set, release it
            let imgs: Vec<_> = (1..6).map(|s| pool.get(Vec3::cube(s))).collect();
            for img in imgs {
                pool.put(img);
            }
            footprints.push(pool.stats().bytes_from_system());
        }
        // monotone...
        assert!(footprints.windows(2).all(|w| w[0] <= w[1]));
        // ...and flat after the first round ("memory usage peaks after a
        // few rounds", §VII-C)
        assert_eq!(footprints[1], footprints[4]);
    }

    #[test]
    fn different_classes_do_not_mix() {
        let pool = BufferPool::<f32>::new();
        pool.put(Vec::with_capacity(16)); // class 4
        let b = pool.get(1000); // class 10 -> miss
        assert_eq!(pool.stats().misses(), 1);
        assert_eq!(pool.stats().hits(), 0);
        drop(b);
        assert_eq!(pool.parked_in_class(4), 1);
    }

    #[test]
    fn class_report_tracks_only_touched_classes() {
        let pool = BufferPool::<f32>::new();
        let a = pool.get(100); // class 7: miss
        pool.put(a);
        let b = pool.get(120); // class 7: hit
        let c = pool.get(1000); // class 10: miss
        pool.put(b);
        pool.put(c);

        let report = pool.class_report();
        assert_eq!(report.len(), 2);
        let c7 = report.iter().find(|r| r.class == 7).unwrap();
        assert_eq!(c7.chunk_len, 128);
        assert_eq!((c7.hits, c7.misses, c7.parked), (1, 1, 1));
        assert!((c7.hit_rate() - 0.5).abs() < 1e-12);
        let c10 = report.iter().find(|r| r.class == 10).unwrap();
        assert_eq!((c10.hits, c10.misses, c10.parked), (0, 1, 1));
    }

    #[test]
    fn concurrent_get_put_is_safe_and_loses_nothing() {
        let pool = Arc::new(ImagePool::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let img = pool.get(Vec3::cube(1 + (t + i) % 7));
                        pool.put(img);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.stats().bytes_in_use(), 0);
        assert_eq!(pool.stats().hits() + pool.stats().misses(), 800);
    }
}
