//! The process-wide pooled-allocator handle the training stack leases
//! every hot-path buffer from.
//!
//! A [`PoolSet`] fronts **one** lock-free [`BufferPool`] of power-of-two
//! `f32` chunks with two [`BufferSource`] personalities:
//!
//! * a **real** home for `Tensor3<f32>` buffers (images, padded images,
//!   cropped outputs, dropout masks), and
//! * a **complex** home for `Tensor3<Complex32>` buffers (half-spectra,
//!   product spectra, FFT scratch), which leases `2·len` `f32` units
//!   and reinterprets the allocation in place — `Complex<f32>` is
//!   `#[repr(C)] { re: f32, im: f32 }`, so the layouts agree exactly.
//!
//! Sharing one chunk pool (rather than one typed pool per element) is
//! deliberate: the in-place c2r transform converts complex spectrum
//! buffers into real image buffers without copying, so with typed pools
//! every training round would *migrate* capacity from the complex pool
//! to the real pool and the complex pool would miss forever — the exact
//! footprint creep the paper's design rules out. With a single pool the
//! buffer simply comes back as so many `f32` units, whatever type it
//! left as, and the footprint plateaus after the first few rounds
//! (§VII-C). It also matches the paper more closely: the pools there
//! hold chunks of 2^i *bytes*, not typed objects.
//!
//! # Invariant: even capacities for complex leases
//!
//! Reinterpreting `Vec<f32>` ↔ `Vec<Complex32>` is only sound when the
//! `f32` capacity is even (`Layout::array::<f32>(2c)` ==
//! `Layout::array::<Complex32>(c)`). The chunk pool is private to the
//! `PoolSet` and every entry path preserves evenness where it matters:
//! complex leases request ≥ 2 units and so pop from classes ≥ 1, whose
//! pool-born chunks have power-of-two (even) capacity; the only odd
//! capacity a pool-born chunk can have is the 1-unit class 0, which
//! complex leases never touch; and buffers re-adopted after a c2r
//! conversion have capacity `2 · complex capacity`, even by
//! construction. The lease path still asserts the invariant rather than
//! trusting it.

use crate::pool::{BufferPool, ClassReport};
use crate::stats::PoolStats;
use std::sync::{Arc, OnceLock};
use znn_tensor::{BufferSource, Complex32, Image, Spectrum, Tensor3, Vec3};

impl<T: Copy + Default + Send + 'static> BufferSource<T> for BufferPool<T> {
    fn lease(&self, len: usize) -> Vec<T> {
        self.get(len)
    }

    fn lease_empty(&self, len: usize) -> Vec<T> {
        self.get_empty(len)
    }

    fn recycle(&self, buf: Vec<T>) {
        self.put(buf);
    }
}

/// The complex personality of a shared `f32` chunk pool: leases twice
/// the units and reinterprets the allocation in place.
struct ComplexChunks {
    chunks: Arc<BufferPool<f32>>,
}

impl BufferSource<Complex32> for ComplexChunks {
    fn lease(&self, len: usize) -> Vec<Complex32> {
        if len == 0 {
            return Vec::new();
        }
        let v = self.chunks.get(2 * len);
        // see the module docs: every buffer reachable from a ≥2-unit
        // request has even capacity; reinterpreting an odd-capacity
        // allocation would corrupt its layout on drop, so fail loudly
        // instead.
        assert!(
            v.capacity().is_multiple_of(2),
            "odd-capacity chunk ({}) reached a complex lease",
            v.capacity()
        );
        // SAFETY: Complex<f32> is #[repr(C)] { re: f32, im: f32 } —
        // size 8, align 4 — so with even f32 capacity 2c the allocation
        // layout Layout::array::<f32>(2c) equals
        // Layout::array::<Complex32>(c). All 2·len leased f32s are
        // zero-initialized, which is a valid (zero) Complex32 bit
        // pattern for each re/im pair.
        unsafe { reinterpret_vec::<f32, Complex32>(v) }
    }

    fn lease_empty(&self, len: usize) -> Vec<Complex32> {
        if len == 0 {
            return Vec::new();
        }
        let v = self.chunks.get_empty(2 * len);
        assert!(
            v.capacity().is_multiple_of(2),
            "odd-capacity chunk ({}) reached a complex lease",
            v.capacity()
        );
        // SAFETY: as in `lease`; the zero length covers no bytes.
        unsafe { reinterpret_vec::<f32, Complex32>(v) }
    }

    fn recycle(&self, buf: Vec<Complex32>) {
        if buf.capacity() == 0 {
            return;
        }
        // SAFETY: the reverse of `lease` — any complex capacity c maps
        // to the even f32 capacity 2c with an identical layout, and
        // every initialized Complex32 is two initialized f32s.
        self.chunks.put(unsafe { reinterpret_vec::<Complex32, f32>(buf) });
    }
}

/// Reinterprets a `Vec<A>` as a `Vec<B>` over the same allocation.
///
/// # Safety
///
/// The caller must guarantee that `Layout::array::<A>(capacity)` equals
/// `Layout::array::<B>(new capacity)` for the converted capacity (so
/// the eventual dealloc/realloc contract is preserved), that the
/// converted length covers only initialized bytes, and that every bit
/// pattern of those bytes is valid at type `B`. Both directions of the
/// `f32`/`Complex32` pair satisfy this when the `f32` capacity is even.
unsafe fn reinterpret_vec<A, B>(v: Vec<A>) -> Vec<B> {
    let (a, b) = (std::mem::size_of::<A>(), std::mem::size_of::<B>());
    debug_assert_eq!(std::mem::align_of::<A>(), std::mem::align_of::<B>());
    let mut v = std::mem::ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    debug_assert_eq!((len * a) % b, 0);
    debug_assert_eq!((cap * a) % b, 0);
    unsafe { Vec::from_raw_parts(ptr.cast::<B>(), len * a / b, cap * a / b) }
}

/// The paper's §VII-C pooled allocator as one shareable handle: the
/// thing `TrainConfig::pools` routes through the whole stack so every
/// hot-path tensor and spectrum buffer is leased, recycled, and never
/// returned to the OS.
///
/// Cloning the `Arc<PoolSet>` shares the pool; [`PoolSet::global`]
/// yields the process-wide instance the default `TrainConfig` uses.
/// All activity lands in a single [`PoolStats`], so hit rate, resident
/// bytes and per-round churn are read from one place.
///
/// # Example
///
/// ```
/// use znn_alloc::PoolSet;
/// use znn_tensor::Vec3;
///
/// let pools = PoolSet::new();
/// let img = pools.image(Vec3::cube(8));        // leased, zero-filled
/// drop(img);                                   // storage returns to the pool
/// let again = pools.image(Vec3::cube(8));      // same chunk, no allocation
/// assert_eq!(pools.stats().hits(), 1);
/// assert!(again.as_slice().iter().all(|&v| v == 0.0));
/// ```
pub struct PoolSet {
    chunks: Arc<BufferPool<f32>>,
    real: Arc<dyn BufferSource<f32>>,
    complex: Arc<dyn BufferSource<Complex32>>,
}

impl PoolSet {
    /// A fresh, empty pool set (its footprint grows on first use and
    /// then plateaus). Most callers want [`PoolSet::global`] instead so
    /// every engine in the process shares one footprint.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Arc<Self> {
        let chunks = Arc::new(BufferPool::<f32>::new());
        Arc::new(PoolSet {
            real: Arc::clone(&chunks) as Arc<dyn BufferSource<f32>>,
            complex: Arc::new(ComplexChunks {
                chunks: Arc::clone(&chunks),
            }),
            chunks,
        })
    }

    /// The process-wide pool set — what `TrainConfig::default()` plumbs
    /// into every engine, so all training runs in the process share one
    /// flat footprint.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<PoolSet>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(PoolSet::new))
    }

    /// The [`BufferSource`] for real (`f32`) tensor buffers.
    pub fn real_home(&self) -> &Arc<dyn BufferSource<f32>> {
        &self.real
    }

    /// The [`BufferSource`] for complex tensor buffers (spectra and FFT
    /// scratch).
    pub fn complex_home(&self) -> &Arc<dyn BufferSource<Complex32>> {
        &self.complex
    }

    /// A zero-filled leased image: drops recycle its storage here.
    pub fn image(&self, shape: impl Into<Vec3>) -> Image {
        Tensor3::leased(shape, Arc::clone(&self.real))
    }

    /// A zero-filled leased complex tensor.
    pub fn cimage(&self, shape: impl Into<Vec3>) -> Tensor3<Complex32> {
        Tensor3::leased(shape, Arc::clone(&self.complex))
    }

    /// An all-zero leased half-spectrum for a transform of shape `full`.
    pub fn spectrum(&self, full: Vec3) -> Spectrum {
        Spectrum::new(self.cimage(Spectrum::half_shape(full)), full)
    }

    /// The shared counters of the underlying chunk pool. Byte figures
    /// count `f32` units × 4 regardless of which personality leased the
    /// chunk.
    pub fn stats(&self) -> &PoolStats {
        self.chunks.stats()
    }

    /// Bytes currently resident in the pool's custody — the process
    /// footprint attributable to pooled buffers. Never decreases
    /// (nothing is returned to the OS); plateaus once the steady-state
    /// working set has been seen (§VII-C).
    pub fn resident_bytes(&self) -> usize {
        self.stats().bytes_from_system()
    }

    /// Per-size-class occupancy and hit-rate rows for the shared chunk
    /// pool (`--pool-report`). `chunk_len` counts `f32` units; complex
    /// leases appear in the class of their `2 × len` real footprint.
    pub fn class_report(&self) -> Vec<ClassReport> {
        self.chunks.class_report()
    }

    /// Fraction of leases served by recycling, `0.0` on an unused pool.
    /// Approaches 1.0 once training reaches its steady state.
    pub fn hit_rate(&self) -> f64 {
        let h = self.stats().hits();
        let m = self.stats().misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// A zero-filled image leased from `pools` when present, plainly
/// allocated otherwise — the one shared "pool or fallback" helper the
/// engine layers (`znn-fft`, `znn-core`, `znn-ops`) route their
/// optional pooling through, so lease semantics can only change in one
/// place.
pub fn lease_image(pools: Option<&Arc<PoolSet>>, shape: impl Into<Vec3>) -> Image {
    match pools {
        Some(p) => p.image(shape),
        None => Image::zeros(shape),
    }
}

/// Complex twin of [`lease_image`].
pub fn lease_cimage(
    pools: Option<&Arc<PoolSet>>,
    shape: impl Into<Vec3>,
) -> Tensor3<Complex32> {
    match pools {
        Some(p) => p.cimage(shape),
        None => Tensor3::zeros(shape),
    }
}

impl std::fmt::Debug for PoolSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolSet")
            .field("resident_bytes", &self.resident_bytes())
            .field("bytes_in_use", &self.stats().bytes_in_use())
            .field("hits", &self.stats().hits())
            .field("misses", &self.stats().misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_and_cimage_leases_are_zeroed_and_recycled() {
        let pools = PoolSet::new();
        let mut img = pools.image(Vec3::cube(4));
        img.as_mut_slice().fill(3.5);
        drop(img);
        let img2 = pools.image(Vec3::cube(4));
        assert!(img2.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(pools.stats().hits(), 1);

        let mut c = pools.cimage(Vec3::cube(3));
        c.as_mut_slice().fill(Complex32::new(1.0, -1.0));
        drop(c);
        let c2 = pools.cimage(Vec3::cube(3));
        assert!(c2.as_slice().iter().all(|&v| v == Complex32::new(0.0, 0.0)));
    }

    #[test]
    fn real_and_complex_leases_share_one_chunk_pool() {
        let pools = PoolSet::new();
        // a complex lease of 25 bins asks for 50 f32 units -> class 6 (64)
        drop(pools.cimage(Vec3::new(1, 1, 25)));
        let before = pools.resident_bytes();
        // a real lease of 60 voxels is the same class -> must hit
        drop(pools.image(Vec3::new(1, 1, 60)));
        assert_eq!(pools.resident_bytes(), before);
        assert_eq!(pools.stats().hits(), 1);
    }

    #[test]
    fn complex_round_trip_preserves_contents_bit_for_bit() {
        let pools = PoolSet::new();
        let mut c = pools.cimage(Vec3::new(2, 3, 4));
        for (i, v) in c.as_mut_slice().iter_mut().enumerate() {
            *v = Complex32::new(i as f32, -(i as f32) * 0.5);
        }
        let copy = c.clone(); // pooled clone: fresh lease + copy
        assert_eq!(copy, c);
        assert!(copy.home().is_some());
        for (i, v) in copy.as_slice().iter().enumerate() {
            assert_eq!(v.re.to_bits(), (i as f32).to_bits());
            assert_eq!(v.im.to_bits(), (-(i as f32) * 0.5).to_bits());
        }
    }

    #[test]
    fn one_voxel_images_never_feed_complex_leases() {
        // class-0 chunks (capacity 1, the only odd pool-born capacity)
        // must never be popped by a complex lease, which always asks
        // for >= 2 units
        let pools = PoolSet::new();
        drop(pools.image(Vec3::one())); // parks a 1-unit chunk in class 0
        let c = pools.cimage(Vec3::one()); // asks for 2 units -> class 1 miss
        assert_eq!(pools.stats().misses(), 2);
        assert_eq!(pools.stats().hits(), 0);
        drop(c);
    }

    #[test]
    fn spectrum_leases_carry_the_logical_shape() {
        let pools = PoolSet::new();
        let s = pools.spectrum(Vec3::cube(8));
        assert_eq!(s.full_shape(), Vec3::cube(8));
        assert_eq!(s.half().shape(), Spectrum::half_shape(Vec3::cube(8)));
        assert!(s.half().home().is_some());
    }

    #[test]
    fn concurrent_lease_recycle_race_conserves_accounting() {
        // the multi-worker recycle race: four threads lease and drop
        // real and complex buffers of overlapping size classes through
        // one shared PoolSet; afterwards nothing may still be counted
        // in use, and every lease must be accounted a hit or a miss
        let pools = PoolSet::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let pools = Arc::clone(&pools);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        let n = 1 + (t + i) % 6;
                        let img = pools.image(Vec3::cube(n));
                        let spec = pools.spectrum(Vec3::cube(n + 1));
                        let c = spec.half().clone(); // pooled clone race
                        drop(spec);
                        drop(img);
                        drop(c);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pools.stats().bytes_in_use(), 0);
        assert_eq!(pools.stats().hits() + pools.stats().misses(), 4 * 250 * 3);
        // a second identical pass over a warm pool allocates nothing
        let resident = pools.resident_bytes();
        let misses = pools.stats().misses();
        for t in 0..4 {
            for i in 0..250 {
                let n = 1 + (t + i) % 6;
                drop(pools.image(Vec3::cube(n)));
                drop(pools.spectrum(Vec3::cube(n + 1)));
            }
        }
        assert_eq!(pools.resident_bytes(), resident, "footprint grew after warmup");
        assert_eq!(pools.stats().misses(), misses, "cold lease after warmup");
    }

    #[test]
    fn global_pool_is_shared() {
        let a = PoolSet::global();
        let b = PoolSet::global();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
