//! Pooled power-of-two memory allocators (ZNN paper §VII-C).
//!
//! ZNN avoids the cost of general-purpose `malloc` on its hot path with
//! two custom allocators — one for large 3D images, one for the small
//! objects of auxiliary data structures. Each keeps **32 global pools of
//! memory chunks**, pool *i* holding chunks of exactly 2^*i* bytes,
//! backed by non-blocking queues. Requests round up to the next power of
//! two; frees push the chunk back onto its pool; **memory is never
//! returned to the operating system**, so the process footprint peaks
//! after a few training rounds and stays flat (at a worst-case ≈2×
//! overhead).
//!
//! This crate reproduces that design at three levels:
//!
//! * [`PoolSet`] — **what the training engine uses.** One shared,
//!   lock-free chunk pool wearing two `znn_tensor::BufferSource` faces
//!   (real and complex), so every hot-path `Tensor3`/`Spectrum` buffer
//!   — padded images, half-spectra, product spectra, FFT scratch,
//!   cropped outputs, dropout masks — is *leased* and returns to the
//!   pool when the tensor drops (an RAII lease; see
//!   `znn_tensor::storage`). `TrainConfig::pools` routes the process-
//!   wide [`PoolSet::global`] through `FftEngine`, `znn-core` and the
//!   `znn-ops` convolvers, making steady-state training rounds
//!   allocation-free.
//! * [`ImagePool`] / [`BufferPool`] — the typed, lock-free (crossbeam
//!   [`SegQueue`](crossbeam_queue::SegQueue)) recycling pools the
//!   `PoolSet` is built from, also usable directly with explicit
//!   `get`/`put`.
//! * [`PooledAlloc`] — a real [`std::alloc::GlobalAlloc`] with the
//!   paper's exact pool structure, usable as `#[global_allocator]`. Its
//!   free lists are *intrusive* (the freed chunk stores the next
//!   pointer), so the allocator never allocates on its own behalf; each
//!   size class is guarded by a spin lock rather than the paper's
//!   lock-free queue because a lock-free queue would itself need to
//!   allocate nodes. The observable behaviour — O(1) recycle,
//!   power-of-2 classes, never shrinking — is identical.
//!
//! All report [`PoolStats`] — hits, misses, resident and churn bytes —
//! so the §IX-B memory experiments (and `RoundStats` / `BENCH_fft.json`
//! telemetry) can account for working-set size and allocation traffic.

#![warn(missing_docs)]

mod class;
mod global;
mod local;
mod pool;
mod set;
mod stats;

pub use class::{class_of, size_of_class, CLASS_COUNT};
pub use global::PooledAlloc;
pub use local::LocalCache;
pub use pool::{BufferPool, ClassReport, ImagePool};
pub use set::{lease_cimage, lease_image, PoolSet};
pub use stats::PoolStats;
