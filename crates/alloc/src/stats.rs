//! Allocation accounting used by the §IX-B memory experiments.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Monotonic counters describing a pool's behaviour.
///
/// `bytes_from_system` never decreases — the paper's allocators never
/// return memory to the OS — so it equals the peak footprint attributable
/// to the pool. `bytes_in_use` tracks live chunks; the difference is the
/// recycling reserve.
#[derive(Debug, Default)]
pub struct PoolStats {
    bytes_from_system: AtomicUsize,
    bytes_in_use: AtomicUsize,
    peak_bytes_in_use: AtomicUsize,
    bytes_leased: AtomicUsize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PoolStats {
    /// A zeroed counter set.
    pub const fn new() -> Self {
        PoolStats {
            bytes_from_system: AtomicUsize::new(0),
            bytes_in_use: AtomicUsize::new(0),
            peak_bytes_in_use: AtomicUsize::new(0),
            bytes_leased: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Records a pool hit (chunk recycled) of `bytes`.
    pub fn record_hit(&self, bytes: usize) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.grow_in_use(bytes);
    }

    /// Records a pool miss (chunk fetched from the system) of `bytes`.
    pub fn record_miss(&self, bytes: usize) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.bytes_from_system.fetch_add(bytes, Ordering::Relaxed);
        self.grow_in_use(bytes);
    }

    /// Records a chunk of `bytes` going back on the pool. Saturates at
    /// zero, so a donated (never-leased) buffer cannot drive the
    /// counter negative — but while other leases are live it *does*
    /// make `bytes_in_use` under-count by the donated class size, so
    /// accounting-exact callers must only return buffers whose lease
    /// was recorded here (the engine's `irfft3` re-adoption checks
    /// pool identity for exactly this reason; manual
    /// `BufferPool::put` donations trade a little accuracy for
    /// convenience).
    pub fn record_free(&self, bytes: usize) {
        let _ = self
            .bytes_in_use
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(bytes))
            });
    }

    fn grow_in_use(&self, bytes: usize) {
        self.bytes_leased.fetch_add(bytes, Ordering::Relaxed);
        let now = self.bytes_in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes_in_use.fetch_max(now, Ordering::Relaxed);
    }

    /// Total bytes ever obtained from the system allocator (== footprint,
    /// since nothing is ever given back).
    pub fn bytes_from_system(&self) -> usize {
        self.bytes_from_system.load(Ordering::Relaxed)
    }

    /// Bytes currently handed out to callers.
    pub fn bytes_in_use(&self) -> usize {
        self.bytes_in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of [`PoolStats::bytes_in_use`].
    pub fn peak_bytes_in_use(&self) -> usize {
        self.peak_bytes_in_use.load(Ordering::Relaxed)
    }

    /// Cumulative bytes handed out over the pool's lifetime (hits and
    /// misses alike) — the **allocation churn** the pool absorbs. The
    /// per-round delta of this counter is what the benches quote as
    /// "bytes moved per round"; with a warm pool the same churn costs
    /// zero system allocation.
    pub fn bytes_leased(&self) -> usize {
        self.bytes_leased.load(Ordering::Relaxed)
    }

    /// Number of requests served by recycling.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of requests that had to touch the system allocator.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_a_simple_lifecycle() {
        let s = PoolStats::new();
        s.record_miss(64);
        assert_eq!(s.bytes_from_system(), 64);
        assert_eq!(s.bytes_in_use(), 64);
        s.record_free(64);
        assert_eq!(s.bytes_in_use(), 0);
        s.record_hit(64);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses(), 1);
        // footprint did not grow on the hit
        assert_eq!(s.bytes_from_system(), 64);
        assert_eq!(s.peak_bytes_in_use(), 64);
    }

    #[test]
    fn peak_tracks_high_water() {
        let s = PoolStats::new();
        s.record_miss(10);
        s.record_miss(30); // high water: 40
        s.record_free(30);
        s.record_hit(10); // back to 20, peak unchanged
        assert_eq!(s.peak_bytes_in_use(), 40);
        assert_eq!(s.bytes_in_use(), 20);
    }

    #[test]
    fn free_saturates_at_zero() {
        let s = PoolStats::new();
        s.record_free(100);
        assert_eq!(s.bytes_in_use(), 0);
    }
}
