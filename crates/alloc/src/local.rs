//! Thread-local pool caches — the §VII-C "future work" extension
//! ("allocators with thread-local pools in addition to the global
//! pool").
//!
//! A [`LocalCache`] is owned by one worker thread and fronts the shared
//! [`ImagePool`]: gets try the local stash first (no synchronization at
//! all), puts go local until a per-class cap, overflowing to the global
//! pool. Buffers recycled by the same worker stay cache-warm.

use crate::class::{class_of, CLASS_COUNT};
use crate::pool::ImagePool;
use std::sync::Arc;
use znn_tensor::{Tensor3, Vec3};

/// A per-thread front for a shared [`ImagePool`].
pub struct LocalCache {
    shared: Arc<ImagePool>,
    stash: Vec<Vec<Vec<f32>>>,
    cap_per_class: usize,
    local_hits: usize,
    shared_trips: usize,
}

impl LocalCache {
    /// A cache holding up to `cap_per_class` parked buffers per size
    /// class before spilling to `shared`.
    pub fn new(shared: Arc<ImagePool>, cap_per_class: usize) -> Self {
        LocalCache {
            shared,
            stash: (0..CLASS_COUNT).map(|_| Vec::new()).collect(),
            cap_per_class,
            local_hits: 0,
            shared_trips: 0,
        }
    }

    /// A zero-filled image, preferring thread-local storage.
    pub fn get(&mut self, shape: impl Into<Vec3>) -> Tensor3<f32> {
        let shape = shape.into();
        let class = class_of(shape.len());
        if let Some(mut buf) = self.stash[class].pop() {
            self.local_hits += 1;
            buf.clear();
            buf.resize(shape.len(), 0.0);
            return Tensor3::from_vec(shape, buf);
        }
        self.shared_trips += 1;
        self.shared.get(shape)
    }

    /// Recycles an image locally, spilling to the shared pool when the
    /// class stash is full.
    pub fn put(&mut self, image: Tensor3<f32>) {
        let buf = image.into_vec();
        if buf.capacity() == 0 {
            return;
        }
        let class = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        let class = class.min(CLASS_COUNT - 1);
        if self.stash[class].len() < self.cap_per_class {
            self.stash[class].push(buf);
        } else {
            self.shared.put(Tensor3::from_vec(Vec3::new(1, 1, buf.len()), buf));
        }
    }

    /// Gets served without touching the shared pool.
    pub fn local_hits(&self) -> usize {
        self.local_hits
    }

    /// Gets that had to visit the shared pool.
    pub fn shared_trips(&self) -> usize {
        self.shared_trips
    }

    /// Returns every stashed buffer to the shared pool (called when a
    /// worker retires).
    pub fn drain(&mut self) {
        for class in &mut self.stash {
            for buf in class.drain(..) {
                let len = buf.len().max(1);
                let mut buf = buf;
                buf.resize(len, 0.0);
                self.shared.put(Tensor3::from_vec(Vec3::new(1, 1, len), buf));
            }
        }
    }
}

impl Drop for LocalCache {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_round_trip_avoids_the_shared_pool() {
        let shared = Arc::new(ImagePool::new());
        let mut local = LocalCache::new(Arc::clone(&shared), 4);
        let img = local.get(Vec3::cube(4)); // miss -> shared
        local.put(img);
        for _ in 0..5 {
            let img = local.get(Vec3::cube(4));
            local.put(img);
        }
        assert_eq!(local.shared_trips(), 1);
        assert_eq!(local.local_hits(), 5);
        // the shared pool saw only the very first miss
        assert_eq!(shared.stats().misses(), 1);
    }

    #[test]
    fn overflow_spills_to_shared() {
        let shared = Arc::new(ImagePool::new());
        let mut local = LocalCache::new(Arc::clone(&shared), 1);
        let a = local.get(Vec3::cube(4));
        let b = local.get(Vec3::cube(4));
        local.put(a); // fills the class stash
        local.put(b); // spills
        // one buffer still parked locally, one returned to the pool
        assert_eq!(shared.stats().bytes_in_use(), 256);
        // shared pool now holds the spilled buffer for other threads
        let hits_before = shared.stats().hits();
        let _ = shared.get(Vec3::cube(4));
        assert_eq!(shared.stats().hits(), hits_before + 1);
    }

    #[test]
    fn drain_returns_everything_on_drop() {
        let shared = Arc::new(ImagePool::new());
        {
            let mut local = LocalCache::new(Arc::clone(&shared), 8);
            for _ in 0..3 {
                let img = local.get(Vec3::cube(2));
                local.put(img);
            }
            let img = local.get(Vec3::cube(2));
            local.put(img);
        } // drop drains
        let hits_before = shared.stats().hits();
        let _ = shared.get(Vec3::cube(2));
        assert!(shared.stats().hits() > hits_before, "stash was not drained");
    }

    #[test]
    fn zeroing_is_preserved_through_local_recycling() {
        let shared = Arc::new(ImagePool::new());
        let mut local = LocalCache::new(shared, 2);
        let mut img = local.get(Vec3::cube(3));
        img.as_mut_slice().fill(9.0);
        local.put(img);
        let img2 = local.get(Vec3::cube(3));
        assert!(img2.as_slice().iter().all(|&v| v == 0.0));
    }
}
