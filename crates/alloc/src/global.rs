//! A drop-in `GlobalAlloc` with the paper's pool structure.
//!
//! [`PooledAlloc`] rounds every request up to a power of two, serves it
//! from one of 32 per-class free lists, and never returns memory to the
//! system (§VII-C). The free lists are *intrusive*: a freed chunk's first
//! word stores the next-chunk pointer, so the allocator needs no heap of
//! its own — the property that lets it implement
//! [`std::alloc::GlobalAlloc`] without recursing into itself. Each class
//! is guarded by a spin lock held only for two pointer writes; the paper
//! used boost lock-free queues instead, which is noted as a substitution
//! in DESIGN.md (a node-based lock-free queue cannot be used *inside* a
//! global allocator because pushing a node allocates).

use crate::class::{class_of, size_of_class, CLASS_COUNT};
use crate::stats::PoolStats;
use std::alloc::{GlobalAlloc, Layout, System};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// Minimum alignment served. The image allocator in the paper guarantees
/// SIMD-friendly alignment; 64 bytes covers AVX-512 and cache lines.
pub const MIN_ALIGN: usize = 64;

struct ClassList {
    head: AtomicPtr<u8>,
    lock: AtomicBool,
}

impl ClassList {
    const fn new() -> Self {
        ClassList {
            head: AtomicPtr::new(ptr::null_mut()),
            lock: AtomicBool::new(false),
        }
    }

    #[inline]
    fn with_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let r = f();
        self.lock.store(false, Ordering::Release);
        r
    }
}

/// Pool-backed global allocator; see the module docs.
///
/// ```
/// use znn_alloc::PooledAlloc;
/// use std::alloc::{GlobalAlloc, Layout};
///
/// let alloc = PooledAlloc::new();
/// let layout = Layout::from_size_align(100, 8).unwrap();
/// // SAFETY: layout is non-zero-sized and the pointer is freed with the
/// // same layout below.
/// unsafe {
///     let p = alloc.alloc(layout);
///     assert!(!p.is_null());
///     alloc.dealloc(p, layout);
///     let q = alloc.alloc(layout); // recycled, no system call
///     assert_eq!(p, q);
///     alloc.dealloc(q, layout);
/// }
/// ```
pub struct PooledAlloc {
    classes: [ClassList; CLASS_COUNT],
    stats: PoolStats,
}

impl PooledAlloc {
    /// A fresh allocator with empty pools.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed only
        const EMPTY: ClassList = ClassList::new();
        PooledAlloc {
            classes: [EMPTY; CLASS_COUNT],
            stats: PoolStats::new(),
        }
    }

    /// Allocation counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    #[inline]
    fn chunk_class(layout: Layout) -> (usize, Layout) {
        // Round the request up so the chunk can satisfy both the size and
        // the alignment; serve everything at MIN_ALIGN so a chunk can be
        // recycled across callers with smaller alignment needs.
        let size = layout.size().max(layout.align()).max(MIN_ALIGN);
        let class = class_of(size);
        // SAFETY (validity): size_of_class(class) is a power of two >=
        // MIN_ALIGN and MIN_ALIGN is a valid alignment.
        let chunk = Layout::from_size_align(size_of_class(class), MIN_ALIGN)
            .expect("power-of-two chunk layout is always valid");
        (class, chunk)
    }
}

impl Default for PooledAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: alloc returns either a recycled chunk that was handed out for
// the same size class (so it is at least as large and aligned as the
// request after the rounding in `chunk_class`) or a fresh System
// allocation of the chunk layout. dealloc never frees — it parks the
// chunk on the class free list, storing the next pointer in the chunk
// body, which is sound because the chunk is unused and at least
// pointer-sized (MIN_ALIGN >= 8). All list manipulation happens under the
// per-class spin lock.
unsafe impl GlobalAlloc for PooledAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let (class, chunk) = Self::chunk_class(layout);
        let list = &self.classes[class];
        let recycled = list.with_lock(|| {
            let head = list.head.load(Ordering::Relaxed);
            if head.is_null() {
                ptr::null_mut()
            } else {
                // SAFETY: head points at a parked chunk whose first word
                // is the next pointer we wrote in dealloc.
                let next = unsafe { *(head as *mut *mut u8) };
                list.head.store(next, Ordering::Relaxed);
                head
            }
        });
        if !recycled.is_null() {
            self.stats.record_hit(chunk.size());
            return recycled;
        }
        self.stats.record_miss(chunk.size());
        // SAFETY: chunk has non-zero size.
        unsafe { System.alloc(chunk) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let (class, chunk) = Self::chunk_class(layout);
        self.stats.record_free(chunk.size());
        let list = &self.classes[class];
        list.with_lock(|| {
            let head = list.head.load(Ordering::Relaxed);
            // SAFETY: the chunk is at least MIN_ALIGN bytes, unused by the
            // caller after dealloc, and aligned for a pointer store.
            unsafe { *(ptr as *mut *mut u8) = head };
            list.head.store(ptr, Ordering::Relaxed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize) -> Layout {
        Layout::from_size_align(size, 8).unwrap()
    }

    #[test]
    fn allocates_and_recycles_same_chunk() {
        let a = PooledAlloc::new();
        unsafe {
            let p = a.alloc(layout(100));
            assert!(!p.is_null());
            assert_eq!(p as usize % MIN_ALIGN, 0, "not SIMD aligned");
            a.dealloc(p, layout(100));
            let q = a.alloc(layout(90)); // same class (128)
            assert_eq!(p, q, "chunk was not recycled");
            a.dealloc(q, layout(90));
        }
        assert_eq!(a.stats().misses(), 1);
        assert_eq!(a.stats().hits(), 1);
    }

    #[test]
    fn different_classes_get_different_chunks() {
        let a = PooledAlloc::new();
        unsafe {
            let p = a.alloc(layout(100));
            a.dealloc(p, layout(100));
            let q = a.alloc(layout(5000));
            assert_ne!(p, q);
            a.dealloc(q, layout(5000));
        }
        assert_eq!(a.stats().misses(), 2);
    }

    #[test]
    fn footprint_is_flat_in_steady_state() {
        let a = PooledAlloc::new();
        let mut footprint = vec![];
        for _ in 0..4 {
            unsafe {
                let ptrs: Vec<_> = (6..14).map(|i| (a.alloc(layout(1 << i)), 1 << i)).collect();
                for (p, s) in ptrs {
                    a.dealloc(p, layout(s));
                }
            }
            footprint.push(a.stats().bytes_from_system());
        }
        assert_eq!(footprint[0], footprint[3]);
    }

    #[test]
    fn lifo_reuse_order() {
        let a = PooledAlloc::new();
        unsafe {
            let p1 = a.alloc(layout(64));
            let p2 = a.alloc(layout(64));
            a.dealloc(p1, layout(64));
            a.dealloc(p2, layout(64));
            // LIFO: last freed comes back first (cache-warm reuse)
            assert_eq!(a.alloc(layout(64)), p2);
            assert_eq!(a.alloc(layout(64)), p1);
            a.dealloc(p1, layout(64));
            a.dealloc(p2, layout(64));
        }
    }

    #[test]
    fn concurrent_stress_preserves_chunk_disjointness() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let a = Arc::new(PooledAlloc::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut live: Vec<(*mut u8, usize)> = vec![];
                    let mut seen = HashSet::new();
                    for i in 0..500usize {
                        let size = 64 + (i % 5) * 64;
                        unsafe {
                            let p = a.alloc(layout(size));
                            // no two *live* chunks may alias in this thread
                            assert!(seen.insert(p as usize) || !live.iter().any(|l| l.0 == p));
                            live.push((p, size));
                            if live.len() > 8 {
                                let (q, s) = live.remove(0);
                                a.dealloc(q, layout(s));
                            }
                        }
                    }
                    for (p, s) in live {
                        unsafe { a.dealloc(p, layout(s)) };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.stats().bytes_in_use(), 0);
    }
}
