//! Minimal offline stand-in for the `crossbeam-queue` crate.
//!
//! Provides [`SegQueue`] — an unbounded MPMC FIFO queue. Upstream is a
//! lock-free segmented queue; this shim is a mutex-guarded `VecDeque`
//! with the same API, which the allocator's recycling pools tolerate
//! (pool operations are rare relative to the work they amortize).

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// An unbounded MPMC FIFO queue.
#[derive(Debug)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// A new empty queue.
    pub fn new() -> Self {
        SegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a value onto the tail.
    pub fn push(&self, value: T) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(value);
    }

    /// Pops the head value, if any.
    pub fn pop(&self) -> Option<T> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// Number of queued values.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_len() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
