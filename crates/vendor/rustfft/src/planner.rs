//! The planner: routes each length to a kernel family.
//!
//! * 5-smooth lengths (`2^a·3^b·5^c ≥ 2`) → the iterative mixed-radix
//!   Stockham kernels ([`crate::stockham`]);
//! * everything else (lengths with a prime factor > 5, and the
//!   degenerate lengths 0/1) → the recursive fallback
//!   ([`crate::recursive`]).
//!
//! The workspace's `good_shape` only produces 5-smooth extents, so in
//! production every planned line transform is a Stockham plan.

use crate::recursive::MixedRadix;
use crate::stockham::Stockham;
use crate::{Fft, FftDirection};
use std::sync::Arc;

/// True when `n ≥ 1` has no prime factor larger than 5 — the lengths
/// the iterative Stockham engine can factor into {4, 3, 5, 2} stages.
pub(crate) fn is_5_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// Plans FFTs. The workspace caches plans itself, so this planner does
/// not memoize.
pub struct FftPlanner<T> {
    _marker: std::marker::PhantomData<T>,
}

impl FftPlanner<f32> {
    /// A new planner.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        FftPlanner {
            _marker: std::marker::PhantomData,
        }
    }

    /// Plan a forward FFT of `len`.
    pub fn plan_fft_forward(&mut self, len: usize) -> Arc<dyn Fft<f32>> {
        self.plan_fft(len, FftDirection::Forward)
    }

    /// Plan an inverse FFT of `len`.
    pub fn plan_fft_inverse(&mut self, len: usize) -> Arc<dyn Fft<f32>> {
        self.plan_fft(len, FftDirection::Inverse)
    }

    /// Plan a transform in the given direction: the iterative
    /// mixed-radix Stockham kernels for every 5-smooth length, the
    /// generic recursive fallback for lengths with prime factors
    /// larger than 5.
    pub fn plan_fft(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft<f32>> {
        if len >= 2 && is_5_smooth(len) {
            Arc::new(Stockham::new(len, direction))
        } else {
            Arc::new(MixedRadix::new(len, direction))
        }
    }

    /// Plan the generic *recursive mixed-radix* transform regardless of
    /// length. Shim-only extra: the old hot path, kept as the
    /// correctness/performance baseline the `fft_kernels` and
    /// `fft_traffic` benches compare the Stockham kernels against.
    pub fn plan_fft_recursive(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft<f32>> {
        Arc::new(MixedRadix::new(len, direction))
    }

    /// Plan like [`plan_fft`](Self::plan_fft) but with the Stockham
    /// kernels pinned to their scalar per-line path even when the host
    /// has AVX2. Shim-only extra: the differential-test and bench
    /// baseline the batched SIMD lines are compared against (output is
    /// bitwise identical either way).
    pub fn plan_fft_scalar(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft<f32>> {
        if len >= 2 && is_5_smooth(len) {
            Arc::new(Stockham::new_scalar(len, direction))
        } else {
            Arc::new(MixedRadix::new(len, direction))
        }
    }
}
