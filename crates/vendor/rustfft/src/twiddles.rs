//! Twiddle-table construction shared by both kernel families.
//!
//! Tables are computed in `f64` and rounded once to `f32`, so every
//! plan of the same length and direction carries bit-identical
//! twiddles — one of the ingredients of the engine-level determinism
//! contract (the other being fixed stage order and chunk-independent
//! butterflies).

use num_complex::Complex;

/// Per-stage Stockham table: the tuples
/// `(w^p, w^{2p}, …, w^{(radix−1)·p})` for `p ∈ 0..n_cur/radix`, stored
/// contiguously in inner-loop order with `w = e^{sign·2πi/n_cur}`.
///
/// The butterfly for output `j` of digit `p` multiplies by `w^{j·p}`,
/// so a stage streams this table linearly — one `radix−1` tuple per
/// `p` — instead of striding a shared full-length table.
pub(crate) fn stage_table(n_cur: usize, radix: usize, sign: f64) -> Vec<Complex<f32>> {
    let n1 = n_cur / radix;
    let step = sign * 2.0 * std::f64::consts::PI / n_cur as f64;
    let mut tw = Vec::with_capacity((radix - 1) * n1);
    for p in 0..n1 {
        for j in 1..radix {
            let ang = step * (j * p) as f64;
            tw.push(Complex::new(ang.cos() as f32, ang.sin() as f32));
        }
    }
    tw
}

/// Full-length table `w^t = e^{sign·2πi·t/len}` for `t ∈ 0..len`, used
/// by the recursive fallback (which indexes twiddles modulo `len`
/// across all recursion depths). `len == 0` yields the 1-entry table
/// of the degenerate length-0/1 plan.
pub(crate) fn full_table(len: usize, sign: f64) -> Vec<Complex<f32>> {
    (0..len.max(1))
        .map(|t| {
            let ang = sign * 2.0 * std::f64::consts::PI * t as f64 / len.max(1) as f64;
            Complex::new(ang.cos() as f32, ang.sin() as f32)
        })
        .collect()
}
