//! Iterative mixed-radix Stockham autosort kernels for 5-smooth
//! lengths.
//!
//! Decimation in frequency. Each stage maps a sub-transform length
//! `n_cur` (starting at `n`, shrinking by the stage's radix) and a
//! batch stride `s` (starting at 1, growing by the radix) over the
//! data, writing the permuted output of the butterfly directly — the
//! "autosort": no bit/digit-reversal pass, every read and write is
//! unit-stride within an inner loop of `s` consecutive elements. Data
//! ping-pongs between the caller's chunk and the scratch buffer; an
//! odd stage count is fixed with one final copy.
//!
//! A stage of radix `r` (current length `n_cur`, `n1 = n_cur/r`)
//! computes, for `p ∈ [0, n1)` and `q ∈ [0, s)`:
//!
//! ```text
//! x_m = src[q + s·(p + m·n1)],          m = 0..r
//! dst[q + s·(r·p + j)] = w^{j·p} · Σ_m x_m · w_r^{j·m},   j = 0..r
//! ```
//!
//! with `w = e^{∓2πi/n_cur}` and `w_r = e^{∓2πi/r}` (sign per
//! direction). The `w_r^{j·m}` factors are folded into hardcoded
//! butterflies (radix 2/3/4/5 below); the `w^{j·p}` factors stream
//! from a per-stage table in `p` order ([`crate::twiddles::stage_table`]).
//!
//! # Stage planning
//!
//! [`plan_stages`] factors a 5-smooth `n = 2^a·3^b·5^c` into the stage
//! sequence `⌊a/2⌋ × radix-4`, then `b × radix-3`, then `c × radix-5`,
//! and — when `a` is odd — one trailing radix-2 stage. Running the
//! radix-2 stage last keeps it twiddle-free for pure powers of two
//! (`n_cur == 2` has the single digit `p = 0`, whose twiddle is 1), so
//! the 2^k stage sequences and arithmetic are unchanged from the
//! radix-4/2-only engine. Lengths with prime factors larger than 5
//! stay on the recursive fallback ([`crate::recursive::MixedRadix`]).
//!
//! # Batched SIMD lines
//!
//! When the process detects AVX2+FMA (via `znn-simd`) and the caller
//! hands `process_with_scratch` a buffer of ≥ 8 independent lines,
//! groups of 8 lines are transformed together: a gather shim
//! transposes the interleaved lines into struct-of-arrays slabs (one
//! 8-wide re vector + one im vector per element), the stage loop runs
//! on 8-lane vectors, and a scatter shim transposes back. Each vector
//! butterfly performs the *same IEEE operations in the same order* as
//! the scalar stage above it (the only re-association is the exact
//! `x + y = y + x` inside the complex product), so batched output is
//! bitwise identical to the scalar per-line path — asserted by the
//! `simd_*` differential tests. Leftover lines (`count % 8`) and
//! non-AVX2 hosts take the scalar path; `Stockham::new_scalar` (used
//! by `FftPlanner::plan_fft_scalar`) pins a plan to scalar for
//! benchmarking and differential testing.

use crate::twiddles::stage_table;
use crate::{Fft, FftDirection};
use num_complex::Complex;

/// `sin(π/3)` — the radix-3 butterfly's rotation magnitude.
const S3: f32 = 0.866_025_403_784_438_6_f64 as f32;
/// `cos(2π/5)`, `cos(4π/5)`, `sin(2π/5)`, `sin(4π/5)` — the radix-5
/// butterfly's rotation coefficients.
const C51: f32 = 0.309_016_994_374_947_45_f64 as f32;
const C52: f32 = -0.809_016_994_374_947_5_f64 as f32;
const S51: f32 = 0.951_056_516_295_153_5_f64 as f32;
const S52: f32 = 0.587_785_252_292_473_1_f64 as f32;

/// One planned Stockham stage: its radix and its streamed twiddle
/// table (`radix − 1` entries per digit `p`).
struct Stage {
    radix: u8,
    twiddles: Vec<Complex<f32>>,
}

/// Factors a 5-smooth `len` into the stage sequence described in the
/// [module docs](self), with per-stage twiddle tables for `sign`.
fn plan_stages(len: usize, sign: f64) -> Vec<Stage> {
    let mut rem = len;
    let mut twos = 0u32;
    while rem.is_multiple_of(2) {
        rem /= 2;
        twos += 1;
    }
    let mut radices = vec![4u8; (twos / 2) as usize];
    while rem.is_multiple_of(3) {
        rem /= 3;
        radices.push(3);
    }
    while rem.is_multiple_of(5) {
        rem /= 5;
        radices.push(5);
    }
    if twos % 2 == 1 {
        radices.push(2);
    }
    assert_eq!(rem, 1, "Stockham::new on non-5-smooth length {len}");
    let mut n_cur = len;
    radices
        .into_iter()
        .map(|radix| {
            let stage = Stage {
                radix,
                twiddles: stage_table(n_cur, radix as usize, sign),
            };
            n_cur /= radix as usize;
            stage
        })
        .collect()
}

/// Iterative mixed-radix Stockham autosort FFT for 5-smooth `n ≥ 2`.
///
/// The hot path of the planner: every length of the form `2^a·3^b·5^c`
/// — which is every length `znn-fft`'s `good_shape` produces — runs
/// through these kernels; see the [module docs](self) for the stage
/// structure.
pub(crate) struct Stockham {
    len: usize,
    /// `-1.0` forward, `+1.0` inverse: the sign of `i` in the
    /// butterflies' rotation terms.
    esign: f32,
    /// Stages in execution order.
    stages: Vec<Stage>,
    /// Batch 8 lines through the AVX2 stage kernels when the buffer
    /// allows it. Decided per *plan* (AVX2+FMA detected and not
    /// suppressed), so scalar-pinned plans coexist with SIMD ones in
    /// one process.
    use_simd: bool,
}

impl Stockham {
    pub(crate) fn new(len: usize, direction: FftDirection) -> Self {
        Self::with_simd(len, direction, true)
    }

    /// A plan pinned to the scalar per-line kernels regardless of
    /// detected ISA — the differential-test and bench baseline.
    pub(crate) fn new_scalar(len: usize, direction: FftDirection) -> Self {
        Self::with_simd(len, direction, false)
    }

    fn with_simd(len: usize, direction: FftDirection, allow_simd: bool) -> Self {
        assert!(len >= 2, "Stockham::new needs len >= 2, got {len}");
        let sign = direction.sign();
        Stockham {
            len,
            esign: sign as f32,
            stages: plan_stages(len, sign),
            use_simd: allow_simd && len >= 4 && znn_simd::isa() != znn_simd::Isa::Scalar,
        }
    }

    /// Radix-2 stage. [`plan_stages`] always schedules radix-2 *last*
    /// (`n_cur == 2`, single digit `p = 0`, twiddle `w⁰ = 1`), so the
    /// butterfly is a pure elementwise add/sub over the two halves —
    /// this function asserts that invariant rather than carrying a
    /// general twiddled digit loop no planned sequence can reach.
    fn stage2(src: &[Complex<f32>], dst: &mut [Complex<f32>], s: usize) {
        debug_assert_eq!(
            src.len(),
            2 * s,
            "the radix-2 stage must be scheduled last (n_cur == 2)"
        );
        let (a, b) = src.split_at(s);
        let (d0, d1) = dst.split_at_mut(s);
        for q in 0..s {
            d0[q] = a[q] + b[q];
            d1[q] = a[q] - b[q];
        }
    }

    /// Radix-3 stage:
    ///
    /// ```text
    /// t  = b + c
    /// dst[3p+0] =        a + t
    /// dst[3p+1] = w¹p·((a − t/2) ± i·sin(π/3)·(b − c))
    /// dst[3p+2] = w²p·((a − t/2) ∓ i·sin(π/3)·(b − c))
    /// ```
    ///
    /// (`±`: inverse/forward), folding `w₃ = −1/2 ± i·sin(π/3)`.
    fn stage3(
        src: &[Complex<f32>],
        dst: &mut [Complex<f32>],
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = src.len() / (3 * s);
        for p in 0..n1 {
            let w1 = tw[2 * p];
            let w2 = tw[2 * p + 1];
            let x0 = &src[s * p..s * (p + 1)];
            let x1 = &src[s * (p + n1)..s * (p + n1) + s];
            let x2 = &src[s * (p + 2 * n1)..s * (p + 2 * n1) + s];
            let (d0, rest) = dst[3 * s * p..3 * s * (p + 1)].split_at_mut(s);
            let (d1, d2) = rest.split_at_mut(s);
            for q in 0..s {
                let a = x0[q];
                let b = x1[q];
                let c = x2[q];
                let t = b + c;
                let m = Complex::new(a.re - 0.5 * t.re, a.im - 0.5 * t.im);
                let bmc = b - c;
                // jt = esign·i·sin(π/3)·(b−c)
                let jt = Complex::new(-esign * S3 * bmc.im, esign * S3 * bmc.re);
                d0[q] = a + t;
                let y1 = m + jt;
                let y2 = m - jt;
                d1[q] = Complex::new(
                    y1.re * w1.re - y1.im * w1.im,
                    y1.re * w1.im + y1.im * w1.re,
                );
                d2[q] = Complex::new(
                    y2.re * w2.re - y2.im * w2.im,
                    y2.re * w2.im + y2.im * w2.re,
                );
            }
        }
    }

    /// Radix-4 stage — the workhorse, unchanged from the radix-4/2
    /// engine:
    ///
    /// ```text
    /// dst[4p+0] =       (a+c) + (b+d)
    /// dst[4p+1] = w¹p·((a−c) ∓ i(b−d))      (∓: forward/inverse)
    /// dst[4p+2] = w²p·((a+c) − (b+d))
    /// dst[4p+3] = w³p·((a−c) ± i(b−d))
    /// ```
    fn stage4(
        src: &[Complex<f32>],
        dst: &mut [Complex<f32>],
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = src.len() / (4 * s);
        for p in 0..n1 {
            let w1 = tw[3 * p];
            let w2 = tw[3 * p + 1];
            let w3 = tw[3 * p + 2];
            let x0 = &src[s * p..s * (p + 1)];
            let x1 = &src[s * (p + n1)..s * (p + n1) + s];
            let x2 = &src[s * (p + 2 * n1)..s * (p + 2 * n1) + s];
            let x3 = &src[s * (p + 3 * n1)..s * (p + 3 * n1) + s];
            let block = &mut dst[4 * s * p..4 * s * (p + 1)];
            let (d0, rest) = block.split_at_mut(s);
            let (d1, rest) = rest.split_at_mut(s);
            let (d2, d3) = rest.split_at_mut(s);
            for q in 0..s {
                let a = x0[q];
                let b = x1[q];
                let c = x2[q];
                let d = x3[q];
                let apc = a + c;
                let amc = a - c;
                let bpd = b + d;
                let bmd = b - d;
                // jt = esign·i·(b−d): −i(b−d) forward, +i(b−d) inverse
                let jt = Complex::new(-esign * bmd.im, esign * bmd.re);
                d0[q] = apc + bpd;
                let y1 = amc + jt;
                let y3 = amc - jt;
                d1[q] = Complex::new(
                    y1.re * w1.re - y1.im * w1.im,
                    y1.re * w1.im + y1.im * w1.re,
                );
                let y2 = apc - bpd;
                d2[q] = Complex::new(
                    y2.re * w2.re - y2.im * w2.im,
                    y2.re * w2.im + y2.im * w2.re,
                );
                d3[q] = Complex::new(
                    y3.re * w3.re - y3.im * w3.im,
                    y3.re * w3.im + y3.im * w3.re,
                );
            }
        }
    }

    /// Radix-5 stage, folding `w₅^{j·m}` into real rotation
    /// coefficients (`c₁ = cos 2π/5`, `c₂ = cos 4π/5`, `s₁ = sin 2π/5`,
    /// `s₂ = sin 4π/5`):
    ///
    /// ```text
    /// t1 = b + e,  t2 = c + d,  t3 = b − e,  t4 = c − d
    /// dst[5p+0] =        a + t1 + t2
    /// dst[5p+1] = w¹p·((a + c₁t1 + c₂t2) ± i(s₁t3 + s₂t4))
    /// dst[5p+2] = w²p·((a + c₂t1 + c₁t2) ± i(s₂t3 − s₁t4))
    /// dst[5p+3] = w³p·((a + c₂t1 + c₁t2) ∓ i(s₂t3 − s₁t4))
    /// dst[5p+4] = w⁴p·((a + c₁t1 + c₂t2) ∓ i(s₁t3 + s₂t4))
    /// ```
    ///
    /// (`±`: inverse/forward).
    fn stage5(
        src: &[Complex<f32>],
        dst: &mut [Complex<f32>],
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = src.len() / (5 * s);
        for p in 0..n1 {
            let w1 = tw[4 * p];
            let w2 = tw[4 * p + 1];
            let w3 = tw[4 * p + 2];
            let w4 = tw[4 * p + 3];
            let x0 = &src[s * p..s * (p + 1)];
            let x1 = &src[s * (p + n1)..s * (p + n1) + s];
            let x2 = &src[s * (p + 2 * n1)..s * (p + 2 * n1) + s];
            let x3 = &src[s * (p + 3 * n1)..s * (p + 3 * n1) + s];
            let x4 = &src[s * (p + 4 * n1)..s * (p + 4 * n1) + s];
            let block = &mut dst[5 * s * p..5 * s * (p + 1)];
            let (d0, rest) = block.split_at_mut(s);
            let (d1, rest) = rest.split_at_mut(s);
            let (d2, rest) = rest.split_at_mut(s);
            let (d3, d4) = rest.split_at_mut(s);
            for q in 0..s {
                let a = x0[q];
                let b = x1[q];
                let c = x2[q];
                let d = x3[q];
                let e = x4[q];
                let t1 = b + e;
                let t2 = c + d;
                let t3 = b - e;
                let t4 = c - d;
                let m1 = Complex::new(
                    a.re + C51 * t1.re + C52 * t2.re,
                    a.im + C51 * t1.im + C52 * t2.im,
                );
                let m2 = Complex::new(
                    a.re + C52 * t1.re + C51 * t2.re,
                    a.im + C52 * t1.im + C51 * t2.im,
                );
                // u1 = s₁t3 + s₂t4, u2 = s₂t3 − s₁t4; j = esign·i·u
                let u1 = Complex::new(S51 * t3.re + S52 * t4.re, S51 * t3.im + S52 * t4.im);
                let u2 = Complex::new(S52 * t3.re - S51 * t4.re, S52 * t3.im - S51 * t4.im);
                let j1 = Complex::new(-esign * u1.im, esign * u1.re);
                let j2 = Complex::new(-esign * u2.im, esign * u2.re);
                d0[q] = a + t1 + t2;
                let y1 = m1 + j1;
                let y2 = m2 + j2;
                let y3 = m2 - j2;
                let y4 = m1 - j1;
                d1[q] = Complex::new(
                    y1.re * w1.re - y1.im * w1.im,
                    y1.re * w1.im + y1.im * w1.re,
                );
                d2[q] = Complex::new(
                    y2.re * w2.re - y2.im * w2.im,
                    y2.re * w2.im + y2.im * w2.re,
                );
                d3[q] = Complex::new(
                    y3.re * w3.re - y3.im * w3.im,
                    y3.re * w3.im + y3.im * w3.re,
                );
                d4[q] = Complex::new(
                    y4.re * w4.re - y4.im * w4.im,
                    y4.re * w4.im + y4.im * w4.re,
                );
            }
        }
    }

    /// Transform one `len`-element chunk, using `work` (also `len`
    /// elements) as the ping-pong partner.
    fn transform_chunk(&self, chunk: &mut [Complex<f32>], work: &mut [Complex<f32>]) {
        let mut s = 1usize;
        let mut in_chunk = true;
        for stage in &self.stages {
            let (src, dst): (&[Complex<f32>], &mut [Complex<f32>]) = if in_chunk {
                (&*chunk, &mut *work)
            } else {
                (&*work, &mut *chunk)
            };
            match stage.radix {
                2 => Self::stage2(src, dst, s),
                3 => Self::stage3(src, dst, s, &stage.twiddles, self.esign),
                4 => Self::stage4(src, dst, s, &stage.twiddles, self.esign),
                5 => Self::stage5(src, dst, s, &stage.twiddles, self.esign),
                r => unreachable!("unplanned radix {r}"),
            }
            in_chunk = !in_chunk;
            s *= stage.radix as usize;
        }
        if !in_chunk {
            chunk.copy_from_slice(work);
        }
    }

    /// Transform `buffer`'s lines in groups of 8 through the SIMD
    /// stage kernels; leftover lines (`count % 8`) take the scalar
    /// per-line path. Output is bitwise identical either way, so the
    /// group boundary is unobservable.
    #[cfg(target_arch = "x86_64")]
    fn process_batched(&self, buffer: &mut [Complex<f32>], scratch: &mut [Complex<f32>]) {
        let n = self.len;
        let (work, slabs) = scratch.split_at_mut(n);
        let floats = znn_simd::complex_as_floats_mut(&mut slabs[..16 * n]);
        let (ping, pong) = floats.split_at_mut(16 * n);
        let lines = buffer.len() / n;
        let grouped = (lines / batch::LANES) * batch::LANES;
        for group in buffer[..grouped * n].chunks_mut(batch::LANES * n) {
            // SAFETY: `use_simd` (checked by the caller) implies
            // AVX2+FMA were detected at runtime.
            unsafe { batch::transform_batch(self, group, ping, pong) };
        }
        for chunk in buffer[grouped * n..].chunks_mut(n) {
            self.transform_chunk(chunk, work);
        }
    }
}

impl Fft<f32> for Stockham {
    fn process_with_scratch(&self, buffer: &mut [Complex<f32>], scratch: &mut [Complex<f32>]) {
        let n = self.len;
        assert!(
            buffer.len().is_multiple_of(n),
            "buffer length {} is not a multiple of the FFT length {n}",
            buffer.len()
        );
        assert!(
            scratch.len() >= self.get_inplace_scratch_len(),
            "scratch too small: {} < {}",
            scratch.len(),
            self.get_inplace_scratch_len()
        );
        #[cfg(target_arch = "x86_64")]
        {
            if self.use_simd && buffer.len() / n >= batch::LANES {
                self.process_batched(buffer, scratch);
                return;
            }
        }
        let work = &mut scratch[..n];
        for chunk in buffer.chunks_mut(n) {
            self.transform_chunk(chunk, work);
        }
    }

    fn get_inplace_scratch_len(&self) -> usize {
        // the SIMD path needs the scalar work line plus two 8-line
        // struct-of-arrays slabs (8 complexes = 16 floats per element,
        // ping + pong)
        if self.use_simd {
            17 * self.len
        } else {
            self.len
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn process(&self, buffer: &mut [Complex<f32>]) {
        let mut scratch = vec![Complex::new(0.0, 0.0); self.get_inplace_scratch_len()];
        self.process_with_scratch(buffer, &mut scratch);
    }
}

/// 8-line struct-of-arrays batch kernels (AVX2+FMA).
///
/// Layout: element `t` of the 8 batched lines lives at slab float
/// offsets `[16t, 16t+8)` (the 8 real parts, one per line) and
/// `[16t+8, 16t+16)` (the 8 imaginary parts). Each `bstage*` mirrors
/// the scalar stage of the same radix operation-for-operation on
/// [`CF32x8`] vectors, so every lane computes exactly what the scalar
/// path computes for that line.
#[cfg(target_arch = "x86_64")]
mod batch {
    use super::{Stockham, C51, C52, S3, S51, S52};
    use num_complex::Complex;
    use znn_simd::x8::{transpose8x8, CF32x8, F32x8};

    /// Lines per batch — the f32 lane count of one AVX2 vector.
    pub(super) const LANES: usize = 8;

    /// Loads the 8-lane complex vector for slab element `t`.
    #[inline(always)]
    unsafe fn cv_load(slab: *const f32, t: usize) -> CF32x8 {
        CF32x8 {
            re: F32x8::load(slab.add(16 * t)),
            im: F32x8::load(slab.add(16 * t + 8)),
        }
    }

    /// Stores the 8-lane complex vector for slab element `t`.
    #[inline(always)]
    unsafe fn cv_store(slab: *mut f32, t: usize, v: CF32x8) {
        v.re.store(slab.add(16 * t));
        v.im.store(slab.add(16 * t + 8));
    }

    /// Broadcasts one twiddle to all 8 lanes.
    #[inline(always)]
    unsafe fn cw(w: Complex<f32>) -> CF32x8 {
        CF32x8 {
            re: F32x8::splat(w.re),
            im: F32x8::splat(w.im),
        }
    }

    /// Transposes 8 interleaved lines into the struct-of-arrays slab:
    /// 4-element blocks go through the in-register 8×8 float
    /// transpose (each source row is 4 complexes = 8 floats), the
    /// `n % 4` tail element-by-element.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn soa_gather(lines: &[Complex<f32>], slab: &mut [f32], n: usize) {
        let lf = znn_simd::complex_as_floats(lines);
        debug_assert_eq!(lf.len(), LANES * 2 * n);
        debug_assert_eq!(slab.len(), 16 * n);
        let lp = lf.as_ptr();
        let sp = slab.as_mut_ptr();
        let main = n - n % 4;
        let mut t = 0;
        while t < main {
            let mut rows = [F32x8::zero(); 8];
            for (l, r) in rows.iter_mut().enumerate() {
                *r = F32x8::load(lp.add(l * 2 * n + 2 * t));
            }
            let cols = transpose8x8(rows);
            for k in 0..4 {
                cols[2 * k].store(sp.add(16 * (t + k)));
                cols[2 * k + 1].store(sp.add(16 * (t + k) + 8));
            }
            t += 4;
        }
        for t in main..n {
            for l in 0..LANES {
                slab[16 * t + l] = lf[l * 2 * n + 2 * t];
                slab[16 * t + 8 + l] = lf[l * 2 * n + 2 * t + 1];
            }
        }
    }

    /// Inverse of [`soa_gather`] (the 8×8 transpose is an involution).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn soa_scatter(slab: &[f32], lines: &mut [Complex<f32>], n: usize) {
        let lf = znn_simd::complex_as_floats_mut(lines);
        debug_assert_eq!(lf.len(), LANES * 2 * n);
        debug_assert_eq!(slab.len(), 16 * n);
        let sp = slab.as_ptr();
        let lp = lf.as_mut_ptr();
        let main = n - n % 4;
        let mut t = 0;
        while t < main {
            let mut cols = [F32x8::zero(); 8];
            for k in 0..4 {
                cols[2 * k] = F32x8::load(sp.add(16 * (t + k)));
                cols[2 * k + 1] = F32x8::load(sp.add(16 * (t + k) + 8));
            }
            let rows = transpose8x8(cols);
            for (l, r) in rows.iter().enumerate() {
                r.store(lp.add(l * 2 * n + 2 * t));
            }
            t += 4;
        }
        for t in main..n {
            for l in 0..LANES {
                lf[l * 2 * n + 2 * t] = slab[16 * t + l];
                lf[l * 2 * n + 2 * t + 1] = slab[16 * t + 8 + l];
            }
        }
    }

    /// Radix-2 batch stage — scheduled last, twiddle-free (see the
    /// scalar `stage2`).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn bstage2(src: *const f32, dst: *mut f32, s: usize) {
        for q in 0..s {
            let a = cv_load(src, q);
            let b = cv_load(src, s + q);
            cv_store(dst, q, a.add(b));
            cv_store(dst, s + q, a.sub(b));
        }
    }

    /// Radix-3 batch stage — the scalar `stage3`, 8 lines per op.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn bstage3(
        src: *const f32,
        dst: *mut f32,
        n: usize,
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = n / (3 * s);
        let half = F32x8::splat(0.5);
        let pk = F32x8::splat(esign * S3);
        let nk = F32x8::splat(-esign * S3);
        for p in 0..n1 {
            let w1 = cw(tw[2 * p]);
            let w2 = cw(tw[2 * p + 1]);
            for q in 0..s {
                let a = cv_load(src, s * p + q);
                let b = cv_load(src, s * (p + n1) + q);
                let c = cv_load(src, s * (p + 2 * n1) + q);
                let t = b.add(c);
                let m = CF32x8 {
                    re: a.re.sub(half.mul(t.re)),
                    im: a.im.sub(half.mul(t.im)),
                };
                let bmc = b.sub(c);
                let jt = CF32x8 {
                    re: nk.mul(bmc.im),
                    im: pk.mul(bmc.re),
                };
                let base = 3 * s * p;
                cv_store(dst, base + q, a.add(t));
                let y1 = m.add(jt);
                let y2 = m.sub(jt);
                cv_store(dst, base + s + q, y1.mul(w1));
                cv_store(dst, base + 2 * s + q, y2.mul(w2));
            }
        }
    }

    /// Radix-4 batch stage — the scalar `stage4`, 8 lines per op.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn bstage4(
        src: *const f32,
        dst: *mut f32,
        n: usize,
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = n / (4 * s);
        let pk = F32x8::splat(esign);
        let nk = F32x8::splat(-esign);
        for p in 0..n1 {
            let w1 = cw(tw[3 * p]);
            let w2 = cw(tw[3 * p + 1]);
            let w3 = cw(tw[3 * p + 2]);
            for q in 0..s {
                let a = cv_load(src, s * p + q);
                let b = cv_load(src, s * (p + n1) + q);
                let c = cv_load(src, s * (p + 2 * n1) + q);
                let d = cv_load(src, s * (p + 3 * n1) + q);
                let apc = a.add(c);
                let amc = a.sub(c);
                let bpd = b.add(d);
                let bmd = b.sub(d);
                let jt = CF32x8 {
                    re: nk.mul(bmd.im),
                    im: pk.mul(bmd.re),
                };
                let base = 4 * s * p;
                cv_store(dst, base + q, apc.add(bpd));
                let y1 = amc.add(jt);
                let y3 = amc.sub(jt);
                cv_store(dst, base + s + q, y1.mul(w1));
                let y2 = apc.sub(bpd);
                cv_store(dst, base + 2 * s + q, y2.mul(w2));
                cv_store(dst, base + 3 * s + q, y3.mul(w3));
            }
        }
    }

    /// Radix-5 batch stage — the scalar `stage5`, 8 lines per op.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn bstage5(
        src: *const f32,
        dst: *mut f32,
        n: usize,
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = n / (5 * s);
        let c51 = F32x8::splat(C51);
        let c52 = F32x8::splat(C52);
        let s51 = F32x8::splat(S51);
        let s52 = F32x8::splat(S52);
        let pk = F32x8::splat(esign);
        let nk = F32x8::splat(-esign);
        for p in 0..n1 {
            let w1 = cw(tw[4 * p]);
            let w2 = cw(tw[4 * p + 1]);
            let w3 = cw(tw[4 * p + 2]);
            let w4 = cw(tw[4 * p + 3]);
            for q in 0..s {
                let a = cv_load(src, s * p + q);
                let b = cv_load(src, s * (p + n1) + q);
                let c = cv_load(src, s * (p + 2 * n1) + q);
                let d = cv_load(src, s * (p + 3 * n1) + q);
                let e = cv_load(src, s * (p + 4 * n1) + q);
                let t1 = b.add(e);
                let t2 = c.add(d);
                let t3 = b.sub(e);
                let t4 = c.sub(d);
                let m1 = CF32x8 {
                    re: a.re.add(c51.mul(t1.re)).add(c52.mul(t2.re)),
                    im: a.im.add(c51.mul(t1.im)).add(c52.mul(t2.im)),
                };
                let m2 = CF32x8 {
                    re: a.re.add(c52.mul(t1.re)).add(c51.mul(t2.re)),
                    im: a.im.add(c52.mul(t1.im)).add(c51.mul(t2.im)),
                };
                let u1 = CF32x8 {
                    re: s51.mul(t3.re).add(s52.mul(t4.re)),
                    im: s51.mul(t3.im).add(s52.mul(t4.im)),
                };
                let u2 = CF32x8 {
                    re: s52.mul(t3.re).sub(s51.mul(t4.re)),
                    im: s52.mul(t3.im).sub(s51.mul(t4.im)),
                };
                let j1 = CF32x8 {
                    re: nk.mul(u1.im),
                    im: pk.mul(u1.re),
                };
                let j2 = CF32x8 {
                    re: nk.mul(u2.im),
                    im: pk.mul(u2.re),
                };
                let base = 5 * s * p;
                cv_store(dst, base + q, a.add(t1).add(t2));
                let y1 = m1.add(j1);
                let y2 = m2.add(j2);
                let y3 = m2.sub(j2);
                let y4 = m1.sub(j1);
                cv_store(dst, base + s + q, y1.mul(w1));
                cv_store(dst, base + 2 * s + q, y2.mul(w2));
                cv_store(dst, base + 3 * s + q, y3.mul(w3));
                cv_store(dst, base + 4 * s + q, y4.mul(w4));
            }
        }
    }

    /// Transforms 8 interleaved lines (`lines.len() == 8·n`) through
    /// the batched stage loop: gather to struct-of-arrays, ping-pong
    /// the stages between the two slabs, scatter back.
    ///
    /// # Safety
    /// AVX2 and FMA must be available (the `use_simd` plan flag
    /// guarantees it was detected at runtime).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn transform_batch(
        fft: &Stockham,
        lines: &mut [Complex<f32>],
        ping: &mut [f32],
        pong: &mut [f32],
    ) {
        let n = fft.len;
        debug_assert_eq!(lines.len(), LANES * n);
        soa_gather(lines, ping, n);
        let mut s = 1usize;
        let mut in_ping = true;
        for stage in &fft.stages {
            let (src, dst) = if in_ping {
                (ping.as_ptr(), pong.as_mut_ptr())
            } else {
                (pong.as_ptr(), ping.as_mut_ptr())
            };
            match stage.radix {
                2 => bstage2(src, dst, s),
                3 => bstage3(src, dst, n, s, &stage.twiddles, fft.esign),
                4 => bstage4(src, dst, n, s, &stage.twiddles, fft.esign),
                5 => bstage5(src, dst, n, s, &stage.twiddles, fft.esign),
                r => unreachable!("unplanned radix {r}"),
            }
            in_ping = !in_ping;
            s *= stage.radix as usize;
        }
        let result: &[f32] = if in_ping { ping } else { pong };
        soa_scatter(result, lines, n);
    }
}
