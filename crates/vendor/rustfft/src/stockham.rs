//! Iterative mixed-radix Stockham autosort kernels for 5-smooth
//! lengths.
//!
//! Decimation in frequency. Each stage maps a sub-transform length
//! `n_cur` (starting at `n`, shrinking by the stage's radix) and a
//! batch stride `s` (starting at 1, growing by the radix) over the
//! data, writing the permuted output of the butterfly directly — the
//! "autosort": no bit/digit-reversal pass, every read and write is
//! unit-stride within an inner loop of `s` consecutive elements. Data
//! ping-pongs between the caller's chunk and the scratch buffer; an
//! odd stage count is fixed with one final copy.
//!
//! A stage of radix `r` (current length `n_cur`, `n1 = n_cur/r`)
//! computes, for `p ∈ [0, n1)` and `q ∈ [0, s)`:
//!
//! ```text
//! x_m = src[q + s·(p + m·n1)],          m = 0..r
//! dst[q + s·(r·p + j)] = w^{j·p} · Σ_m x_m · w_r^{j·m},   j = 0..r
//! ```
//!
//! with `w = e^{∓2πi/n_cur}` and `w_r = e^{∓2πi/r}` (sign per
//! direction). The `w_r^{j·m}` factors are folded into hardcoded
//! butterflies (radix 2/3/4/5 below); the `w^{j·p}` factors stream
//! from a per-stage table in `p` order ([`crate::twiddles::stage_table`]).
//!
//! # Stage planning
//!
//! [`plan_stages`] factors a 5-smooth `n = 2^a·3^b·5^c` into the stage
//! sequence `⌊a/2⌋ × radix-4`, then `b × radix-3`, then `c × radix-5`,
//! and — when `a` is odd — one trailing radix-2 stage. Running the
//! radix-2 stage last keeps it twiddle-free for pure powers of two
//! (`n_cur == 2` has the single digit `p = 0`, whose twiddle is 1), so
//! the 2^k stage sequences and arithmetic are unchanged from the
//! radix-4/2-only engine. Lengths with prime factors larger than 5
//! stay on the recursive fallback ([`crate::recursive::MixedRadix`]).

use crate::twiddles::stage_table;
use crate::{Fft, FftDirection};
use num_complex::Complex;

/// `sin(π/3)` — the radix-3 butterfly's rotation magnitude.
const S3: f32 = 0.866_025_403_784_438_6_f64 as f32;
/// `cos(2π/5)`, `cos(4π/5)`, `sin(2π/5)`, `sin(4π/5)` — the radix-5
/// butterfly's rotation coefficients.
const C51: f32 = 0.309_016_994_374_947_45_f64 as f32;
const C52: f32 = -0.809_016_994_374_947_5_f64 as f32;
const S51: f32 = 0.951_056_516_295_153_5_f64 as f32;
const S52: f32 = 0.587_785_252_292_473_1_f64 as f32;

/// One planned Stockham stage: its radix and its streamed twiddle
/// table (`radix − 1` entries per digit `p`).
struct Stage {
    radix: u8,
    twiddles: Vec<Complex<f32>>,
}

/// Factors a 5-smooth `len` into the stage sequence described in the
/// [module docs](self), with per-stage twiddle tables for `sign`.
fn plan_stages(len: usize, sign: f64) -> Vec<Stage> {
    let mut rem = len;
    let mut twos = 0u32;
    while rem.is_multiple_of(2) {
        rem /= 2;
        twos += 1;
    }
    let mut radices = vec![4u8; (twos / 2) as usize];
    while rem.is_multiple_of(3) {
        rem /= 3;
        radices.push(3);
    }
    while rem.is_multiple_of(5) {
        rem /= 5;
        radices.push(5);
    }
    if twos % 2 == 1 {
        radices.push(2);
    }
    assert_eq!(rem, 1, "Stockham::new on non-5-smooth length {len}");
    let mut n_cur = len;
    radices
        .into_iter()
        .map(|radix| {
            let stage = Stage {
                radix,
                twiddles: stage_table(n_cur, radix as usize, sign),
            };
            n_cur /= radix as usize;
            stage
        })
        .collect()
}

/// Iterative mixed-radix Stockham autosort FFT for 5-smooth `n ≥ 2`.
///
/// The hot path of the planner: every length of the form `2^a·3^b·5^c`
/// — which is every length `znn-fft`'s `good_shape` produces — runs
/// through these kernels; see the [module docs](self) for the stage
/// structure.
pub(crate) struct Stockham {
    len: usize,
    /// `-1.0` forward, `+1.0` inverse: the sign of `i` in the
    /// butterflies' rotation terms.
    esign: f32,
    /// Stages in execution order.
    stages: Vec<Stage>,
}

impl Stockham {
    pub(crate) fn new(len: usize, direction: FftDirection) -> Self {
        assert!(len >= 2, "Stockham::new needs len >= 2, got {len}");
        let sign = direction.sign();
        Stockham {
            len,
            esign: sign as f32,
            stages: plan_stages(len, sign),
        }
    }

    /// Radix-2 stage. [`plan_stages`] always schedules radix-2 *last*
    /// (`n_cur == 2`, single digit `p = 0`, twiddle `w⁰ = 1`), so the
    /// butterfly is a pure elementwise add/sub over the two halves —
    /// this function asserts that invariant rather than carrying a
    /// general twiddled digit loop no planned sequence can reach.
    fn stage2(src: &[Complex<f32>], dst: &mut [Complex<f32>], s: usize) {
        debug_assert_eq!(
            src.len(),
            2 * s,
            "the radix-2 stage must be scheduled last (n_cur == 2)"
        );
        let (a, b) = src.split_at(s);
        let (d0, d1) = dst.split_at_mut(s);
        for q in 0..s {
            d0[q] = a[q] + b[q];
            d1[q] = a[q] - b[q];
        }
    }

    /// Radix-3 stage:
    ///
    /// ```text
    /// t  = b + c
    /// dst[3p+0] =        a + t
    /// dst[3p+1] = w¹p·((a − t/2) ± i·sin(π/3)·(b − c))
    /// dst[3p+2] = w²p·((a − t/2) ∓ i·sin(π/3)·(b − c))
    /// ```
    ///
    /// (`±`: inverse/forward), folding `w₃ = −1/2 ± i·sin(π/3)`.
    fn stage3(
        src: &[Complex<f32>],
        dst: &mut [Complex<f32>],
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = src.len() / (3 * s);
        for p in 0..n1 {
            let w1 = tw[2 * p];
            let w2 = tw[2 * p + 1];
            let x0 = &src[s * p..s * (p + 1)];
            let x1 = &src[s * (p + n1)..s * (p + n1) + s];
            let x2 = &src[s * (p + 2 * n1)..s * (p + 2 * n1) + s];
            let (d0, rest) = dst[3 * s * p..3 * s * (p + 1)].split_at_mut(s);
            let (d1, d2) = rest.split_at_mut(s);
            for q in 0..s {
                let a = x0[q];
                let b = x1[q];
                let c = x2[q];
                let t = b + c;
                let m = Complex::new(a.re - 0.5 * t.re, a.im - 0.5 * t.im);
                let bmc = b - c;
                // jt = esign·i·sin(π/3)·(b−c)
                let jt = Complex::new(-esign * S3 * bmc.im, esign * S3 * bmc.re);
                d0[q] = a + t;
                let y1 = m + jt;
                let y2 = m - jt;
                d1[q] = Complex::new(
                    y1.re * w1.re - y1.im * w1.im,
                    y1.re * w1.im + y1.im * w1.re,
                );
                d2[q] = Complex::new(
                    y2.re * w2.re - y2.im * w2.im,
                    y2.re * w2.im + y2.im * w2.re,
                );
            }
        }
    }

    /// Radix-4 stage — the workhorse, unchanged from the radix-4/2
    /// engine:
    ///
    /// ```text
    /// dst[4p+0] =       (a+c) + (b+d)
    /// dst[4p+1] = w¹p·((a−c) ∓ i(b−d))      (∓: forward/inverse)
    /// dst[4p+2] = w²p·((a+c) − (b+d))
    /// dst[4p+3] = w³p·((a−c) ± i(b−d))
    /// ```
    fn stage4(
        src: &[Complex<f32>],
        dst: &mut [Complex<f32>],
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = src.len() / (4 * s);
        for p in 0..n1 {
            let w1 = tw[3 * p];
            let w2 = tw[3 * p + 1];
            let w3 = tw[3 * p + 2];
            let x0 = &src[s * p..s * (p + 1)];
            let x1 = &src[s * (p + n1)..s * (p + n1) + s];
            let x2 = &src[s * (p + 2 * n1)..s * (p + 2 * n1) + s];
            let x3 = &src[s * (p + 3 * n1)..s * (p + 3 * n1) + s];
            let block = &mut dst[4 * s * p..4 * s * (p + 1)];
            let (d0, rest) = block.split_at_mut(s);
            let (d1, rest) = rest.split_at_mut(s);
            let (d2, d3) = rest.split_at_mut(s);
            for q in 0..s {
                let a = x0[q];
                let b = x1[q];
                let c = x2[q];
                let d = x3[q];
                let apc = a + c;
                let amc = a - c;
                let bpd = b + d;
                let bmd = b - d;
                // jt = esign·i·(b−d): −i(b−d) forward, +i(b−d) inverse
                let jt = Complex::new(-esign * bmd.im, esign * bmd.re);
                d0[q] = apc + bpd;
                let y1 = amc + jt;
                let y3 = amc - jt;
                d1[q] = Complex::new(
                    y1.re * w1.re - y1.im * w1.im,
                    y1.re * w1.im + y1.im * w1.re,
                );
                let y2 = apc - bpd;
                d2[q] = Complex::new(
                    y2.re * w2.re - y2.im * w2.im,
                    y2.re * w2.im + y2.im * w2.re,
                );
                d3[q] = Complex::new(
                    y3.re * w3.re - y3.im * w3.im,
                    y3.re * w3.im + y3.im * w3.re,
                );
            }
        }
    }

    /// Radix-5 stage, folding `w₅^{j·m}` into real rotation
    /// coefficients (`c₁ = cos 2π/5`, `c₂ = cos 4π/5`, `s₁ = sin 2π/5`,
    /// `s₂ = sin 4π/5`):
    ///
    /// ```text
    /// t1 = b + e,  t2 = c + d,  t3 = b − e,  t4 = c − d
    /// dst[5p+0] =        a + t1 + t2
    /// dst[5p+1] = w¹p·((a + c₁t1 + c₂t2) ± i(s₁t3 + s₂t4))
    /// dst[5p+2] = w²p·((a + c₂t1 + c₁t2) ± i(s₂t3 − s₁t4))
    /// dst[5p+3] = w³p·((a + c₂t1 + c₁t2) ∓ i(s₂t3 − s₁t4))
    /// dst[5p+4] = w⁴p·((a + c₁t1 + c₂t2) ∓ i(s₁t3 + s₂t4))
    /// ```
    ///
    /// (`±`: inverse/forward).
    fn stage5(
        src: &[Complex<f32>],
        dst: &mut [Complex<f32>],
        s: usize,
        tw: &[Complex<f32>],
        esign: f32,
    ) {
        let n1 = src.len() / (5 * s);
        for p in 0..n1 {
            let w1 = tw[4 * p];
            let w2 = tw[4 * p + 1];
            let w3 = tw[4 * p + 2];
            let w4 = tw[4 * p + 3];
            let x0 = &src[s * p..s * (p + 1)];
            let x1 = &src[s * (p + n1)..s * (p + n1) + s];
            let x2 = &src[s * (p + 2 * n1)..s * (p + 2 * n1) + s];
            let x3 = &src[s * (p + 3 * n1)..s * (p + 3 * n1) + s];
            let x4 = &src[s * (p + 4 * n1)..s * (p + 4 * n1) + s];
            let block = &mut dst[5 * s * p..5 * s * (p + 1)];
            let (d0, rest) = block.split_at_mut(s);
            let (d1, rest) = rest.split_at_mut(s);
            let (d2, rest) = rest.split_at_mut(s);
            let (d3, d4) = rest.split_at_mut(s);
            for q in 0..s {
                let a = x0[q];
                let b = x1[q];
                let c = x2[q];
                let d = x3[q];
                let e = x4[q];
                let t1 = b + e;
                let t2 = c + d;
                let t3 = b - e;
                let t4 = c - d;
                let m1 = Complex::new(
                    a.re + C51 * t1.re + C52 * t2.re,
                    a.im + C51 * t1.im + C52 * t2.im,
                );
                let m2 = Complex::new(
                    a.re + C52 * t1.re + C51 * t2.re,
                    a.im + C52 * t1.im + C51 * t2.im,
                );
                // u1 = s₁t3 + s₂t4, u2 = s₂t3 − s₁t4; j = esign·i·u
                let u1 = Complex::new(S51 * t3.re + S52 * t4.re, S51 * t3.im + S52 * t4.im);
                let u2 = Complex::new(S52 * t3.re - S51 * t4.re, S52 * t3.im - S51 * t4.im);
                let j1 = Complex::new(-esign * u1.im, esign * u1.re);
                let j2 = Complex::new(-esign * u2.im, esign * u2.re);
                d0[q] = a + t1 + t2;
                let y1 = m1 + j1;
                let y2 = m2 + j2;
                let y3 = m2 - j2;
                let y4 = m1 - j1;
                d1[q] = Complex::new(
                    y1.re * w1.re - y1.im * w1.im,
                    y1.re * w1.im + y1.im * w1.re,
                );
                d2[q] = Complex::new(
                    y2.re * w2.re - y2.im * w2.im,
                    y2.re * w2.im + y2.im * w2.re,
                );
                d3[q] = Complex::new(
                    y3.re * w3.re - y3.im * w3.im,
                    y3.re * w3.im + y3.im * w3.re,
                );
                d4[q] = Complex::new(
                    y4.re * w4.re - y4.im * w4.im,
                    y4.re * w4.im + y4.im * w4.re,
                );
            }
        }
    }

    /// Transform one `len`-element chunk, using `work` (also `len`
    /// elements) as the ping-pong partner.
    fn transform_chunk(&self, chunk: &mut [Complex<f32>], work: &mut [Complex<f32>]) {
        let mut s = 1usize;
        let mut in_chunk = true;
        for stage in &self.stages {
            let (src, dst): (&[Complex<f32>], &mut [Complex<f32>]) = if in_chunk {
                (&*chunk, &mut *work)
            } else {
                (&*work, &mut *chunk)
            };
            match stage.radix {
                2 => Self::stage2(src, dst, s),
                3 => Self::stage3(src, dst, s, &stage.twiddles, self.esign),
                4 => Self::stage4(src, dst, s, &stage.twiddles, self.esign),
                5 => Self::stage5(src, dst, s, &stage.twiddles, self.esign),
                r => unreachable!("unplanned radix {r}"),
            }
            in_chunk = !in_chunk;
            s *= stage.radix as usize;
        }
        if !in_chunk {
            chunk.copy_from_slice(work);
        }
    }
}

impl Fft<f32> for Stockham {
    fn process_with_scratch(&self, buffer: &mut [Complex<f32>], scratch: &mut [Complex<f32>]) {
        let n = self.len;
        assert!(
            buffer.len().is_multiple_of(n),
            "buffer length {} is not a multiple of the FFT length {n}",
            buffer.len()
        );
        assert!(
            scratch.len() >= n,
            "scratch too small: {} < {n}",
            scratch.len()
        );
        let work = &mut scratch[..n];
        for chunk in buffer.chunks_mut(n) {
            self.transform_chunk(chunk, work);
        }
    }

    fn get_inplace_scratch_len(&self) -> usize {
        self.len
    }

    fn len(&self) -> usize {
        self.len
    }

    fn process(&self, buffer: &mut [Complex<f32>]) {
        let mut scratch = vec![Complex::new(0.0, 0.0); self.get_inplace_scratch_len()];
        self.process_with_scratch(buffer, &mut scratch);
    }
}
