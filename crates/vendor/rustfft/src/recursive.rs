//! Recursive mixed-radix Cooley–Tukey fallback for lengths with prime
//! factors larger than 5.
//!
//! Composite lengths decompose into their prime factors; prime factors
//! fall back to a naive O(p²) DFT. The workspace pads transforms to
//! 5-smooth sizes — which all take the iterative Stockham path — so
//! this algorithm is only warm for lengths with prime factors > 5
//! (which `good_shape` never produces). It is also exposed directly
//! via [`crate::FftPlanner::plan_fft_recursive`] as the
//! correctness/performance baseline the `fft_kernels` and
//! `fft_traffic` benches compare the Stockham kernels against.

use crate::twiddles::full_table;
use crate::{Fft, FftDirection};
use num_complex::Complex;

pub(crate) fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut p = 3;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 2;
    }
    n
}

fn largest_prime_factor(mut n: usize) -> usize {
    let mut largest = 1;
    while n > 1 {
        let p = smallest_prime_factor(n);
        largest = largest.max(p);
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    largest
}

/// Recursive mixed-radix Cooley–Tukey FFT with a per-plan twiddle table.
pub(crate) struct MixedRadix {
    len: usize,
    /// `twiddles[t] = e^{sign·2πi·t/len}`, `sign` per direction.
    twiddles: Vec<Complex<f32>>,
    /// Largest prime factor of `len` (size of the butterfly temp row).
    max_factor: usize,
}

impl MixedRadix {
    pub(crate) fn new(len: usize, direction: FftDirection) -> Self {
        MixedRadix {
            len,
            twiddles: full_table(len, direction.sign()),
            max_factor: largest_prime_factor(len.max(1)),
        }
    }

    /// `dst[s] = Σ_t src[t·stride] · w_n^{st}` for a sub-transform of
    /// size `n = len / tstep`, reading `src` at the given stride.
    ///
    /// Decimation in time: split `n = p·m` on the smallest prime `p`,
    /// recurse on the `p` interleaved sub-sequences, then combine with
    /// `X[k + s·m] = Σ_q (Y_q[k]·w_n^{qk}) · w_p^{qs}`. The combine
    /// reads and writes the same `p` positions `{k + j·m}` per `k`, so a
    /// `p`-element temp row makes it safe in place.
    fn compute(
        &self,
        src: &[Complex<f32>],
        dst: &mut [Complex<f32>],
        stride: usize,
        tstep: usize,
        tmp: &mut [Complex<f32>],
    ) {
        let n = self.len / tstep;
        if n == 1 {
            dst[0] = src[0];
            return;
        }
        let p = smallest_prime_factor(n);
        let m = n / p;
        if m == 1 {
            // prime length: naive DFT from the strided source (src and
            // dst never alias — src is the scratch copy)
            for (s, d) in dst.iter_mut().take(p).enumerate() {
                let mut acc = Complex::new(0.0, 0.0);
                for q in 0..p {
                    let w = self.twiddles[(q * s * tstep) % self.len];
                    acc += src[q * stride] * w;
                }
                *d = acc;
            }
            return;
        }
        for q in 0..p {
            self.compute(
                &src[q * stride..],
                &mut dst[q * m..(q + 1) * m],
                stride * p,
                tstep * p,
                tmp,
            );
        }
        // combine: X[k + s·m] = Σ_q (Y_q[k]·w_n^{qk}) · w_p^{qs}
        let wp_step = self.len / p;
        for k in 0..m {
            for q in 0..p {
                let w = self.twiddles[(q * k * tstep) % self.len];
                tmp[q] = dst[q * m + k] * w;
            }
            for s in 0..p {
                let mut acc = tmp[0];
                for (q, &t) in tmp.iter().enumerate().take(p).skip(1) {
                    let w = self.twiddles[(q * s * wp_step) % self.len];
                    acc += t * w;
                }
                dst[k + s * m] = acc;
            }
        }
    }
}

impl Fft<f32> for MixedRadix {
    fn process_with_scratch(&self, buffer: &mut [Complex<f32>], scratch: &mut [Complex<f32>]) {
        let n = self.len;
        if n <= 1 {
            return;
        }
        assert!(
            buffer.len().is_multiple_of(n),
            "buffer length {} is not a multiple of the FFT length {n}",
            buffer.len()
        );
        assert!(
            scratch.len() >= self.get_inplace_scratch_len(),
            "scratch too small: {} < {}",
            scratch.len(),
            self.get_inplace_scratch_len()
        );
        let (copy, tmp) = scratch.split_at_mut(n);
        for chunk in buffer.chunks_mut(n) {
            copy.copy_from_slice(chunk);
            self.compute(copy, chunk, 1, 1, tmp);
        }
    }

    fn get_inplace_scratch_len(&self) -> usize {
        self.len + self.max_factor
    }

    fn len(&self) -> usize {
        self.len
    }

    fn process(&self, buffer: &mut [Complex<f32>]) {
        let mut scratch = vec![Complex::new(0.0, 0.0); self.get_inplace_scratch_len()];
        self.process_with_scratch(buffer, &mut scratch);
    }
}
