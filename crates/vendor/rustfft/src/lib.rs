//! Minimal offline stand-in for the `rustfft` crate.
//!
//! The container is networkless, so upstream `rustfft` cannot be
//! fetched. This shim implements the planner/plan API surface the
//! workspace uses with two algorithms behind one trait:
//!
//! * **Iterative mixed-radix Stockham autosort** (the `stockham`
//!   module) — the hot path, used for every 5-smooth length (`2^a·3^b·5^c`, which is
//!   every length the workspace's `good_shape` padding produces). A
//!   stage planner factors the length into hardcoded radix-4/3/5
//!   butterflies plus one trailing radix-2 stage for odd `log2`
//!   2-parts, with precomputed per-stage twiddle tables stored
//!   contiguously in inner-loop order and ping-pong between the
//!   caller's buffer and the scratch half — no bit/digit-reversal
//!   pass, unit-stride inner loops over contiguous `re`/`im` pairs
//!   that the compiler autovectorizes.
//! * **Recursive mixed-radix Cooley–Tukey** (the `recursive` module) —
//!   the fallback for lengths with prime factors larger than 5: composite
//!   lengths decompose into their prime factors, prime factors fall
//!   back to a naive O(p²) DFT. It is also exposed directly via
//!   [`FftPlanner::plan_fft_recursive`] as the parity/bench baseline
//!   for the Stockham kernels.
//!
//! Shared semantics, matching upstream (and FFTW/MKL):
//!
//! * [`Fft::process_with_scratch`] transforms every contiguous
//!   length-`len` chunk of the buffer, which `znn-fft` relies on for
//!   batched z-line transforms;
//! * transforms are unnormalized in both directions:
//!   `inverse(forward(x)) == len * x`.
//!
//! Swap back to the real crate for SIMD kernels; the API is unchanged
//! (`plan_fft_recursive` is a shim-only extra used by the benches).
//!
//! # Example
//!
//! ```
//! use rustfft::{num_complex::Complex, FftPlanner};
//!
//! let mut planner = FftPlanner::new();
//! // 48 = 2^4·3 is 5-smooth: planned onto the iterative Stockham path
//! let fft = planner.plan_fft_forward(48);
//! let mut buffer = vec![Complex::new(1.0f32, 0.0); 48];
//! fft.process(&mut buffer);
//! // the DC bin of a constant signal is the total mass
//! assert!((buffer[0].re - 48.0).abs() < 1e-4);
//! assert!(buffer[1].norm() < 1e-4);
//! ```

pub use num_complex;
use num_complex::Complex;

mod planner;
pub(crate) mod recursive;
pub(crate) mod stockham;
pub(crate) mod twiddles;

pub use planner::FftPlanner;

/// Direction of a transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FftDirection {
    /// Forward transform, `e^{-2πi·kt/n}` kernel.
    Forward,
    /// Inverse transform, `e^{+2πi·kt/n}` kernel (unnormalized).
    Inverse,
}

impl FftDirection {
    /// The sign of the exponent: `-1` forward, `+1` inverse.
    pub(crate) fn sign(self) -> f64 {
        match self {
            FftDirection::Forward => -1.0,
            FftDirection::Inverse => 1.0,
        }
    }
}

/// A planned 1D FFT of a fixed length.
#[allow(clippy::len_without_is_empty)] // matches upstream rustfft's trait
pub trait Fft<T>: Send + Sync {
    /// Transform every contiguous `len()`-sized chunk of `buffer` in
    /// place, using `scratch` (at least [`Fft::get_inplace_scratch_len`]
    /// elements).
    fn process_with_scratch(&self, buffer: &mut [Complex<T>], scratch: &mut [Complex<T>]);

    /// Scratch elements required by [`Fft::process_with_scratch`].
    fn get_inplace_scratch_len(&self) -> usize;

    /// The transform length.
    fn len(&self) -> usize;

    /// Convenience: transform with internally allocated scratch.
    fn process(&self, buffer: &mut [Complex<T>]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex<f32>], sign: f64) -> Vec<Complex<f32>> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::new(0.0f64, 0.0f64);
                for (t, &v) in x.iter().enumerate() {
                    let ang = sign * 2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
                    acc += Complex::new(v.re as f64, v.im as f64)
                        * Complex::new(ang.cos(), ang.sin());
                }
                Complex::new(acc.re as f32, acc.im as f32)
            })
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Complex<f32>> {
        (0..n)
            .map(|i| {
                let a = ((i * 37 + 11) % 101) as f32 / 101.0 - 0.5;
                let b = ((i * 53 + 29) % 97) as f32 / 97.0 - 0.5;
                Complex::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_on_many_lengths() {
        let mut planner = FftPlanner::new();
        for n in [2usize, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 16, 17, 20, 24, 30, 32, 36, 60] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.plan_fft_forward(n).process(&mut buf);
            let want = naive_dft(&x, -1.0);
            for (a, b) in buf.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-3 * n as f32, "len {n}");
            }
        }
    }

    #[test]
    fn stockham_matches_naive_dft_on_all_powers_of_two() {
        let mut planner = FftPlanner::new();
        for k in 1..=10 {
            let n = 1usize << k;
            let x = test_signal(n);
            let mut fwd = x.clone();
            planner.plan_fft_forward(n).process(&mut fwd);
            let want = naive_dft(&x, -1.0);
            for (a, b) in fwd.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-4 * n as f32, "fwd len {n}");
            }
            let mut inv = x.clone();
            planner.plan_fft_inverse(n).process(&mut inv);
            let want = naive_dft(&x, 1.0);
            for (a, b) in inv.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-4 * n as f32, "inv len {n}");
            }
        }
    }

    #[test]
    fn stockham_matches_naive_dft_on_every_5_smooth_length() {
        // the mixed-radix tentpole: every 5-smooth length ≤ 600 now
        // takes the iterative path — single radices (2^k, 3^k, 5^k) and
        // every mixed factorization
        let mut planner = FftPlanner::new();
        let mut covered = 0;
        for n in 2..=600usize {
            let mut m = n;
            for p in [2usize, 3, 5] {
                while m % p == 0 {
                    m /= p;
                }
            }
            if m != 1 {
                continue;
            }
            covered += 1;
            let x = test_signal(n);
            let mut fwd = x.clone();
            planner.plan_fft_forward(n).process(&mut fwd);
            let want = naive_dft(&x, -1.0);
            for (a, b) in fwd.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-4 * n as f32, "fwd len {n}");
            }
            let mut inv = x.clone();
            planner.plan_fft_inverse(n).process(&mut inv);
            let want = naive_dft(&x, 1.0);
            for (a, b) in inv.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-4 * n as f32, "inv len {n}");
            }
        }
        assert!(covered > 50, "5-smooth sweep too sparse: {covered}");
    }

    #[test]
    fn stockham_agrees_with_recursive_kernels() {
        // differential pin: the two algorithms must agree wherever both
        // apply (the fallback is the long-standing reference) — now
        // including non-power-of-two 5-smooth lengths
        let mut planner = FftPlanner::new();
        for n in [2usize, 4, 8, 16, 64, 128, 512, 6, 12, 45, 48, 60, 120, 360, 375] {
            for dir in [FftDirection::Forward, FftDirection::Inverse] {
                let x = test_signal(n);
                let mut a = x.clone();
                planner.plan_fft(n, dir).process(&mut a);
                let mut b = x;
                planner.plan_fft_recursive(n, dir).process(&mut b);
                for (u, v) in a.iter().zip(&b) {
                    assert!((*u - *v).norm() < 1e-4 * n as f32, "len {n} {dir:?}");
                }
            }
        }
    }

    #[test]
    fn inverse_is_unnormalized_inverse() {
        let mut planner = FftPlanner::new();
        for n in [4usize, 6, 9, 11, 16, 25, 64, 75, 256, 270] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.plan_fft_forward(n).process(&mut buf);
            planner.plan_fft_inverse(n).process(&mut buf);
            for (a, b) in buf.iter().zip(&x) {
                let scaled = Complex::new(a.re / n as f32, a.im / n as f32);
                assert!((scaled - *b).norm() < 1e-4, "len {n}");
            }
        }
    }

    #[test]
    fn simd_batched_lines_match_scalar_bitwise_on_every_5_smooth_length() {
        // the SIMD tentpole pin: for every 5-smooth length, a buffer of
        // 11 lines (8 through the batched AVX2 stage kernels + 3
        // through the scalar remainder path) must equal the
        // scalar-pinned plan *bitwise* — the vector butterflies perform
        // the same IEEE ops in the same order per lane. On hosts
        // without AVX2 both plans are scalar and this degenerates to a
        // determinism check.
        let mut planner = FftPlanner::new();
        let mut covered = 0;
        for n in 4..=360usize {
            if !crate::planner::is_5_smooth(n) {
                continue;
            }
            covered += 1;
            for dir in [FftDirection::Forward, FftDirection::Inverse] {
                let lines = 11usize;
                let mut signal = Vec::with_capacity(lines * n);
                for l in 0..lines {
                    let line = test_signal(n);
                    signal.extend(line.iter().map(|v| {
                        Complex::new(v.re + l as f32 * 0.01, v.im - l as f32 * 0.02)
                    }));
                }
                let plan = planner.plan_fft(n, dir);
                let scalar_plan = planner.plan_fft_scalar(n, dir);
                let mut simd = signal.clone();
                let mut scratch =
                    vec![Complex::new(0.0, 0.0); plan.get_inplace_scratch_len()];
                plan.process_with_scratch(&mut simd, &mut scratch);
                let mut scalar = signal;
                let mut sscratch =
                    vec![Complex::new(0.0, 0.0); scalar_plan.get_inplace_scratch_len()];
                for chunk in scalar.chunks_mut(n) {
                    scalar_plan.process_with_scratch(chunk, &mut sscratch);
                }
                assert_eq!(simd, scalar, "len {n} {dir:?}");
            }
        }
        assert!(covered > 40, "5-smooth sweep too sparse: {covered}");
    }

    #[test]
    fn simd_batch_boundary_is_unobservable() {
        // processing 20 lines at once (2 full batches + 4 remainder)
        // must equal processing them in any split — each line's result
        // is independent of where the batch boundaries land
        let mut planner = FftPlanner::new();
        for n in [24usize, 60, 128] {
            let plan = planner.plan_fft_forward(n);
            let lines = 20usize;
            let signal: Vec<Complex<f32>> = (0..lines * n)
                .map(|i| {
                    let a = ((i * 37 + 11) % 101) as f32 / 101.0 - 0.5;
                    let b = ((i * 53 + 29) % 97) as f32 / 97.0 - 0.5;
                    Complex::new(a, b)
                })
                .collect();
            let mut scratch = vec![Complex::new(0.0, 0.0); plan.get_inplace_scratch_len()];
            let mut whole = signal.clone();
            plan.process_with_scratch(&mut whole, &mut scratch);
            for split in [n, 8 * n, 12 * n] {
                let mut parts = signal.clone();
                let (lo, hi) = parts.split_at_mut(split);
                plan.process_with_scratch(lo, &mut scratch);
                plan.process_with_scratch(hi, &mut scratch);
                assert_eq!(parts, whole, "len {n} split at {split}");
            }
        }
    }

    #[test]
    fn processes_every_chunk() {
        let mut planner = FftPlanner::new();
        // both algorithms must honor the batched-chunk contract (6 is
        // 5-smooth → Stockham, 7 is prime → recursive fallback)
        for n in [4usize, 6, 7] {
            let plan = planner.plan_fft_forward(n);
            let line = test_signal(n);
            let mut batched: Vec<Complex<f32>> = [line.clone(), line.clone()].concat();
            let mut scratch = vec![Complex::new(0.0, 0.0); plan.get_inplace_scratch_len()];
            plan.process_with_scratch(&mut batched, &mut scratch);
            let mut single = line;
            plan.process(&mut single);
            assert_eq!(&batched[..n], &single[..]);
            assert_eq!(&batched[n..], &single[..]);
        }
    }
}
