//! Minimal offline stand-in for the `rustfft` crate.
//!
//! The container is networkless, so upstream `rustfft` cannot be
//! fetched. This shim implements the planner/plan API surface the
//! workspace uses on top of a recursive mixed-radix Cooley–Tukey FFT:
//!
//! * arbitrary lengths are supported — composite lengths decompose into
//!   their prime factors, prime factors fall back to a naive O(p²) DFT
//!   (the workspace pads transforms to 5-smooth sizes, so the naive
//!   path is cold);
//! * [`Fft::process_with_scratch`] transforms every contiguous
//!   length-`len` chunk of the buffer, matching upstream semantics that
//!   `znn-fft` relies on for batched z-line transforms;
//! * transforms are unnormalized in both directions, like upstream
//!   (and FFTW/MKL): `inverse(forward(x)) == len * x`.
//!
//! Swap back to the real crate for SIMD kernels; the API is unchanged.

pub use num_complex;
use num_complex::Complex;
use std::sync::Arc;

/// Direction of a transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FftDirection {
    /// Forward transform, `e^{-2πi·kt/n}` kernel.
    Forward,
    /// Inverse transform, `e^{+2πi·kt/n}` kernel (unnormalized).
    Inverse,
}

/// A planned 1D FFT of a fixed length.
#[allow(clippy::len_without_is_empty)] // matches upstream rustfft's trait
pub trait Fft<T>: Send + Sync {
    /// Transform every contiguous `len()`-sized chunk of `buffer` in
    /// place, using `scratch` (at least [`Fft::get_inplace_scratch_len`]
    /// elements).
    fn process_with_scratch(&self, buffer: &mut [Complex<T>], scratch: &mut [Complex<T>]);

    /// Scratch elements required by [`Fft::process_with_scratch`].
    fn get_inplace_scratch_len(&self) -> usize;

    /// The transform length.
    fn len(&self) -> usize;

    /// Convenience: transform with internally allocated scratch.
    fn process(&self, buffer: &mut [Complex<T>]);
}

/// Plans FFTs. The workspace caches plans itself, so this planner does
/// not memoize.
pub struct FftPlanner<T> {
    _marker: std::marker::PhantomData<T>,
}

impl FftPlanner<f32> {
    /// A new planner.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        FftPlanner {
            _marker: std::marker::PhantomData,
        }
    }

    /// Plan a forward FFT of `len`.
    pub fn plan_fft_forward(&mut self, len: usize) -> Arc<dyn Fft<f32>> {
        Arc::new(MixedRadix::new(len, FftDirection::Forward))
    }

    /// Plan an inverse FFT of `len`.
    pub fn plan_fft_inverse(&mut self, len: usize) -> Arc<dyn Fft<f32>> {
        Arc::new(MixedRadix::new(len, FftDirection::Inverse))
    }

    /// Plan a transform in the given direction.
    pub fn plan_fft(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft<f32>> {
        Arc::new(MixedRadix::new(len, direction))
    }
}

/// Recursive mixed-radix Cooley–Tukey FFT with a per-plan twiddle table.
struct MixedRadix {
    len: usize,
    /// `twiddles[t] = e^{sign·2πi·t/len}`, `sign` per direction.
    twiddles: Vec<Complex<f32>>,
    /// Largest prime factor of `len` (size of the butterfly temp row).
    max_factor: usize,
}

fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut p = 3;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 2;
    }
    n
}

fn largest_prime_factor(mut n: usize) -> usize {
    let mut largest = 1;
    while n > 1 {
        let p = smallest_prime_factor(n);
        largest = largest.max(p);
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    largest
}

impl MixedRadix {
    fn new(len: usize, direction: FftDirection) -> Self {
        let sign = match direction {
            FftDirection::Forward => -1.0f64,
            FftDirection::Inverse => 1.0f64,
        };
        let twiddles = (0..len.max(1))
            .map(|t| {
                let ang = sign * 2.0 * std::f64::consts::PI * t as f64 / len.max(1) as f64;
                Complex::new(ang.cos() as f32, ang.sin() as f32)
            })
            .collect();
        MixedRadix {
            len,
            twiddles,
            max_factor: largest_prime_factor(len.max(1)),
        }
    }

    /// `dst[s] = Σ_t src[t·stride] · w_n^{st}` for a sub-transform of
    /// size `n = len / tstep`, reading `src` at the given stride.
    ///
    /// Decimation in time: split `n = p·m` on the smallest prime `p`,
    /// recurse on the `p` interleaved sub-sequences, then combine with
    /// `X[k + s·m] = Σ_q (Y_q[k]·w_n^{qk}) · w_p^{qs}`. The combine
    /// reads and writes the same `p` positions `{k + j·m}` per `k`, so a
    /// `p`-element temp row makes it safe in place.
    fn compute(&self, src: &[Complex<f32>], dst: &mut [Complex<f32>], stride: usize, tstep: usize, tmp: &mut [Complex<f32>]) {
        let n = self.len / tstep;
        if n == 1 {
            dst[0] = src[0];
            return;
        }
        let p = smallest_prime_factor(n);
        let m = n / p;
        if m == 1 {
            // prime length: naive DFT from the strided source (src and
            // dst never alias — src is the scratch copy)
            for (s, d) in dst.iter_mut().take(p).enumerate() {
                let mut acc = Complex::new(0.0, 0.0);
                for q in 0..p {
                    let w = self.twiddles[(q * s * tstep) % self.len];
                    acc += src[q * stride] * w;
                }
                *d = acc;
            }
            return;
        }
        for q in 0..p {
            self.compute(
                &src[q * stride..],
                &mut dst[q * m..(q + 1) * m],
                stride * p,
                tstep * p,
                tmp,
            );
        }
        // combine: X[k + s·m] = Σ_q (Y_q[k]·w_n^{qk}) · w_p^{qs}
        let wp_step = self.len / p;
        for k in 0..m {
            for q in 0..p {
                let w = self.twiddles[(q * k * tstep) % self.len];
                tmp[q] = dst[q * m + k] * w;
            }
            for s in 0..p {
                let mut acc = tmp[0];
                for (q, &t) in tmp.iter().enumerate().take(p).skip(1) {
                    let w = self.twiddles[(q * s * wp_step) % self.len];
                    acc += t * w;
                }
                dst[k + s * m] = acc;
            }
        }
    }
}

impl Fft<f32> for MixedRadix {
    fn process_with_scratch(&self, buffer: &mut [Complex<f32>], scratch: &mut [Complex<f32>]) {
        let n = self.len;
        if n <= 1 {
            return;
        }
        assert!(
            buffer.len().is_multiple_of(n),
            "buffer length {} is not a multiple of the FFT length {n}",
            buffer.len()
        );
        assert!(
            scratch.len() >= self.get_inplace_scratch_len(),
            "scratch too small: {} < {}",
            scratch.len(),
            self.get_inplace_scratch_len()
        );
        let (copy, tmp) = scratch.split_at_mut(n);
        for chunk in buffer.chunks_mut(n) {
            copy.copy_from_slice(chunk);
            self.compute(copy, chunk, 1, 1, tmp);
        }
    }

    fn get_inplace_scratch_len(&self) -> usize {
        self.len + self.max_factor
    }

    fn len(&self) -> usize {
        self.len
    }

    fn process(&self, buffer: &mut [Complex<f32>]) {
        let mut scratch = vec![Complex::new(0.0, 0.0); self.get_inplace_scratch_len()];
        self.process_with_scratch(buffer, &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex<f32>], sign: f64) -> Vec<Complex<f32>> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::new(0.0f64, 0.0f64);
                for (t, &v) in x.iter().enumerate() {
                    let ang = sign * 2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
                    acc += Complex::new(v.re as f64, v.im as f64)
                        * Complex::new(ang.cos(), ang.sin());
                }
                Complex::new(acc.re as f32, acc.im as f32)
            })
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Complex<f32>> {
        (0..n)
            .map(|i| {
                let a = ((i * 37 + 11) % 101) as f32 / 101.0 - 0.5;
                let b = ((i * 53 + 29) % 97) as f32 / 97.0 - 0.5;
                Complex::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_on_many_lengths() {
        let mut planner = FftPlanner::new();
        for n in [2usize, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 16, 17, 20, 24, 30, 32, 36, 60] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.plan_fft_forward(n).process(&mut buf);
            let want = naive_dft(&x, -1.0);
            for (a, b) in buf.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-3 * n as f32, "len {n}");
            }
        }
    }

    #[test]
    fn inverse_is_unnormalized_inverse() {
        let mut planner = FftPlanner::new();
        for n in [4usize, 6, 9, 11, 16, 25] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.plan_fft_forward(n).process(&mut buf);
            planner.plan_fft_inverse(n).process(&mut buf);
            for (a, b) in buf.iter().zip(&x) {
                let scaled = Complex::new(a.re / n as f32, a.im / n as f32);
                assert!((scaled - *b).norm() < 1e-4, "len {n}");
            }
        }
    }

    #[test]
    fn processes_every_chunk() {
        let mut planner = FftPlanner::new();
        let plan = planner.plan_fft_forward(4);
        let line = test_signal(4);
        let mut batched: Vec<Complex<f32>> = [line.clone(), line.clone()].concat();
        let mut scratch = vec![Complex::new(0.0, 0.0); plan.get_inplace_scratch_len()];
        plan.process_with_scratch(&mut batched, &mut scratch);
        let mut single = line;
        plan.process(&mut single);
        assert_eq!(&batched[..4], &single[..]);
        assert_eq!(&batched[4..], &single[..]);
    }
}
