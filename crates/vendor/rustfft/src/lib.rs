//! Minimal offline stand-in for the `rustfft` crate.
//!
//! The container is networkless, so upstream `rustfft` cannot be
//! fetched. This shim implements the planner/plan API surface the
//! workspace uses with two algorithms behind one trait:
//!
//! * **Iterative Stockham autosort** ([`Stockham`]) — the hot path, used
//!   for every power-of-two length. Hardcoded radix-4 butterflies with a
//!   single trailing radix-2 stage when `log2(n)` is odd, precomputed
//!   per-stage twiddle tables (`(w, w², w³)` triples stored contiguously
//!   in inner-loop order), and ping-pong between the caller's buffer and
//!   the scratch half — no bit-reversal pass, unit-stride inner loops
//!   over contiguous `re`/`im` pairs that the compiler autovectorizes.
//! * **Recursive mixed-radix Cooley–Tukey** ([`MixedRadix`]) — the
//!   fallback for everything else: composite lengths decompose into
//!   their prime factors, prime factors fall back to a naive O(p²) DFT.
//!   The workspace pads transforms to 5-smooth sizes and prefers even
//!   (usually power-of-two) extents, so this path is warm only for
//!   lengths with factors 3 or 5. It is also exposed directly via
//!   [`FftPlanner::plan_fft_recursive`] as the parity/bench baseline for
//!   the Stockham kernels.
//!
//! Shared semantics, matching upstream (and FFTW/MKL):
//!
//! * [`Fft::process_with_scratch`] transforms every contiguous
//!   length-`len` chunk of the buffer, which `znn-fft` relies on for
//!   batched z-line transforms;
//! * transforms are unnormalized in both directions:
//!   `inverse(forward(x)) == len * x`.
//!
//! Swap back to the real crate for SIMD kernels; the API is unchanged
//! (`plan_fft_recursive` is a shim-only extra used by the benches).

pub use num_complex;
use num_complex::Complex;
use std::sync::Arc;

/// Direction of a transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FftDirection {
    /// Forward transform, `e^{-2πi·kt/n}` kernel.
    Forward,
    /// Inverse transform, `e^{+2πi·kt/n}` kernel (unnormalized).
    Inverse,
}

impl FftDirection {
    /// The sign of the exponent: `-1` forward, `+1` inverse.
    fn sign(self) -> f64 {
        match self {
            FftDirection::Forward => -1.0,
            FftDirection::Inverse => 1.0,
        }
    }
}

/// A planned 1D FFT of a fixed length.
#[allow(clippy::len_without_is_empty)] // matches upstream rustfft's trait
pub trait Fft<T>: Send + Sync {
    /// Transform every contiguous `len()`-sized chunk of `buffer` in
    /// place, using `scratch` (at least [`Fft::get_inplace_scratch_len`]
    /// elements).
    fn process_with_scratch(&self, buffer: &mut [Complex<T>], scratch: &mut [Complex<T>]);

    /// Scratch elements required by [`Fft::process_with_scratch`].
    fn get_inplace_scratch_len(&self) -> usize;

    /// The transform length.
    fn len(&self) -> usize;

    /// Convenience: transform with internally allocated scratch.
    fn process(&self, buffer: &mut [Complex<T>]);
}

/// Plans FFTs. The workspace caches plans itself, so this planner does
/// not memoize.
pub struct FftPlanner<T> {
    _marker: std::marker::PhantomData<T>,
}

impl FftPlanner<f32> {
    /// A new planner.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        FftPlanner {
            _marker: std::marker::PhantomData,
        }
    }

    /// Plan a forward FFT of `len`.
    pub fn plan_fft_forward(&mut self, len: usize) -> Arc<dyn Fft<f32>> {
        self.plan_fft(len, FftDirection::Forward)
    }

    /// Plan an inverse FFT of `len`.
    pub fn plan_fft_inverse(&mut self, len: usize) -> Arc<dyn Fft<f32>> {
        self.plan_fft(len, FftDirection::Inverse)
    }

    /// Plan a transform in the given direction: the iterative Stockham
    /// radix-4/2 kernels for power-of-two lengths, the generic recursive
    /// mixed-radix fallback for everything else.
    pub fn plan_fft(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft<f32>> {
        if len >= 2 && len.is_power_of_two() {
            Arc::new(Stockham::new(len, direction))
        } else {
            Arc::new(MixedRadix::new(len, direction))
        }
    }

    /// Plan the generic *recursive mixed-radix* transform regardless of
    /// length. Shim-only extra: the old hot path, kept as the
    /// correctness/performance baseline the `fft_kernels` bench compares
    /// the Stockham kernels against.
    pub fn plan_fft_recursive(&mut self, len: usize, direction: FftDirection) -> Arc<dyn Fft<f32>> {
        Arc::new(MixedRadix::new(len, direction))
    }
}

// ---------------------------------------------------------------------
// Iterative Stockham autosort (power-of-two lengths)
// ---------------------------------------------------------------------

/// Iterative Stockham autosort FFT for `n = 2^k`.
///
/// Decimation in frequency. Each stage maps a sub-transform length
/// `n_cur` (starting at `n`, shrinking by the radix) and a batch stride
/// `s` (starting at 1, growing by the radix) over the data, writing the
/// permuted output of the butterfly directly — the "autosort": no
/// bit-reversal pass, every read and write is unit-stride within an
/// inner loop of `s` consecutive elements. Radix-4 stages run while
/// `n_cur >= 4`; an odd power of two ends with one radix-2 stage at
/// `n_cur == 2` (whose twiddle is 1). Data ping-pongs between the
/// caller's chunk and the scratch buffer; an odd stage count is fixed
/// with one final copy.
///
/// Stage `j` (radix 4, current length `n_cur`, `n1 = n_cur/4`) computes,
/// for `p ∈ [0, n1)` and `q ∈ [0, s)`:
///
/// ```text
/// a,b,c,d     = src[q + s·(p + r·n1)],  r = 0..4
/// dst[q + s·(4p+0)] =       (a+c) + (b+d)
/// dst[q + s·(4p+1)] = w¹p·((a−c) ∓ i(b−d))      (∓: forward/inverse)
/// dst[q + s·(4p+2)] = w²p·((a+c) − (b+d))
/// dst[q + s·(4p+3)] = w³p·((a−c) ± i(b−d))
/// ```
///
/// with `w = e^{∓2πi/n_cur}`. The `(w¹p, w²p, w³p)` triples are
/// precomputed per stage in `p` order, so the butterfly streams its
/// twiddles linearly.
struct Stockham {
    len: usize,
    /// `-1.0` forward, `+1.0` inverse: the sign of `i` in the radix-4
    /// butterfly's `±i(b−d)` term.
    esign: f32,
    /// One table per radix-4 stage, in execution order: stage `j`
    /// (current length `n_cur = len >> 2j`) holds `3·n_cur/4` entries,
    /// the triple `(w¹p, w²p, w³p)` for each `p`. The trailing radix-2
    /// stage, if any, needs no twiddles (its only `p` is 0).
    stages: Vec<Vec<Complex<f32>>>,
}

impl Stockham {
    fn new(len: usize, direction: FftDirection) -> Self {
        assert!(len.is_power_of_two() && len >= 2);
        let sign = direction.sign();
        let mut stages = Vec::new();
        let mut n_cur = len;
        while n_cur >= 4 {
            let n1 = n_cur / 4;
            let step = sign * 2.0 * std::f64::consts::PI / n_cur as f64;
            let mut tw = Vec::with_capacity(3 * n1);
            for p in 0..n1 {
                for r in 1..=3 {
                    let ang = step * (r * p) as f64;
                    tw.push(Complex::new(ang.cos() as f32, ang.sin() as f32));
                }
            }
            stages.push(tw);
            n_cur /= 4;
        }
        Stockham {
            len,
            esign: sign as f32,
            stages,
        }
    }

    /// One radix-4 Stockham stage: `src` at `(n_cur, s)` digit position
    /// into `dst`. `src` and `dst` must be distinct `len`-element
    /// buffers.
    fn stage4(src: &[Complex<f32>], dst: &mut [Complex<f32>], s: usize, tw: &[Complex<f32>], esign: f32) {
        let n1 = src.len() / (4 * s);
        for p in 0..n1 {
            let w1 = tw[3 * p];
            let w2 = tw[3 * p + 1];
            let w3 = tw[3 * p + 2];
            let x0 = &src[s * p..s * (p + 1)];
            let x1 = &src[s * (p + n1)..s * (p + n1) + s];
            let x2 = &src[s * (p + 2 * n1)..s * (p + 2 * n1) + s];
            let x3 = &src[s * (p + 3 * n1)..s * (p + 3 * n1) + s];
            let block = &mut dst[4 * s * p..4 * s * (p + 1)];
            let (d0, rest) = block.split_at_mut(s);
            let (d1, rest) = rest.split_at_mut(s);
            let (d2, d3) = rest.split_at_mut(s);
            for q in 0..s {
                let a = x0[q];
                let b = x1[q];
                let c = x2[q];
                let d = x3[q];
                let apc = a + c;
                let amc = a - c;
                let bpd = b + d;
                let bmd = b - d;
                // jt = esign·i·(b−d): −i(b−d) forward, +i(b−d) inverse
                let jt = Complex::new(-esign * bmd.im, esign * bmd.re);
                d0[q] = apc + bpd;
                let y1 = amc + jt;
                let y3 = amc - jt;
                d1[q] = Complex::new(
                    y1.re * w1.re - y1.im * w1.im,
                    y1.re * w1.im + y1.im * w1.re,
                );
                let y2 = apc - bpd;
                d2[q] = Complex::new(
                    y2.re * w2.re - y2.im * w2.im,
                    y2.re * w2.im + y2.im * w2.re,
                );
                d3[q] = Complex::new(
                    y3.re * w3.re - y3.im * w3.im,
                    y3.re * w3.im + y3.im * w3.re,
                );
            }
        }
    }

    /// The trailing radix-2 stage (`n_cur == 2`, `s == len/2`): its only
    /// twiddle is `w⁰ = 1`, so it is a pure elementwise butterfly.
    fn stage2(src: &[Complex<f32>], dst: &mut [Complex<f32>]) {
        let s = src.len() / 2;
        let (a, b) = src.split_at(s);
        let (d0, d1) = dst.split_at_mut(s);
        for q in 0..s {
            d0[q] = a[q] + b[q];
            d1[q] = a[q] - b[q];
        }
    }

    /// Transform one `len`-element chunk, using `work` (also `len`
    /// elements) as the ping-pong partner.
    fn transform_chunk(&self, chunk: &mut [Complex<f32>], work: &mut [Complex<f32>]) {
        let mut n_cur = self.len;
        let mut s = 1usize;
        let mut in_chunk = true;
        for tw in &self.stages {
            if in_chunk {
                Self::stage4(chunk, work, s, tw, self.esign);
            } else {
                Self::stage4(work, chunk, s, tw, self.esign);
            }
            in_chunk = !in_chunk;
            n_cur /= 4;
            s *= 4;
        }
        if n_cur == 2 {
            if in_chunk {
                Self::stage2(chunk, work);
            } else {
                Self::stage2(work, chunk);
            }
            in_chunk = !in_chunk;
        }
        if !in_chunk {
            chunk.copy_from_slice(work);
        }
    }
}

impl Fft<f32> for Stockham {
    fn process_with_scratch(&self, buffer: &mut [Complex<f32>], scratch: &mut [Complex<f32>]) {
        let n = self.len;
        assert!(
            buffer.len().is_multiple_of(n),
            "buffer length {} is not a multiple of the FFT length {n}",
            buffer.len()
        );
        assert!(
            scratch.len() >= n,
            "scratch too small: {} < {n}",
            scratch.len()
        );
        let work = &mut scratch[..n];
        for chunk in buffer.chunks_mut(n) {
            self.transform_chunk(chunk, work);
        }
    }

    fn get_inplace_scratch_len(&self) -> usize {
        self.len
    }

    fn len(&self) -> usize {
        self.len
    }

    fn process(&self, buffer: &mut [Complex<f32>]) {
        let mut scratch = vec![Complex::new(0.0, 0.0); self.get_inplace_scratch_len()];
        self.process_with_scratch(buffer, &mut scratch);
    }
}

// ---------------------------------------------------------------------
// Recursive mixed-radix fallback (non-power-of-two lengths)
// ---------------------------------------------------------------------

/// Recursive mixed-radix Cooley–Tukey FFT with a per-plan twiddle table.
struct MixedRadix {
    len: usize,
    /// `twiddles[t] = e^{sign·2πi·t/len}`, `sign` per direction.
    twiddles: Vec<Complex<f32>>,
    /// Largest prime factor of `len` (size of the butterfly temp row).
    max_factor: usize,
}

fn smallest_prime_factor(n: usize) -> usize {
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut p = 3;
    while p * p <= n {
        if n.is_multiple_of(p) {
            return p;
        }
        p += 2;
    }
    n
}

fn largest_prime_factor(mut n: usize) -> usize {
    let mut largest = 1;
    while n > 1 {
        let p = smallest_prime_factor(n);
        largest = largest.max(p);
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    largest
}

impl MixedRadix {
    fn new(len: usize, direction: FftDirection) -> Self {
        let sign = direction.sign();
        let twiddles = (0..len.max(1))
            .map(|t| {
                let ang = sign * 2.0 * std::f64::consts::PI * t as f64 / len.max(1) as f64;
                Complex::new(ang.cos() as f32, ang.sin() as f32)
            })
            .collect();
        MixedRadix {
            len,
            twiddles,
            max_factor: largest_prime_factor(len.max(1)),
        }
    }

    /// `dst[s] = Σ_t src[t·stride] · w_n^{st}` for a sub-transform of
    /// size `n = len / tstep`, reading `src` at the given stride.
    ///
    /// Decimation in time: split `n = p·m` on the smallest prime `p`,
    /// recurse on the `p` interleaved sub-sequences, then combine with
    /// `X[k + s·m] = Σ_q (Y_q[k]·w_n^{qk}) · w_p^{qs}`. The combine
    /// reads and writes the same `p` positions `{k + j·m}` per `k`, so a
    /// `p`-element temp row makes it safe in place.
    fn compute(&self, src: &[Complex<f32>], dst: &mut [Complex<f32>], stride: usize, tstep: usize, tmp: &mut [Complex<f32>]) {
        let n = self.len / tstep;
        if n == 1 {
            dst[0] = src[0];
            return;
        }
        let p = smallest_prime_factor(n);
        let m = n / p;
        if m == 1 {
            // prime length: naive DFT from the strided source (src and
            // dst never alias — src is the scratch copy)
            for (s, d) in dst.iter_mut().take(p).enumerate() {
                let mut acc = Complex::new(0.0, 0.0);
                for q in 0..p {
                    let w = self.twiddles[(q * s * tstep) % self.len];
                    acc += src[q * stride] * w;
                }
                *d = acc;
            }
            return;
        }
        for q in 0..p {
            self.compute(
                &src[q * stride..],
                &mut dst[q * m..(q + 1) * m],
                stride * p,
                tstep * p,
                tmp,
            );
        }
        // combine: X[k + s·m] = Σ_q (Y_q[k]·w_n^{qk}) · w_p^{qs}
        let wp_step = self.len / p;
        for k in 0..m {
            for q in 0..p {
                let w = self.twiddles[(q * k * tstep) % self.len];
                tmp[q] = dst[q * m + k] * w;
            }
            for s in 0..p {
                let mut acc = tmp[0];
                for (q, &t) in tmp.iter().enumerate().take(p).skip(1) {
                    let w = self.twiddles[(q * s * wp_step) % self.len];
                    acc += t * w;
                }
                dst[k + s * m] = acc;
            }
        }
    }
}

impl Fft<f32> for MixedRadix {
    fn process_with_scratch(&self, buffer: &mut [Complex<f32>], scratch: &mut [Complex<f32>]) {
        let n = self.len;
        if n <= 1 {
            return;
        }
        assert!(
            buffer.len().is_multiple_of(n),
            "buffer length {} is not a multiple of the FFT length {n}",
            buffer.len()
        );
        assert!(
            scratch.len() >= self.get_inplace_scratch_len(),
            "scratch too small: {} < {}",
            scratch.len(),
            self.get_inplace_scratch_len()
        );
        let (copy, tmp) = scratch.split_at_mut(n);
        for chunk in buffer.chunks_mut(n) {
            copy.copy_from_slice(chunk);
            self.compute(copy, chunk, 1, 1, tmp);
        }
    }

    fn get_inplace_scratch_len(&self) -> usize {
        self.len + self.max_factor
    }

    fn len(&self) -> usize {
        self.len
    }

    fn process(&self, buffer: &mut [Complex<f32>]) {
        let mut scratch = vec![Complex::new(0.0, 0.0); self.get_inplace_scratch_len()];
        self.process_with_scratch(buffer, &mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex<f32>], sign: f64) -> Vec<Complex<f32>> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::new(0.0f64, 0.0f64);
                for (t, &v) in x.iter().enumerate() {
                    let ang = sign * 2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
                    acc += Complex::new(v.re as f64, v.im as f64)
                        * Complex::new(ang.cos(), ang.sin());
                }
                Complex::new(acc.re as f32, acc.im as f32)
            })
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Complex<f32>> {
        (0..n)
            .map(|i| {
                let a = ((i * 37 + 11) % 101) as f32 / 101.0 - 0.5;
                let b = ((i * 53 + 29) % 97) as f32 / 97.0 - 0.5;
                Complex::new(a, b)
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft_on_many_lengths() {
        let mut planner = FftPlanner::new();
        for n in [2usize, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 16, 17, 20, 24, 30, 32, 36, 60] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.plan_fft_forward(n).process(&mut buf);
            let want = naive_dft(&x, -1.0);
            for (a, b) in buf.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-3 * n as f32, "len {n}");
            }
        }
    }

    #[test]
    fn stockham_matches_naive_dft_on_all_powers_of_two() {
        let mut planner = FftPlanner::new();
        for k in 1..=10 {
            let n = 1usize << k;
            let x = test_signal(n);
            let mut fwd = x.clone();
            planner.plan_fft_forward(n).process(&mut fwd);
            let want = naive_dft(&x, -1.0);
            for (a, b) in fwd.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-4 * n as f32, "fwd len {n}");
            }
            let mut inv = x.clone();
            planner.plan_fft_inverse(n).process(&mut inv);
            let want = naive_dft(&x, 1.0);
            for (a, b) in inv.iter().zip(&want) {
                assert!((*a - *b).norm() < 1e-4 * n as f32, "inv len {n}");
            }
        }
    }

    #[test]
    fn stockham_agrees_with_recursive_kernels() {
        // differential pin: the two algorithms must agree wherever both
        // apply (the fallback is the long-standing reference)
        let mut planner = FftPlanner::new();
        for n in [2usize, 4, 8, 16, 64, 128, 512] {
            for dir in [FftDirection::Forward, FftDirection::Inverse] {
                let x = test_signal(n);
                let mut a = x.clone();
                planner.plan_fft(n, dir).process(&mut a);
                let mut b = x;
                planner.plan_fft_recursive(n, dir).process(&mut b);
                for (u, v) in a.iter().zip(&b) {
                    assert!((*u - *v).norm() < 1e-4 * n as f32, "len {n} {dir:?}");
                }
            }
        }
    }

    #[test]
    fn inverse_is_unnormalized_inverse() {
        let mut planner = FftPlanner::new();
        for n in [4usize, 6, 9, 11, 16, 25, 64, 256] {
            let x = test_signal(n);
            let mut buf = x.clone();
            planner.plan_fft_forward(n).process(&mut buf);
            planner.plan_fft_inverse(n).process(&mut buf);
            for (a, b) in buf.iter().zip(&x) {
                let scaled = Complex::new(a.re / n as f32, a.im / n as f32);
                assert!((scaled - *b).norm() < 1e-4, "len {n}");
            }
        }
    }

    #[test]
    fn processes_every_chunk() {
        let mut planner = FftPlanner::new();
        // both algorithms must honor the batched-chunk contract
        for n in [4usize, 6] {
            let plan = planner.plan_fft_forward(n);
            let line = test_signal(n);
            let mut batched: Vec<Complex<f32>> = [line.clone(), line.clone()].concat();
            let mut scratch = vec![Complex::new(0.0, 0.0); plan.get_inplace_scratch_len()];
            plan.process_with_scratch(&mut batched, &mut scratch);
            let mut single = line;
            plan.process(&mut single);
            assert_eq!(&batched[..n], &single[..]);
            assert_eq!(&batched[n..], &single[..]);
        }
    }
}
