//! Minimal offline stand-in for the `num-complex` crate.
//!
//! Provides the subset of `Complex<T>` the workspace uses: construction,
//! conjugation, magnitude, and the ring operations (including scalar
//! multiplication). The container is networkless, so the real crate
//! cannot be fetched; this shim is API-compatible for the code here and
//! can be swapped back for the upstream crate without source changes.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im`.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Hash)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex number.
pub type Complex32 = Complex<f32>;
/// Double-precision complex number.
pub type Complex64 = Complex<f64>;

impl<T> Complex<T> {
    /// A new complex number with the given real and imaginary parts.
    #[inline]
    pub const fn new(re: T, im: T) -> Self {
        Complex { re, im }
    }
}

impl<T: Copy + Neg<Output = T>> Complex<T> {
    /// The complex conjugate `re - i·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }
}

impl<T> Complex<T>
where
    T: Copy + Add<Output = T> + Mul<Output = T>,
{
    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }
}

impl Complex<f32> {
    /// Magnitude `sqrt(re² + im²)`.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// The additive identity.
    pub const ZERO: Self = Complex::new(0.0, 0.0);
}

impl Complex<f64> {
    /// Magnitude `sqrt(re² + im²)`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl<T: Add<Output = T>> Add for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl<T: Sub<Output = T>> Sub for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl<T> Mul for Complex<T>
where
    T: Copy + Add<Output = T> + Sub<Output = T> + Mul<Output = T>,
{
    type Output = Complex<T>;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl<T: Copy + Mul<Output = T>> Mul<T> for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn mul(self, rhs: T) -> Self {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl<T: Copy + Div<Output = T>> Div<T> for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn div(self, rhs: T) -> Self {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl<T: Neg<Output = T>> Neg for Complex<T> {
    type Output = Complex<T>;
    #[inline]
    fn neg(self) -> Self {
        Complex::new(-self.re, -self.im)
    }
}

macro_rules! forward_ref_binop {
    ($($trait:ident :: $method:ident),+) => {$(
        impl<'a, T> $trait<&'a Complex<T>> for &'a Complex<T>
        where
            T: Copy,
            Complex<T>: $trait<Complex<T>, Output = Complex<T>>,
        {
            type Output = Complex<T>;
            #[inline]
            fn $method(self, rhs: &'a Complex<T>) -> Complex<T> {
                (*self).$method(*rhs)
            }
        }
        impl<T> $trait<Complex<T>> for &Complex<T>
        where
            T: Copy,
            Complex<T>: $trait<Complex<T>, Output = Complex<T>>,
        {
            type Output = Complex<T>;
            #[inline]
            fn $method(self, rhs: Complex<T>) -> Complex<T> {
                (*self).$method(rhs)
            }
        }
        impl<T> $trait<&Complex<T>> for Complex<T>
        where
            T: Copy,
            Complex<T>: $trait<Complex<T>, Output = Complex<T>>,
        {
            type Output = Complex<T>;
            #[inline]
            fn $method(self, rhs: &Complex<T>) -> Complex<T> {
                self.$method(*rhs)
            }
        }
    )+};
}

forward_ref_binop!(Add::add, Sub::sub, Mul::mul);

impl<T: Copy + Add<Output = T>> AddAssign for Complex<T> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = Complex::new(self.re + rhs.re, self.im + rhs.im);
    }
}

impl<T: Copy + Sub<Output = T>> SubAssign for Complex<T> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = Complex::new(self.re - rhs.re, self.im - rhs.im);
    }
}

impl<T> MulAssign for Complex<T>
where
    T: Copy + Add<Output = T> + Sub<Output = T> + Mul<Output = T>,
{
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Copy + Mul<Output = T>> MulAssign<T> for Complex<T> {
    #[inline]
    fn mul_assign(&mut self, rhs: T) {
        *self = Complex::new(self.re * rhs, self.im * rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_ops() {
        let a = Complex32::new(2.0, 1.0);
        let b = Complex32::new(0.0, 1.0);
        assert_eq!(a * b, Complex32::new(-1.0, 2.0));
        assert_eq!(a + b, Complex32::new(2.0, 2.0));
        assert_eq!(a - b, Complex32::new(2.0, 0.0));
        assert_eq!(a.conj(), Complex32::new(2.0, -1.0));
        assert_eq!(Complex32::new(3.0, 4.0).norm(), 5.0);
        let mut c = a;
        c *= 2.0f32;
        assert_eq!(c, Complex32::new(4.0, 2.0));
        c += b;
        assert_eq!(c, Complex32::new(4.0, 3.0));
    }
}
