//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (the subset the workspace uses: [`Mutex`], [`RwLock`], [`Condvar`]).
//! Poisoned locks are recovered transparently — a panicked thread's
//! data is still returned, matching `parking_lot` semantics where
//! poisoning does not exist.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    #[inline]
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]. The `Option` dance lets [`Condvar`] move
/// the underlying std guard through `std::sync::Condvar::wait`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or the `deadline` instant passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiting thread.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked lock.
    #[inline]
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    #[inline]
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    #[inline]
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(0u32);
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        *g += 1;
        assert_eq!(*g, 1);
    }
}
