//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides the `deque` module surface the work-stealing scheduler
//! uses: [`deque::Worker`], [`deque::Stealer`], [`deque::Injector`] and
//! the [`deque::Steal`] result. The implementation is a mutex-guarded
//! `VecDeque` rather than a lock-free Chase–Lev deque — semantically
//! identical (LIFO owner pops, FIFO steals), slower under heavy
//! contention, and trivially correct. Swap back to upstream crossbeam
//! for the lock-free fast path.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Result of a steal attempt.
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// True when the caller should retry.
        #[inline]
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// The stolen value, if any.
        #[inline]
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// The owner's end of a work-stealing deque (LIFO pop).
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Pops the most recently pushed task (LIFO).
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        }

        /// A stealer handle sharing this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A thief's end of a work-stealing deque (FIFO steal).
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task (FIFO), opposite the owner's end.
        pub fn steal(&self) -> Steal<T> {
            match self
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// A shared FIFO queue for external task submissions.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// A new empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the tail.
        pub fn push(&self, task: T) {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Steals the head task.
        pub fn steal(&self) -> Steal<T> {
            match self
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_thief_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal().success(), Some(1));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert!(w.pop().is_none());
            assert!(matches!(s.steal(), Steal::Empty));
        }

        #[test]
        fn injector_is_fifo() {
            let i = Injector::new();
            i.push("a");
            i.push("b");
            assert_eq!(i.steal().success(), Some("a"));
            assert_eq!(i.steal().success(), Some("b"));
        }
    }
}
