//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the harness surface the workspace benches use —
//! `benchmark_group`, `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_function`, `b.iter(..)` and the
//! `criterion_group!` / `criterion_main!` macros — and prints
//! `name  time: [min mean max]` lines. No statistics beyond
//! min/mean/max, no HTML reports; timings print to stdout so
//! `cargo bench` output stays quotable.

use std::time::{Duration, Instant};

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(400),
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        report(&label, &bencher.samples);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// How batched inputs are grouped (API compatibility; the shim times
/// one input per iteration regardless).
#[derive(Clone, Copy, Debug, Default)]
pub enum BatchSize {
    /// One input per measured call.
    #[default]
    PerIteration,
    /// Small batches (treated as per-iteration here).
    SmallInput,
    /// Large batches (treated as per-iteration here).
    LargeInput,
}

/// Passed to the closure of `bench_function`; runs the measured code.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, recording per-iteration wall time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up: run until the warm-up budget elapses (at least once)
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // choose iterations per sample so all samples fit the budget
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Times `routine` over inputs built by `setup`; only the routine
    /// is on the clock (e.g. consuming benchmarks where cloning the
    /// input per call must not be measured).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // warm-up (setup excluded from the per-iteration estimate)
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut measured = Duration::ZERO;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = measured.as_secs_f64() / warm_iters as f64;
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed();
            }
            self.samples.push(elapsed.as_secs_f64() / iters as f64);
        }
    }
}

fn report(label: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<44} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
