//! Minimal offline stand-in for the `rayon` crate.
//!
//! Provides two subsets of the upstream API, both implemented with
//! `std::thread::scope` fork-join:
//!
//! * the `par_iter().map(..).collect()` pipeline the layerwise baseline
//!   uses, over contiguous chunks. Ordering is preserved: results are
//!   concatenated in chunk order, so `collect::<Vec<_>>()` matches the
//!   sequential result exactly;
//! * [`scope`]/[`Scope::spawn`], the structured fork-join primitive
//!   `znn-fft` uses to split batched line transforms across workers.
//!   Like upstream, `scope` returns only after every spawned task has
//!   finished, and tasks may borrow from the enclosing stack frame.
//!
//! Unlike upstream there is no shared thread pool: each `scope` spawns
//! its workers as short-lived OS threads. Callers amortize this by only
//! splitting work that is large enough (see `znn-fft`'s parallelism
//! threshold).

/// The traits the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// A fork-join scope: tasks spawned on it may borrow anything that
/// outlives the [`scope`] call, and all of them complete before `scope`
/// returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Runs `body` on a worker thread of this scope. The closure
    /// receives the scope again so it can spawn nested tasks, matching
    /// upstream's signature (`s.spawn(|s| ...)`).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Creates a fork-join scope, upstream-style: `f` may spawn tasks that
/// borrow from the caller's stack; every task is joined before `scope`
/// returns (a panicking task propagates its panic here).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Types that can produce a parallel iterator over `&Self` items.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;
    /// A parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The mapped form of [`ParIter`], ready to collect.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map over worker threads and collects the results
    /// in input order.
    pub fn collect<B, R>(self) -> B
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        B: FromIterator<R>,
    {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            per_chunk = handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect();
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let mut parts = vec![0u64; 8];
        super::scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                s.spawn(move |_| *p = (i as u64 + 1) * 10);
            }
        });
        assert_eq!(parts, (1..=8).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_supports_nested_spawns() {
        let flags = std::sync::Mutex::new(Vec::new());
        super::scope(|s| {
            s.spawn(|s| {
                flags.lock().unwrap().push("outer");
                s.spawn(|_| flags.lock().unwrap().push("inner"));
            });
        });
        let got = flags.into_inner().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], "outer");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
