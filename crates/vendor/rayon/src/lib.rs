//! Minimal offline stand-in for the `rayon` crate, built around a
//! **persistent work-stealing fork-join pool**.
//!
//! Provides the subsets of the upstream API the workspace uses:
//!
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] — a pool of long-lived
//!   workers fed by a shared injector plus one deque per worker
//!   (`crossbeam::deque`). Workers pop their own deque LIFO, refill
//!   from the injector and steal FIFO from siblings. Upstream-shaped
//!   [`ThreadPool::install`] / [`ThreadPool::scope`] /
//!   [`ThreadPool::spawn`] signatures keep the swap back to real rayon
//!   a one-line change in the root manifest.
//! * [`scope`]/[`Scope::spawn`], the structured fork-join primitive
//!   `znn-fft` uses to split batched line transforms across workers.
//!   Like upstream, `scope` returns only after every spawned task has
//!   finished, and tasks may borrow from the enclosing stack frame.
//!   Free-function calls run on the *current* pool — the innermost
//!   [`ThreadPool::install`], or the lazily-started [global
//!   pool](global_pool) — so **no OS thread is ever spawned per
//!   `scope` call**.
//! * the `par_iter().map(..).collect()` pipeline the layerwise
//!   baseline uses, chunked over the same pool. Ordering is preserved:
//!   results are concatenated in chunk order, so
//!   `collect::<Vec<_>>()` matches the sequential result exactly.
//!
//! # Joining without deadlock
//!
//! A thread that reaches the end of a `scope` does not park and hope:
//! while its scope has unfinished tasks it **executes pending pool
//! jobs itself** (its own deque first if it is a pool worker, then the
//! injector, then siblings). Nested scopes therefore complete even on
//! a pool with a single worker — or with none: a pool built by
//! [`ThreadPool::donor_only`] owns no threads at all, and its jobs run
//! on scope callers and *donor* threads (see below).
//!
//! # Donors
//!
//! External worker pools (the `znn-sched` executors) can *donate*
//! otherwise-idle threads: [`ThreadPool::run_pending_job`] pops and
//! runs one queued job, and [`ThreadPool::add_donor_waker`] registers
//! a callback invoked whenever a job is queued so donors can wake
//! promptly. This is how one thread budget serves both the task
//! scheduler and intra-transform FFT parallelism: the engine's pool is
//! donor-only, and the scheduler's workers run its jobs whenever their
//! own queue is empty.
//!
//! # Spawn-per-call baseline
//!
//! [`scope_spawn_per_call`] preserves the previous shim behaviour —
//! one short-lived OS thread per spawned task — purely so the
//! `fft_traffic --spawn-compare` benchmark can quantify what pool
//! reuse saves. Nothing on a hot path uses it.

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// The traits the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// A queued unit of work with its scope lifetime erased (sound because
/// a scope never returns before its last job finishes).
type Job = Box<dyn FnOnce() + Send>;

thread_local! {
    /// `(pool id, worker index)` when the current thread is a dedicated
    /// pool worker.
    static CURRENT_WORKER: RefCell<Option<(u64, usize)>> = const { RefCell::new(None) };
    /// Stack of pools made current by [`ThreadPool::install`] (and by
    /// worker threads for the pool they serve). Free-function `scope`,
    /// `spawn` and `par_iter` route to the top entry.
    static INSTALLED: RefCell<Vec<Arc<PoolState>>> = const { RefCell::new(Vec::new()) };
}

static POOL_IDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of detached-spawn panics, across every pool (the
/// pool a detached job belonged to may already be gone when it
/// panics). See [`detached_panic_count`].
static DETACHED_PANICS: AtomicU64 = AtomicU64::new(0);

struct PoolState {
    id: u64,
    injector: Injector<Job>,
    /// Worker deques, mutex-wrapped like `znn-sched`'s stealing pool:
    /// upstream crossbeam's `Worker` is `!Sync` (it is meant to be
    /// owned by its thread), so sharing it through `&self` would break
    /// the drop-in swap back to real crossbeam the vendor docs
    /// promise. Owner pushes/pops only ever contend with that same
    /// owner, so the lock is effectively free.
    locals: Vec<Mutex<Worker<Job>>>,
    stealers: Vec<Stealer<Job>>,
    /// Dedicated worker threads (0 for donor-only pools).
    width: usize,
    /// Parallelism target for `par_iter` chunking: `width` for worker
    /// pools, the host thread count for donor-only pools (whose
    /// executors are donors plus the scope owner, not `width`).
    fanout: usize,
    /// Jobs queued and not yet claimed — a cheap emptiness probe for
    /// donors and parked workers.
    queued: AtomicUsize,
    shutdown: AtomicBool,
    /// Guards every sleep/wake transition: `queued` is bumped and jobs
    /// made visible while holding this lock, and sleepers (workers and
    /// scope owners) re-check state under it before waiting — so
    /// untimed condvar waits cannot miss a wakeup and idle threads
    /// never poll.
    sleep_lock: Mutex<()>,
    sleep_cvar: Condvar,
    /// Wakers of donor threads; pruned when their owners drop them.
    wakers: Mutex<Vec<Weak<dyn Fn() + Send + Sync>>>,
    /// Detached (`spawn`) jobs of this pool that panicked. Detached
    /// panics must not unwind (they would kill whatever thread ran
    /// them) but silently discarding them hides real bugs — so they
    /// are counted here and surfaced via [`ThreadPool::detached_panics`].
    detached_panics: AtomicU64,
}

impl PoolState {
    /// Queues `job`: onto the current worker's own deque when called
    /// from inside this pool (the work-first rule), else the injector.
    fn push_job(&self, job: Job) {
        let mut job = Some(job);
        {
            // publish the job and its count under the sleep lock so a
            // thread that saw nothing and is about to wait cannot miss
            // it (it re-checks `queued` under the same lock)
            let _g = self.sleep_lock.lock();
            self.queued.fetch_add(1, Ordering::SeqCst);
            CURRENT_WORKER.with(|w| {
                if let Some((pool, i)) = *w.borrow() {
                    if pool == self.id {
                        self.locals[i].lock().push(job.take().expect("job present"));
                    }
                }
            });
            if let Some(j) = job {
                self.injector.push(j);
            }
            // notify_all, not notify_one: sleepers are heterogeneous
            // (workers, pooled scope owners, spawn-per-call scope
            // owners) and a single wakeup could land on a sleeper
            // that cannot claim jobs, losing it. Waking the rest is
            // nearly free — they re-check and re-park, and a condvar
            // with no waiters makes this a no-op.
            self.sleep_cvar.notify_all();
        }
        let mut wakers = self.wakers.lock();
        wakers.retain(|w| match w.upgrade() {
            Some(f) => {
                f();
                true
            }
            None => false,
        });
    }

    /// Claims one queued job: own deque (LIFO), injector, then steal
    /// FIFO from siblings.
    fn find_job(&self) -> Option<Job> {
        let local = CURRENT_WORKER.with(|w| match *w.borrow() {
            Some((pool, i)) if pool == self.id => Some(i),
            _ => None,
        });
        if let Some(i) = local {
            if let Some(j) = self.locals[i].lock().pop() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(j);
            }
        }
        loop {
            let steal = self.injector.steal();
            if steal.is_retry() {
                continue;
            }
            if let Some(j) = steal.success() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(j);
            }
            break;
        }
        for (i, s) in self.stealers.iter().enumerate() {
            if local == Some(i) {
                continue;
            }
            loop {
                let steal = s.steal();
                if steal.is_retry() {
                    continue;
                }
                if let Some(j) = steal.success() {
                    self.queued.fetch_sub(1, Ordering::SeqCst);
                    return Some(j);
                }
                break;
            }
        }
        None
    }
}

/// Pops the INSTALLED entry pushed for one job even if the job
/// unwinds.
struct InstallGuard;

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Runs `job` with `state` as the current pool, so free-function
/// `scope`/`spawn`/`par_iter` calls inside the job stay on this pool
/// (donated scheduler threads and helping scope owners would otherwise
/// fall through to the global pool — exactly the oversubscription the
/// donor-only design exists to prevent).
fn run_job(state: &Arc<PoolState>, job: Job) {
    INSTALLED.with(|s| s.borrow_mut().push(Arc::clone(state)));
    let _guard = InstallGuard;
    job();
}

/// Boxes a fire-and-forget task. Unlike scope tasks (whose panics are
/// stored and re-raised at the scope), a detached task has nowhere to
/// propagate to — and letting it unwind would kill the executing
/// thread: a pool worker silently, or worse, a waiting scope owner
/// (unwinding through `Scope::complete` would free a `Scope` whose
/// queued jobs still point at it) or a donated scheduler worker. So
/// the panic is caught — and **recorded**, never discarded: it bumps
/// the owning pool's counter (held weakly; the pool may be gone by the
/// time a stolen job runs) and the process-global one, so health
/// monitors can fail a round that lost a spawn instead of training on
/// silently.
fn detached_job<F>(state: &Arc<PoolState>, f: F) -> Job
where
    F: FnOnce() + Send + 'static,
{
    let state = Arc::downgrade(state);
    Box::new(move || {
        if catch_unwind(AssertUnwindSafe(f)).is_err() {
            DETACHED_PANICS.fetch_add(1, Ordering::Relaxed);
            if let Some(state) = state.upgrade() {
                state.detached_panics.fetch_add(1, Ordering::Relaxed);
            }
            eprintln!("rayon-shim: detached spawn task panicked; panic recorded");
        }
    })
}

/// Total detached-spawn panics recorded process-wide, across every
/// pool (shim extension). Monotonic; sample before and after a region
/// and compare to detect spawns lost inside it.
pub fn detached_panic_count() -> u64 {
    DETACHED_PANICS.load(Ordering::Relaxed)
}

fn worker_loop(state: Arc<PoolState>, index: usize) {
    CURRENT_WORKER.with(|w| *w.borrow_mut() = Some((state.id, index)));
    // free-function scopes opened inside jobs stay on this pool
    INSTALLED.with(|s| s.borrow_mut().push(Arc::clone(&state)));
    loop {
        if let Some(job) = state.find_job() {
            job();
            continue;
        }
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        let mut g = state.sleep_lock.lock();
        // pushes and shutdown both flip their state and notify under
        // `sleep_lock`, so this re-check-then-wait cannot lose a
        // wakeup — the wait needs no timeout and idle workers cost
        // nothing
        if state.queued.load(Ordering::SeqCst) == 0 && !state.shutdown.load(Ordering::Acquire) {
            state.sleep_cvar.wait(&mut g);
        }
    }
    INSTALLED.with(|s| s.borrow_mut().pop());
    CURRENT_WORKER.with(|w| *w.borrow_mut() = None);
}

/// Error type returned by [`ThreadPoolBuilder::build`] (the shim never
/// actually fails to build).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Upstream-shaped builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (`available_parallelism`
    /// workers).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of dedicated worker threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool. Never fails in the shim; the `Result` mirrors
    /// upstream so call sites translate one-to-one.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = self.num_threads.unwrap_or_else(host_threads).max(1);
        Ok(ThreadPool::with_workers(width))
    }
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// A persistent fork-join worker pool. See the crate docs for the
/// execution model.
///
/// # Example
///
/// ```
/// use rayon::ThreadPool;
///
/// let pool = ThreadPool::with_workers(2);
/// let mut parts = [0u64; 4];
/// pool.scope(|s| {
///     for (i, p) in parts.iter_mut().enumerate() {
///         // tasks may borrow from the enclosing stack frame; the
///         // scope joins them all before returning
///         s.spawn(move |_| *p = i as u64 + 1);
///     }
/// });
/// assert_eq!(parts.iter().sum::<u64>(), 10);
/// ```
pub struct ThreadPool {
    state: Arc<PoolState>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ThreadPool {
    fn build_state(width: usize, fanout: usize) -> Arc<PoolState> {
        let locals: Vec<Worker<Job>> = (0..width).map(|_| Worker::new_lifo()).collect();
        let stealers = locals.iter().map(|w| w.stealer()).collect();
        let locals = locals.into_iter().map(Mutex::new).collect();
        Arc::new(PoolState {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Injector::new(),
            locals,
            stealers,
            width,
            fanout: fanout.max(1),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            sleep_cvar: Condvar::new(),
            wakers: Mutex::new(Vec::new()),
            detached_panics: AtomicU64::new(0),
        })
    }

    /// A pool with `width >= 1` dedicated worker threads.
    pub fn with_workers(width: usize) -> Self {
        let width = width.max(1);
        let state = Self::build_state(width, width);
        let handles = (0..state.width)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(state, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            state,
            handles: Mutex::new(handles),
        }
    }

    /// A pool that owns **no threads**: its jobs run on the threads
    /// that wait on its scopes and on registered donors. This is how a
    /// task scheduler shares its thread budget with fork-join work
    /// instead of oversubscribing the machine (shim extension).
    /// `par_iter` under [`ThreadPool::install`] still chunks (to the
    /// host thread count) so donors can pick chunks up.
    ///
    /// # Example — donation semantics
    ///
    /// ```
    /// use rayon::ThreadPool;
    ///
    /// // no worker threads at all: scope tasks run on the thread
    /// // waiting on the scope (and on any donor that calls
    /// // `run_pending_job` meanwhile)
    /// let pool = ThreadPool::donor_only();
    /// assert!(!pool.has_pending_jobs());
    /// let mut hits = [false; 3];
    /// pool.scope(|s| {
    ///     for h in hits.iter_mut() {
    ///         s.spawn(move |_| *h = true);
    ///     }
    /// });
    /// assert!(hits.iter().all(|&h| h));
    /// ```
    pub fn donor_only() -> Self {
        ThreadPool {
            state: Self::build_state(0, host_threads()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The pool's parallelism target: its dedicated worker count, or
    /// for donor-only pools the host thread count (their executors are
    /// donors plus the scope owner).
    pub fn current_num_threads(&self) -> usize {
        self.state.fanout
    }

    /// Creates a fork-join scope on this pool: `op` may spawn tasks
    /// that borrow from the caller's stack; every task is joined
    /// before `scope` returns (a panicking task propagates here). The
    /// calling thread executes pending jobs while it waits, so nested
    /// scopes cannot deadlock regardless of the pool width.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        run_scope(Arc::clone(&self.state), ScopeMode::Pooled, op)
    }

    /// Runs `op` with this pool as the *current* pool: free-function
    /// [`scope`], [`spawn`] and `par_iter` calls inside `op` route
    /// here instead of the global pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        INSTALLED.with(|s| s.borrow_mut().push(Arc::clone(&self.state)));
        let result = catch_unwind(AssertUnwindSafe(op));
        INSTALLED.with(|s| {
            s.borrow_mut().pop();
        });
        match result {
            Ok(r) => r,
            Err(p) => resume_unwind(p),
        }
    }

    /// Queues a fire-and-forget task on this pool. A panic in `f` is
    /// caught — it has no scope to propagate to and must not kill
    /// whichever thread happens to execute it — and counted, readable
    /// via [`ThreadPool::detached_panics`].
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.state.push_job(detached_job(&self.state, f));
    }

    /// Detached (`spawn`) jobs of this pool that panicked (shim
    /// extension). Monotonic over the pool's lifetime; a nonzero delta
    /// across a region means fire-and-forget work was lost in it.
    pub fn detached_panics(&self) -> u64 {
        self.state.detached_panics.load(Ordering::Relaxed)
    }

    /// Pops and runs one queued job on the calling thread, with this
    /// pool installed as current for the job's duration. Returns
    /// `false` when nothing was queued. This is the *donation* entry
    /// point for external worker pools (shim extension).
    pub fn run_pending_job(&self) -> bool {
        match self.state.find_job() {
            Some(job) => {
                run_job(&self.state, job);
                true
            }
            None => false,
        }
    }

    /// True when jobs are queued and unclaimed (cheap probe for
    /// donors; shim extension).
    pub fn has_pending_jobs(&self) -> bool {
        self.state.queued.load(Ordering::SeqCst) > 0
    }

    /// Registers a donor waker, held weakly: it is invoked on every
    /// job push until the caller drops its `Arc` (shim extension).
    pub fn add_donor_waker(&self, waker: &Arc<dyn Fn() + Send + Sync>) {
        self.state
            .wakers
            .lock()
            .push(Arc::downgrade(waker));
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        {
            // notify under the sleep lock so a worker between its
            // shutdown re-check and its wait cannot sleep through this
            let _g = self.state.sleep_lock.lock();
            self.state.sleep_cvar.notify_all();
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// The process-wide default pool (`available_parallelism` workers),
/// started on first use. Free-function [`scope`]/[`spawn`]/`par_iter`
/// run here unless a pool was made current with
/// [`ThreadPool::install`].
pub fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::with_workers(host_threads()))
}

/// The state free functions should target: innermost installed pool,
/// else the global pool.
fn current_state() -> Arc<PoolState> {
    INSTALLED.with(|s| {
        s.borrow()
            .last()
            .cloned()
            .unwrap_or_else(|| Arc::clone(&global_pool().state))
    })
}

/// Worker width of the current pool (the global pool if none is
/// installed), like upstream's `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    current_state().fanout
}

/// How a scope dispatches its spawned tasks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ScopeMode {
    /// Queue on the persistent pool; the scope owner helps execute.
    Pooled,
    /// One short-lived OS thread per task — the pre-pool behaviour,
    /// kept only for the spawn-overhead benchmark.
    SpawnPerCall,
}

/// A fork-join scope: tasks spawned on it may borrow anything that
/// outlives the [`scope`] call, and all of them complete before
/// `scope` returns.
pub struct Scope<'scope> {
    state: Arc<PoolState>,
    mode: ScopeMode,
    /// Spawned-but-unfinished task count; the owner blocks until 0.
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Invariant over `'scope`, as upstream.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

/// A `*const Scope` that may cross threads. Sound because the scope
/// outlives every job (the owner joins before returning) and all of
/// `Scope`'s interior mutability is thread-safe.
struct ScopePtr(*const ());
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    /// The wrapped pointer. A method (rather than field access) so
    /// closures capture the `Send` wrapper, not the bare pointer —
    /// edition-2021 closures capture individual fields otherwise.
    fn get(&self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Runs `body` on a pool worker (or the waiting scope owner, or a
    /// donor thread). The closure receives the scope again so it can
    /// spawn nested tasks, matching upstream's signature
    /// (`s.spawn(|s| ...)`).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: the scope owner does not return before `pending`
            // reaches zero, so the Scope and everything `'scope`-
            // borrowed are alive for the whole call.
            let scope: &Scope<'scope> = unsafe { &*(ptr.get() as *const Scope<'scope>) };
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| body(scope))) {
                let mut slot = scope.panic.lock();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            scope.finish_one();
        });
        // SAFETY: erasing `'scope` is sound for the same reason — the
        // join barrier below bounds the job's real lifetime.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
        };
        match self.mode {
            ScopeMode::Pooled => self.state.push_job(job),
            ScopeMode::SpawnPerCall => {
                // the job is 'static after the transmute; the barrier
                // in `complete` joins it before the borrows expire.
                // The job sits in a shared slot so that a failed
                // thread spawn (OS thread exhaustion) can fall back to
                // running it inline — dropping it would leave the
                // scope's pending count stuck and hang the barrier.
                let slot = Arc::new(Mutex::new(Some(job)));
                let spawned = Arc::clone(&slot);
                let res = std::thread::Builder::new().spawn(move || {
                    if let Some(j) = spawned.lock().take() {
                        j();
                    }
                });
                if res.is_err() {
                    if let Some(j) = slot.lock().take() {
                        j();
                    }
                }
            }
        }
    }

    fn finish_one(&self) {
        // clone the pool handle BEFORE the decrement: the moment
        // `pending` hits 0 the owner may observe it, return from
        // `scope`, and free this Scope — after the fetch_sub, `self`
        // must not be touched again
        let state = Arc::clone(&self.state);
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // wake the owner (and anything else parked on the pool):
            // the lock pairs with the owner's check-then-wait, so the
            // terminal notification cannot be lost
            let _g = state.sleep_lock.lock();
            state.sleep_cvar.notify_all();
        }
    }

    /// The join barrier: executes pending pool jobs until every task
    /// spawned on this scope has finished. The owner parks on the
    /// pool's sleep condvar, which is notified both on job pushes
    /// (nested spawns it could help with) and on scope completion —
    /// no timed polling.
    fn complete(&self) {
        loop {
            if self.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            if self.mode == ScopeMode::Pooled {
                if let Some(job) = self.state.find_job() {
                    run_job(&self.state, job);
                    continue;
                }
            }
            let mut g = self.state.sleep_lock.lock();
            if self.pending.load(Ordering::SeqCst) == 0 {
                break;
            }
            if self.mode == ScopeMode::Pooled && self.state.queued.load(Ordering::SeqCst) > 0 {
                continue; // helpable work appeared between find and lock
            }
            self.state.sleep_cvar.wait(&mut g);
        }
    }
}

fn run_scope<'scope, OP, R>(state: Arc<PoolState>, mode: ScopeMode, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        state,
        mode,
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // join before unwinding: spawned tasks may still borrow the frame
    scope.complete();
    match result {
        Ok(r) => {
            if let Some(p) = scope.panic.lock().take() {
                resume_unwind(p);
            }
            r
        }
        Err(p) => resume_unwind(p),
    }
}

/// Creates a fork-join scope on the current pool (see [`global_pool`]),
/// upstream-style: `op` may spawn tasks that borrow from the caller's
/// stack; every task is joined before `scope` returns (a panicking
/// task propagates its panic here).
///
/// # Example
///
/// ```
/// let (mut lo, mut hi) = (0u32, 0u32);
/// rayon::scope(|s| {
///     s.spawn(|_| lo = (0..50).sum());
///     s.spawn(|_| hi = (50..100).sum());
/// });
/// assert_eq!(lo + hi, (0..100).sum());
/// ```
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    run_scope(current_state(), ScopeMode::Pooled, op)
}

/// Queues a fire-and-forget task on the current pool. Panics in `f`
/// are caught and counted (see [`detached_panic_count`]).
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    let state = current_state();
    let job = detached_job(&state, f);
    state.push_job(job);
}

/// The pre-pool scope: spawns one short-lived OS thread per task.
/// Kept **only** as the baseline for `fft_traffic --spawn-compare`;
/// nothing else should call it (shim extension).
pub fn scope_spawn_per_call<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    run_scope(current_state(), ScopeMode::SpawnPerCall, op)
}

/// Types that can produce a parallel iterator over `&Self` items.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;
    /// A parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The mapped form of [`ParIter`], ready to collect.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map over the current pool's workers and collects
    /// the results in input order.
    pub fn collect<B, R>(self) -> B
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        B: FromIterator<R>,
    {
        let n = self.slice.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let chunks: Vec<&[T]> = self.slice.chunks(chunk).collect();
        let mut per_chunk: Vec<Vec<R>> = chunks.iter().map(|c| Vec::with_capacity(c.len())).collect();
        scope(|s| {
            for (c, out) in chunks.iter().zip(per_chunk.iter_mut()) {
                s.spawn(move |_| out.extend(c.iter().map(f)));
            }
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn scope_joins_all_spawned_tasks() {
        let mut parts = vec![0u64; 8];
        super::scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                s.spawn(move |_| *p = (i as u64 + 1) * 10);
            }
        });
        assert_eq!(parts, (1..=8).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_supports_nested_spawns() {
        let flags = std::sync::Mutex::new(Vec::new());
        super::scope(|s| {
            s.spawn(|s| {
                flags.lock().unwrap().push("outer");
                s.spawn(|_| flags.lock().unwrap().push("inner"));
            });
        });
        let got = flags.into_inner().unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], "outer");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn single_worker_pool_completes_nested_scopes() {
        // the no-deadlock property: the scope owner executes pending
        // jobs itself, so fan-out deeper than the worker count finishes
        let pool = ThreadPool::with_workers(1);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    hits.fetch_add(1, Ordering::SeqCst);
                    s.spawn(|s| {
                        hits.fetch_add(1, Ordering::SeqCst);
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::SeqCst);
                        });
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn donor_only_pool_runs_on_the_scope_owner() {
        let pool = ThreadPool::donor_only();
        // no dedicated threads, but a real par_iter fan-out target
        assert!(pool.current_num_threads() >= 1);
        let mut parts = vec![0usize; 16];
        pool.scope(|s| {
            for (i, p) in parts.iter_mut().enumerate() {
                s.spawn(move |_| *p = i + 1);
            }
        });
        assert_eq!(parts, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn donors_execute_queued_jobs() {
        let pool = Arc::new(ThreadPool::donor_only());
        let woken = Arc::new(AtomicUsize::new(0));
        let waker: Arc<dyn Fn() + Send + Sync> = {
            let woken = Arc::clone(&woken);
            Arc::new(move || {
                woken.fetch_add(1, Ordering::SeqCst);
            })
        };
        pool.add_donor_waker(&waker);
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert!(pool.has_pending_jobs());
        assert!(woken.load(Ordering::SeqCst) >= 1);
        assert!(pool.run_pending_job());
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert!(!pool.run_pending_job());
        // dropping the waker arc unregisters it
        drop(waker);
        pool.spawn(|| {});
        assert!(pool.run_pending_job());
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn install_routes_free_scopes_to_the_pool() {
        let pool = ThreadPool::donor_only();
        let pool_id = pool.state.id;
        let seen = pool.install(super::current_state).id;
        assert_eq!(seen, pool_id);
        // a free scope inside install targets the installed pool: its
        // jobs run on the owner thread (the donor pool has no workers)
        let owner = std::thread::current().id();
        pool.install(|| {
            super::scope(|s| {
                for _ in 0..4 {
                    s.spawn(move |_| assert_eq!(std::thread::current().id(), owner));
                }
            });
        });
    }

    #[test]
    fn detached_spawn_panics_are_counted_not_lost() {
        let pool = ThreadPool::with_workers(2);
        let global_before = detached_panic_count();
        assert_eq!(pool.detached_panics(), 0);
        let done = Arc::new(std::sync::Barrier::new(2));
        let d = Arc::clone(&done);
        pool.spawn(move || {
            let _sync = DropBarrier(d); // waited even when the job unwinds
            panic!("injected detached panic");
        });
        struct DropBarrier(Arc<std::sync::Barrier>);
        impl Drop for DropBarrier {
            fn drop(&mut self) {
                self.0.wait();
            }
        }
        done.wait();
        // the counter bump happens after the unwind reaches the catch;
        // poll briefly rather than racing it
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.detached_panics() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.detached_panics(), 1, "pool-level count");
        assert!(
            detached_panic_count() > global_before,
            "process-global count"
        );
        // the worker that ran the panicking job survived
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = Arc::clone(&ok);
        pool.scope(|s| {
            s.spawn(move |_| {
                ok2.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_propagates_task_panics() {
        let result = std::panic::catch_unwind(|| {
            super::scope(|s| {
                s.spawn(|_| panic!("task panic"));
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn spawn_per_call_scope_matches_pooled_results() {
        let mut a = vec![0u32; 32];
        let mut b = vec![0u32; 32];
        super::scope(|s| {
            for (i, p) in a.iter_mut().enumerate() {
                s.spawn(move |_| *p = i as u32 * 3);
            }
        });
        super::scope_spawn_per_call(|s| {
            for (i, p) in b.iter_mut().enumerate() {
                s.spawn(move |_| *p = i as u32 * 3);
            }
        });
        assert_eq!(a, b);
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = ThreadPool::with_workers(2);
        let done = Arc::new(AtomicUsize::new(0));
        pool.scope(|s| {
            for _ in 0..8 {
                let done = Arc::clone(&done);
                s.spawn(move |_| {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 8);
        drop(pool); // must not hang
    }
}
