//! Minimal offline stand-in for the `rayon` crate.
//!
//! Provides the `par_iter().map(..).collect()` pipeline the layerwise
//! baseline uses, implemented with `std::thread::scope` fork-join over
//! contiguous chunks. Ordering is preserved: results are concatenated
//! in chunk order, so `collect::<Vec<_>>()` matches the sequential
//! result exactly.

/// The traits the workspace imports via `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types that can produce a parallel iterator over `&Self` items.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;
    /// A parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// The mapped form of [`ParIter`], ready to collect.
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Evaluates the map over worker threads and collects the results
    /// in input order.
    pub fn collect<B, R>(self) -> B
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        B: FromIterator<R>,
    {
        let n = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            per_chunk = handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect();
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_tiny_and_empty_inputs() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
