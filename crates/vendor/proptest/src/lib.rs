//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`prelude::Strategy`] trait with `prop_map` / `prop_filter`, range
//! and tuple strategies, [`prelude::Just`], `any::<bool>()` /
//! `any::<u64>()`, [`collection::vec`], the [`proptest!`] macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible
//! runs, no persistence files) and failing cases are **not shrunk** —
//! the failing input is simply reported by the assertion message.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, retrying (bounded) until one
    /// passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 10000 consecutive values", self.whence);
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly between boxed alternative strategies — the
/// engine behind [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn any_strategy() -> AnyStrategy<Self>;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    gen_fn: fn(&mut TestRng) -> T,
}

impl<T> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

impl Arbitrary for bool {
    fn any_strategy() -> AnyStrategy<bool> {
        AnyStrategy {
            gen_fn: |rng| rng.next_u64() & 1 == 1,
        }
    }
}

impl Arbitrary for u64 {
    fn any_strategy() -> AnyStrategy<u64> {
        AnyStrategy {
            gen_fn: TestRng::next_u64,
        }
    }
}

impl Arbitrary for u32 {
    fn any_strategy() -> AnyStrategy<u32> {
        AnyStrategy {
            gen_fn: |rng| rng.next_u64() as u32,
        }
    }
}

impl Arbitrary for usize {
    fn any_strategy() -> AnyStrategy<usize> {
        AnyStrategy {
            gen_fn: |rng| rng.next_u64() as usize,
        }
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::any_strategy()
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of `element` values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+] }
    };
}

/// Asserts a condition inside a property (panics with the message on
/// failure — no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Error type property bodies may `return Ok(())`-style short-circuit
/// with (upstream's `TestCaseError`, minus machinery this shim skips).
#[derive(Debug)]
pub struct TestCaseError(pub String);

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $name:ident ($($arg:pat in $strat:expr),+) $body:block) => {{
        let cfg: $crate::ProptestConfig = $cfg;
        let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
        for __case in 0..cfg.cases {
            let ($($arg,)+) = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
            // the closure lets bodies `return Ok(())` to skip a case,
            // matching upstream's Result-valued test bodies
            #[allow(clippy::redundant_closure_call)]
            let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                $body
                Ok(())
            })();
            if let Err(e) = __outcome {
                panic!("property {} failed on case {}: {:?}", stringify!($name), __case, e);
            }
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_body!{ (($cfg)) $name ($($arg in $strat),+) $body }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(0u8..=255), &mut rng);
            let _ = w; // full range: any u8 is fine
        }
    }

    #[test]
    fn oneof_hits_every_alternative() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::from_name("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 0usize..10, (a, b) in (0u64..5, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            let _ = b;
        }
    }

    proptest! {
        #[test]
        fn vec_and_map_compose(v in crate::collection::vec((1usize..4).prop_map(|x| x * 2), 0..9)) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&x| x == 2 || x == 4 || x == 6));
        }
    }
}
