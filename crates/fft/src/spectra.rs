//! Spectrum-domain identities that make FFT memoization pay (Table II).
//!
//! The memoized backward and update passes of §IV reuse transforms
//! computed earlier instead of taking new ones:
//!
//! * the **backward** convolution needs the spectrum of the *reflected*
//!   kernel. For a real kernel `w` with support `[0, K)` zero-padded to
//!   `m`, `pad(flip(w)) = shift_{K−1}(reverse(pad(w)))`, so its DFT is
//!   `conj(W[f]) · e^{−2πi·f·(K−1)/m}` per axis — a pointwise
//!   derivation from the memoized forward spectrum `W`
//!   ([`flip_spectrum`]);
//! * the **update** pass needs the valid cross-correlation of the
//!   forward image with the backward image, which is
//!   `ifft(conj(X) ∘ G)` restricted to the kernel lattice
//!   ([`corr_spectrum`]), reusing both memoized spectra.
//!
//! All identities here operate on half-spectra ([`Spectrum`]): every
//! input is the transform of a *real* image, so the full spectra are
//! Hermitian and products/linear combinations of them stay Hermitian —
//! the stored `⌊m_z/2⌋+1` z-bins determine the rest. The pointwise
//! loops therefore touch half the bins the c2c forms did.

use crate::engine::FftEngine;
use znn_tensor::{Complex32, Image, Spectrum, Vec3};
#[cfg(test)]
use znn_tensor::Tensor3;

/// Derives the half-spectrum of the padded, *reflected* kernel from the
/// half-spectrum `w_spec` of the padded kernel, given the kernel's
/// original support `k` (before padding). Pointwise — no FFT.
pub fn flip_spectrum(w_spec: &Spectrum, k: Vec3) -> Spectrum {
    let m = w_spec.full_shape();
    let two_pi = 2.0 * std::f64::consts::PI;
    // clone-then-rotate in place: a pooled input spectrum yields a
    // pooled output (tensor clones re-lease from their source). The
    // phase factor separates per axis, so the trig runs once per *axis
    // bin* — three tables of O(m) unit rotations, angles in f64 — and
    // the O(m³) bin sweep is pure complex multiplies. Stored bins are
    // the true frequencies 0..=⌊m/2⌋ along the packed axis, so the
    // phase formula is unchanged; it just runs over half the lattice.
    let mut out = w_spec.clone();
    let hs = out.half().shape();
    let axis_table = |a: usize| -> Vec<Complex32> {
        (0..hs[a])
            .map(|f| {
                if m[a] > 1 {
                    let ang = -two_pi * (f * (k[a] - 1)) as f64 / m[a] as f64;
                    Complex32::new(ang.cos() as f32, ang.sin() as f32)
                } else {
                    Complex32::new(1.0, 0.0)
                }
            })
            .collect()
    };
    let (rx, ry, rz) = (axis_table(0), axis_table(1), axis_table(2));
    for (row, wrow) in out
        .half_mut()
        .as_mut_slice()
        .chunks_exact_mut(hs[2])
        .enumerate()
    {
        let rxy = rx[row / hs[1]] * ry[row % hs[1]];
        for (w, r) in wrow.iter_mut().zip(&rz) {
            *w = w.conj() * (rxy * *r);
        }
    }
    out
}

/// Pointwise `x_spec ∘ conj(g_spec)` — the half-spectrum whose inverse
/// transform holds the cross-correlation `c[l] = Σ_o g[o]·x[o+l]`. With
/// the usual padding discipline (both images padded to a transform at
/// least as large as the forward image), lags `0..K` hold the linear
/// correlation, i.e. the dilated-kernel gradient of §III-B (reflected;
/// see [`kernel_gradient_from_corr`]).
pub fn corr_spectrum(x_spec: &Spectrum, g_spec: &Spectrum) -> Spectrum {
    assert_eq!(
        x_spec.full_shape(),
        g_spec.full_shape(),
        "spectrum shape mismatch"
    );
    let mut out = x_spec.clone();
    znn_simd::conj_mul_assign_c(out.half_mut().as_mut_slice(), g_spec.half().as_slice());
    out
}

/// Accumulating form of [`corr_spectrum`]: `acc += x ∘ conj(g)`.
pub fn corr_mul_add(acc: &mut Spectrum, x_spec: &Spectrum, g_spec: &Spectrum) {
    assert_eq!(
        acc.full_shape(),
        x_spec.full_shape(),
        "spectrum shape mismatch"
    );
    assert_eq!(
        acc.full_shape(),
        g_spec.full_shape(),
        "spectrum shape mismatch"
    );
    znn_simd::conj_mul_add_assign_c(
        acc.half_mut().as_mut_slice(),
        x_spec.half().as_slice(),
        g_spec.half().as_slice(),
    );
}

/// Extracts the §III-B kernel gradient from the inverse transform of a
/// correlation spectrum.
///
/// Correlation lag `t` holds `Σ_o g[o]·x[o + t]`, while the true-conv
/// kernel gradient is `∂L/∂w[t] = Σ_o g[o]·x[o + s·(k−1−t)]` — lag
/// `s·(k−1−t)`. So the gradient is the *reflection* of the lattice
/// sample of the first `k_dilated` lags.
pub fn kernel_gradient_from_corr(
    engine: &FftEngine,
    corr: Spectrum,
    k: Vec3,
    sparsity: Vec3,
) -> Image {
    let dilated = k.dilated(sparsity);
    let full = engine.inverse_real(corr, Vec3::zero(), dilated);
    let lattice = if sparsity == Vec3::one() {
        full
    } else {
        znn_tensor::pad::gather_strided(&full, Vec3::zero(), sparsity, k)
    };
    znn_tensor::pad::flip(&lattice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::good_shape;
    use znn_tensor::{ops, pad};

    fn max_sdiff(a: &Spectrum, b: &Spectrum) -> f32 {
        assert_eq!(a.full_shape(), b.full_shape());
        a.half()
            .as_slice()
            .iter()
            .zip(b.half().as_slice())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f32::max)
    }

    #[test]
    fn flip_spectrum_matches_fft_of_flipped_kernel() {
        let engine = FftEngine::new();
        for (k, m) in [
            (Vec3::cube(3), Vec3::cube(8)),
            (Vec3::new(2, 3, 1), Vec3::new(6, 9, 1)),
            (Vec3::flat(5, 5), Vec3::flat(12, 10)),
            (Vec3::cube(2), Vec3::new(4, 6, 5)), // odd z extent
        ] {
            let w = ops::random(k, 81);
            let w_spec = engine.forward_padded(&w, m);
            let derived = flip_spectrum(&w_spec, k);
            let direct = engine.forward_padded(&pad::flip(&w), m);
            assert!(
                max_sdiff(&derived, &direct) < 1e-3,
                "k={k} m={m}: {}",
                max_sdiff(&derived, &direct)
            );
        }
    }

    #[test]
    fn corr_spectrum_recovers_kernel_gradient() {
        let engine = FftEngine::new();
        let n = Vec3::cube(7);
        let k = Vec3::cube(3);
        let s = Vec3::one();
        let x = ops::random(n, 82);
        let g = ops::random(n.valid_conv(k).unwrap(), 83);
        let m = good_shape(n);
        let x_spec = engine.forward_padded(&x, m);
        let g_spec = engine.forward_padded(&g, m);
        let corr = corr_spectrum(&x_spec, &g_spec);
        let got = kernel_gradient_from_corr(&engine, corr, k, s);
        // reference: §III-B gradient dw[t] = Σ g[o] x[o + (k-1-t)]
        let want = {
            let mut acc = Tensor3::<f32>::zeros(k);
            for t in k.iter() {
                let mut v = 0.0f64;
                for o in g.shape().iter() {
                    v += g.at(o) as f64 * x.at(o + (k - Vec3::one() - t)) as f64;
                }
                acc[t] = v as f32;
            }
            acc
        };
        assert!(
            got.max_abs_diff(&want) < 1e-3,
            "diff {}",
            got.max_abs_diff(&want)
        );
        // and it must agree with the direct-method kernel gradient used
        // elsewhere (differential check across implementations)
        let direct = znn_direct_ref(&x, &g, k);
        assert!(got.max_abs_diff(&direct) < 1e-3);
    }

    #[test]
    fn sparse_corr_gradient_lands_on_lattice() {
        let engine = FftEngine::new();
        let n = Vec3::cube(9);
        let k = Vec3::cube(2);
        let s = Vec3::cube(3);
        let x = ops::random(n, 84);
        let g = ops::random(n.valid_conv(k.dilated(s)).unwrap(), 85);
        let m = good_shape(n);
        let corr = corr_spectrum(
            &engine.forward_padded(&x, m),
            &engine.forward_padded(&g, m),
        );
        let got = kernel_gradient_from_corr(&engine, corr, k, s);
        assert_eq!(got.shape(), k);
        // reference at lattice points: dw[t] = Σ g[o] x[o + s(k-1-t)]
        for t in k.iter() {
            let mut v = 0.0f64;
            for o in g.shape().iter() {
                v += g.at(o) as f64 * x.at(o + (k - Vec3::one() - t) * s) as f64;
            }
            assert!((got[t] - v as f32).abs() < 1e-3, "at {t}");
        }
    }

    /// Direct-method §III-B kernel gradient used as a cross-check.
    fn znn_direct_ref(x: &Image, g: &Image, k: Vec3) -> Image {
        Tensor3::from_fn(k, |t| {
            let mut v = 0.0f64;
            for o in g.shape().iter() {
                v += g.at(o) as f64 * x.at(o + (k - Vec3::one() - t)) as f64;
            }
            v as f32
        })
    }

    #[test]
    fn backward_conv_via_flip_spectrum_matches_direct() {
        // dx = conv_full(g, flip(w)) computed as ifft(G ∘ V) with
        // V = flip_spectrum(W)
        let engine = FftEngine::new();
        let n = Vec3::cube(8);
        let k = Vec3::cube(3);
        let w = ops::random(k, 86);
        let g = ops::random(n.valid_conv(k).unwrap(), 87);
        let m = good_shape(n);
        let w_spec = engine.forward_padded(&w, m);
        let v = flip_spectrum(&w_spec, k);
        let g_spec = engine.forward_padded(&g, m);
        let prod = ops::mul_s(&g_spec, &v);
        // full conv of g (size n-k+1) with flip(w) (size k) has size n;
        // but the flipped kernel's spectrum encodes support [0,K) so the
        // product is the linear conv at offset 0
        let got = engine.inverse_real(prod, Vec3::zero(), n);
        let want = znn_fft_testref_conv_full(&g, &pad::flip(&w));
        assert!(
            got.max_abs_diff(&want) < 1e-3,
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    /// Naive full convolution for the test above.
    fn znn_fft_testref_conv_full(img: &Image, ker: &Image) -> Image {
        let k = ker.shape();
        let padded = pad::pad(
            img,
            img.shape() + (k - Vec3::one()) * 2,
            k - Vec3::one(),
        );
        let out_shape = img.shape().full_conv(k);
        Tensor3::from_fn(out_shape, |o| {
            let mut acc = 0.0f64;
            for t in k.iter() {
                let at = Vec3::new(
                    o[0] + k[0] - 1 - t[0],
                    o[1] + k[1] - 1 - t[1],
                    o[2] + k[2] - 1 - t[2],
                );
                acc += padded.at(at) as f64 * ker.at(t) as f64;
            }
            acc as f32
        })
    }
}
