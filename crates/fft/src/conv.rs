//! One-shot FFT convolutions built on the staged engine API.
//!
//! These are the self-contained forms used by tests, the autotuner and
//! callers that don't manage transform sharing themselves. The training
//! engine in `znn-core` uses the staged API directly so image transforms
//! can be shared across edges and memoized across passes.

use crate::engine::FftEngine;
use crate::size::good_shape;
use znn_tensor::{ops, pad, Image, Vec3};

/// *Valid* true convolution of `img` (shape `n`) with `ker` (shape `k`):
/// output shape `n - k + 1`, kernel reflected per the convolution
/// definition. Panics if the kernel does not fit.
pub fn fft_conv_valid(engine: &FftEngine, img: &Image, ker: &Image) -> Image {
    let n = img.shape();
    let k = ker.shape();
    let out_shape = n
        .valid_conv(k)
        .unwrap_or_else(|| panic!("kernel {k} larger than image {n}"));
    // Linear convolution needs m >= n + k - 1 samples per axis to avoid
    // wrap-around; the full result has exactly n + k - 1 samples and the
    // valid region starts at k - 1.
    let m = good_shape(n.full_conv(k));
    let a = engine.forward_padded(img, m);
    let b = engine.forward_padded(ker, m);
    let prod = ops::mul_s(&a, &b);
    engine.inverse_real(prod, k - Vec3::one(), out_shape)
}

/// *Full* true convolution: output shape `n + k - 1` (§III-A, the
/// backward-pass convolution).
pub fn fft_conv_full(engine: &FftEngine, img: &Image, ker: &Image) -> Image {
    let n = img.shape();
    let k = ker.shape();
    let out_shape = n.full_conv(k);
    let m = good_shape(out_shape);
    let a = engine.forward_padded(img, m);
    let b = engine.forward_padded(ker, m);
    let prod = ops::mul_s(&a, &b);
    engine.inverse_real(prod, Vec3::zero(), out_shape)
}

/// *Valid* cross-correlation (no kernel reflection): the primitive behind
/// the kernel-gradient computation. Computed as a valid convolution with
/// the reflected kernel.
pub fn fft_xcorr_valid(engine: &FftEngine, img: &Image, ker: &Image) -> Image {
    fft_conv_valid(engine, img, &pad::flip(ker))
}

#[cfg(test)]
mod tests {
    use super::*;
    use znn_tensor::Tensor3;

    /// Brute-force valid true convolution for validation.
    fn conv_valid_naive(img: &Image, ker: &Image) -> Image {
        let n = img.shape();
        let k = ker.shape();
        let out = n.valid_conv(k).unwrap();
        Tensor3::from_fn(out, |o| {
            let mut acc = 0.0f64;
            for kk in k.iter() {
                // true convolution: kernel index is reflected
                let at = Vec3::new(
                    o[0] + k[0] - 1 - kk[0],
                    o[1] + k[1] - 1 - kk[1],
                    o[2] + k[2] - 1 - kk[2],
                );
                acc += img.at(at) as f64 * ker.at(kk) as f64;
            }
            acc as f32
        })
    }

    fn conv_full_naive(img: &Image, ker: &Image) -> Image {
        // full conv = valid conv of the zero-padded image
        let k = ker.shape();
        let padded = pad::pad(
            img,
            img.shape() + (k - Vec3::one()) * 2,
            k - Vec3::one(),
        );
        conv_valid_naive(&padded, ker)
    }

    #[test]
    fn valid_matches_naive() {
        let engine = FftEngine::new();
        for (n, k) in [
            (Vec3::cube(6), Vec3::cube(3)),
            (Vec3::new(5, 7, 4), Vec3::new(2, 3, 1)),
            (Vec3::flat(9, 9), Vec3::flat(4, 4)),
            (Vec3::cube(3), Vec3::cube(3)),
        ] {
            let img = ops::random(n, 1);
            let ker = ops::random(k, 2);
            let got = fft_conv_valid(&engine, &img, &ker);
            let want = conv_valid_naive(&img, &ker);
            assert!(
                got.max_abs_diff(&want) < 1e-4,
                "n={n} k={k}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn full_matches_naive() {
        let engine = FftEngine::new();
        for (n, k) in [
            (Vec3::cube(4), Vec3::cube(3)),
            (Vec3::new(2, 5, 3), Vec3::new(2, 1, 3)),
            (Vec3::flat(6, 4), Vec3::flat(3, 2)),
        ] {
            let img = ops::random(n, 3);
            let ker = ops::random(k, 4);
            let got = fft_conv_full(&engine, &img, &ker);
            let want = conv_full_naive(&img, &ker);
            assert!(
                got.max_abs_diff(&want) < 1e-4,
                "n={n} k={k}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn delta_kernel_is_identity_for_correlation() {
        // cross-correlating with a centered delta shifts predictably; a
        // 1x1x1 delta of weight 1 is the identity for both conventions
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(5), 7);
        let delta = Tensor3::filled(Vec3::one(), 1.0f32);
        let conv = fft_conv_valid(&engine, &img, &delta);
        assert!(conv.max_abs_diff(&img) < 1e-5);
        let xc = fft_xcorr_valid(&engine, &img, &delta);
        assert!(xc.max_abs_diff(&img) < 1e-5);
    }

    #[test]
    fn convolution_is_commutative_in_mass() {
        // sum(conv_full(a, b)) == sum(a) * sum(b)
        let engine = FftEngine::new();
        let a = ops::random(Vec3::cube(4), 5);
        let b = ops::random(Vec3::cube(2), 6);
        let c = fft_conv_full(&engine, &a, &b);
        assert!((c.sum() - a.sum() * b.sum()).abs() < 1e-3);
    }

    #[test]
    fn full_conv_is_symmetric_in_arguments() {
        let engine = FftEngine::new();
        let a = ops::random(Vec3::new(4, 3, 2), 8);
        let b = ops::random(Vec3::new(2, 2, 2), 9);
        let ab = fft_conv_full(&engine, &a, &b);
        let ba = fft_conv_full(&engine, &b, &a);
        assert!(ab.max_abs_diff(&ba) < 1e-4);
    }
}
