//! Transform-size selection.
//!
//! FFTs here are fastest on sizes whose prime factors are small: the
//! vendored `rustfft` routes every 5-smooth length (factors 2, 3, 5)
//! through the iterative mixed-radix Stockham kernels, so per-transform
//! cost is monotone-ish in size across the whole 5-smooth lattice. ZNN
//! therefore pads transforms up to the next 5-smooth size — the same
//! policy fftw's `fftw_next_fast_size` uses minus the factor 7, which
//! upstream `rustfft` does not special-case as heavily.
//!
//! # Why 5-smooth beats 2^k-only padding
//!
//! When only power-of-two lengths hit the fast kernels, the tempting
//! policy is to round every axis up to `2^k` ([`pow2_size`], kept as
//! the baseline). 5-smooth candidates are much denser — between 64 and
//! 128 alone sit 72, 75, 80, 81, 90, 96, 100, 108, 120, 125 — so
//! [`good_size`] pads strictly less for most extents and never more.
//! The padded-voxel savings compound per axis: a 65³ transform pads to
//! 72³ (373k voxels) instead of 128³ (2.1M voxels) — **5.6× fewer**
//! padded voxels, and every one of them is transformed, multiplied,
//! and (for memoized spectra) held in RAM for a whole training round.
//! `fft_traffic` records the savings for a sweep of shapes in
//! `BENCH_fft.json` under `"padding"`.

use znn_tensor::{Spectrum, Vec3};

/// True when `n` has no prime factor larger than 5.
pub(crate) fn is_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// The smallest 5-smooth integer `>= n`. `good_size(0) == 1`.
///
/// ```
/// use znn_fft::good_size;
/// assert_eq!(good_size(65), 72);   // 72 = 2³·3², not 128
/// assert_eq!(good_size(48), 48);   // 5-smooth sizes are kept as-is
/// assert_eq!(good_size(101), 108);
/// ```
pub fn good_size(n: usize) -> usize {
    let mut m = n.max(1);
    while !is_smooth(m) {
        m += 1;
    }
    m
}

/// The smallest *even* 5-smooth integer `>= n`, except that `n <= 1`
/// stays `1` (a unit axis is the identity and must not be inflated).
///
/// Used for the packed axis: the r2c packed stage turns an even-length
/// real line into a half-length complex transform, so even extents get
/// the full 2× FLOP saving and the tight `m/2 + 1`-bin spectrum.
///
/// ```
/// use znn_fft::good_size_even;
/// assert_eq!(good_size_even(25), 30); // 25 is 5-smooth but odd
/// assert_eq!(good_size_even(48), 48);
/// assert_eq!(good_size_even(1), 1);   // unit axes are never inflated
/// ```
pub fn good_size_even(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut m = n;
    while !(m.is_multiple_of(2) && is_smooth(m)) {
        m += 1;
    }
    m
}

/// The smallest power of two `>= n` (`n <= 1` stays `1`) — the
/// 2^k-only padding policy. **Baseline only**: every power of two is
/// 5-smooth, so [`good_size`] never pads more than this, and usually
/// pads much less; `pow2_size` exists so benches and regression tests
/// can quote the padded-voxel savings of the 5-smooth policy.
pub fn pow2_size(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    n.next_power_of_two()
}

/// Applies [`pow2_size`] per axis — the 2^k-only analogue of
/// [`good_shape`], kept as the padding-waste baseline. (A power of two
/// `>= 2` is always even, so no separate packed-axis rule is needed.)
pub fn pow2_shape(s: Vec3) -> Vec3 {
    Vec3::new(pow2_size(s[0]), pow2_size(s[1]), pow2_size(s[2]))
}

/// Applies [`good_size`] per axis, except the packed axis
/// ([`Spectrum::packed_axis`] — `z` for volumes, `y` for flat `m_z == 1`
/// shapes) which gets [`good_size_even`], keeping the r2c half-spectrum
/// packing tight on every workload. Padding never inflates a unit axis,
/// so the packed axis of the padded shape matches the input's.
///
/// Every extent this returns is 5-smooth, so every line transform of
/// the padded shape takes the iterative Stockham path of the vendored
/// `rustfft` — no shape reachable from `good_shape` ever hits the
/// recursive fallback.
///
/// ```
/// use znn_fft::{good_shape, pow2_shape};
/// use znn_tensor::Vec3;
///
/// let padded = good_shape(Vec3::new(65, 65, 65));
/// assert_eq!(padded, Vec3::new(72, 72, 72));
/// // 5.6x fewer padded voxels than the 2^k-only baseline
/// assert_eq!(pow2_shape(Vec3::new(65, 65, 65)), Vec3::new(128, 128, 128));
/// assert!(padded.len() * 5 < pow2_shape(Vec3::new(65, 65, 65)).len());
/// ```
pub fn good_shape(s: Vec3) -> Vec3 {
    let pa = Spectrum::packed_axis(s);
    let mut g = Vec3::new(good_size(s[0]), good_size(s[1]), good_size(s[2]));
    g[pa] = good_size_even(s[pa]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_good_sizes_match_known_table() {
        let expect = [1, 1, 2, 3, 4, 5, 6, 8, 8, 9, 10, 12, 12, 15, 15, 15, 16];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(good_size(n), e, "good_size({n})");
        }
        assert_eq!(good_size(17), 18);
        assert_eq!(good_size(97), 100);
        assert_eq!(good_size(101), 108);
    }

    #[test]
    fn good_sizes_are_smooth_and_minimal() {
        for n in 1..2000 {
            let g = good_size(n);
            assert!(g >= n && is_smooth(g));
            // minimality: nothing smooth in [n, g)
            for m in n..g {
                assert!(!is_smooth(m));
            }
        }
    }

    #[test]
    fn padding_overhead_is_bounded() {
        // 5-smooth numbers are dense enough that padding never doubles
        // the size for realistic image extents.
        for n in 2..4096 {
            assert!(good_size(n) < 2 * n, "overhead >= 2x at {n}");
        }
    }

    #[test]
    fn good_shape_is_per_axis() {
        assert_eq!(
            good_shape(Vec3::new(7, 11, 1)),
            Vec3::new(8, 12, 1)
        );
    }

    #[test]
    fn good_size_even_prefers_even_z() {
        // odd smooth sizes are skipped on the z axis: 5 -> 6, 9 -> 10,
        // 15 -> 16, 25 -> 27 is odd so -> 30
        assert_eq!(good_size_even(5), 6);
        assert_eq!(good_size_even(9), 10);
        assert_eq!(good_size_even(15), 16);
        assert_eq!(good_size_even(25), 30);
        assert_eq!(good_size_even(8), 8);
        // unit axes stay unit (identity transform, 1-bin spectrum)
        assert_eq!(good_size_even(1), 1);
        assert_eq!(good_size_even(0), 1);
        for n in 2..2048 {
            let g = good_size_even(n);
            assert!(g >= n && is_smooth(g) && g.is_multiple_of(2));
            assert!(g < 2 * n, "even padding overhead >= 2x at {n}");
        }
    }

    #[test]
    fn good_shape_keeps_z_even() {
        assert_eq!(good_shape(Vec3::new(7, 9, 9)), Vec3::new(8, 9, 10));
        assert_eq!(good_shape(Vec3::cube(5)), Vec3::new(5, 5, 6));
    }

    #[test]
    fn good_shape_keeps_the_packed_axis_even_on_flat_shapes() {
        // flat (m_z == 1) shapes pack along y, 1D rows along x — the
        // padded extent there must be even so the r2c packing applies
        assert_eq!(good_shape(Vec3::new(7, 9, 1)), Vec3::new(8, 10, 1));
        assert_eq!(good_shape(Vec3::new(5, 5, 1)), Vec3::new(5, 6, 1));
        assert_eq!(good_shape(Vec3::new(9, 1, 1)), Vec3::new(10, 1, 1));
        // unit axes are never inflated
        assert_eq!(good_shape(Vec3::one()), Vec3::one());
    }

    #[test]
    fn padding_never_increases_vs_the_pow2_only_policy() {
        // regression pin for the 5-smooth policy: per axis and per
        // shape, good_shape pads no more voxels than the 2^k-only
        // baseline ever would (every power of two is itself 5-smooth
        // and even, so the minimal smooth candidate can't overshoot it)
        for n in 0..4096usize {
            assert!(good_size(n) <= pow2_size(n), "good_size({n})");
            assert!(good_size_even(n) <= pow2_size(n), "good_size_even({n})");
        }
        for n in 2..200usize {
            let s = Vec3::cube(n);
            assert!(
                good_shape(s).len() <= pow2_shape(s).len(),
                "padded voxels increased at {s}"
            );
        }
    }

    #[test]
    fn five_smooth_padding_saves_voxels_on_the_bench_sweep() {
        // the acceptance shapes: strictly fewer padded voxels than
        // 2^k-only for most of the fft_traffic sweep, with concrete
        // factors worth quoting
        let strict = [
            (Vec3::cube(33), Vec3::cube(36), Vec3::cube(64)),
            (Vec3::cube(47), Vec3::cube(48), Vec3::cube(64)),
            (Vec3::cube(65), Vec3::cube(72), Vec3::cube(128)),
            (Vec3::cube(100), Vec3::cube(100), Vec3::cube(128)),
            (Vec3::cube(129), Vec3::new(135, 135, 144), Vec3::cube(256)),
        ];
        for (raw, want_smooth, want_pow2) in strict {
            assert_eq!(good_shape(raw), want_smooth, "good_shape({raw})");
            assert_eq!(pow2_shape(raw), want_pow2, "pow2_shape({raw})");
            assert!(
                good_shape(raw).len() < pow2_shape(raw).len(),
                "no strict saving at {raw}"
            );
        }
        // 65³: > 5x fewer padded voxels
        let s = Vec3::cube(65);
        assert!(good_shape(s).len() * 5 < pow2_shape(s).len());
    }
}
