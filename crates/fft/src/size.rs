//! Transform-size selection.
//!
//! Mixed-radix FFTs are fastest on sizes whose prime factors are small.
//! ZNN pads transforms up to the next 5-smooth size (factors 2, 3, 5) —
//! the same policy fftw's `fftw_next_fast_size` uses minus the factor 7,
//! which `rustfft` does not special-case as heavily.

use znn_tensor::{Spectrum, Vec3};

/// True when `n` has no prime factor larger than 5.
pub(crate) fn is_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// The smallest 5-smooth integer `>= n`. `good_size(0) == 1`.
pub fn good_size(n: usize) -> usize {
    let mut m = n.max(1);
    while !is_smooth(m) {
        m += 1;
    }
    m
}

/// The smallest *even* 5-smooth integer `>= n`, except that `n <= 1`
/// stays `1` (a unit axis is the identity and must not be inflated).
///
/// Used for the packed axis: the r2c packed stage turns an even-length
/// real line into a half-length complex transform, so even extents get
/// the full 2× FLOP saving and the tight `m/2 + 1`-bin spectrum.
pub fn good_size_even(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let mut m = n;
    while !(m.is_multiple_of(2) && is_smooth(m)) {
        m += 1;
    }
    m
}

/// Applies [`good_size`] per axis, except the packed axis
/// ([`Spectrum::packed_axis`] — `z` for volumes, `y` for flat `m_z == 1`
/// shapes) which gets [`good_size_even`], keeping the r2c half-spectrum
/// packing tight on every workload. Padding never inflates a unit axis,
/// so the packed axis of the padded shape matches the input's.
pub fn good_shape(s: Vec3) -> Vec3 {
    let pa = Spectrum::packed_axis(s);
    let mut g = Vec3::new(good_size(s[0]), good_size(s[1]), good_size(s[2]));
    g[pa] = good_size_even(s[pa]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_good_sizes_match_known_table() {
        let expect = [1, 1, 2, 3, 4, 5, 6, 8, 8, 9, 10, 12, 12, 15, 15, 15, 16];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(good_size(n), e, "good_size({n})");
        }
        assert_eq!(good_size(17), 18);
        assert_eq!(good_size(97), 100);
        assert_eq!(good_size(101), 108);
    }

    #[test]
    fn good_sizes_are_smooth_and_minimal() {
        for n in 1..2000 {
            let g = good_size(n);
            assert!(g >= n && is_smooth(g));
            // minimality: nothing smooth in [n, g)
            for m in n..g {
                assert!(!is_smooth(m));
            }
        }
    }

    #[test]
    fn padding_overhead_is_bounded() {
        // 5-smooth numbers are dense enough that padding never doubles
        // the size for realistic image extents.
        for n in 2..4096 {
            assert!(good_size(n) < 2 * n, "overhead >= 2x at {n}");
        }
    }

    #[test]
    fn good_shape_is_per_axis() {
        assert_eq!(
            good_shape(Vec3::new(7, 11, 1)),
            Vec3::new(8, 12, 1)
        );
    }

    #[test]
    fn good_size_even_prefers_even_z() {
        // odd smooth sizes are skipped on the z axis: 5 -> 6, 9 -> 10,
        // 15 -> 16, 25 -> 27 is odd so -> 30
        assert_eq!(good_size_even(5), 6);
        assert_eq!(good_size_even(9), 10);
        assert_eq!(good_size_even(15), 16);
        assert_eq!(good_size_even(25), 30);
        assert_eq!(good_size_even(8), 8);
        // unit axes stay unit (identity transform, 1-bin spectrum)
        assert_eq!(good_size_even(1), 1);
        assert_eq!(good_size_even(0), 1);
        for n in 2..2048 {
            let g = good_size_even(n);
            assert!(g >= n && is_smooth(g) && g.is_multiple_of(2));
            assert!(g < 2 * n, "even padding overhead >= 2x at {n}");
        }
    }

    #[test]
    fn good_shape_keeps_z_even() {
        assert_eq!(good_shape(Vec3::new(7, 9, 9)), Vec3::new(8, 9, 10));
        assert_eq!(good_shape(Vec3::cube(5)), Vec3::new(5, 5, 6));
    }

    #[test]
    fn good_shape_keeps_the_packed_axis_even_on_flat_shapes() {
        // flat (m_z == 1) shapes pack along y, 1D rows along x — the
        // padded extent there must be even so the r2c packing applies
        assert_eq!(good_shape(Vec3::new(7, 9, 1)), Vec3::new(8, 10, 1));
        assert_eq!(good_shape(Vec3::new(5, 5, 1)), Vec3::new(5, 6, 1));
        assert_eq!(good_shape(Vec3::new(9, 1, 1)), Vec3::new(10, 1, 1));
        // unit axes are never inflated
        assert_eq!(good_shape(Vec3::one()), Vec3::one());
    }
}
