//! Transform-size selection.
//!
//! Mixed-radix FFTs are fastest on sizes whose prime factors are small.
//! ZNN pads transforms up to the next 5-smooth size (factors 2, 3, 5) —
//! the same policy fftw's `fftw_next_fast_size` uses minus the factor 7,
//! which `rustfft` does not special-case as heavily.

use znn_tensor::Vec3;

/// True when `n` has no prime factor larger than 5.
pub(crate) fn is_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// The smallest 5-smooth integer `>= n`. `good_size(0) == 1`.
pub fn good_size(n: usize) -> usize {
    let mut m = n.max(1);
    while !is_smooth(m) {
        m += 1;
    }
    m
}

/// Applies [`good_size`] to every axis.
pub fn good_shape(s: Vec3) -> Vec3 {
    Vec3::new(good_size(s[0]), good_size(s[1]), good_size(s[2]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_good_sizes_match_known_table() {
        let expect = [1, 1, 2, 3, 4, 5, 6, 8, 8, 9, 10, 12, 12, 15, 15, 15, 16];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(good_size(n), e, "good_size({n})");
        }
        assert_eq!(good_size(17), 18);
        assert_eq!(good_size(97), 100);
        assert_eq!(good_size(101), 108);
    }

    #[test]
    fn good_sizes_are_smooth_and_minimal() {
        for n in 1..2000 {
            let g = good_size(n);
            assert!(g >= n && is_smooth(g));
            // minimality: nothing smooth in [n, g)
            for m in n..g {
                assert!(!is_smooth(m));
            }
        }
    }

    #[test]
    fn padding_overhead_is_bounded() {
        // 5-smooth numbers are dense enough that padding never doubles
        // the size for realistic image extents.
        for n in 2..4096 {
            assert!(good_size(n) < 2 * n, "overhead >= 2x at {n}");
        }
    }

    #[test]
    fn good_shape_is_per_axis() {
        assert_eq!(
            good_shape(Vec3::new(7, 11, 1)),
            Vec3::new(8, 12, 1)
        );
    }
}
