//! The 3D FFT engine and its plan cache.

use parking_lot::Mutex;
use rustfft::{Fft, FftPlanner};
use std::collections::HashMap;
use std::sync::Arc;
use znn_tensor::lines::{Axis, LineSpec};
use znn_tensor::{ops, CImage, Complex32, Image, Vec3};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    Fwd,
    Inv,
}

/// A 3D complex FFT built from cached 1D `rustfft` plans.
///
/// The engine is cheap to share (`Arc<FftEngine>`) and thread-safe: the
/// plan cache is behind a mutex that is only touched on cache misses;
/// the transforms themselves run lock-free on caller-owned buffers.
///
/// Transforms are decomposed per axis. Lines along the fastest (`z`)
/// axis are processed in place on the contiguous buffer; `x`/`y` lines
/// are gathered into a scratch buffer, transformed in bulk, and
/// scattered back.
pub struct FftEngine {
    planner: Mutex<FftPlanner<f32>>,
    plans: Mutex<HashMap<(usize, Dir), Arc<dyn Fft<f32>>>>,
}

impl FftEngine {
    /// A new engine with an empty plan cache.
    pub fn new() -> Self {
        FftEngine {
            planner: Mutex::new(FftPlanner::new()),
            plans: Mutex::new(HashMap::new()),
        }
    }

    fn plan(&self, len: usize, dir: Dir) -> Arc<dyn Fft<f32>> {
        if let Some(p) = self.plans.lock().get(&(len, dir)) {
            return Arc::clone(p);
        }
        let plan = {
            let mut planner = self.planner.lock();
            match dir {
                Dir::Fwd => planner.plan_fft_forward(len),
                Dir::Inv => planner.plan_fft_inverse(len),
            }
        };
        self.plans
            .lock()
            .entry((len, dir))
            .or_insert_with(|| Arc::clone(&plan));
        plan
    }

    /// Number of distinct 1D plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().len()
    }

    fn transform_axis(&self, t: &mut CImage, axis: Axis, dir: Dir) {
        let shape = t.shape();
        let len = shape[axis as usize];
        if len == 1 {
            return; // a length-1 DFT is the identity
        }
        let plan = self.plan(len, dir);
        let mut scratch = vec![Complex32::default(); plan.get_inplace_scratch_len()];
        if axis == Axis::Z {
            // contiguous lines: process the whole buffer in chunks of len
            plan.process_with_scratch(t.as_mut_slice(), &mut scratch);
            return;
        }
        let spec = LineSpec::new(shape, axis);
        let mut buf = vec![Complex32::default(); spec.len];
        for i in 0..spec.count {
            spec.read_line(t, i, &mut buf);
            plan.process_with_scratch(&mut buf, &mut scratch);
            spec.write_line(t, i, &buf);
        }
    }

    /// In-place forward 3D FFT (unnormalized, like fftw/MKL).
    pub fn fft3(&self, t: &mut CImage) {
        for axis in Axis::ALL {
            self.transform_axis(t, axis, Dir::Fwd);
        }
    }

    /// In-place inverse 3D FFT, normalized so `ifft3(fft3(x)) == x`.
    pub fn ifft3(&self, t: &mut CImage) {
        for axis in Axis::ALL {
            self.transform_axis(t, axis, Dir::Inv);
        }
        ops::scale_c(t, 1.0 / t.len() as f32);
    }

    /// The forward transform of the staged convolution API: zero-pads a
    /// real image to `shape` (placing it at the origin) and transforms.
    ///
    /// This is the per-node transform that convergent edges share (§IV).
    pub fn forward_padded(&self, img: &Image, shape: Vec3) -> CImage {
        assert!(
            img.shape().le(shape),
            "image {} does not fit transform shape {shape}",
            img.shape()
        );
        let mut c = if img.shape() == shape {
            ops::to_complex(img)
        } else {
            ops::to_complex(&znn_tensor::pad::pad(img, shape, Vec3::zero()))
        };
        self.fft3(&mut c);
        c
    }

    /// The inverse stage: transforms a frequency-domain accumulator back
    /// and extracts the real box of `shape` at `at` — the crop that turns
    /// circular convolution into valid/full linear convolution.
    pub fn inverse_real(&self, mut spec: CImage, at: Vec3, shape: Vec3) -> Image {
        self.ifft3(&mut spec);
        let real = ops::to_real(&spec);
        if at == Vec3::zero() && shape == real.shape() {
            real
        } else {
            znn_tensor::pad::crop(&real, at, shape)
        }
    }
}

impl Default for FftEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference DFT along one axis for validation.
    fn dft_axis_naive(t: &CImage, axis: Axis, inverse: bool) -> CImage {
        let shape = t.shape();
        let n = shape[axis as usize];
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = t.clone();
        let spec = LineSpec::new(shape, axis);
        let mut line = vec![Complex32::default(); n];
        for i in 0..spec.count {
            spec.read_line(t, i, &mut line);
            let mut res = vec![Complex32::default(); n];
            for (k, r) in res.iter_mut().enumerate() {
                for (j, &v) in line.iter().enumerate() {
                    let ang = sign * 2.0 * std::f32::consts::PI * (k * j) as f32 / n as f32;
                    *r += v * Complex32::new(ang.cos(), ang.sin());
                }
            }
            spec.write_line(&mut out, i, &res);
        }
        out
    }

    fn dft3_naive(t: &CImage) -> CImage {
        let mut out = t.clone();
        for axis in Axis::ALL {
            out = dft_axis_naive(&out, axis, false);
        }
        out
    }

    fn max_cdiff(a: &CImage, b: &CImage) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f32::max)
    }

    #[test]
    fn fft3_matches_naive_dft_on_odd_shapes() {
        for shape in [Vec3::new(4, 3, 5), Vec3::new(1, 8, 2), Vec3::cube(6)] {
            let img = ops::random(shape, 11);
            let mut c = ops::to_complex(&img);
            let engine = FftEngine::new();
            engine.fft3(&mut c);
            let reference = dft3_naive(&ops::to_complex(&img));
            assert!(
                max_cdiff(&c, &reference) < 1e-3,
                "mismatch on {shape}: {}",
                max_cdiff(&c, &reference)
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        let engine = FftEngine::new();
        for shape in [Vec3::new(8, 4, 6), Vec3::new(1, 16, 16), Vec3::cube(5)] {
            let img = ops::random(shape, 3);
            let mut c = ops::to_complex(&img);
            engine.fft3(&mut c);
            engine.ifft3(&mut c);
            let back = ops::to_real(&c);
            assert!(back.max_abs_diff(&img) < 1e-5, "round trip failed {shape}");
        }
    }

    #[test]
    fn dc_bin_is_total_mass() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(4), 9);
        let mut c = ops::to_complex(&img);
        engine.fft3(&mut c);
        let dc = c.at((0, 0, 0));
        assert!((dc.re - img.sum()).abs() < 1e-4);
        assert!(dc.im.abs() < 1e-4);
    }

    #[test]
    fn plans_are_cached_per_length_and_direction() {
        let engine = FftEngine::new();
        let mut a = ops::to_complex(&ops::random(Vec3::cube(8), 1));
        engine.fft3(&mut a);
        // one length (8) appears for all three axes -> 1 forward plan
        assert_eq!(engine.cached_plans(), 1);
        engine.ifft3(&mut a);
        assert_eq!(engine.cached_plans(), 2);
        let mut b = ops::to_complex(&ops::random(Vec3::new(4, 8, 16), 1));
        engine.fft3(&mut b);
        assert_eq!(engine.cached_plans(), 4); // +4 fwd, 8 already cached
    }

    #[test]
    fn unit_axes_are_identity() {
        // 2D images (leading axis 1) must transform exactly like 2D FFTs
        let engine = FftEngine::new();
        let img = ops::random(Vec3::flat(4, 4), 5);
        let mut c = ops::to_complex(&img);
        engine.fft3(&mut c);
        let reference = dft3_naive(&ops::to_complex(&img));
        assert!(max_cdiff(&c, &reference) < 1e-3);
    }

    #[test]
    fn forward_padded_equals_manual_pad_then_fft() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(3), 2);
        let shape = Vec3::cube(8);
        let a = engine.forward_padded(&img, shape);
        let mut b = ops::to_complex(&znn_tensor::pad::pad(&img, shape, Vec3::zero()));
        engine.fft3(&mut b);
        assert!(max_cdiff(&a, &b) == 0.0);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = std::sync::Arc::new(FftEngine::new());
        let handles: Vec<_> = (0..4)
            .map(|seed| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || {
                    let img = ops::random(Vec3::cube(8), seed);
                    let mut c = ops::to_complex(&img);
                    engine.fft3(&mut c);
                    engine.ifft3(&mut c);
                    assert!(ops::to_real(&c).max_abs_diff(&img) < 1e-5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
