//! The 3D FFT engine and its plan cache.

use parking_lot::Mutex;
use rustfft::{Fft, FftPlanner};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_tensor::lines::{Axis, LineSpec};
use znn_tensor::{ops, BufferSource, CImage, Complex32, Image, Spectrum, Vec3};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    Fwd,
    Inv,
}

#[derive(Default)]
struct ScratchBuffers {
    /// `Fft::process_with_scratch` scratch.
    plan: Vec<Complex32>,
    /// Gathered strided line (x/y axes) or packed r2c/c2r line.
    line: Vec<Complex32>,
    /// Recycling pool the buffers are leased from on growth and return
    /// to on drop ([`FftEngine::with_buffer_pools`]); `None` grows and
    /// frees plainly. Fallback scratch (more concurrent borrowers than
    /// slots) is always `None`, so transient buffers never strand pool
    /// accounting.
    home: Option<Arc<dyn BufferSource<Complex32>>>,
}

impl Drop for ScratchBuffers {
    fn drop(&mut self) {
        if let Some(home) = self.home.take() {
            for buf in [std::mem::take(&mut self.plan), std::mem::take(&mut self.line)] {
                if buf.capacity() > 0 {
                    home.recycle(buf);
                }
            }
        }
    }
}

/// Engine-owned scratch, one slot per potential concurrent line
/// worker: FFT in-place scratch, a line gather buffer, and the packed
/// line buffer of the r2c/c2r stages. Transforms are hot (one per
/// image per pass) — allocating these per call was measurable.
///
/// Slots replace the per-OS-thread TLS of the spawn-per-call era: with
/// a shared persistent pool, any worker (pool thread, scope owner, or
/// donated scheduler thread) may execute any engine's line chunk, so
/// scratch must belong to the *engine*, not the thread. A worker
/// `try_lock`s the first free slot for the duration of one chunk;
/// slots are never shared concurrently, two engines on one pool never
/// touch each other's buffers, and — because every buffer is fully
/// overwritten before it is read — slot assignment cannot affect a
/// single output bit.
struct ScratchPool {
    slots: Vec<Mutex<ScratchBuffers>>,
}

impl ScratchPool {
    /// One slot per worker the engine may fan out to, plus one for the
    /// calling thread.
    fn new(workers: usize) -> Self {
        ScratchPool {
            slots: (0..workers + 1)
                .map(|_| Mutex::new(ScratchBuffers::default()))
                .collect(),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut ScratchBuffers) -> R) -> R {
        for s in &self.slots {
            if let Some(mut g) = s.try_lock() {
                return f(&mut g);
            }
        }
        // more concurrent borrowers than slots (many external threads
        // sharing one engine): fall back to a fresh buffer
        f(&mut ScratchBuffers::default())
    }
}

/// Grows (never shrinks below the request) `buf` to `n` elements and
/// returns the prefix. With a `home`, growth swaps in a fresh pool
/// lease and recycles the outgrown buffer — scratch contents are never
/// carried across calls (every caller fully overwrites the prefix
/// before reading it), so the swap is invisible.
fn borrow_buf<'a>(
    buf: &'a mut Vec<Complex32>,
    n: usize,
    home: Option<&Arc<dyn BufferSource<Complex32>>>,
) -> &'a mut [Complex32] {
    if buf.len() < n {
        match home {
            Some(h) => {
                let old = std::mem::replace(buf, h.lease(n));
                if old.capacity() > 0 {
                    h.recycle(old);
                }
            }
            None => buf.resize(n, Complex32::default()),
        }
    }
    &mut buf[..n]
}

/// A raw tensor base pointer that may cross thread boundaries.
///
/// Used by the parallel x/y line transforms: the lines along a strided
/// axis interleave in memory, so the buffer cannot be split into
/// contiguous `&mut` chunks per worker. Soundness rests on the line
/// decomposition instead: line `i` touches exactly the elements
/// `starts[i] + k·stride`, sets that are pairwise disjoint across lines,
/// and each worker is handed a disjoint range of line indices.
#[derive(Clone, Copy)]
struct SendPtr(*mut Complex32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The wrapped pointer. A method (rather than field access) so
    /// closures capture the `Send` wrapper, not the bare pointer —
    /// edition-2021 closures capture individual fields otherwise.
    fn get(self) -> *mut Complex32 {
        self.0
    }
}

/// Default minimum complex elements in a batched line transform before
/// it is split across pool workers. Below this, fork-join queueing
/// overhead outweighs the work; a 24³ stage stays serial, a 32³ stage
/// splits. Override with [`FftEngine::par_threshold`].
const PAR_MIN_ELEMS: usize = 16 * 1024;

/// Lines gathered per `process_with_scratch` call in the strided-axis
/// and r2c/c2r line loops. Matches the 8-line struct-of-arrays batch
/// the Stockham SIMD kernels consume, so a full group takes the
/// vectorized path; per-line results are bitwise identical either way,
/// making group boundaries (and worker-chunk interaction) unobservable.
const LINE_BATCH: usize = 8;

/// Plan cache: one planned 1D transform per (line length, direction).
type PlanMap = HashMap<(usize, Dir), Arc<dyn Fft<f32>>>;
/// r2c twiddle cache: one table per (packed-axis extent, direction).
type TwiddleMap = HashMap<(usize, Dir), Arc<Vec<Complex32>>>;

/// A 3D FFT for real-valued images, built from cached 1D `rustfft`
/// plans.
///
/// The engine is cheap to share (`Arc<FftEngine>`) and thread-safe: the
/// plan cache is behind a mutex that is only touched on cache misses;
/// the transforms themselves run lock-free on caller-owned buffers plus
/// per-thread scratch.
///
/// Two transform families are exposed:
///
/// * **r2c / c2r** ([`FftEngine::rfft3`], [`FftEngine::irfft3`] and the
///   staged [`FftEngine::forward_padded`] / [`FftEngine::inverse_real`])
///   — the production path. Real input makes the spectrum Hermitian, so
///   only `⌊m/2⌋+1` bins along the packed axis are stored
///   ([`Spectrum`]); the packed stage turns each even-length real line
///   into a half-length complex line (even/odd trick), so that stage
///   also costs half the FLOPs. The packed axis is the last non-unit
///   axis — `z` for volumes, `y` for flat (`m_z == 1`) images — whose
///   lines are always contiguous.
/// * **c2c** ([`FftEngine::fft3`], [`FftEngine::ifft3`]) — full complex
///   transforms, kept for parity tests and as the r2c baseline.
///
/// # Threading model
///
/// Transforms are decomposed per axis into batches of independent 1D
/// lines, and every batched line loop — the in-place contiguous `z`
/// pass, the `x`/`y` gather–transform–scatter passes, and the r2c pack /
/// c2r unpack passes — splits its lines into contiguous index ranges
/// across up to [`FftEngine::threads`] chunks, queued on a
/// **persistent pool** (`rayon::scope`): the engine's own pool when
/// built with [`FftEngine::with_pool`], else the process-global one.
/// No OS thread is spawned per transform; chunks run on pool workers,
/// on the calling thread (which executes pending chunks while it
/// waits), and on any threads *donated* to the pool by an outer task
/// scheduler.
///
/// Within each worker's range, lines are gathered in groups of 8 and
/// handed to the planned kernel in one call, which lets the Stockham
/// engine run its batched AVX2 lines (struct-of-arrays across the
/// group — see `znn-simd` and `docs/ARCHITECTURE.md` §7); batched and
/// per-line results are bitwise identical, so the grouping is purely a
/// speed lever.
///
/// The split is at line granularity, chunk boundaries are a pure
/// function of the worker count, scratch is slotted per concurrent
/// worker (`ScratchPool`) and fully overwritten before use, and each
/// line's arithmetic is identical regardless of which thread runs it —
/// so transforms are **bit-for-bit deterministic** and equal to the
/// single-threaded result for every worker count and pool. Batches
/// smaller than a threshold (~16k complex elements, see
/// [`FftEngine::par_threshold`]) stay serial —
/// `FftEngine::with_threads(1)` forces everything serial.
///
/// [`FftEngine::new`] sizes the fan-out to `available_parallelism`;
/// pass an explicit count with [`FftEngine::with_threads`], or a count
/// plus a shared pool with [`FftEngine::with_pool`] when composing
/// with an outer task-parallel scheduler so both draw on one thread
/// budget.
///
/// # Memory model
///
/// With [`FftEngine::with_buffer_pools`] every buffer the engine
/// allocates — half-spectra, padded transform inputs, cropped outputs,
/// per-slot scratch — is leased from a `znn_alloc::PoolSet` and
/// recycled when the produced tensor drops (`irfft3` additionally
/// re-adopts the spectrum's storage it consumed in place, so the c2r
/// buffer reuse survives pooling). A steady-state transform loop then
/// performs zero allocation; see the crate-level docs of `znn-alloc`
/// and the §VII-C discussion in `docs/ARCHITECTURE.md`.
///
/// # Example
///
/// ```
/// use znn_fft::FftEngine;
/// use znn_tensor::{ops, Vec3};
///
/// let engine = FftEngine::with_threads(1);
/// // 48 = 2^4·3 is 5-smooth: every line transform takes the
/// // iterative Stockham path
/// let img = ops::random(Vec3::cube(48), 7);
/// let spec = engine.rfft3(&img);
/// // the half-spectrum stores 25 of 48 packed-axis bins per line
/// assert_eq!(spec.half().shape(), Vec3::new(48, 48, 25));
/// // the inverse consumes its spectrum in place and round-trips
/// let back = engine.irfft3(spec);
/// assert!(back.max_abs_diff(&img) < 1e-5);
/// ```
pub struct FftEngine {
    planner: Mutex<FftPlanner<f32>>,
    plans: Mutex<PlanMap>,
    /// Memoized unpack/repack twiddles `e^{∓2πik/n}`, `k ∈ 0..⌊n/2⌋+1`,
    /// for the r2c/c2r packed stages, keyed by `(n, direction)`.
    rtwiddles: Mutex<TwiddleMap>,
    /// Worker cap for batched line transforms (≥ 1). Atomic so a
    /// planner can re-tune the fan-out of a live engine
    /// ([`FftEngine::set_threads`]); every value computes bit-identical
    /// transforms, so a concurrent change is always safe.
    threads: AtomicUsize,
    /// The pool line chunks are queued on; `None` targets the
    /// process-global pool.
    pool: Option<Arc<rayon::ThreadPool>>,
    /// When true, scopes spawn one OS thread per chunk instead of
    /// using the pool — the `--spawn-compare` benchmark baseline.
    spawn_per_call: bool,
    /// When true, every 1D line plan comes from
    /// `FftPlanner::plan_fft_recursive` instead of the iterative
    /// Stockham kernels — the `fft_traffic` benchmark baseline that
    /// keeps the recursive-vs-iterative gap measurable at the 3D
    /// transform level.
    recursive_kernels: bool,
    /// When true, every 1D line plan comes from
    /// `FftPlanner::plan_fft_scalar` — the Stockham kernels with the
    /// batched SIMD lines pinned off. Differential-test and
    /// `fft_traffic` baseline for the SIMD path; output is bitwise
    /// identical to the default engine.
    scalar_kernels: bool,
    /// Minimum complex elements in a batch before it is split.
    par_min_elems: usize,
    /// Slotted per-worker scratch (see [`ScratchPool`]).
    scratch: ScratchPool,
    /// Recycling pools every transform buffer is leased from when set
    /// ([`FftEngine::with_buffer_pools`]): half-spectra, padded inputs,
    /// cropped outputs, per-slot scratch. `None` allocates plainly.
    pools: Option<Arc<PoolSet>>,
}

impl FftEngine {
    /// A new engine with an empty plan cache, parallelizing line
    /// transforms over up to `available_parallelism` workers.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A new engine that splits batched line transforms over at most
    /// `threads` workers of the process-global pool.
    /// `with_threads(1)` disables intra-transform parallelism
    /// entirely.
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        FftEngine {
            planner: Mutex::new(FftPlanner::new()),
            plans: Mutex::new(HashMap::new()),
            rtwiddles: Mutex::new(HashMap::new()),
            threads: AtomicUsize::new(threads),
            pool: None,
            spawn_per_call: false,
            recursive_kernels: false,
            scalar_kernels: false,
            par_min_elems: PAR_MIN_ELEMS,
            scratch: ScratchPool::new(threads),
            pools: None,
        }
    }

    /// A new engine whose line chunks are queued on `pool` — share one
    /// pool (and so one thread budget) between several engines and an
    /// outer task scheduler whose workers donate to it. Results are
    /// bit-for-bit identical to every other configuration with any
    /// `threads` ≥ 2 fan-out, and to `with_threads(1)` serially.
    pub fn with_pool(threads: usize, pool: Arc<rayon::ThreadPool>) -> Self {
        let mut engine = Self::with_threads(threads);
        engine.pool = Some(pool);
        engine
    }

    /// A new engine that spawns one short-lived OS thread per line
    /// chunk, bypassing the persistent pool. **Benchmark baseline
    /// only** (`fft_traffic --spawn-compare`): it reproduces the
    /// pre-pool shim behaviour so the spawn overhead stays measurable.
    pub fn with_spawn_per_call(threads: usize) -> Self {
        let mut engine = Self::with_threads(threads);
        engine.spawn_per_call = true;
        engine
    }

    /// A new single-threaded engine whose 1D line plans all come from
    /// the *recursive mixed-radix* fallback, bypassing the iterative
    /// Stockham kernels. **Benchmark baseline only** (`fft_traffic`):
    /// it reproduces the pre-mixed-radix behaviour for 5-smooth
    /// non-power-of-two lengths (48, 60, 120…) so the kernel win stays
    /// measurable at the 3D r2c transform level, not just per 1D line.
    pub fn with_recursive_kernels() -> Self {
        let mut engine = Self::with_threads(1);
        engine.recursive_kernels = true;
        engine
    }

    /// A new single-threaded engine whose 1D line plans pin the
    /// Stockham kernels to their scalar per-line path, bypassing the
    /// batched SIMD lines. **Differential-test and benchmark baseline
    /// only** (`fft_traffic` records the SIMD-vs-scalar delta with
    /// it): results are bitwise identical to the default engine — the
    /// vector butterflies perform the same IEEE ops in the same order
    /// — so this switch can only ever change speed.
    pub fn with_scalar_kernels() -> Self {
        let mut engine = Self::with_threads(1);
        engine.scalar_kernels = true;
        engine
    }

    /// Overrides the minimum batch size (complex elements) before a
    /// line loop is split across workers. The default (~16k) keeps
    /// small transforms serial; benchmarks lower it to expose pure
    /// fork-join overhead.
    pub fn par_threshold(mut self, elems: usize) -> Self {
        self.par_min_elems = elems.max(1);
        self
    }

    /// Routes every buffer this engine allocates — half-spectra, padded
    /// transform inputs, cropped outputs, per-slot scratch — through
    /// `pools` (the paper's §VII-C recycling allocator). Leased buffers
    /// return to the pool when the produced tensors drop, so a
    /// steady-state transform loop performs **zero** allocation after
    /// its first pass, and transforms stay **bit-for-bit identical** to
    /// the unpooled engine (pool leases are zero-filled exactly like
    /// fresh buffers, and slot/chunk assignment never affects values).
    ///
    /// Use **one `PoolSet` per pipeline**: a spectrum leased from a
    /// *different* pool and consumed by this engine's [`FftEngine::irfft3`]
    /// is treated as foreign — transformed correctly, but its storage
    /// is detached rather than adopted (adopting never-leased bytes
    /// would corrupt this pool's accounting), so the originating pool
    /// keeps the bytes counted in use and re-misses that class next
    /// round. Correctness is unaffected; the flat-footprint guarantee
    /// only holds within a single pool.
    ///
    /// ```
    /// use znn_alloc::PoolSet;
    /// use znn_fft::FftEngine;
    /// use znn_tensor::{ops, Vec3};
    ///
    /// let pools = PoolSet::new();
    /// let engine = FftEngine::with_threads(1).with_buffer_pools(pools.clone());
    /// let img = ops::random(Vec3::cube(8), 1);
    /// let warm = engine.irfft3(engine.rfft3(&img)); // first pass allocates
    /// drop(warm);
    /// let misses = pools.stats().misses();
    /// let again = engine.irfft3(engine.rfft3(&img)); // ...then only recycles
    /// assert_eq!(pools.stats().misses(), misses);
    /// assert!(again.max_abs_diff(&img) < 1e-5);
    /// ```
    pub fn with_buffer_pools(mut self, pools: Arc<PoolSet>) -> Self {
        for slot in &self.scratch.slots {
            slot.lock().home = Some(Arc::clone(pools.complex_home()));
        }
        self.pools = Some(pools);
        self
    }

    /// The recycling pools this engine leases buffers from, if any.
    pub fn buffer_pools(&self) -> Option<&Arc<PoolSet>> {
        self.pools.as_ref()
    }

    /// A zero-filled complex tensor, leased when pools are attached.
    fn lease_cimage(&self, shape: Vec3) -> CImage {
        znn_alloc::lease_cimage(self.pools.as_ref(), shape)
    }

    /// A zero-filled real tensor, leased when pools are attached.
    fn lease_image(&self, shape: Vec3) -> Image {
        znn_alloc::lease_image(self.pools.as_ref(), shape)
    }

    /// The worker cap for batched line transforms.
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Re-tunes the worker cap of a live engine (clamped to ≥ 1).
    ///
    /// Safe at any time, including while transforms are in flight:
    /// the fan-out only partitions line batches, and every partition
    /// computes bit-identical results (each line is transformed by
    /// the same serial kernel regardless of which chunk owns it).
    /// Scratch is slotted per concurrent borrower with a graceful
    /// fallback, so raising the cap above the construction-time value
    /// costs at most a fresh scratch allocation per extra chunk.
    ///
    /// This is the knob the `znn-plan` calibrator turns when measured
    /// round times drift from the model's predictions.
    pub fn set_threads(&self, threads: usize) {
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// Workers to split a batch of `lines` lines of `line_len` complex
    /// elements across: 1 for small batches (fork overhead dominates),
    /// never more than the line count.
    fn workers_for(&self, lines: usize, line_len: usize) -> usize {
        let threads = self.threads.load(Ordering::Relaxed);
        if threads <= 1 || lines * line_len < self.par_min_elems {
            1
        } else {
            threads.min(lines)
        }
    }

    /// Runs `f` inside the fork-join scope this engine is configured
    /// for: its shared pool, the process-global pool, or (benchmark
    /// baseline only) a spawn-per-call scope.
    fn in_scope<'scope, R>(&self, f: impl FnOnce(&rayon::Scope<'scope>) -> R) -> R {
        if self.spawn_per_call {
            rayon::scope_spawn_per_call(f)
        } else {
            match &self.pool {
                Some(p) => p.scope(f),
                None => rayon::scope(f),
            }
        }
    }

    fn plan(&self, len: usize, dir: Dir) -> Arc<dyn Fft<f32>> {
        // single lock pass: concurrent misses for the same key build the
        // plan once — the loser of the entry race never plans at all
        let mut plans = self.plans.lock();
        match plans.entry((len, dir)) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(e) => {
                let mut planner = self.planner.lock();
                let fdir = match dir {
                    Dir::Fwd => rustfft::FftDirection::Forward,
                    Dir::Inv => rustfft::FftDirection::Inverse,
                };
                let plan = if self.recursive_kernels {
                    planner.plan_fft_recursive(len, fdir)
                } else if self.scalar_kernels {
                    planner.plan_fft_scalar(len, fdir)
                } else {
                    planner.plan_fft(len, fdir)
                };
                Arc::clone(e.insert(plan))
            }
        }
    }

    /// Half-spectrum twiddles `e^{sign·2πik/n}` for `k ∈ 0..⌊n/2⌋+1`.
    fn rtwiddle(&self, n: usize, dir: Dir) -> Arc<Vec<Complex32>> {
        let mut cache = self.rtwiddles.lock();
        match cache.entry((n, dir)) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(e) => {
                let sign = match dir {
                    Dir::Fwd => -1.0f64,
                    Dir::Inv => 1.0f64,
                };
                let tw: Vec<Complex32> = (0..n / 2 + 1)
                    .map(|k| {
                        let ang = sign * 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                        Complex32::new(ang.cos() as f32, ang.sin() as f32)
                    })
                    .collect();
                Arc::clone(e.insert(Arc::new(tw)))
            }
        }
    }

    /// Number of distinct 1D plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().len()
    }

    fn transform_axis(&self, t: &mut CImage, axis: Axis, dir: Dir) {
        let shape = t.shape();
        let len = shape[axis as usize];
        if len == 1 {
            return; // a length-1 DFT is the identity
        }
        let plan = self.plan(len, dir);
        let count = t.len() / len;
        let workers = self.workers_for(count, len);
        if axis == Axis::Z {
            // contiguous lines: the buffer splits into per-worker chunks
            // at line boundaries, each processed in place
            if workers <= 1 {
                self.scratch.with(|s| {
                    let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len(), s.home.as_ref());
                    plan.process_with_scratch(t.as_mut_slice(), scratch);
                });
            } else {
                let per = count.div_ceil(workers);
                let plan = &plan;
                let scratch_pool = &self.scratch;
                self.in_scope(|sc| {
                    for chunk in t.as_mut_slice().chunks_mut(per * len) {
                        sc.spawn(move |_| {
                            scratch_pool.with(|s| {
                                let scratch =
                                    borrow_buf(&mut s.plan, plan.get_inplace_scratch_len(), s.home.as_ref());
                                plan.process_with_scratch(chunk, scratch);
                            });
                        });
                    }
                });
            }
            return;
        }
        let spec = LineSpec::new(shape, axis);
        if workers <= 1 {
            // gather lines in groups of LINE_BATCH so a full group runs
            // the Stockham kernels' batched SIMD path in one call
            self.scratch.with(|s| {
                let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len(), s.home.as_ref());
                let buf = borrow_buf(&mut s.line, LINE_BATCH * spec.len, s.home.as_ref());
                let mut i = 0;
                while i < spec.count {
                    let g = LINE_BATCH.min(spec.count - i);
                    let group = &mut buf[..g * spec.len];
                    for (j, line) in group.chunks_exact_mut(spec.len).enumerate() {
                        spec.read_line(t, i + j, line);
                    }
                    plan.process_with_scratch(group, scratch);
                    for (j, line) in group.chunks_exact(spec.len).enumerate() {
                        spec.write_line(t, i + j, line);
                    }
                    i += g;
                }
            });
            return;
        }
        // strided lines interleave, so workers share the buffer through a
        // raw base pointer and own disjoint ranges of line indices
        let base = SendPtr(t.as_mut_slice().as_mut_ptr());
        let per = count.div_ceil(workers);
        let plan = &plan;
        let spec = &spec;
        let scratch_pool = &self.scratch;
        self.in_scope(|sc| {
            let mut lo = 0;
            while lo < count {
                let hi = (lo + per).min(count);
                sc.spawn(move |_| {
                    let ptr = base.get();
                    scratch_pool.with(|s| {
                        let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len(), s.home.as_ref());
                        let buf = borrow_buf(&mut s.line, LINE_BATCH * spec.len, s.home.as_ref());
                        let mut i = lo;
                        while i < hi {
                            let g = LINE_BATCH.min(hi - i);
                            let group = &mut buf[..g * spec.len];
                            // SAFETY: line i touches exactly the elements
                            // starts[i] + k·stride, k < len — pairwise
                            // disjoint across lines, and this worker's
                            // line range [lo, hi) is disjoint from every
                            // other worker's. All offsets are in bounds
                            // by LineSpec's construction.
                            for (j, line) in group.chunks_exact_mut(spec.len).enumerate() {
                                let mut p = spec.starts()[i + j];
                                for b in line.iter_mut() {
                                    unsafe { *b = *ptr.add(p) };
                                    p += spec.stride;
                                }
                            }
                            plan.process_with_scratch(group, scratch);
                            for (j, line) in group.chunks_exact(spec.len).enumerate() {
                                let mut p = spec.starts()[i + j];
                                for b in line.iter() {
                                    unsafe { *ptr.add(p) = *b };
                                    p += spec.stride;
                                }
                            }
                            i += g;
                        }
                    });
                });
                lo = hi;
            }
        });
    }

    /// In-place forward 3D FFT (unnormalized, like fftw/MKL).
    pub fn fft3(&self, t: &mut CImage) {
        for axis in Axis::ALL {
            self.transform_axis(t, axis, Dir::Fwd);
        }
    }

    /// In-place inverse 3D FFT, normalized so `ifft3(fft3(x)) == x`.
    pub fn ifft3(&self, t: &mut CImage) {
        for axis in Axis::ALL {
            self.transform_axis(t, axis, Dir::Inv);
        }
        ops::scale_c(t, 1.0 / t.len() as f32);
    }

    /// Forward real-to-complex 3D FFT of `img` (unnormalized): the
    /// half-spectrum holding bins `0..=⌊m/2⌋` of the full DFT along the
    /// packed axis ([`Spectrum::packed_axis`] — `z` for volumes, `y` for
    /// flat `m_z == 1` images).
    ///
    /// The packed stage exploits Hermitian symmetry: an even-length real
    /// line of `n` samples is packed as `n/2` complex samples
    /// (`z[t] = x[2t] + i·x[2t+1]`), transformed at half length, and
    /// unpacked into `n/2+1` bins — half the FLOPs and half the spectrum
    /// memory of the c2c path. Odd extents fall back to a full-length
    /// transform per line, truncated to the stored bins (`good_shape`
    /// keeps the packed axis even, so this path is cold). The remaining
    /// axes are c2c transforms over the (already halved) packed tensor.
    ///
    /// Lines are split across the engine's workers; see the
    /// [threading model](FftEngine#threading-model).
    pub fn rfft3(&self, img: &Image) -> Spectrum {
        let m = img.shape();
        let pa = Spectrum::packed_axis(m);
        let n = m[pa];
        let h = n / 2 + 1;
        let mut half = self.lease_cimage(Spectrum::half_shape(m));
        let lines = m.len() / n;
        if n == 1 {
            // the all-unit shape: a 1-point DFT is the identity
            for (d, s) in half.as_mut_slice().iter_mut().zip(img.as_slice()) {
                *d = Complex32::new(*s, 0.0);
            }
        } else if n.is_multiple_of(2) {
            let hn = n / 2;
            let plan = (hn > 1).then(|| self.plan(hn, Dir::Fwd));
            let tw = self.rtwiddle(n, Dir::Fwd);
            let pack = |src_all: &[f32], dst_all: &mut [Complex32]| {
                // pack LINE_BATCH lines per transform call so a full
                // group runs the Stockham batched SIMD path
                self.scratch.with(|s| {
                    let scratch = borrow_buf(
                        &mut s.plan,
                        plan.as_ref().map_or(0, |p| p.get_inplace_scratch_len()),
                        s.home.as_ref(),
                    );
                    let buf = borrow_buf(&mut s.line, LINE_BATCH * hn, s.home.as_ref());
                    for (sg, dg) in src_all
                        .chunks(LINE_BATCH * n)
                        .zip(dst_all.chunks_mut(LINE_BATCH * h))
                    {
                        let g = sg.len() / n;
                        let group = &mut buf[..g * hn];
                        for (src, line) in
                            sg.chunks_exact(n).zip(group.chunks_exact_mut(hn))
                        {
                            for (t, b) in line.iter_mut().enumerate() {
                                *b = Complex32::new(src[2 * t], src[2 * t + 1]);
                            }
                        }
                        if let Some(p) = &plan {
                            p.process_with_scratch(group, scratch);
                        }
                        for (dst, line) in
                            dg.chunks_exact_mut(h).zip(group.chunks_exact(hn))
                        {
                            for (k, d) in dst.iter_mut().enumerate() {
                                let zk = line[k % hn];
                                let zc = line[(hn - k) % hn].conj();
                                let ze = (zk + zc) * 0.5;
                                let zo = (zk - zc) * Complex32::new(0.0, -0.5);
                                *d = ze + tw[k] * zo;
                            }
                        }
                    }
                });
            };
            self.par_line_chunks(
                self.workers_for(lines, n),
                lines,
                img.as_slice(),
                n,
                half.as_mut_slice(),
                h,
                &pack,
            );
        } else {
            let plan = self.plan(n, Dir::Fwd);
            let pack = |src_all: &[f32], dst_all: &mut [Complex32]| {
                self.scratch.with(|s| {
                    let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len(), s.home.as_ref());
                    let buf = borrow_buf(&mut s.line, n, s.home.as_ref());
                    for (src, dst) in src_all.chunks_exact(n).zip(dst_all.chunks_exact_mut(h)) {
                        for (b, v) in buf.iter_mut().zip(src) {
                            *b = Complex32::new(*v, 0.0);
                        }
                        plan.process_with_scratch(buf, scratch);
                        dst.copy_from_slice(&buf[..h]);
                    }
                });
            };
            self.par_line_chunks(
                self.workers_for(lines, n),
                lines,
                img.as_slice(),
                n,
                half.as_mut_slice(),
                h,
                &pack,
            );
        }
        // the remaining (un-packed) axes, in Z..X order so the inverse
        // can mirror the stage order exactly
        for axis in Axis::ALL.into_iter().rev() {
            if axis as usize != pa {
                self.transform_axis(&mut half, axis, Dir::Fwd);
            }
        }
        Spectrum::new(half, m)
    }

    /// Inverse of [`FftEngine::rfft3`], normalized so
    /// `irfft3(rfft3(x)) == x`. Consumes the spectrum: the inverse is
    /// computed in place on its buffer, and the real output *reuses that
    /// buffer's storage* — the interleaved unpack writes each real line
    /// into the (strictly larger) slot its complex bins occupied, then
    /// one compaction pass packs the lines tight. No per-call output
    /// allocation.
    pub fn irfft3(&self, spec: Spectrum) -> Image {
        let m = spec.full_shape();
        let pa = Spectrum::packed_axis(m);
        let n = m[pa];
        let h = n / 2 + 1;
        // Re-adopt the output storage into the pool only when the
        // incoming spectrum's buffer was leased from THIS engine's own
        // pool: the lease is still counted in the pool's bytes_in_use
        // (into_vec below detaches without touching the counters), so
        // the eventual recycle balances it exactly. Adopting a raw or
        // foreign-pool buffer instead would push never-leased bytes at
        // the pool and corrupt its accounting.
        let adopt_home = match &self.pools {
            Some(p) => spec
                .half()
                .home()
                .is_some_and(|h| Arc::ptr_eq(h, p.complex_home()))
                .then(|| Arc::clone(p.real_home())),
            None => None,
        };
        let mut half = spec.into_half();
        for axis in Axis::ALL {
            if axis as usize != pa {
                self.transform_axis(&mut half, axis, Dir::Inv);
            }
        }
        let lines = m.len() / n;
        // the non-packed inverse stages above are unnormalized, each
        // contributing its extent; the packed stage contributes n/2
        // (even), n (odd) or 1 (unit)
        let zfac = if n == 1 {
            1
        } else if n.is_multiple_of(2) {
            n / 2
        } else {
            n
        };
        let scale = 1.0 / ((m.len() / n) * zfac) as f32;
        // In-place c2r: view the half buffer as interleaved f32 storage.
        // Line i's h complex bins occupy the 2h-float "slot" at 2·i·h;
        // its n real outputs (n ≤ 2h-1) are written back into the same
        // slot's prefix after the bins are consumed into scratch, so
        // parallel workers stay inside their own slots and nothing
        // allocates.
        let mut data = complex_vec_into_reals(half.into_vec());
        if n == 1 {
            data[0] *= scale; // single voxel (slot [re, im], output [re])
        } else if n.is_multiple_of(2) {
            let hn = n / 2;
            let plan = (hn > 1).then(|| self.plan(hn, Dir::Inv));
            let tw = self.rtwiddle(n, Dir::Inv);
            let unpack = |slots: &mut [f32]| {
                // repack LINE_BATCH slots per transform call so a full
                // group runs the Stockham batched SIMD path
                self.scratch.with(|s| {
                    let scratch = borrow_buf(
                        &mut s.plan,
                        plan.as_ref().map_or(0, |p| p.get_inplace_scratch_len()),
                        s.home.as_ref(),
                    );
                    let buf = borrow_buf(&mut s.line, LINE_BATCH * hn, s.home.as_ref());
                    for sg in slots.chunks_mut(LINE_BATCH * 2 * h) {
                        let g = sg.len() / (2 * h);
                        let group = &mut buf[..g * hn];
                        for (slot, line) in
                            sg.chunks_exact(2 * h).zip(group.chunks_exact_mut(hn))
                        {
                            for (k, b) in line.iter_mut().enumerate() {
                                let xk = Complex32::new(slot[2 * k], slot[2 * k + 1]);
                                let xc =
                                    Complex32::new(slot[2 * (hn - k)], -slot[2 * (hn - k) + 1]);
                                let ze = (xk + xc) * 0.5;
                                let zo = (xk - xc) * 0.5 * tw[k];
                                // z[k] = ze + i·zo repacks even/odd interleaving
                                *b = Complex32::new(ze.re - zo.im, ze.im + zo.re);
                            }
                        }
                        if let Some(p) = &plan {
                            p.process_with_scratch(group, scratch);
                        }
                        for (slot, line) in
                            sg.chunks_exact_mut(2 * h).zip(group.chunks_exact(hn))
                        {
                            for (t, b) in line.iter().enumerate() {
                                slot[2 * t] = b.re * scale;
                                slot[2 * t + 1] = b.im * scale;
                            }
                        }
                    }
                });
            };
            self.par_slot_chunks(self.workers_for(lines, n), lines, &mut data, 2 * h, &unpack);
        } else {
            let plan = self.plan(n, Dir::Inv);
            let unpack = |slots: &mut [f32]| {
                self.scratch.with(|s| {
                    let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len(), s.home.as_ref());
                    let buf = borrow_buf(&mut s.line, n, s.home.as_ref());
                    for slot in slots.chunks_exact_mut(2 * h) {
                        for (k, b) in buf[..h].iter_mut().enumerate() {
                            *b = Complex32::new(slot[2 * k], slot[2 * k + 1]);
                        }
                        // Hermitian reconstruction of the dropped bins
                        for k in 1..h {
                            buf[n - k] =
                                Complex32::new(slot[2 * k], -slot[2 * k + 1]);
                        }
                        plan.process_with_scratch(buf, scratch);
                        for (d, b) in slot[..n].iter_mut().zip(buf.iter()) {
                            *d = b.re * scale;
                        }
                    }
                });
            };
            self.par_slot_chunks(self.workers_for(lines, n), lines, &mut data, 2 * h, &unpack);
        }
        // compact the per-slot real lines into a dense image: line i
        // moves left from 2·i·h to i·n, so a forward pass never
        // overwrites an unmoved line
        for i in 1..lines {
            data.copy_within(2 * i * h..2 * i * h + n, i * n);
        }
        data.truncate(m.len());
        let out = Image::from_vec(m, data);
        // The storage began life as the spectrum's complex lease and was
        // detached by the reinterpretation; re-adopt it (as so many f32
        // units) so it rejoins the same chunk pool when the image drops.
        match adopt_home {
            Some(home) => out.with_home(home),
            None => out,
        }
    }

    /// The forward transform of the staged convolution API: zero-pads a
    /// real image to `shape` (placing it at the origin) and takes its
    /// r2c transform.
    ///
    /// This is the per-node transform that convergent edges share (§IV);
    /// each memoized result is a [`Spectrum`] occupying roughly half the
    /// memory of the full complex transform.
    pub fn forward_padded(&self, img: &Image, shape: Vec3) -> Spectrum {
        assert!(
            img.shape().le(shape),
            "image {} does not fit transform shape {shape}",
            img.shape()
        );
        if img.shape() == shape {
            self.rfft3(img)
        } else {
            // the padded copy is transient: leased from the pool (zeroed
            // like any lease) and recycled the moment the transform ends
            let mut padded = self.lease_image(shape);
            znn_tensor::pad::pad_into(img, &mut padded, Vec3::zero());
            self.rfft3(&padded)
        }
    }

    /// c2c variant of [`FftEngine::forward_padded`], kept as the parity
    /// baseline (tests, benches, autotune comparisons).
    pub fn forward_padded_c2c(&self, img: &Image, shape: Vec3) -> CImage {
        assert!(
            img.shape().le(shape),
            "image {} does not fit transform shape {shape}",
            img.shape()
        );
        let mut c = if img.shape() == shape {
            ops::to_complex(img)
        } else {
            ops::to_complex(&znn_tensor::pad::pad(img, shape, Vec3::zero()))
        };
        self.fft3(&mut c);
        c
    }

    /// The inverse stage: transforms a frequency-domain accumulator back
    /// and extracts the real box of `shape` at `at` — the crop that turns
    /// circular convolution into valid/full linear convolution.
    pub fn inverse_real(&self, spec: Spectrum, at: Vec3, shape: Vec3) -> Image {
        let real = self.irfft3(spec);
        if at == Vec3::zero() && shape == real.shape() {
            real
        } else {
            let mut out = self.lease_image(shape);
            znn_tensor::pad::crop_into(&real, at, &mut out);
            out
        }
    }

    /// c2c variant of [`FftEngine::inverse_real`], kept as the parity
    /// baseline.
    pub fn inverse_real_c2c(&self, mut spec: CImage, at: Vec3, shape: Vec3) -> Image {
        self.ifft3(&mut spec);
        let real = ops::to_real(&spec);
        if at == Vec3::zero() && shape == real.shape() {
            real
        } else {
            znn_tensor::pad::crop(&real, at, shape)
        }
    }
}

impl FftEngine {
    /// Runs `work` over a batch of `lines` lines that are contiguous in
    /// both buffers (`src_len` reals in, `dst_len` complexes out per
    /// line): serially for one worker, else split into per-worker
    /// chunks of whole lines on the engine's pool. The chunk boundaries
    /// depend only on `(workers, lines)`, and each line's arithmetic is
    /// independent of its chunk, so the result is identical for every
    /// worker count.
    #[allow(clippy::too_many_arguments)]
    fn par_line_chunks(
        &self,
        workers: usize,
        lines: usize,
        src: &[f32],
        src_len: usize,
        dst: &mut [Complex32],
        dst_len: usize,
        work: &(impl Fn(&[f32], &mut [Complex32]) + Sync),
    ) {
        if workers <= 1 {
            work(src, dst);
            return;
        }
        let per = lines.div_ceil(workers);
        self.in_scope(|sc| {
            for (s_chunk, d_chunk) in src
                .chunks(per * src_len)
                .zip(dst.chunks_mut(per * dst_len))
            {
                sc.spawn(move |_| work(s_chunk, d_chunk));
            }
        });
    }

    /// In-place variant of [`FftEngine::par_line_chunks`] for the c2r
    /// unpack: the buffer is one f32 slab of `lines` slots of
    /// `slot_len` floats each, split across workers at slot boundaries.
    fn par_slot_chunks(
        &self,
        workers: usize,
        lines: usize,
        data: &mut [f32],
        slot_len: usize,
        work: &(impl Fn(&mut [f32]) + Sync),
    ) {
        if workers <= 1 {
            work(data);
            return;
        }
        let per = lines.div_ceil(workers);
        self.in_scope(|sc| {
            for chunk in data.chunks_mut(per * slot_len) {
                sc.spawn(move |_| work(chunk));
            }
        });
    }
}

/// Reinterprets a `Vec<Complex32>` as the `Vec<f32>` over the same
/// allocation (`re`, `im` interleaved), without copying.
fn complex_vec_into_reals(v: Vec<Complex32>) -> Vec<f32> {
    let mut v = std::mem::ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: Complex<f32> is #[repr(C)] { re: f32, im: f32 } — size 8,
    // align 4 — so Layout::array::<f32>(2·cap) equals
    // Layout::array::<Complex32>(cap): the allocation contract for the
    // eventual drop/realloc is preserved, every byte of the length is
    // initialized, and every bit pattern is a valid f32.
    unsafe { Vec::from_raw_parts(ptr.cast::<f32>(), len * 2, cap * 2) }
}

impl Default for FftEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference DFT along one axis for validation.
    fn dft_axis_naive(t: &CImage, axis: Axis, inverse: bool) -> CImage {
        let shape = t.shape();
        let n = shape[axis as usize];
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = t.clone();
        let spec = LineSpec::new(shape, axis);
        let mut line = vec![Complex32::default(); n];
        for i in 0..spec.count {
            spec.read_line(t, i, &mut line);
            let mut res = vec![Complex32::default(); n];
            for (k, r) in res.iter_mut().enumerate() {
                for (j, &v) in line.iter().enumerate() {
                    let ang = sign * 2.0 * std::f32::consts::PI * (k * j) as f32 / n as f32;
                    *r += v * Complex32::new(ang.cos(), ang.sin());
                }
            }
            spec.write_line(&mut out, i, &res);
        }
        out
    }

    fn dft3_naive(t: &CImage) -> CImage {
        let mut out = t.clone();
        for axis in Axis::ALL {
            out = dft_axis_naive(&out, axis, false);
        }
        out
    }

    fn max_cdiff(a: &CImage, b: &CImage) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f32::max)
    }

    /// The half-spectrum a c2c transform implies: packed-axis bins
    /// `0..=⌊m/2⌋`.
    fn truncate_to_half(full: &CImage) -> CImage {
        let m = full.shape();
        let hs = Spectrum::half_shape(m);
        znn_tensor::Tensor3::from_fn(hs, |f| full.at(f))
    }

    #[test]
    fn fft3_matches_naive_dft_on_odd_shapes() {
        for shape in [Vec3::new(4, 3, 5), Vec3::new(1, 8, 2), Vec3::cube(6)] {
            let img = ops::random(shape, 11);
            let mut c = ops::to_complex(&img);
            let engine = FftEngine::new();
            engine.fft3(&mut c);
            let reference = dft3_naive(&ops::to_complex(&img));
            assert!(
                max_cdiff(&c, &reference) < 1e-3,
                "mismatch on {shape}: {}",
                max_cdiff(&c, &reference)
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        let engine = FftEngine::new();
        for shape in [Vec3::new(8, 4, 6), Vec3::new(1, 16, 16), Vec3::cube(5)] {
            let img = ops::random(shape, 3);
            let mut c = ops::to_complex(&img);
            engine.fft3(&mut c);
            engine.ifft3(&mut c);
            let back = ops::to_real(&c);
            assert!(back.max_abs_diff(&img) < 1e-5, "round trip failed {shape}");
        }
    }

    #[test]
    fn dc_bin_is_total_mass() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(4), 9);
        let mut c = ops::to_complex(&img);
        engine.fft3(&mut c);
        let dc = c.at((0, 0, 0));
        assert!((dc.re - img.sum()).abs() < 1e-4);
        assert!(dc.im.abs() < 1e-4);
    }

    #[test]
    fn plans_are_cached_per_length_and_direction() {
        let engine = FftEngine::new();
        let mut a = ops::to_complex(&ops::random(Vec3::cube(8), 1));
        engine.fft3(&mut a);
        // one length (8) appears for all three axes -> 1 forward plan
        assert_eq!(engine.cached_plans(), 1);
        engine.ifft3(&mut a);
        assert_eq!(engine.cached_plans(), 2);
        let mut b = ops::to_complex(&ops::random(Vec3::new(4, 8, 16), 1));
        engine.fft3(&mut b);
        assert_eq!(engine.cached_plans(), 4); // +4 fwd, 8 already cached
    }

    #[test]
    fn unit_axes_are_identity() {
        // 2D images (leading axis 1) must transform exactly like 2D FFTs
        let engine = FftEngine::new();
        let img = ops::random(Vec3::flat(4, 4), 5);
        let mut c = ops::to_complex(&img);
        engine.fft3(&mut c);
        let reference = dft3_naive(&ops::to_complex(&img));
        assert!(max_cdiff(&c, &reference) < 1e-3);
    }

    #[test]
    fn rfft3_matches_c2c_on_even_odd_and_unit_axes() {
        // parity with both the c2c engine and (through it) the naive
        // DFT, on even/odd packed extents, volumes, flat 2D (packed
        // along y) and 1D rows (packed along x)
        let engine = FftEngine::new();
        for shape in [
            Vec3::cube(8),                // even z
            Vec3::new(4, 6, 10),          // even z, mixed extents
            Vec3::new(4, 3, 5),           // odd z
            Vec3::new(3, 4, 7),           // odd prime z
            Vec3::new(5, 5, 1),           // flat, odd y (fallback)
            Vec3::new(5, 6, 1),           // flat, even y (packed)
            Vec3::new(1, 8, 6),           // unit x
            Vec3::new(1, 1, 2),           // minimal even line
            Vec3::flat(6, 9),             // flat 2D, odd y
            Vec3::new(6, 1, 1),           // 1D row, packed along x
            Vec3::one(),                  // single voxel
        ] {
            let img = ops::random(shape, 21);
            let got = engine.rfft3(&img);
            assert_eq!(got.full_shape(), shape);
            assert_eq!(got.half().shape(), Spectrum::half_shape(shape));
            let mut full = ops::to_complex(&img);
            engine.fft3(&mut full);
            let want = truncate_to_half(&full);
            assert!(
                max_cdiff(got.half(), &want) < 1e-3,
                "r2c mismatch on {shape}: {}",
                max_cdiff(got.half(), &want)
            );
        }
    }

    #[test]
    fn irfft3_round_trips_rfft3() {
        let engine = FftEngine::new();
        for shape in [
            Vec3::cube(8),
            Vec3::new(4, 6, 10),
            Vec3::new(4, 3, 5),
            Vec3::new(5, 5, 1),
            Vec3::new(5, 6, 1),
            Vec3::new(1, 16, 16),
            Vec3::new(2, 2, 2),
            Vec3::cube(5),
            Vec3::new(6, 1, 1),
            Vec3::one(),
        ] {
            let img = ops::random(shape, 31);
            let back = engine.irfft3(engine.rfft3(&img));
            assert!(
                back.max_abs_diff(&img) < 1e-5,
                "r2c round trip failed {shape}: {}",
                back.max_abs_diff(&img)
            );
        }
    }

    #[test]
    fn rfft3_dc_bin_is_total_mass() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::new(4, 6, 8), 41);
        let spec = engine.rfft3(&img);
        let dc = spec.half().at((0, 0, 0));
        assert!((dc.re - img.sum()).abs() < 1e-4);
        assert!(dc.im.abs() < 1e-4);
    }

    #[test]
    fn forward_padded_matches_c2c_truncation() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(3), 2);
        for shape in [Vec3::cube(8), Vec3::new(6, 4, 10), Vec3::new(9, 5, 3)] {
            let a = engine.forward_padded(&img, shape);
            let b = engine.forward_padded_c2c(&img, shape);
            assert!(max_cdiff(a.half(), &truncate_to_half(&b)) < 1e-3, "{shape}");
        }
    }

    #[test]
    fn forward_padded_equals_manual_pad_then_rfft3() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(3), 2);
        let shape = Vec3::cube(8);
        let a = engine.forward_padded(&img, shape);
        let b = engine.rfft3(&znn_tensor::pad::pad(&img, shape, Vec3::zero()));
        assert!(max_cdiff(a.half(), b.half()) == 0.0);
    }

    #[test]
    fn inverse_real_crops_like_c2c() {
        let engine = FftEngine::new();
        let m = Vec3::cube(8);
        let img = ops::random(m, 55);
        let spec = engine.rfft3(&img);
        let c2c = engine.forward_padded_c2c(&img, m);
        let at = Vec3::new(2, 1, 0);
        let shape = Vec3::new(4, 5, 6);
        let a = engine.inverse_real(spec, at, shape);
        let b = engine.inverse_real_c2c(c2c, at, shape);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn set_threads_retunes_live_engine_bitwise_safely() {
        // a planner re-tuning the fan-out mid-run must never change a
        // computed bit — transform at 1, re-tune to 4, transform again
        let engine = FftEngine::with_threads(1);
        let img = ops::random(Vec3::cube(24), 9);
        let before = engine.rfft3(&img);
        engine.set_threads(4);
        assert_eq!(engine.threads(), 4);
        let after = engine.rfft3(&img);
        assert!(max_cdiff(before.half(), after.half()) == 0.0);
        engine.set_threads(0); // clamps to 1
        assert_eq!(engine.threads(), 1);
    }

    #[test]
    fn multi_threaded_transforms_match_single_threaded_bitwise() {
        // the tentpole determinism contract: line chunking across
        // workers must not change a single bit of any transform — 32³ is
        // above the parallel threshold, so the 4-thread engine really
        // splits (scoped workers run even on a 1-core host)
        let serial = FftEngine::with_threads(1);
        let parallel = FftEngine::with_threads(4);
        assert_eq!(serial.threads(), 1);
        assert_eq!(parallel.threads(), 4);
        for shape in [Vec3::cube(32), Vec3::new(16, 32, 64), Vec3::new(128, 130, 1)] {
            let img = ops::random(shape, 91);
            let s_spec = serial.rfft3(&img);
            let p_spec = parallel.rfft3(&img);
            assert!(
                max_cdiff(s_spec.half(), p_spec.half()) == 0.0,
                "forward drift on {shape}"
            );
            let s_back = serial.irfft3(s_spec);
            let p_back = parallel.irfft3(p_spec);
            assert!(
                s_back.max_abs_diff(&p_back) == 0.0,
                "inverse drift on {shape}"
            );
            // and the c2c pipeline
            let mut s_c = ops::to_complex(&img);
            let mut p_c = ops::to_complex(&img);
            serial.fft3(&mut s_c);
            parallel.fft3(&mut p_c);
            assert!(max_cdiff(&s_c, &p_c) == 0.0, "c2c drift on {shape}");
        }
    }

    #[test]
    fn recursive_kernel_engine_matches_the_iterative_one() {
        // the fft_traffic baseline: forcing every line plan onto the
        // recursive fallback must change speed, never values beyond
        // rounding — on 5-smooth non-2^k shapes where the two engines
        // genuinely plan different kernels
        let iter = FftEngine::with_threads(1);
        let rec = FftEngine::with_recursive_kernels();
        for shape in [Vec3::cube(12), Vec3::new(24, 30, 20), Vec3::cube(15)] {
            let img = ops::random(shape, 67);
            let a = iter.rfft3(&img);
            let b = rec.rfft3(&img);
            assert!(
                max_cdiff(a.half(), b.half()) < 1e-3,
                "kernel families disagree on {shape}"
            );
            let back = rec.irfft3(b);
            assert!(back.max_abs_diff(&img) < 1e-5, "recursive round trip {shape}");
        }
    }

    #[test]
    fn flat_images_pack_along_y() {
        // the mz == 1 fast path: an even y extent gets a true half
        // spectrum (y bins 0..=my/2) and round-trips
        let engine = FftEngine::new();
        let shape = Vec3::new(7, 10, 1);
        let img = ops::random(shape, 77);
        let spec = engine.rfft3(&img);
        assert_eq!(spec.half().shape(), Vec3::new(7, 6, 1));
        assert!(spec.stored_bins() < shape.len());
        let back = engine.irfft3(spec);
        assert!(back.max_abs_diff(&img) < 1e-5);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = std::sync::Arc::new(FftEngine::new());
        let handles: Vec<_> = (0..4)
            .map(|seed| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || {
                    let img = ops::random(Vec3::cube(8), seed);
                    let back = engine.irfft3(engine.rfft3(&img));
                    assert!(back.max_abs_diff(&img) < 1e-5);
                    let mut c = ops::to_complex(&img);
                    engine.fft3(&mut c);
                    engine.ifft3(&mut c);
                    assert!(ops::to_real(&c).max_abs_diff(&img) < 1e-5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_plan_misses_build_one_plan() {
        // the entry()-based plan cache must hand every racing thread
        // the same plan and count it once
        let engine = std::sync::Arc::new(FftEngine::new());
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let img = ops::random(Vec3::cube(12), 7);
                    let _ = engine.rfft3(&img);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // lengths planned: 6 (packed z), 12 (y/x) forward -> exactly 2
        assert_eq!(engine.cached_plans(), 2);
    }
}
