//! The 3D FFT engine and its plan cache.

use parking_lot::Mutex;
use rustfft::{Fft, FftPlanner};
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;
use znn_tensor::lines::{Axis, LineSpec};
use znn_tensor::{ops, CImage, Complex32, Image, Spectrum, Vec3};

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Dir {
    Fwd,
    Inv,
}

thread_local! {
    /// Per-thread scratch reused across every transform this thread
    /// runs: FFT in-place scratch, a line gather buffer, and the packed
    /// z-line buffer of the r2c/c2r stages. Transforms are hot (one per
    /// image per pass) — allocating these per call was measurable.
    static SCRATCH: RefCell<ScratchBuffers> = RefCell::new(ScratchBuffers::default());
}

#[derive(Default)]
struct ScratchBuffers {
    /// `Fft::process_with_scratch` scratch.
    plan: Vec<Complex32>,
    /// Gathered strided line (x/y axes) or packed z-line.
    line: Vec<Complex32>,
}

/// Grows (never shrinks) `buf` to `n` elements and returns the prefix.
fn borrow_buf(buf: &mut Vec<Complex32>, n: usize) -> &mut [Complex32] {
    if buf.len() < n {
        buf.resize(n, Complex32::default());
    }
    &mut buf[..n]
}

/// Plan cache: one planned 1D transform per (line length, direction).
type PlanMap = HashMap<(usize, Dir), Arc<dyn Fft<f32>>>;
/// r2c twiddle cache: one table per (z extent, direction).
type TwiddleMap = HashMap<(usize, Dir), Arc<Vec<Complex32>>>;

/// A 3D FFT for real-valued images, built from cached 1D `rustfft`
/// plans.
///
/// The engine is cheap to share (`Arc<FftEngine>`) and thread-safe: the
/// plan cache is behind a mutex that is only touched on cache misses;
/// the transforms themselves run lock-free on caller-owned buffers plus
/// per-thread scratch.
///
/// Two transform families are exposed:
///
/// * **r2c / c2r** ([`FftEngine::rfft3`], [`FftEngine::irfft3`] and the
///   staged [`FftEngine::forward_padded`] / [`FftEngine::inverse_real`])
///   — the production path. Real input makes the spectrum Hermitian, so
///   only `⌊m_z/2⌋+1` z-bins are stored ([`Spectrum`]); the z-stage
///   packs each real line into a half-length complex line (even/odd
///   trick), so z transforms also cost half the FLOPs.
/// * **c2c** ([`FftEngine::fft3`], [`FftEngine::ifft3`]) — full complex
///   transforms, kept for parity tests and as the r2c baseline.
///
/// Transforms are decomposed per axis. Lines along the fastest (`z`)
/// axis are processed in place on the contiguous buffer; `x`/`y` lines
/// are gathered into per-thread scratch, transformed, and scattered
/// back.
pub struct FftEngine {
    planner: Mutex<FftPlanner<f32>>,
    plans: Mutex<PlanMap>,
    /// Memoized unpack/repack twiddles `e^{∓2πik/n}`, `k ∈ 0..⌊n/2⌋+1`,
    /// for the r2c/c2r z-stages, keyed by `(n, direction)`.
    rtwiddles: Mutex<TwiddleMap>,
}

impl FftEngine {
    /// A new engine with an empty plan cache.
    pub fn new() -> Self {
        FftEngine {
            planner: Mutex::new(FftPlanner::new()),
            plans: Mutex::new(HashMap::new()),
            rtwiddles: Mutex::new(HashMap::new()),
        }
    }

    fn plan(&self, len: usize, dir: Dir) -> Arc<dyn Fft<f32>> {
        // single lock pass: concurrent misses for the same key build the
        // plan once — the loser of the entry race never plans at all
        let mut plans = self.plans.lock();
        match plans.entry((len, dir)) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(e) => {
                let mut planner = self.planner.lock();
                let plan = match dir {
                    Dir::Fwd => planner.plan_fft_forward(len),
                    Dir::Inv => planner.plan_fft_inverse(len),
                };
                Arc::clone(e.insert(plan))
            }
        }
    }

    /// Half-spectrum twiddles `e^{sign·2πik/n}` for `k ∈ 0..⌊n/2⌋+1`.
    fn rtwiddle(&self, n: usize, dir: Dir) -> Arc<Vec<Complex32>> {
        let mut cache = self.rtwiddles.lock();
        match cache.entry((n, dir)) {
            Entry::Occupied(e) => Arc::clone(e.get()),
            Entry::Vacant(e) => {
                let sign = match dir {
                    Dir::Fwd => -1.0f64,
                    Dir::Inv => 1.0f64,
                };
                let tw: Vec<Complex32> = (0..n / 2 + 1)
                    .map(|k| {
                        let ang = sign * 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                        Complex32::new(ang.cos() as f32, ang.sin() as f32)
                    })
                    .collect();
                Arc::clone(e.insert(Arc::new(tw)))
            }
        }
    }

    /// Number of distinct 1D plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.lock().len()
    }

    fn transform_axis(&self, t: &mut CImage, axis: Axis, dir: Dir) {
        let shape = t.shape();
        let len = shape[axis as usize];
        if len == 1 {
            return; // a length-1 DFT is the identity
        }
        let plan = self.plan(len, dir);
        SCRATCH.with(|s| {
            let s = &mut *s.borrow_mut();
            let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len());
            if axis == Axis::Z {
                // contiguous lines: process the whole buffer in chunks of len
                plan.process_with_scratch(t.as_mut_slice(), scratch);
                return;
            }
            let spec = LineSpec::new(shape, axis);
            let buf = borrow_buf(&mut s.line, spec.len);
            for i in 0..spec.count {
                spec.read_line(t, i, buf);
                plan.process_with_scratch(buf, scratch);
                spec.write_line(t, i, buf);
            }
        });
    }

    /// In-place forward 3D FFT (unnormalized, like fftw/MKL).
    pub fn fft3(&self, t: &mut CImage) {
        for axis in Axis::ALL {
            self.transform_axis(t, axis, Dir::Fwd);
        }
    }

    /// In-place inverse 3D FFT, normalized so `ifft3(fft3(x)) == x`.
    pub fn ifft3(&self, t: &mut CImage) {
        for axis in Axis::ALL {
            self.transform_axis(t, axis, Dir::Inv);
        }
        ops::scale_c(t, 1.0 / t.len() as f32);
    }

    /// Forward real-to-complex 3D FFT of `img` (unnormalized): the
    /// half-spectrum holding z-bins `0..=⌊m_z/2⌋` of the full DFT.
    ///
    /// The z-stage exploits Hermitian symmetry: an even-length real
    /// line of `m_z` samples is packed as `⌊m_z/2⌋` complex samples
    /// (`z[t] = x[2t] + i·x[2t+1]`), transformed at half length, and
    /// unpacked into `⌊m_z/2⌋+1` bins — half the z FLOPs and half the
    /// spectrum memory of the c2c path. Odd z extents fall back to a
    /// full-length transform per line, truncated to the stored bins
    /// (`good_shape` keeps z even, so this path is cold). The remaining
    /// `y`/`x` stages are c2c transforms over the (already halved)
    /// packed tensor.
    pub fn rfft3(&self, img: &Image) -> Spectrum {
        let m = img.shape();
        let mz = m[2];
        let h = mz / 2 + 1;
        let mut half = CImage::zeros(Spectrum::half_shape(m));
        let lines = m[0] * m[1];
        if mz == 1 {
            for (d, s) in half.as_mut_slice().iter_mut().zip(img.as_slice()) {
                *d = Complex32::new(*s, 0.0);
            }
        } else if mz.is_multiple_of(2) {
            let hz = mz / 2;
            let plan = (hz > 1).then(|| self.plan(hz, Dir::Fwd));
            let tw = self.rtwiddle(mz, Dir::Fwd);
            SCRATCH.with(|s| {
                let s = &mut *s.borrow_mut();
                let scratch = borrow_buf(
                    &mut s.plan,
                    plan.as_ref().map_or(0, |p| p.get_inplace_scratch_len()),
                );
                let buf = borrow_buf(&mut s.line, hz);
                for i in 0..lines {
                    let src = &img.as_slice()[i * mz..(i + 1) * mz];
                    for (t, b) in buf.iter_mut().enumerate() {
                        *b = Complex32::new(src[2 * t], src[2 * t + 1]);
                    }
                    if let Some(p) = &plan {
                        p.process_with_scratch(buf, scratch);
                    }
                    let dst = &mut half.as_mut_slice()[i * h..(i + 1) * h];
                    for (k, d) in dst.iter_mut().enumerate() {
                        let zk = buf[k % hz];
                        let zc = buf[(hz - k) % hz].conj();
                        let ze = (zk + zc) * 0.5;
                        let zo = (zk - zc) * Complex32::new(0.0, -0.5);
                        *d = ze + tw[k] * zo;
                    }
                }
            });
        } else {
            let plan = self.plan(mz, Dir::Fwd);
            SCRATCH.with(|s| {
                let s = &mut *s.borrow_mut();
                let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len());
                let buf = borrow_buf(&mut s.line, mz);
                for i in 0..lines {
                    let src = &img.as_slice()[i * mz..(i + 1) * mz];
                    for (b, v) in buf.iter_mut().zip(src) {
                        *b = Complex32::new(*v, 0.0);
                    }
                    plan.process_with_scratch(buf, scratch);
                    half.as_mut_slice()[i * h..(i + 1) * h].copy_from_slice(&buf[..h]);
                }
            });
        }
        self.transform_axis(&mut half, Axis::Y, Dir::Fwd);
        self.transform_axis(&mut half, Axis::X, Dir::Fwd);
        Spectrum::new(half, m)
    }

    /// Inverse of [`FftEngine::rfft3`], normalized so
    /// `irfft3(rfft3(x)) == x`. Consumes the spectrum (the inverse is
    /// computed in place on its buffer).
    pub fn irfft3(&self, spec: Spectrum) -> Image {
        let m = spec.full_shape();
        let mz = m[2];
        let h = mz / 2 + 1;
        let mut half = spec.into_half();
        self.transform_axis(&mut half, Axis::X, Dir::Inv);
        self.transform_axis(&mut half, Axis::Y, Dir::Inv);
        let mut out = Image::zeros(m);
        let lines = m[0] * m[1];
        // the x/y inverse stages above are unnormalized (m_x·m_y), the
        // z-stage below contributes hz (even), mz (odd) or 1 (unit)
        let zfac = if mz == 1 {
            1
        } else if mz.is_multiple_of(2) {
            mz / 2
        } else {
            mz
        };
        let scale = 1.0 / (m[0] * m[1] * zfac) as f32;
        if mz == 1 {
            for (d, s) in out.as_mut_slice().iter_mut().zip(half.as_slice()) {
                *d = s.re * scale;
            }
        } else if mz.is_multiple_of(2) {
            let hz = mz / 2;
            let plan = (hz > 1).then(|| self.plan(hz, Dir::Inv));
            let tw = self.rtwiddle(mz, Dir::Inv);
            SCRATCH.with(|s| {
                let s = &mut *s.borrow_mut();
                let scratch = borrow_buf(
                    &mut s.plan,
                    plan.as_ref().map_or(0, |p| p.get_inplace_scratch_len()),
                );
                let buf = borrow_buf(&mut s.line, hz);
                for i in 0..lines {
                    let src = &half.as_slice()[i * h..(i + 1) * h];
                    for (k, b) in buf.iter_mut().enumerate() {
                        let xk = src[k];
                        let xc = src[hz - k].conj();
                        let ze = (xk + xc) * 0.5;
                        let zo = (xk - xc) * 0.5 * tw[k];
                        // z[k] = ze + i·zo repacks even/odd interleaving
                        *b = Complex32::new(ze.re - zo.im, ze.im + zo.re);
                    }
                    if let Some(p) = &plan {
                        p.process_with_scratch(buf, scratch);
                    }
                    let dst = &mut out.as_mut_slice()[i * mz..(i + 1) * mz];
                    for (t, b) in buf.iter().enumerate() {
                        dst[2 * t] = b.re * scale;
                        dst[2 * t + 1] = b.im * scale;
                    }
                }
            });
        } else {
            let plan = self.plan(mz, Dir::Inv);
            SCRATCH.with(|s| {
                let s = &mut *s.borrow_mut();
                let scratch = borrow_buf(&mut s.plan, plan.get_inplace_scratch_len());
                let buf = borrow_buf(&mut s.line, mz);
                for i in 0..lines {
                    let src = &half.as_slice()[i * h..(i + 1) * h];
                    buf[..h].copy_from_slice(src);
                    // Hermitian reconstruction of the dropped bins
                    for k in 1..h {
                        buf[mz - k] = src[k].conj();
                    }
                    plan.process_with_scratch(buf, scratch);
                    let dst = &mut out.as_mut_slice()[i * mz..(i + 1) * mz];
                    for (d, b) in dst.iter_mut().zip(buf.iter()) {
                        *d = b.re * scale;
                    }
                }
            });
        }
        out
    }

    /// The forward transform of the staged convolution API: zero-pads a
    /// real image to `shape` (placing it at the origin) and takes its
    /// r2c transform.
    ///
    /// This is the per-node transform that convergent edges share (§IV);
    /// each memoized result is a [`Spectrum`] occupying roughly half the
    /// memory of the full complex transform.
    pub fn forward_padded(&self, img: &Image, shape: Vec3) -> Spectrum {
        assert!(
            img.shape().le(shape),
            "image {} does not fit transform shape {shape}",
            img.shape()
        );
        if img.shape() == shape {
            self.rfft3(img)
        } else {
            self.rfft3(&znn_tensor::pad::pad(img, shape, Vec3::zero()))
        }
    }

    /// c2c variant of [`FftEngine::forward_padded`], kept as the parity
    /// baseline (tests, benches, autotune comparisons).
    pub fn forward_padded_c2c(&self, img: &Image, shape: Vec3) -> CImage {
        assert!(
            img.shape().le(shape),
            "image {} does not fit transform shape {shape}",
            img.shape()
        );
        let mut c = if img.shape() == shape {
            ops::to_complex(img)
        } else {
            ops::to_complex(&znn_tensor::pad::pad(img, shape, Vec3::zero()))
        };
        self.fft3(&mut c);
        c
    }

    /// The inverse stage: transforms a frequency-domain accumulator back
    /// and extracts the real box of `shape` at `at` — the crop that turns
    /// circular convolution into valid/full linear convolution.
    pub fn inverse_real(&self, spec: Spectrum, at: Vec3, shape: Vec3) -> Image {
        let real = self.irfft3(spec);
        if at == Vec3::zero() && shape == real.shape() {
            real
        } else {
            znn_tensor::pad::crop(&real, at, shape)
        }
    }

    /// c2c variant of [`FftEngine::inverse_real`], kept as the parity
    /// baseline.
    pub fn inverse_real_c2c(&self, mut spec: CImage, at: Vec3, shape: Vec3) -> Image {
        self.ifft3(&mut spec);
        let real = ops::to_real(&spec);
        if at == Vec3::zero() && shape == real.shape() {
            real
        } else {
            znn_tensor::pad::crop(&real, at, shape)
        }
    }
}

impl Default for FftEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference DFT along one axis for validation.
    fn dft_axis_naive(t: &CImage, axis: Axis, inverse: bool) -> CImage {
        let shape = t.shape();
        let n = shape[axis as usize];
        let sign = if inverse { 1.0 } else { -1.0 };
        let mut out = t.clone();
        let spec = LineSpec::new(shape, axis);
        let mut line = vec![Complex32::default(); n];
        for i in 0..spec.count {
            spec.read_line(t, i, &mut line);
            let mut res = vec![Complex32::default(); n];
            for (k, r) in res.iter_mut().enumerate() {
                for (j, &v) in line.iter().enumerate() {
                    let ang = sign * 2.0 * std::f32::consts::PI * (k * j) as f32 / n as f32;
                    *r += v * Complex32::new(ang.cos(), ang.sin());
                }
            }
            spec.write_line(&mut out, i, &res);
        }
        out
    }

    fn dft3_naive(t: &CImage) -> CImage {
        let mut out = t.clone();
        for axis in Axis::ALL {
            out = dft_axis_naive(&out, axis, false);
        }
        out
    }

    fn max_cdiff(a: &CImage, b: &CImage) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f32::max)
    }

    /// The half-spectrum a c2c transform implies: z-bins `0..=⌊m_z/2⌋`.
    fn truncate_to_half(full: &CImage) -> CImage {
        let m = full.shape();
        let hs = Spectrum::half_shape(m);
        znn_tensor::Tensor3::from_fn(hs, |f| full.at(f))
    }

    #[test]
    fn fft3_matches_naive_dft_on_odd_shapes() {
        for shape in [Vec3::new(4, 3, 5), Vec3::new(1, 8, 2), Vec3::cube(6)] {
            let img = ops::random(shape, 11);
            let mut c = ops::to_complex(&img);
            let engine = FftEngine::new();
            engine.fft3(&mut c);
            let reference = dft3_naive(&ops::to_complex(&img));
            assert!(
                max_cdiff(&c, &reference) < 1e-3,
                "mismatch on {shape}: {}",
                max_cdiff(&c, &reference)
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        let engine = FftEngine::new();
        for shape in [Vec3::new(8, 4, 6), Vec3::new(1, 16, 16), Vec3::cube(5)] {
            let img = ops::random(shape, 3);
            let mut c = ops::to_complex(&img);
            engine.fft3(&mut c);
            engine.ifft3(&mut c);
            let back = ops::to_real(&c);
            assert!(back.max_abs_diff(&img) < 1e-5, "round trip failed {shape}");
        }
    }

    #[test]
    fn dc_bin_is_total_mass() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(4), 9);
        let mut c = ops::to_complex(&img);
        engine.fft3(&mut c);
        let dc = c.at((0, 0, 0));
        assert!((dc.re - img.sum()).abs() < 1e-4);
        assert!(dc.im.abs() < 1e-4);
    }

    #[test]
    fn plans_are_cached_per_length_and_direction() {
        let engine = FftEngine::new();
        let mut a = ops::to_complex(&ops::random(Vec3::cube(8), 1));
        engine.fft3(&mut a);
        // one length (8) appears for all three axes -> 1 forward plan
        assert_eq!(engine.cached_plans(), 1);
        engine.ifft3(&mut a);
        assert_eq!(engine.cached_plans(), 2);
        let mut b = ops::to_complex(&ops::random(Vec3::new(4, 8, 16), 1));
        engine.fft3(&mut b);
        assert_eq!(engine.cached_plans(), 4); // +4 fwd, 8 already cached
    }

    #[test]
    fn unit_axes_are_identity() {
        // 2D images (leading axis 1) must transform exactly like 2D FFTs
        let engine = FftEngine::new();
        let img = ops::random(Vec3::flat(4, 4), 5);
        let mut c = ops::to_complex(&img);
        engine.fft3(&mut c);
        let reference = dft3_naive(&ops::to_complex(&img));
        assert!(max_cdiff(&c, &reference) < 1e-3);
    }

    #[test]
    fn rfft3_matches_c2c_on_even_odd_and_unit_z() {
        // parity with both the c2c engine and (through it) the naive
        // DFT, on even z, odd z, unit z, and flat 2D shapes
        let engine = FftEngine::new();
        for shape in [
            Vec3::cube(8),                // even z
            Vec3::new(4, 6, 10),          // even z, mixed extents
            Vec3::new(4, 3, 5),           // odd z
            Vec3::new(3, 4, 7),           // odd prime z
            Vec3::new(5, 5, 1),           // unit z
            Vec3::new(1, 8, 6),           // unit x
            Vec3::new(1, 1, 2),           // minimal even line
            Vec3::flat(6, 9),             // flat 2D
        ] {
            let img = ops::random(shape, 21);
            let got = engine.rfft3(&img);
            assert_eq!(got.full_shape(), shape);
            assert_eq!(got.half().shape(), Spectrum::half_shape(shape));
            let mut full = ops::to_complex(&img);
            engine.fft3(&mut full);
            let want = truncate_to_half(&full);
            assert!(
                max_cdiff(got.half(), &want) < 1e-3,
                "r2c mismatch on {shape}: {}",
                max_cdiff(got.half(), &want)
            );
        }
    }

    #[test]
    fn irfft3_round_trips_rfft3() {
        let engine = FftEngine::new();
        for shape in [
            Vec3::cube(8),
            Vec3::new(4, 6, 10),
            Vec3::new(4, 3, 5),
            Vec3::new(5, 5, 1),
            Vec3::new(1, 16, 16),
            Vec3::new(2, 2, 2),
            Vec3::cube(5),
        ] {
            let img = ops::random(shape, 31);
            let back = engine.irfft3(engine.rfft3(&img));
            assert!(
                back.max_abs_diff(&img) < 1e-5,
                "r2c round trip failed {shape}: {}",
                back.max_abs_diff(&img)
            );
        }
    }

    #[test]
    fn rfft3_dc_bin_is_total_mass() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::new(4, 6, 8), 41);
        let spec = engine.rfft3(&img);
        let dc = spec.half().at((0, 0, 0));
        assert!((dc.re - img.sum()).abs() < 1e-4);
        assert!(dc.im.abs() < 1e-4);
    }

    #[test]
    fn forward_padded_matches_c2c_truncation() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(3), 2);
        for shape in [Vec3::cube(8), Vec3::new(6, 4, 10), Vec3::new(9, 5, 3)] {
            let a = engine.forward_padded(&img, shape);
            let b = engine.forward_padded_c2c(&img, shape);
            assert!(max_cdiff(a.half(), &truncate_to_half(&b)) < 1e-3, "{shape}");
        }
    }

    #[test]
    fn forward_padded_equals_manual_pad_then_rfft3() {
        let engine = FftEngine::new();
        let img = ops::random(Vec3::cube(3), 2);
        let shape = Vec3::cube(8);
        let a = engine.forward_padded(&img, shape);
        let b = engine.rfft3(&znn_tensor::pad::pad(&img, shape, Vec3::zero()));
        assert!(max_cdiff(a.half(), b.half()) == 0.0);
    }

    #[test]
    fn inverse_real_crops_like_c2c() {
        let engine = FftEngine::new();
        let m = Vec3::cube(8);
        let img = ops::random(m, 55);
        let spec = engine.rfft3(&img);
        let c2c = engine.forward_padded_c2c(&img, m);
        let at = Vec3::new(2, 1, 0);
        let shape = Vec3::new(4, 5, 6);
        let a = engine.inverse_real(spec, at, shape);
        let b = engine.inverse_real_c2c(c2c, at, shape);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let engine = std::sync::Arc::new(FftEngine::new());
        let handles: Vec<_> = (0..4)
            .map(|seed| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || {
                    let img = ops::random(Vec3::cube(8), seed);
                    let back = engine.irfft3(engine.rfft3(&img));
                    assert!(back.max_abs_diff(&img) < 1e-5);
                    let mut c = ops::to_complex(&img);
                    engine.fft3(&mut c);
                    engine.ifft3(&mut c);
                    assert!(ops::to_real(&c).max_abs_diff(&img) < 1e-5);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_plan_misses_build_one_plan() {
        // the entry()-based plan cache must hand every racing thread
        // the same plan and count it once
        let engine = std::sync::Arc::new(FftEngine::new());
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let img = ops::random(Vec3::cube(12), 7);
                    let _ = engine.rfft3(&img);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // lengths planned: 6 (packed z), 12 (y/x) forward -> exactly 2
        assert_eq!(engine.cached_plans(), 2);
    }
}
