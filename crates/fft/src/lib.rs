//! 3D FFT and frequency-domain convolution machinery (ZNN paper §IV).
//!
//! ZNN chooses per layer between direct and FFT convolution. The FFT
//! path wins for ConvNets earlier than for single convolutions because
//! the transform of an image at a node is **shared** by every edge at
//! that node, and transforms computed in the forward pass are
//! **memoized** for the backward and update passes (Table II). This
//! crate provides the pieces that make that sharing expressible.
//!
//! # Real-to-complex transforms and the half-spectrum layout
//!
//! Every image entering a transform here is *real*, so its DFT is
//! Hermitian: `X[−f] = conj(X[f])`. The engine exploits this the same
//! way FFTW/MKL r2c plans do:
//!
//! * **Storage.** A spectrum is a [`znn_tensor::Spectrum`]: the z-bins
//!   `0..=⌊m_z/2⌋` of the full transform (`⌊m_z/2⌋+1` complex values
//!   per z-line) plus the logical full shape. The dropped bins are
//!   implied by symmetry. This halves the size of every memoized
//!   spectrum — the paper's main RAM consumer (§IV).
//! * **Compute.** The z-stage packs each even-length real line of
//!   `m_z` samples into `m_z/2` complex samples
//!   (`z[t] = x[2t] + i·x[2t+1]`), runs a half-length complex FFT, and
//!   unpacks with one twiddle pass — ~2× fewer z FLOPs. The `y`/`x`
//!   stages are ordinary c2c line transforms over the already-halved
//!   tensor, so they also do half the work of the c2c pipeline.
//! * **Padding discipline.** Transform shapes come from
//!   [`good_shape`]: 5-smooth per axis, and *even* on `z`
//!   ([`good_size_even`]) so the packed z-stage always applies and the
//!   half-spectrum is tight. Odd z extents still work (a full-length
//!   fallback per line, truncated to the stored bins) — they are just
//!   slower, and `good_shape` avoids them. Unit axes are never
//!   inflated: a `z`-extent of 1 stays 1 (identity transform).
//! * **Frequency-domain algebra.** Sums and pointwise products of
//!   real-image spectra are still spectra of real images (Hermitian
//!   symmetry is closed under both), so convergent-edge accumulation,
//!   [`spectra::flip_spectrum`], and [`spectra::corr_spectrum`] all
//!   operate directly on half-spectra at half cost.
//!
//! The staged API (`forward_padded` → pointwise multiply-accumulate in
//! `znn_tensor::ops` (`mul_s`, `mul_add_assign_s`, `add_assign_s`) →
//! `inverse_real`) lets callers accumulate convergent convolutions
//! **in the frequency domain** and pay one inverse transform per node
//! rather than one per edge — exactly the `f' + f + f'·f` term
//! structure of Table II. Full c2c transforms ([`FftEngine::fft3`] /
//! [`FftEngine::ifft3`], plus `*_c2c` staged variants) are retained as
//! the parity baseline for tests and benchmarks.
//!
//! The paper used MKL/fftw; the planned-1D-transform decomposition here
//! replaces them (see DESIGN.md — same asymptotics, different
//! constant).

#![warn(missing_docs)]

mod conv;
mod engine;
mod size;
pub mod spectra;

pub use conv::{fft_conv_full, fft_conv_valid, fft_xcorr_valid};
pub use engine::FftEngine;
pub use size::{good_shape, good_size, good_size_even};
