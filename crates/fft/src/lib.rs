//! 3D FFT and frequency-domain convolution machinery (ZNN paper §IV).
//!
//! ZNN chooses per layer between direct and FFT convolution. The FFT
//! path wins for ConvNets earlier than for single convolutions because
//! the transform of an image at a node is **shared** by every edge at
//! that node, and transforms computed in the forward pass are
//! **memoized** for the backward and update passes (Table II). This
//! crate provides the pieces that make that sharing expressible:
//!
//! * [`FftEngine`] — a 3D complex FFT decomposed into per-axis 1D
//!   transforms, with a cache of [`rustfft`] plans keyed by line length,
//! * [`good_size`] / [`good_shape`] — 5-smooth transform sizes,
//! * padded forward transforms and crop-on-inverse helpers that give
//!   *valid* and *full* linear convolution semantics on top of the
//!   circular convolution the FFT computes,
//! * a staged API (`forward_padded` → pointwise multiply-accumulate in
//!   `znn_tensor::ops` → `inverse_real`) so callers can accumulate
//!   convergent convolutions **in the frequency domain** and pay one
//!   inverse transform per node rather than one per edge — exactly the
//!   `f' + f + f'·f` term structure of Table II.
//!
//! The paper used MKL/fftw; `rustfft` replaces them (see DESIGN.md —
//! same asymptotics, different constant).

#![warn(missing_docs)]

mod conv;
mod engine;
mod size;
pub mod spectra;

pub use conv::{fft_conv_full, fft_conv_valid, fft_xcorr_valid};
pub use engine::FftEngine;
pub use size::{good_shape, good_size};
