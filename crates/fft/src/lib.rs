//! 3D FFT and frequency-domain convolution machinery (ZNN paper §IV).
//!
//! ZNN chooses per layer between direct and FFT convolution. The FFT
//! path wins for ConvNets earlier than for single convolutions because
//! the transform of an image at a node is **shared** by every edge at
//! that node, and transforms computed in the forward pass are
//! **memoized** for the backward and update passes (Table II). This
//! crate provides the pieces that make that sharing expressible.
//!
//! # Real-to-complex transforms and the half-spectrum layout
//!
//! Every image entering a transform here is *real*, so its DFT is
//! Hermitian: `X[−f] = conj(X[f])`. The engine exploits this the same
//! way FFTW/MKL r2c plans do:
//!
//! * **Storage.** A spectrum is a [`znn_tensor::Spectrum`]: the bins
//!   `0..=⌊m/2⌋` along the *packed axis* (`⌊m/2⌋+1` complex values per
//!   line) plus the logical full shape. The packed axis is the last
//!   non-unit axis — `z` for volumes, `y` for flat `m_z == 1` images —
//!   so 2D workloads get the same halving as 3D ones. The dropped bins
//!   are implied by symmetry. This halves the size of every memoized
//!   spectrum — the paper's main RAM consumer (§IV).
//! * **Compute.** The packed stage turns each even-length real line of
//!   `m` samples into `m/2` complex samples
//!   (`z[t] = x[2t] + i·x[2t+1]`), runs a half-length complex FFT, and
//!   unpacks with one twiddle pass — ~2× fewer FLOPs on that stage. The
//!   remaining stages are ordinary c2c line transforms over the
//!   already-halved tensor, so they also do half the work of the c2c
//!   pipeline. The inverse consumes its spectrum *in place*: the c2r
//!   unpack writes each real line into the storage its complex bins
//!   occupied and compacts, so no output buffer is allocated per call.
//! * **Padding discipline.** Transform shapes come from
//!   [`good_shape`]: 5-smooth per axis, and *even* on the packed axis
//!   ([`good_size_even`]) so the packed stage always applies and the
//!   half-spectrum is tight. Odd packed extents still work (a
//!   full-length fallback per line, truncated to the stored bins) —
//!   they are just slower, and `good_shape` avoids them. Unit axes are
//!   never inflated: an extent of 1 stays 1 (identity transform).
//! * **Frequency-domain algebra.** Sums and pointwise products of
//!   real-image spectra are still spectra of real images (Hermitian
//!   symmetry is closed under both), so convergent-edge accumulation,
//!   [`spectra::flip_spectrum`], and [`spectra::corr_spectrum`] all
//!   operate directly on half-spectra at half cost.
//!
//! # Kernels and threading
//!
//! The 1D line transforms come from the vendored `rustfft` shim, which
//! routes **every 5-smooth length** (`2^a·3^b·5^c` — everything
//! [`good_shape`] produces) through **iterative mixed-radix Stockham
//! autosort kernels**: a stage planner factors the length into
//! hardcoded radix-4/3/5 butterflies plus one trailing radix-2 stage
//! for odd `log2` 2-parts, with per-stage twiddle tables and no
//! bit/digit-reversal pass. Only lengths with prime factors larger
//! than 5 — which `good_shape` never emits — take the recursive
//! mixed-radix fallback, whose naive-DFT base case stays cold. A 48³
//! transform (48 = 2⁴·3) and a 64³ transform are therefore both all
//! Stockham; [`FftEngine::with_recursive_kernels`] pins the old
//! fallback behaviour as the benchmark baseline.
//!
//! On top of the kernels, [`FftEngine`] splits every batched line loop
//! — the contiguous packed stage, the strided `x`/`y` stages, and the
//! r2c pack / c2r unpack — into up to [`FftEngine::threads`] chunks at
//! line granularity, queued on a **persistent fork-join pool** (the
//! vendored `rayon` shim): the engine's own shared pool
//! ([`FftEngine::with_pool`]) or the process-global one. No OS thread
//! is spawned per transform. Chunks run on pool workers, on the
//! calling thread (which executes pending chunks while waiting on the
//! scope), and on threads *donated* by an outer task scheduler —
//! `znn-core` pairs a donor-only pool with its `znn-sched` executor so
//! task- and line-parallelism share one thread budget. Scratch lives
//! in per-engine slots sized to the fan-out, chunk boundaries are a
//! pure function of the worker count, and each line's arithmetic is
//! chunk-independent, so threaded transforms are bit-for-bit equal to
//! single-threaded ones for every pool and worker count; see the
//! [threading model](FftEngine#threading-model) for ownership details.
//!
//! The staged API (`forward_padded` → pointwise multiply-accumulate in
//! `znn_tensor::ops` (`mul_s`, `mul_add_assign_s`, `add_assign_s`) →
//! `inverse_real`) lets callers accumulate convergent convolutions
//! **in the frequency domain** and pay one inverse transform per node
//! rather than one per edge — exactly the `f' + f + f'·f` term
//! structure of Table II. Full c2c transforms ([`FftEngine::fft3`] /
//! [`FftEngine::ifft3`], plus `*_c2c` staged variants) are retained as
//! the parity baseline for tests and benchmarks.
//!
//! The paper used MKL/fftw; the planned-1D-transform decomposition here
//! replaces them (see DESIGN.md — same asymptotics, different
//! constant).

#![warn(missing_docs)]

mod conv;
mod engine;
mod size;
pub mod spectra;

pub use conv::{fft_conv_full, fft_conv_valid, fft_xcorr_valid};
pub use engine::FftEngine;
pub use size::{good_shape, good_size, good_size_even, pow2_shape, pow2_size};
