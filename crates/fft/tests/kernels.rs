//! Differential pins for the FFT kernels underneath the engine.
//!
//! The vendored `rustfft` shim routes every 5-smooth length through
//! the iterative mixed-radix Stockham kernels (radix-4/3/5 stages plus
//! a trailing radix-2) and lengths with prime factors > 5 through the
//! recursive mixed-radix fallback. These tests pin both against the
//! O(n²) naive DFT across the lengths the engine actually plans
//! (5-smooth, with primes exercising the fallback's naive base case),
//! pin the two kernel families against each other on the lengths both
//! can plan, and pin the multi-threaded engine against the
//! single-threaded one bit-for-bit.

use proptest::prelude::*;
use rustfft::num_complex::Complex;
use rustfft::{FftDirection, FftPlanner};
use znn_fft::FftEngine;
use znn_tensor::{ops, Vec3};

/// O(n²) reference DFT with f64 accumulation.
fn naive_dft(x: &[Complex<f32>], sign: f64) -> Vec<Complex<f32>> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::new(0.0f64, 0.0f64);
            for (t, &v) in x.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * t % n) as f64 / n as f64;
                acc += Complex::new(v.re as f64, v.im as f64) * Complex::new(ang.cos(), ang.sin());
            }
            Complex::new(acc.re as f32, acc.im as f32)
        })
        .collect()
}

/// A deterministic pseudo-random complex signal in [-0.5, 0.5]².
fn signal(n: usize, seed: u64) -> Vec<Complex<f32>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

fn check_both_directions(n: usize, seed: u64) {
    let mut planner = FftPlanner::new();
    let x = signal(n, seed);
    for (dir, sign) in [(FftDirection::Forward, -1.0), (FftDirection::Inverse, 1.0)] {
        let mut got = x.clone();
        planner.plan_fft(n, dir).process(&mut got);
        let want = naive_dft(&x, sign);
        // error grows ~ sqrt(n) for the fast kernels; the naive f32 DFT
        // baseline dominates, so scale the bound with n
        let tol = 1e-5 * (n as f32) + 1e-4;
        for (k, (a, b)) in got.iter().zip(&want).enumerate() {
            assert!(
                (*a - *b).norm() < tol,
                "len {n} {dir:?} bin {k}: {a:?} vs {b:?}"
            );
        }
    }
}

/// Every 5-smooth length up to 512 — all of them take the iterative
/// mixed-radix Stockham kernels.
#[test]
fn dense_sweep_of_smooth_lengths_matches_naive_dft() {
    let mut lengths = Vec::new();
    for n in 2..=512usize {
        let mut m = n;
        for p in [2, 3, 5] {
            while m % p == 0 {
                m /= p;
            }
        }
        if m == 1 {
            lengths.push(n);
        }
    }
    assert!(lengths.len() > 40, "sweep too sparse: {}", lengths.len());
    for &n in &lengths {
        check_both_directions(n, 0xD1CE ^ n as u64);
    }
}

/// Primes hit the fallback's naive base case directly.
#[test]
fn prime_lengths_hit_the_fallback() {
    for n in [2usize, 3, 5, 7, 11, 13, 17, 31, 61, 97, 101] {
        check_both_directions(n, 0xBEEF ^ n as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random 2^a·3^b·5^c lengths (pure powers of two, pure powers of
    /// 3 and 5, and every mixed factorization — all planned onto the
    /// iterative Stockham path), random signals, vs the naive DFT.
    #[test]
    fn iterative_kernels_match_naive_dft(
        (a, b, c) in (0u32..10, 0u32..5, 0u32..4).prop_filter(
            "length in [2, 600]",
            |&(a, b, c)| {
                let n = 2usize.pow(a) * 3usize.pow(b) * 5usize.pow(c);
                (2..=600).contains(&n)
            },
        ),
        seed in any::<u64>(),
    ) {
        let n = 2usize.pow(a) * 3usize.pow(b) * 5usize.pow(c);
        check_both_directions(n, seed);
    }

    /// Random 5-smooth lengths: the iterative Stockham plan and the
    /// recursive fallback plan must agree — the differential pin that
    /// keeps the radix-3/5 stages honest against the long-standing
    /// reference implementation.
    #[test]
    fn iterative_and_recursive_kernels_agree_on_5_smooth_lengths(
        (a, b, c) in (0u32..10, 0u32..5, 0u32..4).prop_filter(
            "length in [2, 600]",
            |&(a, b, c)| {
                let n = 2usize.pow(a) * 3usize.pow(b) * 5usize.pow(c);
                (2..=600).contains(&n)
            },
        ),
        seed in any::<u64>(),
    ) {
        let n = 2usize.pow(a) * 3usize.pow(b) * 5usize.pow(c);
        let mut planner = FftPlanner::new();
        let x = signal(n, seed);
        for dir in [FftDirection::Forward, FftDirection::Inverse] {
            let mut iter = x.clone();
            planner.plan_fft(n, dir).process(&mut iter);
            let mut rec = x.clone();
            planner.plan_fft_recursive(n, dir).process(&mut rec);
            let tol = 1e-5 * (n as f32) + 1e-4;
            for (k, (u, v)) in iter.iter().zip(&rec).enumerate() {
                prop_assert!(
                    (*u - *v).norm() < tol,
                    "len {} {:?} bin {}: {:?} vs {:?}", n, dir, k, u, v
                );
            }
        }
    }

    /// Forward-then-inverse is the identity times n, for both kernel
    /// families.
    #[test]
    fn round_trip_is_unnormalized_identity(
        (a, b) in (1u32..9, 0u32..4).prop_filter(
            "length in [2, 768]",
            |&(a, b)| (2..=768).contains(&(2usize.pow(a) * 3usize.pow(b))),
        ),
        seed in any::<u64>(),
    ) {
        let n = 2usize.pow(a) * 3usize.pow(b);
        let mut planner = FftPlanner::new();
        let x = signal(n, seed);
        let mut buf = x.clone();
        planner.plan_fft_forward(n).process(&mut buf);
        planner.plan_fft_inverse(n).process(&mut buf);
        for (a, b) in buf.iter().zip(&x) {
            let scaled = Complex::new(a.re / n as f32, a.im / n as f32);
            prop_assert!((scaled - *b).norm() < 1e-4, "len {}", n);
        }
    }

    /// The multi-threaded engine must match the single-threaded one
    /// bit-for-bit on every shape — the determinism contract of the
    /// parallel line transforms (scoped workers run even on one core).
    #[test]
    fn threaded_transforms_are_deterministic(
        shape in (3usize..34, 3usize..34, 1usize..34).prop_filter(
            "past the parallel threshold on at least one stage",
            |&(x, y, z)| x * y * z >= 12_000,
        ),
        threads in 2usize..7,
        seed in any::<u64>(),
    ) {
        let m = Vec3::new(shape.0, shape.1, shape.2);
        let serial = FftEngine::with_threads(1);
        let parallel = FftEngine::with_threads(threads);
        let img = ops::random(m, seed);
        let s_spec = serial.rfft3(&img);
        let p_spec = parallel.rfft3(&img);
        let fwd_drift = s_spec
            .half()
            .as_slice()
            .iter()
            .zip(p_spec.half().as_slice())
            .map(|(a, b)| (a - b).norm())
            .fold(0.0f32, f32::max);
        prop_assert!(fwd_drift == 0.0, "forward drift {} on {}", fwd_drift, m);
        let s_back = serial.irfft3(s_spec);
        let p_back = parallel.irfft3(p_spec);
        prop_assert!(
            s_back.max_abs_diff(&p_back) == 0.0,
            "inverse drift on {}",
            m
        );
        // and the round trip still lands on the input
        prop_assert!(p_back.max_abs_diff(&img) < 1e-4);
    }
}

/// Shared-pool determinism: engines fanning out over one persistent
/// pool at 1/2/4 workers must agree bit-for-bit with the serial
/// engine — the same contract the scoped-thread era pinned, re-run
/// through the pool path (`FftEngine::with_pool`).
#[test]
fn shared_pool_transforms_are_deterministic_at_1_2_4_workers() {
    let pool = std::sync::Arc::new(rayon::ThreadPool::with_workers(2));
    let serial = FftEngine::with_threads(1);
    // 48³, 24·30·40 and 120·90·1 are 5-smooth non-powers-of-two: their
    // lines run the new radix-3/5 Stockham stages, which must be as
    // chunk-independent as the radix-4/2 ones
    for shape in [
        Vec3::cube(32),
        Vec3::new(16, 32, 64),
        Vec3::new(128, 130, 1),
        Vec3::cube(48),
        Vec3::new(24, 30, 40),
        Vec3::new(120, 90, 1),
    ] {
        let img = ops::random(shape, 0xB00);
        let want_spec = serial.rfft3(&img);
        let want_back = serial.irfft3(serial.rfft3(&img));
        for workers in [1usize, 2, 4] {
            let engine = FftEngine::with_pool(workers, std::sync::Arc::clone(&pool));
            let spec = engine.rfft3(&img);
            let drift = spec
                .half()
                .as_slice()
                .iter()
                .zip(want_spec.half().as_slice())
                .map(|(a, b)| (a - b).norm())
                .fold(0.0f32, f32::max);
            assert!(drift == 0.0, "forward drift at {workers} workers on {shape}");
            let back = engine.irfft3(spec);
            assert!(
                back.max_abs_diff(&want_back) == 0.0,
                "inverse drift at {workers} workers on {shape}"
            );
        }
    }
}

/// Pool reuse: two engines sharing one pool run interleaved transforms
/// from concurrent threads without corrupting each other's scratch —
/// every result must still be bit-for-bit the serial one.
#[test]
fn two_engines_on_one_pool_do_not_corrupt_each_others_scratch() {
    let pool = std::sync::Arc::new(rayon::ThreadPool::with_workers(2));
    let a = std::sync::Arc::new(FftEngine::with_pool(4, std::sync::Arc::clone(&pool)));
    let b = std::sync::Arc::new(FftEngine::with_pool(3, std::sync::Arc::clone(&pool)));
    let serial = FftEngine::with_threads(1);
    // distinct shapes per engine so scratch sizes differ (a stale or
    // shared buffer would corrupt the longer lines)
    let shape_a = Vec3::cube(32);
    let shape_b = Vec3::new(16, 40, 48);
    let img_a = ops::random(shape_a, 0xA);
    let img_b = ops::random(shape_b, 0xB);
    let want_a = serial.rfft3(&img_a);
    let want_b = serial.rfft3(&img_b);
    let drift = |got: &znn_tensor::Spectrum, want: &znn_tensor::Spectrum| {
        got.half()
            .as_slice()
            .iter()
            .zip(want.half().as_slice())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0f32, f32::max)
    };
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let (engine, img, want) = if i % 2 == 0 {
                (std::sync::Arc::clone(&a), img_a.clone(), want_a.clone())
            } else {
                (std::sync::Arc::clone(&b), img_b.clone(), want_b.clone())
            };
            std::thread::spawn(move || {
                for _ in 0..8 {
                    let got = engine.rfft3(&img);
                    assert!(
                        got.half()
                            .as_slice()
                            .iter()
                            .zip(want.half().as_slice())
                            .all(|(x, y)| x == y),
                        "interleaved transform drifted"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // and sequentially interleaved use stays exact too
    for _ in 0..4 {
        assert!(drift(&a.rfft3(&img_a), &want_a) == 0.0);
        assert!(drift(&b.rfft3(&img_b), &want_b) == 0.0);
    }
}
