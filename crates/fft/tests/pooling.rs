//! Pins for the pooled-allocator integration (paper §VII-C).
//!
//! The engine's contract when built with
//! [`FftEngine::with_buffer_pools`] is threefold:
//!
//! 1. **Bit-for-bit fidelity** — leasing buffers from a recycling pool
//!    must not change a single output bit relative to the plain-`Vec`
//!    engine, on any shape or direction (pool leases are zero-filled
//!    exactly like fresh buffers, and every scratch prefix is fully
//!    overwritten before it is read).
//! 2. **Zero steady-state allocation** — once one pass of a workload
//!    has warmed the pool, repeating the workload performs no system
//!    allocation at all: every lease is a hit and the resident
//!    footprint stops growing (the paper's "memory usage peaks after
//!    the first few rounds" property).
//! 3. **Conservation** — everything leased comes back: after all
//!    produced tensors drop, the pool counts zero bytes in use, even
//!    though `irfft3` migrates its buffer from the complex to the real
//!    personality in place.

use proptest::prelude::*;
use std::sync::Arc;
use znn_alloc::PoolSet;
use znn_fft::{good_shape, spectra, FftEngine};
use znn_tensor::{ops, Spectrum, Tensor3, Vec3};

fn max_cdiff_bits(a: &Spectrum, b: &Spectrum) -> bool {
    a.full_shape() == b.full_shape()
        && a.half()
            .as_slice()
            .iter()
            .zip(b.half().as_slice())
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

fn bits_equal(a: &Tensor3<f32>, b: &Tensor3<f32>) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The shapes the engine meets in practice: volumes (even/odd packed
/// extents), flat 2D, 1D rows, single voxels.
const SHAPES: &[Vec3] = &[
    Vec3::cube(8),
    Vec3::new(4, 6, 10),
    Vec3::new(4, 3, 5),
    Vec3::new(5, 6, 1),
    Vec3::new(5, 5, 1),
    Vec3::new(6, 1, 1),
    Vec3::one(),
    Vec3::cube(12),
];

#[test]
fn pooled_transforms_are_bitwise_identical_to_raw() {
    let raw = FftEngine::with_threads(1);
    let pooled = FftEngine::with_threads(1).with_buffer_pools(PoolSet::new());
    for &shape in SHAPES {
        let img = ops::random(shape, 11);
        let a = raw.rfft3(&img);
        let b = pooled.rfft3(&img);
        assert!(max_cdiff_bits(&a, &b), "forward drift on {shape}");
        let back_a = raw.irfft3(a);
        let back_b = pooled.irfft3(b);
        assert!(bits_equal(&back_a, &back_b), "inverse drift on {shape}");
    }
}

#[test]
fn pooled_staged_convolution_path_is_bitwise_identical() {
    // forward_padded (pooled pad_into) + flip/corr identities (pooled
    // clones) + inverse_real (pooled crop_into) against the raw engine
    let raw = FftEngine::with_threads(1);
    let pooled = FftEngine::with_threads(1).with_buffer_pools(PoolSet::new());
    let n = Vec3::cube(7);
    let k = Vec3::cube(3);
    let m = good_shape(n);
    let x = ops::random(n, 21);
    let w = ops::random(k, 22);
    let xs_a = raw.forward_padded(&x, m);
    let xs_b = pooled.forward_padded(&x, m);
    assert!(max_cdiff_bits(&xs_a, &xs_b), "forward_padded drift");
    let ws_a = raw.forward_padded(&w, m);
    let ws_b = pooled.forward_padded(&w, m);
    let flip_a = spectra::flip_spectrum(&ws_a, k);
    let flip_b = spectra::flip_spectrum(&ws_b, k);
    assert!(max_cdiff_bits(&flip_a, &flip_b), "flip_spectrum drift");
    let prod_a = ops::mul_s(&xs_a, &flip_a);
    let prod_b = ops::mul_s(&xs_b, &flip_b);
    assert!(max_cdiff_bits(&prod_a, &prod_b), "mul_s drift");
    let out_a = raw.inverse_real(prod_a, Vec3::zero(), n);
    let out_b = pooled.inverse_real(prod_b, Vec3::zero(), n);
    assert!(bits_equal(&out_a, &out_b), "inverse_real drift");
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    // one "round" = the engine-side buffer traffic of an FFT
    // convolution: padded forward transforms, a spectrum product, a
    // derived flip spectrum, and a cropped inverse. After the warmup
    // round the pool must serve every lease by recycling: no new bytes
    // from the system, no misses, hit rate -> 1.
    let pools = PoolSet::new();
    let engine = FftEngine::with_threads(1).with_buffer_pools(Arc::clone(&pools));
    let n = Vec3::cube(9);
    let k = Vec3::cube(3);
    let m = good_shape(n);
    let x = ops::random(n, 31);
    let w = ops::random(k, 32);
    let round = |engine: &FftEngine| {
        let xs = engine.forward_padded(&x, m);
        let ws = engine.forward_padded(&w, m);
        let flip = spectra::flip_spectrum(&ws, k);
        let prod = ops::mul_s(&xs, &flip);
        let crop_at = k - Vec3::one();
        let out = engine.inverse_real(prod, crop_at, n.valid_conv(k).unwrap());
        std::hint::black_box(&out);
    };
    round(&engine); // warmup: populates the pool
    round(&engine); // second pass: classes of every lease now parked
    let resident = pools.resident_bytes();
    let misses = pools.stats().misses();
    let hits_before = pools.stats().hits();
    for _ in 0..5 {
        round(&engine);
    }
    assert_eq!(
        pools.resident_bytes(),
        resident,
        "resident footprint grew after warmup"
    );
    assert_eq!(pools.stats().misses(), misses, "pool missed after warmup");
    assert!(
        pools.stats().hits() > hits_before,
        "steady-state rounds did not go through the pool"
    );
    // every lease of the steady-state rounds was a hit
    let total = pools.stats().hits() + pools.stats().misses();
    assert!(
        pools.stats().hits() as f64 / total as f64 > 0.5,
        "hit rate did not climb"
    );
}

#[test]
fn all_leases_return_to_the_pool() {
    let pools = PoolSet::new();
    let engine = FftEngine::with_threads(1).with_buffer_pools(Arc::clone(&pools));
    for &shape in SHAPES {
        let img = ops::random(shape, 41);
        let spec = engine.rfft3(&img);
        let clone = spec.clone();
        let back = engine.irfft3(spec);
        drop(clone);
        drop(back);
    }
    drop(engine); // scratch slots recycle too
    assert_eq!(
        pools.stats().bytes_in_use(),
        0,
        "pooled bytes leaked out of custody"
    );
}

#[test]
fn pooled_engine_shares_plans_and_pools_across_threads() {
    // the recycle race at engine level: several threads hammer one
    // pooled engine; values must stay correct and accounting conserved
    let pools = PoolSet::new();
    let engine = Arc::new(FftEngine::with_threads(1).with_buffer_pools(Arc::clone(&pools)));
    let handles: Vec<_> = (0..4)
        .map(|seed| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..20 {
                    let img = ops::random(Vec3::cube(6 + (seed + i) % 3), seed as u64);
                    let back = engine.irfft3(engine.rfft3(&img));
                    assert!(back.max_abs_diff(&img) < 1e-5);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    drop(engine);
    assert_eq!(pools.stats().bytes_in_use(), 0);
}

#[test]
fn foreign_spectra_are_not_adopted_into_the_pool() {
    // a spectrum whose buffer the pool never leased (here: produced by
    // an unpooled engine) must not be adopted on the irfft3 in-place
    // path — recycling never-leased bytes would corrupt the pool's
    // bytes_in_use accounting and under-report the real footprint
    let pools = PoolSet::new();
    let engine = FftEngine::with_threads(1).with_buffer_pools(Arc::clone(&pools));
    let img = ops::random(Vec3::cube(6), 51);
    // warm up so the scratch-slot leases are already counted
    drop(engine.irfft3(engine.rfft3(&img)));
    let in_use = pools.stats().bytes_in_use();
    let foreign = FftEngine::with_threads(1).rfft3(&img);
    let back = engine.irfft3(foreign);
    assert!(back.home().is_none(), "foreign buffer was adopted");
    drop(back);
    assert_eq!(
        pools.stats().bytes_in_use(),
        in_use,
        "pool accounting drifted on a foreign spectrum"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lease/return round-trips preserve tensor contents bit-for-bit:
    /// on random shapes and seeds, the pooled engine's forward spectrum
    /// and reconstructed image equal the raw engine's bitwise — and a
    /// pooled clone equals its original bitwise after the original is
    /// recycled and its chunk re-leased.
    #[test]
    fn pooled_round_trip_is_bitwise_faithful(
        x in 1usize..7,
        y in 1usize..7,
        z in 1usize..9,
        seed in 0u64..1000,
    ) {
        let shape = Vec3::new(x, y, z);
        let img = ops::random(shape, seed);
        let raw = FftEngine::with_threads(1);
        let pools = PoolSet::new();
        let pooled = FftEngine::with_threads(1).with_buffer_pools(Arc::clone(&pools));
        let a = raw.rfft3(&img);
        let b = pooled.rfft3(&img);
        prop_assert!(max_cdiff_bits(&a, &b), "forward drift on {shape}");
        // clone, recycle the original, re-lease its chunk: the clone
        // must still hold the exact bits
        let keep = b.clone();
        let back = pooled.irfft3(b); // consumes + recycles in place
        prop_assert!(max_cdiff_bits(&a, &keep), "clone lost bits on {shape}");
        let back_raw = raw.irfft3(a);
        prop_assert!(bits_equal(&back_raw, &back), "inverse drift on {shape}");
    }
}
