//! SIMD-vs-scalar parity at the 3D engine level: the default engine
//! (batched AVX2 Stockham lines where detected) must be *bitwise*
//! equal to `with_scalar_kernels()` on every path — forward r2c,
//! inverse, c2c, threaded or not. On hosts without AVX2 the two
//! engines run the same code and the pins hold trivially.

use proptest::prelude::*;
use znn_fft::{spectra, FftEngine};
use znn_tensor::{ops, Vec3};

fn max_cdiff(a: &znn_tensor::CImage, b: &znn_tensor::CImage) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).norm())
        .fold(0.0, f32::max)
}

#[test]
fn default_engine_matches_scalar_kernels_bitwise() {
    let simd = FftEngine::with_threads(1);
    let scalar = FftEngine::with_scalar_kernels();
    for shape in [
        Vec3::cube(32),          // 2^k: radix-4 + trailing-2 stages
        Vec3::new(24, 30, 20),   // mixed radices incl. 3 and 5
        Vec3::new(16, 32, 64),   // anisotropic
        Vec3::new(128, 130, 1),  // flat, non-5-smooth y (recursive)
        Vec3::new(4, 3, 5),      // odd packed axis (fallback pack)
        Vec3::cube(9),           // radix-3 only
    ] {
        let img = ops::random(shape, 1213);
        let a = simd.rfft3(&img);
        let b = scalar.rfft3(&img);
        assert!(
            max_cdiff(a.half(), b.half()) == 0.0,
            "forward drift on {shape}"
        );
        let back_a = simd.irfft3(a);
        let back_b = scalar.irfft3(b);
        assert!(
            back_a.max_abs_diff(&back_b) == 0.0,
            "inverse drift on {shape}"
        );
        let mut ca = ops::to_complex(&img);
        let mut cb = ops::to_complex(&img);
        simd.fft3(&mut ca);
        scalar.fft3(&mut cb);
        assert!(max_cdiff(&ca, &cb) == 0.0, "c2c drift on {shape}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The memoized-update kernel `corr_spectrum` (x ∘ conj(g)) must
    /// equal the per-bin `num_complex` form bitwise on every transform
    /// shape — the AVX2 conjugate-multiply preserves the scalar op
    /// order exactly, tails included. Same for its accumulating form.
    #[test]
    fn corr_spectrum_is_bitwise_exact_per_bin(
        x in 1usize..6, y in 1usize..6, z in 1usize..9, seed in 0u64..1000,
    ) {
        let engine = FftEngine::with_threads(1);
        let shape = Vec3::new(x, y, z);
        let xs = engine.rfft3(&ops::random(shape, seed));
        let gs = engine.rfft3(&ops::random(shape, seed ^ 0xACE));
        let got = spectra::corr_spectrum(&xs, &gs);
        for (i, (&xv, &gv)) in xs
            .half()
            .as_slice()
            .iter()
            .zip(gs.half().as_slice())
            .enumerate()
        {
            let want = xv * gv.conj();
            prop_assert_eq!(got.half().as_slice()[i].re.to_bits(), want.re.to_bits());
            prop_assert_eq!(got.half().as_slice()[i].im.to_bits(), want.im.to_bits());
        }

        let mut acc = spectra::corr_spectrum(&xs, &gs);
        let init = acc.clone();
        spectra::corr_mul_add(&mut acc, &xs, &gs);
        for (i, (&xv, &gv)) in xs
            .half()
            .as_slice()
            .iter()
            .zip(gs.half().as_slice())
            .enumerate()
        {
            let want = init.half().as_slice()[i] + xv * gv.conj();
            prop_assert_eq!(acc.half().as_slice()[i].re.to_bits(), want.re.to_bits());
            prop_assert_eq!(acc.half().as_slice()[i].im.to_bits(), want.im.to_bits());
        }
    }
}

#[test]
fn threaded_simd_engine_matches_scalar_kernels_bitwise() {
    // worker chunking interacts with the 8-line grouping (a worker's
    // range may end mid-group); neither may change a bit
    let simd = FftEngine::with_threads(4);
    let scalar = FftEngine::with_scalar_kernels();
    for shape in [Vec3::cube(32), Vec3::new(16, 32, 64)] {
        let img = ops::random(shape, 77);
        let a = simd.rfft3(&img);
        let b = scalar.rfft3(&img);
        assert!(
            max_cdiff(a.half(), b.half()) == 0.0,
            "threaded forward drift on {shape}"
        );
        let back_a = simd.irfft3(a);
        let back_b = scalar.irfft3(b);
        assert!(
            back_a.max_abs_diff(&back_b) == 0.0,
            "threaded inverse drift on {shape}"
        );
    }
}
