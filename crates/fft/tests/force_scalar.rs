//! `ZNN_FORCE_SCALAR` at the engine level: with the override set
//! before first use, every plan the engine builds is scalar, and the
//! whole r2c/c2r pipeline still round-trips and stays bitwise equal to
//! the explicitly scalar-pinned engine.
//!
//! One `#[test]` on purpose: the override is read once per process,
//! so this file owns its test binary's process.

use znn_fft::FftEngine;
use znn_tensor::{ops, Vec3};

#[test]
fn forced_scalar_engine_round_trips_and_matches_scalar_plans() {
    std::env::set_var("ZNN_FORCE_SCALAR", "1");
    assert!(znn_simd::forced_scalar());
    assert_eq!(znn_simd::isa(), znn_simd::Isa::Scalar);

    let engine = FftEngine::with_threads(2);
    let pinned = FftEngine::with_scalar_kernels();
    for shape in [Vec3::cube(32), Vec3::new(24, 30, 20)] {
        let img = ops::random(shape, 2024);
        let a = engine.rfft3(&img);
        let b = pinned.rfft3(&img);
        let drift = a
            .half()
            .as_slice()
            .iter()
            .zip(b.half().as_slice())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f32::max);
        assert!(drift == 0.0, "forced-scalar forward drift on {shape}");
        let back = engine.irfft3(a);
        assert!(
            back.max_abs_diff(&img) < 1e-5,
            "forced-scalar round trip failed on {shape}"
        );
    }
}
