//! `ZNN_FORCE_SCALAR` round-trip: set the override before the first
//! dispatch, then prove the process-wide detection honors it.
//!
//! This file holds exactly one `#[test]` on purpose — the override is
//! read once per process, so the test owns the whole test-binary
//! process and no other test can race the first `isa()` call.

use num_complex::Complex;

#[test]
fn force_scalar_round_trip() {
    std::env::set_var("ZNN_FORCE_SCALAR", "1");

    assert_eq!(znn_simd::isa(), znn_simd::Isa::Scalar);
    assert!(znn_simd::forced_scalar());
    assert_eq!(znn_simd::isa_name(), "scalar");

    // The dispatched kernels now run the scalar twins — results match
    // calling the twins directly, bitwise.
    let src: Vec<f32> = (0..67).map(|i| (i as f32) * 0.37 - 11.0).collect();
    let mut a: Vec<f32> = (0..67).map(|i| (i as f32) * -0.19 + 3.0).collect();
    let mut b = a.clone();
    znn_simd::axpy_f(&mut a, 0.731, &src);
    znn_simd::scalar::axpy_f(&mut b, 0.731, &src);
    assert_eq!(a, b);

    let g: Vec<Complex<f32>> =
        (0..37).map(|i| Complex::new(i as f32 * 0.3, 1.0 - i as f32 * 0.1)).collect();
    let mut c: Vec<Complex<f32>> =
        (0..37).map(|i| Complex::new(1.0 + i as f32 * 0.2, i as f32 * -0.4)).collect();
    let mut d = c.clone();
    znn_simd::conj_mul_assign_c(&mut c, &g);
    znn_simd::scalar::conj_mul_assign_c(&mut d, &g);
    assert_eq!(c, d);
}
