//! Portable scalar twins of every dispatched kernel.
//!
//! These are the *reference semantics*: each vector body in the crate
//! is pinned bitwise against the function of the same name here. The
//! FMA twins use [`f32::mul_add`] — the same correctly-rounded fused
//! operation the hardware `vfmadd` performs — so fusing is part of the
//! contract, not a vector-path quirk.

use num_complex::Complex;

/// `dst[i] += src[i]`.
pub fn add_assign_f(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[i] *= src[i]`.
pub fn mul_assign_f(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

/// `dst[i] *= s`.
pub fn scale_f(dst: &mut [f32], s: f32) {
    for d in dst.iter_mut() {
        *d *= s;
    }
}

/// `dst[i] = fma(dst[i], a, src[i])` — momentum-SGD axpy, fused.
pub fn axpy_f(dst: &mut [f32], a: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = d.mul_add(a, s);
    }
}

/// `dst[i] = fma(-eta, src[i], dst[i])` — SGD parameter step, fused.
pub fn sub_scaled_f(dst: &mut [f32], eta: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    let neg = -eta;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = neg.mul_add(s, *d);
    }
}

/// `dst[i] = fma(w, src[i], dst[i])` — convolver tap accumulate, fused.
pub fn fma_acc_f(dst: &mut [f32], w: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = w.mul_add(s, *d);
    }
}

/// `dst[i] += src[i]` for complex slices.
pub fn add_assign_c(dst: &mut [Complex<f32>], src: &[Complex<f32>]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[i] *= src[i]`.
pub fn mul_assign_c(dst: &mut [Complex<f32>], src: &[Complex<f32>]) {
    assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

/// `dst[i] += a[i]·b[i]`.
pub fn mul_add_assign_c(dst: &mut [Complex<f32>], a: &[Complex<f32>], b: &[Complex<f32>]) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d += x * y;
    }
}

/// `dst[i] *= conj(g[i])`.
pub fn conj_mul_assign_c(dst: &mut [Complex<f32>], g: &[Complex<f32>]) {
    assert_eq!(dst.len(), g.len());
    for (d, &s) in dst.iter_mut().zip(g) {
        *d *= s.conj();
    }
}

/// `acc[i] += x[i]·conj(g[i])`.
pub fn conj_mul_add_assign_c(
    acc: &mut [Complex<f32>],
    x: &[Complex<f32>],
    g: &[Complex<f32>],
) {
    assert_eq!(acc.len(), x.len());
    assert_eq!(acc.len(), g.len());
    for ((a, &xv), &gv) in acc.iter_mut().zip(x).zip(g) {
        *a += xv * gv.conj();
    }
}

/// `dst[i] += bias`.
pub fn bias_add_f(dst: &mut [f32], bias: f32) {
    for d in dst.iter_mut() {
        *d += bias;
    }
}

/// `dst[i] = relu(dst[i] + bias)`; `relu(t)` is `t` for `t > 0`, else `0.0`.
pub fn bias_relu_f(dst: &mut [f32], bias: f32) {
    for d in dst.iter_mut() {
        let t = *d + bias;
        *d = if t > 0.0 { t } else { 0.0 };
    }
}

/// `dst[i] = t > 0 ? t : a·t` for `t = dst[i] + bias`.
pub fn bias_leaky_relu_f(dst: &mut [f32], bias: f32, a: f32) {
    for d in dst.iter_mut() {
        let t = *d + bias;
        *d = if t > 0.0 { t } else { a * t };
    }
}

/// `dst[i] *= (y[i] > 0 ? 1.0 : 0.0)`.
pub fn relu_deriv_mul_f(dst: &mut [f32], y: &[f32]) {
    assert_eq!(dst.len(), y.len());
    for (d, &yv) in dst.iter_mut().zip(y) {
        *d *= if yv > 0.0 { 1.0 } else { 0.0 };
    }
}

/// `dst[i] *= (y[i] > 0 ? 1.0 : a)`.
pub fn leaky_relu_deriv_mul_f(dst: &mut [f32], y: &[f32], a: f32) {
    assert_eq!(dst.len(), y.len());
    for (d, &yv) in dst.iter_mut().zip(y) {
        *d *= if yv > 0.0 { 1.0 } else { a };
    }
}

/// `dst[i] *= y[i]·(1 − y[i])`.
pub fn logistic_deriv_mul_f(dst: &mut [f32], y: &[f32]) {
    assert_eq!(dst.len(), y.len());
    for (d, &yv) in dst.iter_mut().zip(y) {
        *d *= yv * (1.0 - yv);
    }
}

/// `dst[i] *= 1 − y[i]²`.
pub fn tanh_deriv_mul_f(dst: &mut [f32], y: &[f32]) {
    assert_eq!(dst.len(), y.len());
    for (d, &yv) in dst.iter_mut().zip(y) {
        *d *= 1.0 - yv * yv;
    }
}
